"""Unit tests for the experiment harness (repro.experiments).

These run the real drivers at tiny sizes — smoke coverage plus checks of
the qualitative invariants each figure is supposed to show.
"""

import math

import pytest

from repro.experiments import (
    DEFAULT_QUERY_RANGES,
    ExperimentConfig,
    format_table,
    run_algorithm,
    run_suite,
)
from repro.experiments import ablations, estimate, exp4, fig5, fig6, fig7, fig8
from repro.experiments.runner import scaled
from repro.experiments.tables import format_rows


@pytest.fixture
def tiny_config():
    return ExperimentConfig(iterations=1, ssj_byte_budget=5_000_000)


class TestQueryRanges:
    def test_paper_grid(self):
        assert len(DEFAULT_QUERY_RANGES) == 9
        assert DEFAULT_QUERY_RANGES[0] == pytest.approx(2.0**-9)
        assert DEFAULT_QUERY_RANGES[-1] == pytest.approx(0.5)
        # Equally spaced on a log scale.
        ratios = [
            DEFAULT_QUERY_RANGES[i + 1] / DEFAULT_QUERY_RANGES[i] for i in range(8)
        ]
        assert all(r == pytest.approx(2.0) for r in ratios)


class TestScaled:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scaled(100) == 100

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert scaled(100) == 50

    def test_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.0001")
        assert scaled(100) == 4


class TestEstimate:
    def test_output_bytes_exact(self, rng):
        pts = rng.random((300, 2))
        from repro.core.bruteforce import count_links
        from repro.io.writer import line_bytes

        est = estimate.estimate_ssj(pts, 0.1, id_width=3)
        assert est.links == count_links(pts, 0.1)
        assert est.output_bytes == est.links * line_bytes(2, 3)
        assert math.isnan(est.total_time)  # no calibration given

    def test_calibrated_runtime(self, rng):
        pts = rng.random((200, 2))
        cal = estimate.RuntimeCalibration.from_run(links=1000, total_seconds=2.0)
        est = estimate.estimate_ssj(pts, 0.1, id_width=3, calibration=cal)
        assert est.total_time > 0

    def test_calibration_zero_links(self):
        cal = estimate.RuntimeCalibration.from_run(links=0, total_seconds=1.0)
        assert cal.seconds_per_link == 0.0
        assert cal.baseline_seconds == 1.0


class TestRunAlgorithm:
    def test_rows_have_required_keys(self, clustered_2d, tiny_config):
        tree = tiny_config.build_tree(clustered_2d)
        row = run_algorithm("csj", tree, 0.05, g=10, config=tiny_config)
        for key in ("algorithm", "eps", "links", "groups", "output_bytes",
                    "total_time", "estimated"):
            assert key in row
        assert row["estimated"] is False

    def test_ssj_estimated_over_budget(self, clustered_2d):
        config = ExperimentConfig(iterations=1, ssj_byte_budget=10)
        tree = config.build_tree(clustered_2d)
        row = run_algorithm("ssj", tree, 0.1, config=config)
        assert row["estimated"] is True
        assert row["output_bytes"] > 10

    def test_unknown_algorithm(self, clustered_2d, tiny_config):
        tree = tiny_config.build_tree(clustered_2d)
        with pytest.raises(ValueError):
            run_algorithm("hash", tree, 0.1, config=tiny_config)


class TestRunSuite:
    def test_sweep_shape(self, clustered_2d, tiny_config):
        rows = run_suite(
            clustered_2d, (0.02, 0.05), config=tiny_config, dataset_name="test"
        )
        assert len(rows) == 2 * 3  # two ranges x three algorithms
        assert {row["dataset"] for row in rows} == {"test"}

    def test_compactness_invariants(self, clustered_2d, tiny_config):
        """CSJ(10) <= N-CSJ <= SSJ in output bytes at every range."""
        rows = run_suite(clustered_2d, (0.02, 0.05, 0.1), config=tiny_config)
        by_eps = {}
        for row in rows:
            by_eps.setdefault(row["eps"], {})[row["algorithm"]] = row
        for eps, algs in by_eps.items():
            assert algs["csj(10)"]["output_bytes"] <= algs["ncsj"]["output_bytes"]
            assert algs["ncsj"]["output_bytes"] <= algs["ssj"]["output_bytes"]


class TestFigureDrivers:
    def test_fig5_one_dataset(self, tiny_config, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        rows = fig5.run_dataset(
            "mg_county", query_ranges=(0.05, 0.2), config=tiny_config
        )
        assert len(rows) == 6
        assert all(row["dataset"] == "mg_county" for row in rows)

    def test_fig5_pacific_caps_ranges(self, tiny_config, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        rows = fig5.run_dataset("pacific_nw", config=tiny_config)
        assert max(row["eps"] for row in rows) <= 2.0**-4

    def test_fig6_sweep(self, tiny_config, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        rows = fig6.run(g_values=(1, 10), config=tiny_config)
        assert [row["g"] for row in rows] == [1, 10]
        # More merge window -> no larger output.
        assert rows[1]["output_bytes"] <= rows[0]["output_bytes"]

    def test_fig7_scalability(self, tiny_config, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        rows = fig7.run(sizes=(200, 400), config=tiny_config)
        assert len(rows) == 6
        ssj_rows = [row for row in rows if row["algorithm"] == "ssj"]
        assert ssj_rows[1]["output_bytes"] >= ssj_rows[0]["output_bytes"]

    def test_fig8_time_split(self, tiny_config, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        rows = fig8.run(config=tiny_config, output_dir=str(tmp_path))
        assert [row["algorithm"] for row in rows] == [
            "ssj", "ncsj", "csj(1)", "csj(10)", "csj(100)",
        ]
        for row in rows:
            assert row["write_time"] >= 0
            assert row["file_bytes"] == row["output_bytes"]
            assert row["page_reads"] + row["cache_hits"] > 0

    def test_fig8_page_accesses_similar(self, tiny_config, monkeypatch):
        """Experiment 3's claim: page accesses do not differ much."""
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        rows = fig8.run(config=tiny_config)
        accesses = [row["page_reads"] + row["cache_hits"] for row in rows]
        assert max(accesses) <= min(accesses) * 1.5

    def test_exp4_tree_structures(self, tiny_config, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        rows = exp4.run(query_ranges=(0.05,), config=tiny_config)
        indexes = {row["index"] for row in rows}
        assert indexes == {"rstar", "rtree", "mtree"}
        # check_agreement inside exp4.run would have raised on divergence.

    def test_ablation_bulk(self, tiny_config, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        rows = ablations.run_bulk(
            methods=("str", "dynamic"), config=tiny_config
        )
        assert {row["bulk"] for row in rows} == {"str", "dynamic"}

    def test_ablation_capacity(self, tiny_config, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        rows = ablations.run_capacity(capacities=(8, 32), config=tiny_config)
        assert {row["capacity"] for row in rows} == {8, 32}

    def test_ablation_fractal(self, tiny_config, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.3")
        rows = ablations.run_fractal(config=tiny_config)
        by_name = {row["dataset"]: row for row in rows}
        assert by_name["line"]["d2"] < by_name["uniform"]["d2"]
        assert by_name["line"]["pairs"] > by_name["uniform"]["pairs"]

    def test_ablation_egrid(self, tiny_config, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        rows = ablations.run_egrid(query_ranges=(0.05,), config=tiny_config)
        labels = {row["algorithm"] for row in rows}
        assert labels == {"egrid", "egrid-csj(10)", "tree-csj(10)"}


class TestTables:
    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": float("nan")}]
        text = format_table(rows, title="T")
        assert "T" in text and "a" in text and "nan" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_rows_standard_columns(self):
        rows = [{"dataset": "d", "algorithm": "ssj", "eps": 0.1, "links": 5}]
        text = format_rows(rows)
        assert "dataset" in text and "ssj" in text

    def test_large_and_small_floats(self):
        text = format_table([{"x": 1e9, "y": 1e-9, "z": True, "w": None}])
        assert "e+09" in text and "e-09" in text and "yes" in text and "-" in text
