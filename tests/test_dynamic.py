"""Incremental join maintenance (`repro.dynamic`).

The contract under test is expansion-equivalence after *any* update
sequence: a :class:`MaintainedJoin` that absorbed inserts and repaired
deletes must expand to exactly the brute-force link set over the live
points — as if the join had been recomputed from scratch.  The
hypothesis suite at the bottom drives random insert/delete/query
interleavings over all three index structures.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import maintained_join, similarity_join
from repro.core.bruteforce import brute_force_links
from repro.core.groups import apply_events
from repro.core.results import CollectSink
from repro.dynamic import MaintainedJoin
from repro.errors import InvalidInputError, ValidationError

# Same coarse lattice as tests/test_properties.py: maximises
# exact-distance ties, the hardest case for strict-inequality agreement.
coordinate = st.one_of(
    st.integers(0, 8).map(lambda v: v / 8.0),
    st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False, width=32),
)


def expected_links(maintained):
    """Brute-force ground truth over the live points, in live-id space."""
    live = maintained.live_ids()
    if len(live) < 2:
        return set()
    sub = maintained.tree.points[np.asarray(live, dtype=np.intp)]
    return {
        (live[i], live[j])
        for i, j in brute_force_links(sub, maintained.eps, metric=maintained.metric)
    }


def assert_equivalent(maintained):
    maintained.validate()
    assert maintained.expanded_links() == expected_links(maintained)


@pytest.fixture
def pts(rng):
    return rng.random((200, 2))


class TestConstruction:
    def test_seed_matches_brute_force(self, pts):
        maintained = maintained_join(pts, eps=0.08, g=10)
        assert_equivalent(maintained)
        assert maintained.size == len(pts)

    def test_from_result_adopts_without_rejoin(self, pts):
        result = similarity_join(pts, eps=0.08, algorithm="csj", g=10)
        maintained = MaintainedJoin.from_result(pts, result)
        assert_equivalent(maintained)

    def test_from_result_rejects_spatial_join_output(self, rng):
        a, b = rng.random((50, 2)), rng.random((50, 2))
        from repro.api import spatial_join_datasets

        pair_result = spatial_join_datasets(a, b, eps=0.3, compact=True)
        if not pair_result.group_pairs:  # pragma: no cover - eps chosen to pair
            pytest.skip("no group pairs produced")
        with pytest.raises(InvalidInputError):
            MaintainedJoin.from_result(a, pair_result)

    def test_parameter_validation(self, pts):
        with pytest.raises(InvalidInputError):
            maintained_join(pts, eps=-1.0)
        with pytest.raises(InvalidInputError):
            maintained_join(pts, eps=0.05, g=-1)

    @pytest.mark.parametrize("index", ["rtree", "rstar", "mtree"])
    def test_all_index_structures(self, rng, index):
        pts = rng.random((80, 2))
        maintained = maintained_join(pts, eps=0.1, index=index)
        assert_equivalent(maintained)


class TestInsert:
    def test_absorb_into_group(self):
        # A tight cluster forms one group; a point dropped into its
        # middle must be absorbed, not linked pairwise.
        cluster = np.array([[0.50, 0.50], [0.51, 0.50], [0.50, 0.51], [0.51, 0.51]])
        maintained = maintained_join(cluster, eps=0.1)
        assert len(maintained._groups) == 1
        pid = maintained.insert([0.505, 0.505])
        assert maintained.counts["absorbed"] == 1
        assert any(pid in grp.ids for grp in maintained._groups.values())
        assert_equivalent(maintained)

    def test_far_point_gets_no_links(self, pts):
        maintained = maintained_join(pts, eps=0.05)
        before = maintained.expanded_links()
        pid = maintained.insert([50.0, 50.0])
        assert maintained.expanded_links() == before
        assert pid not in maintained._pid_links
        assert_equivalent(maintained)

    def test_residual_links_outside_absorbing_group(self):
        # Two separate tight clusters, new point within eps of both but
        # only absorbable into one: the other side becomes links.
        left = np.array([[0.10, 0.5], [0.11, 0.5]])
        right = np.array([[0.30, 0.5], [0.31, 0.5]])
        maintained = maintained_join(np.vstack([left, right]), eps=0.15)
        maintained.insert([0.195, 0.5])  # near both, inside neither box
        assert maintained.counts["residual"] > 0
        assert_equivalent(maintained)

    def test_insert_reuses_tombstoned_slot(self, pts):
        maintained = maintained_join(pts, eps=0.05)
        assert maintained.delete(17)
        pid = maintained.insert([0.4, 0.6])
        assert pid == 17
        assert maintained.size == len(pts)
        assert_equivalent(maintained)


class TestDelete:
    def test_delete_missing_returns_false(self, pts):
        maintained = maintained_join(pts, eps=0.05)
        assert not maintained.delete(9999)
        assert maintained.delete(3)
        assert not maintained.delete(3)

    def test_delete_removes_exactly_its_pairs(self, pts):
        maintained = maintained_join(pts, eps=0.08)
        before = maintained.expanded_links()
        victim = 42
        maintained.delete(victim)
        after = maintained.expanded_links()
        assert after == {p for p in before if victim not in p}
        assert_equivalent(maintained)

    def test_group_dissolves_below_two_members(self):
        cluster = np.array([[0.5, 0.5], [0.51, 0.5], [0.5, 0.51]])
        maintained = maintained_join(cluster, eps=0.1)
        assert len(maintained._groups) == 1
        maintained.delete(0)
        maintained.delete(1)
        assert not maintained._groups
        assert_equivalent(maintained)

    def test_delete_everything(self, rng):
        pts = rng.random((30, 2))
        maintained = maintained_join(pts, eps=0.2)
        for pid in range(30):
            assert maintained.delete(pid)
        assert maintained.size == 0
        assert not maintained._groups
        assert not maintained._links
        assert_equivalent(maintained)


class TestOutput:
    def test_result_is_deterministic(self, pts):
        a = maintained_join(pts, eps=0.08)
        b = maintained_join(pts, eps=0.08)
        for m in (a, b):
            m.delete(5)
            m.insert([0.2, 0.2])
        ra, rb = a.result(), b.result()
        assert ra.links == rb.links
        assert ra.groups == rb.groups
        assert ra.output_bytes == rb.output_bytes

    def test_result_expansion_matches_maintained_state(self, pts):
        maintained = maintained_join(pts, eps=0.08)
        maintained.delete(7)
        maintained.insert([0.33, 0.66])
        result = maintained.result()
        assert result.expanded_links() == maintained.expanded_links()

    def test_fingerprint_tracks_updates(self, pts):
        maintained = maintained_join(pts, eps=0.05)
        fp0 = maintained.fingerprint()
        maintained.delete(0)
        fp1 = maintained.fingerprint()
        assert fp0 != fp1
        maintained.insert(pts[0], pid=0)
        assert maintained.fingerprint() == fp0


class TestCompact:
    def test_compact_preserves_expansion(self, rng):
        pts = rng.random((200, 2))
        maintained = maintained_join(pts, eps=0.08)
        for pid in range(120):
            maintained.delete(pid)
        assert maintained.need_compact()
        before = expected_links(maintained)
        mapping = maintained.compact()
        assert not maintained.need_compact()
        remapped = {tuple(sorted((mapping[i], mapping[j]))) for i, j in before}
        assert maintained.expanded_links() == remapped
        assert_equivalent(maintained)


class TestReplayValidation:
    def test_group_event_without_buffer_raises_typed_error(self):
        # Regression: replaying CSJ events without a group window used to
        # die with a bare AttributeError on buffer.create_group.
        sink = CollectSink()
        with pytest.raises(ValidationError, match="'group'"):
            apply_events([("group", (0, 1), [0.0], [0.1])], sink, None)
        with pytest.raises(ValidationError, match="'linkseq'"):
            apply_events([("linkseq", [0], [1], [[0.0]], [[0.1]])], sink, None)
        # ValidationError is an InvalidInputError: same exit-code family.
        assert issubclass(ValidationError, InvalidInputError)

    def test_links_events_need_no_buffer(self):
        sink = CollectSink()
        apply_events([("links", [0, 2], [1, 3])], sink, None)
        assert sink.links == [(0, 1), (2, 3)]


# ---------------------------------------------------------------------------
# Property suite: random insert/delete/query interleavings.
# ---------------------------------------------------------------------------

@st.composite
def churn_cases(draw):
    dim = draw(st.integers(1, 3))
    n0 = draw(st.integers(2, 20))
    rows = draw(
        st.lists(
            st.lists(coordinate, min_size=dim, max_size=dim),
            min_size=n0,
            max_size=n0,
        )
    )
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("insert"),
                    st.lists(coordinate, min_size=dim, max_size=dim),
                ),
                st.tuples(st.just("delete"), st.integers(0, 10_000)),
            ),
            min_size=1,
            max_size=25,
        )
    )
    eps = draw(st.sampled_from([0.05, 0.125, 0.25, 0.5, 1.0]))
    g = draw(st.sampled_from([0, 1, 3, 10]))
    index = draw(st.sampled_from(["rtree", "rstar", "mtree"]))
    return np.asarray(rows, dtype=float), eps, g, index, ops


def run_churn(maintained, ops):
    """Apply ops, checking equivalence after every single step."""
    for kind, payload in ops:
        if kind == "insert":
            maintained.insert(payload)
        else:
            live = maintained.live_ids()
            if not live:
                assert not maintained.delete(payload)
                continue
            maintained.delete(live[payload % len(live)])
        assert_equivalent(maintained)


@settings(max_examples=40, deadline=None)
@given(case=churn_cases())
def test_interleaved_updates_stay_expansion_equivalent(case):
    pts, eps, g, index, ops = case
    maintained = maintained_join(pts, eps, g=g, index=index, max_entries=4)
    assert_equivalent(maintained)
    run_churn(maintained, ops)


@settings(max_examples=15, deadline=None)
@given(case=churn_cases())
def test_interleavings_match_from_scratch_join(case):
    """End state equals a from-scratch CSJ over the surviving points."""
    pts, eps, g, index, ops = case
    maintained = maintained_join(pts, eps, g=g, index=index, max_entries=4)
    run_churn(maintained, ops)
    live = maintained.live_ids()
    if len(live) < 2:
        return
    sub = maintained.tree.points[np.asarray(live, dtype=np.intp)]
    scratch = similarity_join(sub, eps, algorithm="csj", g=g)
    scratch_links = set()
    for i, j in scratch.links:
        scratch_links.add(tuple(sorted((live[i], live[j]))))
    for ids in scratch.groups:
        ids = sorted(live[i] for i in ids)
        for a in range(len(ids)):
            for b in range(a + 1, len(ids)):
                scratch_links.add((ids[a], ids[b]))
    assert maintained.expanded_links() == scratch_links


def test_churn_under_every_metric(rng, metric):
    pts = rng.random((60, 2))
    maintained = maintained_join(pts, eps=0.15, metric=metric)
    for step in range(40):
        if step % 3 == 0:
            live = maintained.live_ids()
            maintained.delete(live[step % len(live)])
        else:
            maintained.insert(rng.random(2))
    assert_equivalent(maintained)
