"""Unit tests for the compact joins N-CSJ and CSJ(g) (repro.core.csj).

The key properties are the paper's Theorems 1 and 2: for any tree, metric
and query range, the expanded compact output equals the brute-force link
set — no link missing (completeness), no extra link implied (correctness).
"""

import numpy as np
import pytest

from repro.core.csj import csj, ncsj
from repro.core.results import CountingSink
from repro.core.ssj import ssj
from repro.core.verify import check_equivalence
from repro.index.bulk import bulk_load
from repro.index.mtree import MTree
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree


class TestTheorems:
    """Completeness + correctness across configurations."""

    @pytest.mark.parametrize("eps", [0.01, 0.05, 0.2, 0.7])
    def test_csj_lossless_uniform(self, uniform_2d, eps):
        tree = bulk_load(uniform_2d, max_entries=16)
        result = csj(tree, eps, g=10)
        check_equivalence(uniform_2d, eps, result).raise_if_failed()

    @pytest.mark.parametrize("eps", [0.01, 0.05, 0.2])
    def test_ncsj_lossless_clustered(self, clustered_2d, eps):
        tree = bulk_load(clustered_2d, max_entries=16)
        result = ncsj(tree, eps)
        check_equivalence(clustered_2d, eps, result).raise_if_failed()

    @pytest.mark.parametrize("g", [0, 1, 2, 5, 10, 100])
    def test_all_window_sizes_lossless(self, clustered_2d, g):
        tree = bulk_load(clustered_2d, max_entries=16)
        result = csj(tree, 0.05, g=g)
        check_equivalence(clustered_2d, 0.05, result).raise_if_failed()

    @pytest.mark.parametrize("tree_cls", [RTree, RStarTree, MTree])
    def test_index_independent(self, clustered_2d, tree_cls):
        tree = tree_cls(clustered_2d, max_entries=16)
        result = csj(tree, 0.05, g=10)
        check_equivalence(clustered_2d, 0.05, result).raise_if_failed()

    def test_metric_parameterised(self, clustered_2d, metric):
        tree = bulk_load(clustered_2d, metric=metric, max_entries=16)
        result = csj(tree, 0.06, g=10)
        check_equivalence(clustered_2d, 0.06, result, metric=metric).raise_if_failed()

    def test_three_dimensional(self, uniform_3d):
        tree = bulk_load(uniform_3d, max_entries=16)
        result = csj(tree, 0.2, g=10)
        check_equivalence(uniform_3d, 0.2, result).raise_if_failed()

    def test_exact_distances_grid(self):
        """Integer lattice: many distances equal eps exactly; strictness
        must agree with brute force everywhere."""
        side = 8
        xs, ys = np.meshgrid(np.arange(side), np.arange(side))
        pts = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(float)
        tree = bulk_load(pts, max_entries=8)
        for eps in (1.0, np.sqrt(2.0), 2.0, 2.5):
            result = csj(tree, eps, g=10)
            check_equivalence(pts, eps, result).raise_if_failed()


class TestCompaction:
    def test_csj_output_never_larger_than_ncsj(self, clustered_2d):
        tree = bulk_load(clustered_2d, max_entries=16)
        for eps in (0.02, 0.05, 0.1):
            bytes_ncsj = ncsj(tree, eps).output_bytes
            bytes_csj = csj(tree, eps, g=10).output_bytes
            assert bytes_csj <= bytes_ncsj

    def test_ncsj_output_never_larger_than_ssj(self, clustered_2d):
        tree = bulk_load(clustered_2d, max_entries=16)
        for eps in (0.02, 0.05, 0.1, 0.3):
            bytes_ssj = ssj(tree, eps).output_bytes
            bytes_ncsj = ncsj(tree, eps).output_bytes
            assert bytes_ncsj <= bytes_ssj

    def test_explosion_controlled(self, clustered_2d):
        """On clustered data the compact output is much smaller."""
        tree = bulk_load(clustered_2d, max_entries=16)
        eps = 0.08
        bytes_ssj = ssj(tree, eps).output_bytes
        bytes_csj = csj(tree, eps, g=10).output_bytes
        assert bytes_csj < bytes_ssj / 3

    def test_early_stop_fires_at_large_range(self, clustered_2d):
        tree = bulk_load(clustered_2d, max_entries=16)
        result = csj(tree, 0.5, g=10)
        assert result.stats.early_stops > 0

    def test_no_early_stop_at_tiny_range(self, uniform_2d):
        tree = bulk_load(uniform_2d, max_entries=16)
        result = csj(tree, 1e-6, g=10)
        assert result.stats.early_stops == 0
        assert result.output_bytes == 0

    def test_whole_dataset_one_group(self):
        """Range beyond the data diameter: a single root group."""
        rng = np.random.default_rng(0)
        pts = rng.random((100, 2)) * 0.1
        tree = bulk_load(pts, max_entries=16)
        result = csj(tree, 1.0, g=10)
        assert result.stats.groups_emitted == 1
        assert result.groups[0] == tuple(range(100))
        # One early stop at the root, no distance computations at all.
        assert result.stats.distance_computations == 0

    def test_groups_satisfy_range_internally(self, clustered_2d):
        """Every emitted group's pairwise distances are < eps (Thm 2
        checked directly on the point level)."""
        tree = bulk_load(clustered_2d, max_entries=16)
        eps = 0.05
        result = csj(tree, eps, g=10)
        for ids in result.groups:
            pts = clustered_2d[list(ids)]
            dists = np.linalg.norm(pts[:, None] - pts[None, :], axis=-1)
            assert dists.max() < eps


class TestLabelsAndStats:
    def test_labels(self, uniform_2d):
        tree = bulk_load(uniform_2d, max_entries=16)
        assert csj(tree, 0.05, g=10).algorithm == "csj(10)"
        assert csj(tree, 0.05, g=0).algorithm == "ncsj"
        assert ncsj(tree, 0.05).algorithm == "ncsj"

    def test_g_recorded(self, uniform_2d):
        tree = bulk_load(uniform_2d, max_entries=16)
        assert csj(tree, 0.05, g=7).g == 7

    def test_merge_stats_only_for_positive_g(self, clustered_2d):
        tree = bulk_load(clustered_2d, max_entries=16)
        assert ncsj(tree, 0.05).stats.merge_attempts == 0
        assert csj(tree, 0.05, g=10).stats.merge_attempts > 0

    def test_validation(self, uniform_2d):
        tree = bulk_load(uniform_2d)
        with pytest.raises(ValueError):
            csj(tree, -1.0)
        with pytest.raises(ValueError):
            csj(tree, 0.1, g=-1)

    def test_empty_and_single(self):
        assert csj(RTree(np.empty((0, 2))), 0.1).groups == []
        assert csj(RTree(np.array([[0.0, 0.0]])), 0.1).groups == []

    def test_counting_sink(self, clustered_2d):
        tree = bulk_load(clustered_2d, max_entries=16)
        collected = csj(tree, 0.05, g=10)
        counted = csj(tree, 0.05, g=10, sink=CountingSink(id_width=3))
        assert counted.stats.bytes_written == collected.stats.bytes_written
        assert counted.groups == []

    def test_deterministic(self, clustered_2d):
        tree = bulk_load(clustered_2d, max_entries=16)
        a = csj(tree, 0.05, g=10)
        b = csj(tree, 0.05, g=10)
        assert a.groups == b.groups and a.links == b.links


class TestDynamicTrees:
    """The joins must work on insertion-built (non-packed) trees too."""

    @pytest.mark.parametrize("tree_cls", [RTree, RStarTree])
    def test_dynamic_lossless(self, clustered_2d, tree_cls):
        tree = tree_cls(clustered_2d[:300], max_entries=8)
        result = csj(tree, 0.05, g=10)
        check_equivalence(clustered_2d[:300], 0.05, result).raise_if_failed()

    def test_after_deletions(self, clustered_2d):
        """Join on a tree that has seen deletions: deleted points must not
        appear in any output."""
        tree = RTree(clustered_2d[:200], max_entries=8)
        for pid in range(0, 200, 4):
            tree.delete(pid)
        result = csj(tree, 0.05, g=10)
        deleted = set(range(0, 200, 4))
        for i, j in result.expanded_links():
            assert i not in deleted and j not in deleted
