"""Unit tests for the equivalence verifier (repro.core.verify)."""

import numpy as np
import pytest

from repro.core.results import JoinResult
from repro.core.verify import check_equivalence, expand_result


@pytest.fixture
def three_points():
    # 0 and 1 are close; 2 is far away.
    return np.array([[0.0, 0.0], [0.05, 0.0], [0.9, 0.9]])


class TestCheckEquivalence:
    def test_ok(self, three_points):
        result = JoinResult(eps=0.1, algorithm="x", links=[(0, 1)])
        report = check_equivalence(three_points, 0.1, result)
        assert report.ok
        assert report.expected == report.implied == 1
        report.raise_if_failed()  # no exception

    def test_missing_detected(self, three_points):
        result = JoinResult(eps=0.1, algorithm="x", links=[])
        report = check_equivalence(three_points, 0.1, result)
        assert not report.ok
        assert report.missing == {(0, 1)}
        with pytest.raises(AssertionError, match="missing"):
            report.raise_if_failed()

    def test_extra_detected(self, three_points):
        result = JoinResult(eps=0.1, algorithm="x", links=[(0, 1), (0, 2)])
        report = check_equivalence(three_points, 0.1, result)
        assert report.extra == {(0, 2)}
        with pytest.raises(AssertionError, match="extra"):
            report.raise_if_failed()

    def test_group_expansion_used(self, three_points):
        result = JoinResult(eps=0.1, algorithm="x", groups=[(0, 1)])
        assert check_equivalence(three_points, 0.1, result).ok

    def test_precomputed_ground_truth(self, three_points):
        result = JoinResult(eps=0.1, algorithm="x", links=[(0, 1)])
        report = check_equivalence(
            three_points, 0.1, result, ground_truth={(0, 1)}
        )
        assert report.ok

    def test_repr(self, three_points):
        result = JoinResult(eps=0.1, algorithm="x", links=[(0, 1)])
        assert "OK" in repr(check_equivalence(three_points, 0.1, result))
        bad = JoinResult(eps=0.1, algorithm="x")
        assert "FAILED" in repr(check_equivalence(three_points, 0.1, bad))


class TestExpandResult:
    def test_matches_method(self):
        result = JoinResult(
            eps=0.1, algorithm="x", links=[(1, 0)], groups=[(2, 3, 4)]
        )
        assert expand_result(result) == result.expanded_links()
        assert (0, 1) in expand_result(result)
