"""Chaos testing of the worker pool: crashes are recoverable, exactly.

The CI parallel-chaos matrix re-runs this module under several
``REPRO_CHAOS_SEED`` / ``REPRO_CHAOS_WORKERS`` combinations; locally the
defaults (seed 0, 2 workers) apply.  Every scenario ends in the same
assertion: the recovered output is byte-identical to the uninterrupted
serial run — worker SIGKILLs, whole-pool loss, and resume at a
*different* worker count included.
"""

import filecmp
import os

import numpy as np
import pytest

from repro.api import similarity_join
from repro.core.results import TextSink
from repro.core.verify import brute_force_links
from repro.errors import BudgetExceededError
from repro.io.writer import width_for
from repro.parallel import parallel_join
from repro.resilience.budget import Budget
from repro.resilience.chaos import FlakyWorker
from repro.resilience.checkpoint import CheckpointedJoin

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
CHAOS_WORKERS = int(os.environ.get("REPRO_CHAOS_WORKERS", "2"))


@pytest.fixture(scope="module")
def pts():
    return np.random.default_rng(17).random((250, 2))


def _serial_file(pts, eps, algo, path, g=10):
    sink = TextSink(str(path), id_width=width_for(len(pts)))
    result = similarity_join(pts, eps, algorithm=algo, g=g, sink=sink)
    sink.close()
    return result


class TestWorkerKillRecovery:
    @pytest.mark.parametrize("algo", ["csj", "pbsm-csj"])
    def test_seeded_random_kills_recover_byte_identically(self, pts, algo,
                                                          tmp_path):
        serial = tmp_path / "serial.txt"
        _serial_file(pts, 0.06, algo, serial)
        # Kill decisions are keyed on (seed, task_id), so a re-dispatched
        # task misbehaves identically; the budget of 2 kills stays below
        # the quarantine threshold (3 failures), so the run must finish.
        fault = FlakyWorker(kill_rate=0.5, seed=CHAOS_SEED, max_failures=2)
        par = tmp_path / "par.txt"
        sink = TextSink(str(par), id_width=width_for(len(pts)))
        result = parallel_join(
            pts, 0.06, algorithm=algo, g=10, workers=CHAOS_WORKERS,
            sink=sink, fault=fault,
        )
        sink.close()
        assert filecmp.cmp(str(serial), str(par), shallow=False)
        assert result.expanded_links() == brute_force_links(pts, 0.06)

    def test_checkpointed_parallel_run_survives_worker_kill(self, pts,
                                                            tmp_path):
        serial = tmp_path / "serial.txt"
        _serial_file(pts, 0.06, "csj", serial)
        ck = tmp_path / "ck.txt"
        fault = FlakyWorker(kill_at=(1,), max_failures=1)
        job = CheckpointedJoin(
            pts, 0.06, str(ck), algorithm="csj", g=10, cadence=7,
            workers=CHAOS_WORKERS, fault=fault,
        )
        job.run()
        assert filecmp.cmp(str(serial), str(ck), shallow=False)


class TestCrashEquivalentPoolRecovery:
    """Kill the whole pool (via a budget breach, which leaves exactly the
    state a SIGKILL of the supervisor leaves: a journal prefix), then
    resume with a different worker count."""

    @pytest.mark.parametrize("algo", ["csj", "pbsm-csj"])
    def test_resume_at_different_worker_count(self, pts, algo, tmp_path):
        serial = tmp_path / "serial.txt"
        _serial_file(pts, 0.06, algo, serial)
        ck = tmp_path / "ck.txt"
        job = CheckpointedJoin(
            pts, 0.06, str(ck), algorithm=algo, g=10, cadence=3, workers=4,
            budget=Budget(max_output_bytes=400, check_every=1),
        )
        with pytest.raises(BudgetExceededError):
            job.run()
        resumed = CheckpointedJoin(
            pts, 0.06, str(ck), algorithm=algo, g=10, cadence=3, workers=2,
        ).run(resume=True)
        assert filecmp.cmp(str(serial), str(ck), shallow=False)
        assert resumed.expanded_links() == brute_force_links(pts, 0.06)

    def test_parallel_breach_resumed_serially(self, pts, tmp_path):
        serial = tmp_path / "serial.txt"
        _serial_file(pts, 0.06, "csj", serial)
        ck = tmp_path / "ck.txt"
        with pytest.raises(BudgetExceededError):
            CheckpointedJoin(
                pts, 0.06, str(ck), algorithm="csj", g=10, cadence=3,
                workers=4, budget=Budget(max_output_bytes=400, check_every=1),
            ).run()
        CheckpointedJoin(
            pts, 0.06, str(ck), algorithm="csj", g=10, cadence=3,
        ).run(resume=True)
        assert filecmp.cmp(str(serial), str(ck), shallow=False)


class TestFingerprintStability:
    def test_fingerprint_excludes_execution_knobs(self, pts, tmp_path):
        """Worker count, task timeout and fault injection are execution
        details — a journal written at one pool size must be accepted at
        any other, so none of them may enter the fingerprint."""
        base = CheckpointedJoin(pts, 0.06, str(tmp_path / "a.txt"),
                                algorithm="csj", g=10)
        tuned = CheckpointedJoin(
            pts, 0.06, str(tmp_path / "b.txt"), algorithm="csj", g=10,
            workers=4, task_timeout=2.5,
            fault=FlakyWorker(kill_at=(0,), max_failures=1),
        )
        assert base.fingerprint() == tuned.fingerprint()

    def test_fingerprint_still_guards_the_join_itself(self, pts, tmp_path):
        a = CheckpointedJoin(pts, 0.06, str(tmp_path / "a.txt"),
                             algorithm="csj", g=10)
        b = CheckpointedJoin(pts, 0.07, str(tmp_path / "b.txt"),
                             algorithm="csj", g=10)
        c = CheckpointedJoin(pts, 0.06, str(tmp_path / "c.txt"),
                             algorithm="csj", g=5)
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() != c.fingerprint()
