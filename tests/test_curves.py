"""Unit tests for repro.geometry.curves (Hilbert and Morton orders)."""

import numpy as np
import pytest

from repro.geometry.curves import (
    hilbert_index,
    hilbert_sort,
    morton_index,
    morton_sort,
    quantize,
)


class TestQuantize:
    def test_range(self, rng):
        grid = quantize(rng.random((100, 2)), bits=8)
        assert grid.min() >= 0
        assert grid.max() <= 255

    def test_corners_map_to_extremes(self):
        grid = quantize(np.array([[0.0, 0.0], [1.0, 1.0]]), bits=4)
        assert grid[0].tolist() == [0, 0]
        assert grid[1].tolist() == [15, 15]

    def test_degenerate_axis(self):
        grid = quantize(np.array([[0.0, 5.0], [1.0, 5.0]]), bits=4)
        assert grid[:, 1].tolist() == [0, 0]

    def test_bits_bounds(self):
        with pytest.raises(ValueError):
            quantize(np.zeros((2, 2)), bits=0)
        with pytest.raises(ValueError):
            quantize(np.zeros((2, 2)), bits=32)


class TestMorton:
    def test_2d_order_of_unit_square_corners(self):
        # With 1 bit per axis, Z-order visits (0,0) (0,1) (1,0) (1,1).
        coords = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.uint64)
        keys = morton_index(coords, bits=1)
        assert keys.tolist() == [0, 1, 2, 3]

    def test_keys_unique_for_distinct_cells(self, rng):
        coords = rng.integers(0, 1 << 10, size=(200, 2)).astype(np.uint64)
        keys = morton_index(coords, bits=10)
        distinct = {tuple(c) for c in coords.tolist()}
        assert len(set(keys.tolist())) == len(distinct)

    def test_key_width_guard(self):
        with pytest.raises(ValueError):
            morton_index(np.zeros((1, 4), dtype=np.uint64), bits=16)


class TestHilbert:
    def test_first_order_curve_2d(self):
        # The order-1 Hilbert curve visits (0,0) (0,1) (1,1) (1,0).
        coords = np.array([[0, 0], [0, 1], [1, 1], [1, 0]], dtype=np.uint64)
        keys = hilbert_index(coords, bits=1)
        assert sorted(keys.tolist()) == [0, 1, 2, 3]
        assert keys.tolist() == [0, 1, 2, 3]

    def test_bijective_on_grid(self):
        side = 8
        xs, ys = np.meshgrid(np.arange(side), np.arange(side))
        coords = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(np.uint64)
        keys = hilbert_index(coords, bits=3)
        assert sorted(keys.tolist()) == list(range(side * side))

    def test_adjacency(self):
        """Consecutive Hilbert keys differ by one grid step (the defining
        locality property; Morton does not have it)."""
        side = 16
        xs, ys = np.meshgrid(np.arange(side), np.arange(side))
        coords = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(np.uint64)
        keys = hilbert_index(coords, bits=4)
        by_key = coords[np.argsort(keys)]
        steps = np.abs(np.diff(by_key.astype(int), axis=0)).sum(axis=1)
        assert (steps == 1).all()

    def test_3d_bijective(self):
        side = 4
        grid = np.stack(
            np.meshgrid(*[np.arange(side)] * 3, indexing="ij"), axis=-1
        ).reshape(-1, 3).astype(np.uint64)
        keys = hilbert_index(grid, bits=2)
        assert sorted(keys.tolist()) == list(range(side**3))

    def test_key_width_guard(self):
        with pytest.raises(ValueError):
            hilbert_index(np.zeros((1, 4), dtype=np.uint64), bits=16)


class TestSorts:
    def test_hilbert_sort_is_permutation(self, rng):
        pts = rng.random((300, 2))
        order = hilbert_sort(pts)
        assert sorted(order.tolist()) == list(range(300))

    def test_morton_sort_is_permutation(self, rng):
        pts = rng.random((300, 3))
        order = morton_sort(pts)
        assert sorted(order.tolist()) == list(range(300))

    def test_hilbert_sort_locality(self, rng):
        """Average hop distance along the Hilbert order is much smaller
        than between random consecutive points."""
        pts = rng.random((1000, 2))
        order = hilbert_sort(pts, bits=10)
        sorted_pts = pts[order]
        hop = np.linalg.norm(np.diff(sorted_pts, axis=0), axis=1).mean()
        random_hop = np.linalg.norm(np.diff(pts, axis=0), axis=1).mean()
        assert hop < random_hop / 3
