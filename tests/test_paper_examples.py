"""Tests reproducing the paper's worked examples.

* Figure 1: seven points, eight links, compact output of three lines and
  a 50% space saving;
* Figure 2: the integers 1..5 with eps = 3 — nine links compressed to
  three groups (50% saving; optima are non-unique);
* Section V-B: the 1..10 line with eps = 7, illustrating that sorted
  insertion order yields three overlapping size-8 groups.
"""

import numpy as np
import pytest

from repro.core.csj import csj
from repro.core.groups import GroupBuffer
from repro.core.results import CollectSink
from repro.core.ssj import ssj
from repro.core.verify import check_equivalence
from repro.datasets.synthetic import line_points
from repro.index.bulk import bulk_load
from repro.index.rtree import RTree


class TestFigure1:
    """A dense 4-clique, a bridging pair, and an isolated pair."""

    @pytest.fixture
    def points(self):
        return np.array(
            [
                [0.10, 0.12],  # paper's point 1
                [0.13, 0.10],  # 2
                [0.11, 0.15],  # 3
                [0.14, 0.14],  # 4
                [0.18, 0.16],  # 5
                [0.60, 0.60],  # 6
                [0.63, 0.62],  # 7
            ]
        )

    EPS = 0.07

    def test_standard_join_has_eight_links(self, points):
        tree = RTree(points, max_entries=4)
        result = ssj(tree, self.EPS)
        assert len(result.links) == 8
        assert set(result.links) == {
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4), (5, 6),
        }

    def test_compact_join_reports_three_lines(self, points):
        tree = RTree(points, max_entries=4)
        result = csj(tree, self.EPS, g=10)
        lines = result.stats.groups_emitted + result.stats.links_emitted
        assert lines == 3
        assert (0, 1, 2, 3) in result.groups  # the paper's {1,2,3,4}

    def test_fifty_percent_space_saving(self, points):
        tree = RTree(points, max_entries=4)
        standard = ssj(tree, self.EPS)
        compact = csj(tree, self.EPS, g=10)
        saving = 1 - compact.output_bytes / standard.output_bytes
        assert saving == pytest.approx(0.5, abs=0.05)

    def test_lossless(self, points):
        tree = RTree(points, max_entries=4)
        result = csj(tree, self.EPS, g=10)
        check_equivalence(points, self.EPS, result).raise_if_failed()


class TestFigure2:
    """Integers 1..5 on the line: 9 links -> ~3 output lines.

    The paper's example includes pairs at distance exactly 3 (|1 - 4| = 3
    qualifies), i.e. it reads the range inclusively there, while its
    pseudo-code — and this library — use strict ``<``.  Any eps in (3, 4)
    realises the example's link set under strict semantics; we use 3.5.
    """

    EPS = 3.5

    @pytest.fixture
    def points(self):
        return line_points(5)[:, :2] + 1.0  # values 1..5 on the first axis

    def test_standard_join_has_nine_links(self, points):
        tree = RTree(points, max_entries=2)
        assert len(ssj(tree, self.EPS).links) == 9

    def test_compact_output_halves(self, points):
        tree = RTree(points, max_entries=2)
        standard = ssj(tree, self.EPS)
        compact = csj(tree, self.EPS, g=10)
        lines = compact.stats.groups_emitted + compact.stats.links_emitted
        # The paper's optima have 3 lines; the greedy algorithm is allowed
        # a near-optimal result, and must always beat the standard join.
        assert lines <= 5
        assert compact.output_bytes < standard.output_bytes
        check_equivalence(points, self.EPS, compact).raise_if_failed()

    def test_groups_mutually_satisfy_range(self, points):
        tree = RTree(points, max_entries=2)
        for ids in csj(tree, self.EPS, g=10).groups:
            values = points[list(ids), 0]
            assert values.max() - values.min() < self.EPS


class TestSectionVBOrdering:
    """10 points on a line, eps = 7, inserted in sorted link order."""

    def test_sorted_insertion_gives_three_overlapping_groups(self):
        # Reproduce the paper's trace exactly: links added in sorted order
        # 1-2, 1-3, ..., 1-8, (1-9 fails), 2-9, ... through 9-10.
        points = {i: [float(i), 0.0] for i in range(1, 11)}
        sink = CollectSink(id_width=2)
        buffer = GroupBuffer(g=10, eps=7.0, sink=sink, dim=2)
        for i in range(1, 11):
            for j in range(i + 1, 11):
                if j - i < 7:
                    buffer.add_link(i, j, points[i], points[j])
        buffer.flush()
        groups = [g for g in sink.groups]
        assert groups == [
            (1, 2, 3, 4, 5, 6, 7),
            (2, 3, 4, 5, 6, 7, 8),
            (3, 4, 5, 6, 7, 8, 9),
            (4, 5, 6, 7, 8, 9, 10),
        ]

    def test_implied_links_match_brute_force(self):
        pts = line_points(10) + 1.0
        tree = bulk_load(pts, max_entries=4)
        result = csj(tree, 7.0, g=10)
        check_equivalence(pts, 7.0, result).raise_if_failed()
