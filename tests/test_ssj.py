"""Unit tests for the standard similarity join (repro.core.ssj)."""

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_links
from repro.core.results import CountingSink
from repro.core.ssj import ssj
from repro.index.bulk import bulk_load
from repro.index.mtree import MTree
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree
from repro.io.pagesim import NodePager, PageCache


class TestCorrectness:
    @pytest.mark.parametrize("eps", [0.01, 0.05, 0.2])
    def test_matches_brute_force_uniform(self, uniform_2d, eps):
        tree = bulk_load(uniform_2d, max_entries=16)
        result = ssj(tree, eps)
        assert set(result.links) == brute_force_links(uniform_2d, eps)

    def test_matches_brute_force_clustered(self, clustered_2d):
        tree = bulk_load(clustered_2d, max_entries=16)
        result = ssj(tree, 0.05)
        assert set(result.links) == brute_force_links(clustered_2d, 0.05)

    def test_three_dimensional(self, uniform_3d):
        tree = bulk_load(uniform_3d, max_entries=16)
        result = ssj(tree, 0.15)
        assert set(result.links) == brute_force_links(uniform_3d, 0.15)

    @pytest.mark.parametrize("tree_cls", [RTree, RStarTree, MTree])
    def test_index_independent(self, clustered_2d, tree_cls):
        tree = tree_cls(clustered_2d, max_entries=16)
        result = ssj(tree, 0.05)
        assert set(result.links) == brute_force_links(clustered_2d, 0.05)

    def test_metric_parameterised(self, uniform_2d, metric):
        tree = bulk_load(uniform_2d, metric=metric, max_entries=16)
        result = ssj(tree, 0.1)
        assert set(result.links) == brute_force_links(uniform_2d, 0.1, metric)

    def test_no_duplicate_links(self, clustered_2d):
        tree = bulk_load(clustered_2d, max_entries=8)
        result = ssj(tree, 0.08)
        assert len(result.links) == len(set(result.links))

    def test_strict_range(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 0.0]])
        tree = RTree(pts, max_entries=4)
        result = ssj(tree, 0.5)
        assert set(result.links) == set()  # both gaps are exactly 0.5
        result = ssj(tree, 0.5 + 1e-9)
        assert set(result.links) == {(0, 2), (1, 2)}


class TestEdgeCases:
    def test_empty_tree(self):
        result = ssj(RTree(np.empty((0, 2))), 0.1)
        assert result.links == []

    def test_single_point(self):
        result = ssj(RTree(np.array([[0.1, 0.1]])), 0.1)
        assert result.links == []

    def test_two_identical_points(self):
        result = ssj(RTree(np.array([[0.5, 0.5], [0.5, 0.5]])), 0.01)
        assert result.links == [(0, 1)]

    def test_eps_validation(self, uniform_2d):
        tree = bulk_load(uniform_2d)
        with pytest.raises(ValueError):
            ssj(tree, 0.0)


class TestInstrumentation:
    def test_stats_populated(self, clustered_2d):
        tree = bulk_load(clustered_2d, max_entries=16)
        result = ssj(tree, 0.05)
        stats = result.stats
        assert stats.links_emitted == len(result.links)
        assert stats.distance_computations > 0
        assert stats.nodes_visited >= tree.leaf_count()
        assert stats.compute_time > 0.0
        # width_for(600) = 3 digits -> a link line costs 2 * (3 + 1) bytes.
        assert stats.bytes_written == len(result.links) * 8

    def test_algorithm_label(self, uniform_2d):
        tree = bulk_load(uniform_2d)
        assert ssj(tree, 0.05).algorithm == "ssj"

    def test_counting_sink_only_counts(self, uniform_2d):
        tree = bulk_load(uniform_2d, max_entries=16)
        collected = ssj(tree, 0.1)
        counted = ssj(tree, 0.1, sink=CountingSink(id_width=3))
        assert counted.links == []
        assert counted.stats.links_emitted == len(collected.links)

    def test_pruning_reduces_distance_computations(self, uniform_2d):
        tree = bulk_load(uniform_2d, max_entries=16)
        n = len(uniform_2d)
        result = ssj(tree, 0.02)
        assert result.stats.distance_computations < n * (n - 1) // 2

    def test_pager_counts_accesses(self, uniform_2d):
        tree = bulk_load(uniform_2d, max_entries=16)
        pager = NodePager(tree, PageCache(64))
        result = ssj(tree, 0.05, pager=pager)
        assert result.stats.page_reads + result.stats.cache_hits > 0

    def test_output_order_is_deterministic(self, uniform_2d):
        tree = bulk_load(uniform_2d, max_entries=16)
        a = ssj(tree, 0.05).links
        b = ssj(tree, 0.05).links
        assert a == b
