"""End-to-end integration tests across modules.

These exercise the realistic pipelines a downstream user would run:
generate a paper-like dataset, build an index, join, write the output
file, read it back, expand it, and mine it — asserting consistency at
every seam.
"""

import os

import numpy as np
import pytest

from repro import (
    CollectSink,
    TextSink,
    brute_force_links,
    build_index,
    check_equivalence,
    csj,
    find_outliers,
    ncsj,
    similarity_join,
    ssj,
)
from repro.datasets import mg_county, pacific_nw, sierpinski_pyramid
from repro.io.writer import read_output, width_for


class TestFilePipeline:
    def test_write_read_expand_round_trip(self, tmp_path, clustered_2d):
        """Compact output written to disk re-reads to the same link set."""
        eps = 0.05
        path = str(tmp_path / "compact.txt")
        width = width_for(len(clustered_2d))
        tree = build_index(clustered_2d)
        with TextSink(path, id_width=width) as sink:
            csj(tree, eps, g=10, sink=sink)
        links, groups, _ = read_output(path)

        expanded = set()
        for i, j in links:
            expanded.add((min(i, j), max(i, j)))
        for ids in groups:
            for a in range(len(ids)):
                for b in range(a + 1, len(ids)):
                    expanded.add((min(ids[a], ids[b]), max(ids[a], ids[b])))
        assert expanded == brute_force_links(clustered_2d, eps)

    def test_file_size_is_the_space_metric(self, tmp_path, clustered_2d):
        eps = 0.05
        width = width_for(len(clustered_2d))
        tree = build_index(clustered_2d)
        sizes = {}
        for name, runner in (("ssj", ssj), ("ncsj", ncsj)):
            path = str(tmp_path / f"{name}.txt")
            with TextSink(path, id_width=width) as sink:
                result = runner(tree, eps, sink=sink)
            assert os.path.getsize(path) == result.output_bytes
            sizes[name] = os.path.getsize(path)
        assert sizes["ncsj"] <= sizes["ssj"]


class TestPaperDatasetsPipelines:
    def test_mg_county_small(self):
        pts = mg_county(2000, seed=0)
        result = similarity_join(pts, 0.02, algorithm="csj")
        check_equivalence(pts, 0.02, result).raise_if_failed()

    def test_sierpinski_small(self):
        pts = sierpinski_pyramid(1500, seed=0)
        result = similarity_join(pts, 0.125, algorithm="csj")
        check_equivalence(pts, 0.125, result).raise_if_failed()

    def test_pacific_nw_small(self):
        pts = pacific_nw(2000, seed=0)
        result = similarity_join(pts, 0.02, algorithm="csj")
        check_equivalence(pts, 0.02, result).raise_if_failed()


class TestNVOStorageScenario:
    """The paper's motivating NVO scenario: store a compact result, serve
    link queries from it later without recomputation."""

    def test_stored_result_serves_membership_queries(self, tmp_path, clustered_2d):
        eps = 0.05
        path = str(tmp_path / "stored.txt")
        tree = build_index(clustered_2d)
        with TextSink(path, id_width=width_for(len(clustered_2d))) as sink:
            csj(tree, eps, g=10, sink=sink)

        # Later session: answer "are i and j within eps?" from the file.
        links, groups, _ = read_output(path)
        membership = {}
        for g_idx, ids in enumerate(groups):
            for i in ids:
                membership.setdefault(i, set()).add(g_idx)
        link_set = {(min(i, j), max(i, j)) for i, j in links}

        def connected(i, j):
            if (min(i, j), max(i, j)) in link_set:
                return True
            return bool(membership.get(i, set()) & membership.get(j, set()))

        truth = brute_force_links(clustered_2d, eps)
        rng = np.random.default_rng(0)
        for _ in range(300):
            i, j = rng.integers(0, len(clustered_2d), 2)
            if i == j:
                continue
            assert connected(i, j) == ((min(i, j), max(i, j)) in truth)


class TestOutlierScenario:
    def test_outliers_found_without_expansion(self, rng):
        centers = rng.random((3, 2)) * 0.6 + 0.2
        dense = centers[rng.integers(0, 3, 500)] + rng.normal(scale=0.008, size=(500, 2))
        lonely = np.array([[0.02, 0.02], [0.98, 0.98]])
        pts = np.vstack([dense, lonely])
        result = similarity_join(pts, 0.04, algorithm="csj")
        outliers = set(find_outliers(result, len(pts), max_group_size=2).tolist())
        assert {500, 501} <= outliers

    def test_collect_sink_shared_stats(self, clustered_2d):
        sink = CollectSink(id_width=3)
        result = similarity_join(clustered_2d, 0.05, algorithm="csj", sink=sink)
        assert result.stats is sink.stats
        assert result.groups == sink.groups


class TestCrossAlgorithmConsistency:
    """All five algorithms must imply the identical link set."""

    @pytest.mark.parametrize("eps", [0.02, 0.06])
    def test_all_agree(self, clustered_2d, eps):
        expansions = []
        for algorithm in ("ssj", "ncsj", "csj", "egrid", "egrid-csj"):
            result = similarity_join(clustered_2d, eps, algorithm=algorithm)
            expansions.append(result.expanded_links())
        assert all(e == expansions[0] for e in expansions[1:])

    def test_all_indexes_agree(self, clustered_2d):
        expansions = []
        for index in ("rtree", "rstar", "mtree"):
            result = similarity_join(clustered_2d, 0.05, algorithm="csj", index=index)
            expansions.append(result.expanded_links())
        assert all(e == expansions[0] for e in expansions[1:])
