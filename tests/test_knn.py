"""Unit tests for k-nearest-neighbour search on the indexes."""

import numpy as np
import pytest

from repro.index.bulk import bulk_load
from repro.index.mtree import MTree
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree


def brute_knn(points, probe, k, metric):
    dists = metric.point_to_points(probe, points)
    order = np.lexsort((np.arange(len(points)), dists))
    return order[:k].tolist()


class TestNearest:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_matches_brute_force(self, uniform_2d, k):
        tree = bulk_load(uniform_2d, max_entries=16)
        probe = np.array([0.4, 0.7])
        got = tree.nearest(probe, k=k).tolist()
        assert got == brute_knn(uniform_2d, probe, k, tree.metric)

    @pytest.mark.parametrize("tree_cls", [RTree, RStarTree, MTree])
    def test_all_indexes(self, uniform_2d, tree_cls):
        tree = tree_cls(uniform_2d, max_entries=8)
        probe = np.array([0.1, 0.1])
        assert tree.nearest(probe, k=5).tolist() == brute_knn(
            uniform_2d, probe, 5, tree.metric
        )

    def test_metric_respected(self, uniform_2d):
        tree = bulk_load(uniform_2d, metric="l1", max_entries=16)
        probe = np.array([0.5, 0.5])
        assert tree.nearest(probe, k=4).tolist() == brute_knn(
            uniform_2d, probe, 4, tree.metric
        )

    def test_k_larger_than_n(self, rng):
        pts = rng.random((7, 2))
        tree = bulk_load(pts, max_entries=4)
        got = tree.nearest([0.5, 0.5], k=20)
        assert sorted(got.tolist()) == list(range(7))

    def test_probe_coincides_with_point(self, rng):
        pts = rng.random((50, 2))
        tree = bulk_load(pts, max_entries=8)
        assert tree.nearest(pts[13], k=1).tolist() == [13]

    def test_empty_tree(self):
        tree = RTree(np.empty((0, 2)))
        assert tree.nearest([0.0, 0.0], k=3).size == 0

    def test_k_validation(self, rng):
        tree = bulk_load(rng.random((10, 2)))
        with pytest.raises(ValueError):
            tree.nearest([0.0, 0.0], k=0)

    def test_tie_breaking_deterministic(self):
        # Four equidistant points around the probe.
        pts = np.array([[1.0, 0.0], [0.0, 1.0], [-1.0, 0.0], [0.0, -1.0]])
        tree = RTree(pts, max_entries=2)
        assert tree.nearest([0.0, 0.0], k=2).tolist() == [0, 1]

    def test_results_sorted_by_distance(self, uniform_3d):
        tree = bulk_load(uniform_3d, max_entries=16)
        probe = np.array([0.2, 0.2, 0.2])
        ids = tree.nearest(probe, k=8)
        dists = tree.metric.point_to_points(probe, uniform_3d[ids])
        assert (np.diff(dists) >= -1e-12).all()
