"""Unit tests for outlier mining on compact output (repro.core.outliers)."""

import numpy as np
import pytest

from repro.core.csj import csj
from repro.core.outliers import find_outliers, group_size_profile, rank_by_isolation
from repro.core.results import JoinResult
from repro.index.bulk import bulk_load


class TestGroupSizeProfile:
    def test_links_count_as_two(self):
        result = JoinResult(eps=0.1, algorithm="x", links=[(0, 1)])
        profile = group_size_profile(result, 3)
        assert profile.tolist() == [2, 2, 0]

    def test_groups_use_size(self):
        result = JoinResult(eps=0.1, algorithm="x", groups=[(0, 1, 2, 3)])
        profile = group_size_profile(result, 5)
        assert profile.tolist() == [4, 4, 4, 4, 0]

    def test_max_over_memberships(self):
        result = JoinResult(
            eps=0.1, algorithm="x", links=[(0, 4)], groups=[(0, 1, 2)]
        )
        profile = group_size_profile(result, 5)
        assert profile[0] == 3  # the group dominates the link
        assert profile[4] == 2

    def test_group_pairs(self):
        result = JoinResult(
            eps=0.1, algorithm="x", group_pairs=[((0, 1), (2, 3, 4))]
        )
        profile = group_size_profile(result, 6)
        assert profile.tolist() == [5, 5, 5, 5, 5, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            group_size_profile(JoinResult(eps=0.1, algorithm="x"), -1)


class TestFindOutliers:
    def test_isolated_and_paired(self):
        result = JoinResult(
            eps=0.1, algorithm="x", links=[(0, 1)], groups=[(2, 3, 4, 5)]
        )
        outliers = find_outliers(result, 7, max_group_size=2)
        assert outliers.tolist() == [0, 1, 6]

    def test_exclude_isolated(self):
        result = JoinResult(eps=0.1, algorithm="x", links=[(0, 1)])
        outliers = find_outliers(result, 3, max_group_size=2, include_isolated=False)
        assert outliers.tolist() == [0, 1]

    def test_end_to_end_injected_outliers(self, rng):
        """Points injected far from clusters rank as most isolated."""
        centers = rng.random((4, 2)) * 0.5 + 0.25
        cluster = centers[rng.integers(0, 4, 400)] + rng.normal(
            scale=0.01, size=(400, 2)
        )
        outlier_points = np.array([[0.0, 0.0], [0.99, 0.01], [0.01, 0.99]])
        pts = np.vstack([cluster, outlier_points])
        tree = bulk_load(pts, max_entries=16)
        result = csj(tree, 0.05, g=10)
        injected = {400, 401, 402}
        found = set(find_outliers(result, len(pts), max_group_size=2).tolist())
        assert injected <= found
        # And nothing from the cluster cores leaks in en masse.
        assert len(found) < 50


class TestRanking:
    def test_most_isolated_first(self):
        result = JoinResult(
            eps=0.1, algorithm="x", links=[(1, 2)], groups=[(3, 4, 5)]
        )
        ranked = rank_by_isolation(result, 6).tolist()
        assert ranked[0] == 0  # appears nowhere
        assert set(ranked[1:3]) == {1, 2}
        assert set(ranked[3:]) == {3, 4, 5}

    def test_stable_ties(self):
        result = JoinResult(eps=0.1, algorithm="x")
        assert rank_by_isolation(result, 4).tolist() == [0, 1, 2, 3]
