"""Shared delete-path contract across all index trees.

The base class owns tombstone bookkeeping (`SpatialIndex.delete`), slot
reuse on re-insert (`add_point`), and physical compaction (`compact`);
these tests run the same scenarios over RTree, RStarTree and MTree so
the three can never diverge again (the bug this file regresses: RTree
recorded tombstones inside its own delete while RStarTree relied on a
different path, and deleted coordinates were retained forever).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.errors import InvalidInputError
from repro.index import MTree, RStarTree, RTree

TREES = [RTree, RStarTree, MTree]
TREE_IDS = [cls.name for cls in TREES]


@pytest.fixture(params=TREES, ids=TREE_IDS)
def tree_class(request):
    return request.param


class TestUnifiedTombstones:
    def test_delete_records_tombstone(self, rng, tree_class):
        tree = tree_class(rng.random((80, 2)), max_entries=8)
        assert tree.delete(7)
        assert 7 in tree._deleted
        assert 7 in tree._free_slots
        tree.validate()

    def test_double_delete_returns_false(self, rng, tree_class):
        tree = tree_class(rng.random((40, 2)), max_entries=8)
        assert tree.delete(5)
        assert not tree.delete(5)
        assert not tree.delete(-1)
        assert not tree.delete(40)

    def test_deleted_points_leave_queries(self, rng, tree_class):
        pts = rng.random((120, 2))
        tree = tree_class(pts, max_entries=8)
        victims = [3, 60, 119]
        for pid in victims:
            assert tree.delete(pid)
        tree.validate()
        everything = set(tree.range_query(np.array([0.5, 0.5]), 10.0).tolist())
        assert everything == set(range(120)) - set(victims)

    def test_insert_resurrects_tombstone(self, rng, tree_class):
        tree = tree_class(rng.random((40, 2)), max_entries=8)
        tree.delete(11)
        tree.insert(11)
        assert 11 not in tree._deleted
        tree.validate()


class TestSlotReuse:
    def test_add_point_reuses_lowest_free_slot(self, rng, tree_class):
        tree = tree_class(rng.random((50, 2)), max_entries=8)
        for pid in (20, 4, 33):
            tree.delete(pid)
        assert tree.add_point([0.5, 0.5]) == 4
        assert tree.add_point([0.6, 0.6]) == 20
        assert tree.add_point([0.7, 0.7]) == 33
        # No free slots left: the next insert appends.
        assert tree.add_point([0.8, 0.8]) == 50
        tree.validate()
        assert np.allclose(tree.points[4], [0.5, 0.5])

    def test_add_point_skips_stale_heap_entries(self, rng, tree_class):
        tree = tree_class(rng.random((30, 2)), max_entries=8)
        tree.delete(9)
        tree.insert(9)  # resurrect directly: heap entry for 9 goes stale
        pid = tree.add_point([0.4, 0.4])
        assert pid == 30  # slot 9 is live again, not reusable
        tree.validate()

    def test_add_point_validates_input(self, rng, tree_class):
        tree = tree_class(rng.random((10, 2)), max_entries=8)
        with pytest.raises(InvalidInputError):
            tree.add_point([1.0, 2.0, 3.0])  # wrong dimensionality
        with pytest.raises(InvalidInputError):
            tree.add_point([np.nan, 0.0])
        with pytest.raises(InvalidInputError):
            tree.add_point([0.1, 0.2], pid=3)  # 3 is live, not a free slot

    def test_slot_reuse_never_mutates_caller_array(self, rng, tree_class):
        # Regression: the tree adopts the caller's array without copying;
        # reusing a tombstoned slot used to write straight into it.
        pts = rng.random((40, 2))
        original = pts.copy()
        tree = tree_class(pts, max_entries=8)
        tree.delete(12)
        assert tree.add_point([9.0, 9.0]) == 12
        assert np.array_equal(pts, original)
        assert np.allclose(tree.points[12], [9.0, 9.0])

    def test_add_point_growth_preserves_queries(self, rng, tree_class):
        pts = rng.random((20, 2))
        tree = tree_class(pts, max_entries=4)
        added = [tree.add_point(rng.random(2)) for _ in range(60)]
        assert added == list(range(20, 80))
        tree.validate()
        got = set(tree.range_query(np.array([0.5, 0.5]), 10.0).tolist())
        assert got == set(range(80))


class TestCompact:
    def test_compact_remaps_densely(self, rng, tree_class):
        pts = rng.random((60, 2))
        tree = tree_class(pts, max_entries=8)
        victims = {0, 10, 59}
        for pid in victims:
            tree.delete(pid)
        survivors_before = {
            pid: tree.points[pid].copy() for pid in range(60) if pid not in victims
        }
        mapping = tree.compact()
        assert set(mapping) == set(survivors_before)
        assert sorted(mapping.values()) == list(range(57))
        assert not tree._deleted
        assert len(tree.points) == 57
        tree.validate()
        for old, new in mapping.items():
            assert np.array_equal(tree.points[new], survivors_before[old])

    def test_need_compact_threshold(self, rng, tree_class):
        tree = tree_class(rng.random((200, 2)), max_entries=8)
        assert not tree.need_compact()
        # Below the absolute floor nothing triggers, however high the ratio.
        for pid in range(40):
            tree.delete(pid)
        assert not tree.need_compact()
        for pid in range(40, 110):
            tree.delete(pid)
        assert tree.need_compact()
        tree.compact()
        assert not tree.need_compact()


class TestBoundedChurnMemory:
    def test_churn_does_not_grow_memory(self, rng, tree_class):
        """Regression: sustained delete/insert churn must not leak.

        Before slot reuse, every re-insert appended a new row and every
        delete grew ``_deleted`` forever.  With reuse, steady-state churn
        touches a fixed set of rows; the tracemalloc high-water mark of
        the late phase must stay close to the early phase.
        """
        pts = rng.random((150, 2))
        tree = tree_class(pts, max_entries=8)

        def churn(rounds: int) -> None:
            for _ in range(rounds):
                pid = int(rng.integers(len(tree.points)))
                if tree.delete(pid):
                    tree.add_point(rng.random(2))

        churn(50)  # reach steady state
        tracemalloc.start()
        churn(100)
        early, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        churn(400)
        late, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Point array must not have grown: every insert reused a slot.
        assert len(tree.points) == 150
        assert len(tree._deleted) == 0
        # Allow slack for allocator noise, but rule out linear growth
        # (the old behaviour grew points by ~400 rows and _deleted by
        # ~400 entries here).
        assert late <= max(early * 1.5, early + 16_384)
        tree.validate()
