"""Shared fixtures for the test suite."""

from __future__ import annotations

import filecmp
import os

import numpy as np
import pytest

from repro.geometry.metrics import Chebyshev, Euclidean, Manhattan, Minkowski


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def sharded_dataset() -> np.ndarray:
    """The canonical dataset of the shard-parity battery (and the
    parallel determinism matrix — same workload, same guarantees).

    ``REPRO_SHARD_SEED`` reseeds it, which is how the CI shard-parity
    job sweeps several datasets without touching the test code.
    """
    seed = int(os.environ.get("REPRO_SHARD_SEED", "5"))
    return np.random.default_rng(seed).random((300, 2))


@pytest.fixture
def parity_check(tmp_path):
    """Callable asserting the sharded-execution contract for one config.

    ``parity_check(points, eps, cases=[(K, partitioner, workers), ...])``
    runs the ``shards=1`` baseline of the pipeline plus every requested
    case, writing each to a fixed-width text file, and asserts:

    * output files are **byte-identical** across every case;
    * the canonical output counters (links, groups, members, bytes,
      merges, pairs) are identical across every case;
    * the implied pair set equals the classic *unsharded* join's.

    Returns the baseline :class:`~repro.core.results.JoinResult`.
    """
    from repro.api import similarity_join
    from repro.core.results import TextSink
    from repro.io.writer import width_for

    counter_names = (
        "links_emitted",
        "groups_emitted",
        "group_members_emitted",
        "bytes_written",
        "merge_attempts",
        "merge_successes",
        "pairs_reported",
    )

    def check(
        points,
        eps,
        algorithm="csj",
        g=10,
        index="rstar",
        metric=None,
        cases=((2, "grid", None), (3, "hilbert", None), (8, "grid", 2)),
    ):
        kwargs = dict(algorithm=algorithm, g=g, index=index, metric=metric)
        width = width_for(len(points))

        def run_to_file(path, **extra):
            sink = TextSink(str(path), id_width=width)
            result = similarity_join(points, eps, sink=sink, **kwargs, **extra)
            sink.close()
            return result

        base_path = tmp_path / "parity-base.txt"
        base = run_to_file(base_path, shards=1)
        plain = similarity_join(points, eps, **kwargs)
        assert base.expanded_links() == plain.expanded_links(), (
            "sharded pipeline changed the implied pair set"
        )
        for case_no, (k, partitioner, workers) in enumerate(cases):
            path = tmp_path / f"parity-{case_no}.txt"
            result = run_to_file(
                path, shards=k, partitioner=partitioner, workers=workers
            )
            label = f"shards={k} partitioner={partitioner} workers={workers}"
            assert filecmp.cmp(str(base_path), str(path), shallow=False), (
                f"output bytes diverged at {label}"
            )
            for name in counter_names:
                assert getattr(result.stats, name) == getattr(base.stats, name), (
                    f"counter {name} diverged at {label}"
                )
            assert result.shard_report["shards"] == k
        return base

    return check


@pytest.fixture
def uniform_2d(rng) -> np.ndarray:
    """500 uniform points in the unit square."""
    return rng.random((500, 2))


@pytest.fixture
def uniform_3d(rng) -> np.ndarray:
    """400 uniform points in the unit cube."""
    return rng.random((400, 3))


@pytest.fixture
def clustered_2d(rng) -> np.ndarray:
    """600 points in 6 tight clusters — the output-explosion workload."""
    centers = rng.random((6, 2))
    choice = rng.integers(0, 6, size=600)
    return np.clip(centers[choice] + rng.normal(scale=0.01, size=(600, 2)), 0, 1)


ALL_METRICS = [Euclidean(), Manhattan(), Chebyshev(), Minkowski(3)]


@pytest.fixture(params=ALL_METRICS, ids=[m.name for m in ALL_METRICS])
def metric(request):
    return request.param
