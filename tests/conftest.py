"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.metrics import Chebyshev, Euclidean, Manhattan, Minkowski


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def uniform_2d(rng) -> np.ndarray:
    """500 uniform points in the unit square."""
    return rng.random((500, 2))


@pytest.fixture
def uniform_3d(rng) -> np.ndarray:
    """400 uniform points in the unit cube."""
    return rng.random((400, 3))


@pytest.fixture
def clustered_2d(rng) -> np.ndarray:
    """600 points in 6 tight clusters — the output-explosion workload."""
    centers = rng.random((6, 2))
    choice = rng.integers(0, 6, size=600)
    return np.clip(centers[choice] + rng.normal(scale=0.01, size=(600, 2)), 0, 1)


ALL_METRICS = [Euclidean(), Manhattan(), Chebyshev(), Minkowski(3)]


@pytest.fixture(params=ALL_METRICS, ids=[m.name for m in ALL_METRICS])
def metric(request):
    return request.param
