"""Unit tests for the CSJ merge window (repro.core.groups)."""

import numpy as np
import pytest

from repro.core.groups import Group, GroupBuffer
from repro.core.results import CollectSink


def make_buffer(g=3, eps=1.0, dim=None, metric=None):
    sink = CollectSink(id_width=4)
    return GroupBuffer(g, eps, sink, metric=metric, dim=dim), sink


class TestValidation:
    def test_negative_g(self):
        with pytest.raises(ValueError):
            make_buffer(g=-1)

    def test_nonpositive_eps(self):
        with pytest.raises(ValueError):
            make_buffer(eps=0.0)


class TestWindowMechanics:
    def test_eviction_writes_oldest(self):
        buffer, sink = make_buffer(g=2, eps=10.0)
        buffer.create_group([1, 2], [0, 0], [0.1, 0.1])
        buffer.create_group([3, 4], [5, 5], [5.1, 5.1])
        assert sink.groups == [] and sink.links == []
        buffer.create_group([5, 6], [9, 9], [9.1, 9.1])  # evicts the first
        assert sink.links == [(1, 2)]
        buffer.flush()
        assert sink.links == [(1, 2), (3, 4), (5, 6)]

    def test_g_zero_writes_through(self):
        buffer, sink = make_buffer(g=0, eps=10.0)
        buffer.create_group([1, 2, 3], [0, 0], [1, 1])
        assert sink.groups == [(1, 2, 3)]
        assert len(buffer) == 0

    def test_two_member_group_written_as_link(self):
        buffer, sink = make_buffer(g=0, eps=10.0)
        buffer.create_group([9, 4], [0, 0], [1, 1])
        assert sink.links == [(4, 9)]
        assert sink.groups == []

    def test_singleton_group_dropped_silently(self):
        buffer, sink = make_buffer(g=0, eps=10.0)
        buffer.create_group([7], [0, 0], [0, 0])
        assert sink.links == [] and sink.groups == []

    def test_flush_empties_window(self):
        buffer, sink = make_buffer(g=5, eps=10.0)
        buffer.create_group([1, 2], [0, 0], [1, 1])
        buffer.flush()
        assert len(buffer) == 0
        assert sink.links == [(1, 2)]


class TestMerging2D:
    def test_link_merges_into_recent_group(self):
        buffer, sink = make_buffer(g=3, eps=1.0, dim=2)
        buffer.create_group([1, 2], [0.0, 0.0], [0.1, 0.1])
        buffer.add_link(3, 4, [0.2, 0.2], [0.3, 0.3])
        buffer.flush()
        assert sink.groups == [(1, 2, 3, 4)]
        assert buffer.stats.merge_successes == 1

    def test_far_link_creates_new_group(self):
        buffer, sink = make_buffer(g=3, eps=1.0, dim=2)
        buffer.create_group([1, 2], [0.0, 0.0], [0.1, 0.1])
        buffer.add_link(3, 4, [5.0, 5.0], [5.1, 5.1])
        buffer.flush()
        assert sink.links == [(1, 2), (3, 4)]
        assert buffer.stats.merge_successes == 0
        assert buffer.stats.merge_attempts == 1

    def test_merge_is_strict(self):
        """A link whose inclusion makes the diagonal exactly eps fails."""
        buffer, sink = make_buffer(g=1, eps=1.0, dim=2)
        buffer.create_group([1, 2], [0.0, 0.0], [0.0, 0.0])
        buffer.add_link(3, 4, [1.0, 0.0], [1.0, 0.0])  # diag becomes 1.0
        buffer.flush()
        assert sink.links == [(1, 2), (3, 4)]

    def test_newest_group_scanned_first(self):
        buffer, sink = make_buffer(g=2, eps=1.0, dim=2)
        buffer.create_group([1, 2], [0.0, 0.0], [0.1, 0.1])  # older, also fits
        buffer.create_group([5, 6], [0.1, 0.1], [0.2, 0.2])  # newest
        buffer.add_link(7, 8, [0.15, 0.15], [0.2, 0.2])
        buffer.flush()
        # The link must be in the newest group, not the older one.
        assert (5, 6, 7, 8) in sink.groups
        assert sink.links == [(1, 2)]

    def test_merge_extends_group_bounds(self):
        buffer, _ = make_buffer(g=1, eps=2.0, dim=2)
        group = buffer.create_group([1, 2], [0.0, 0.0], [0.1, 0.1])
        buffer.add_link(3, 4, [0.5, 0.5], [0.6, 0.6])
        assert group.hi == [0.6, 0.6]
        assert group.lo == [0.0, 0.0]

    def test_group_invariant_preserved(self, rng):
        """After any sequence of merges, every group diagonal < eps."""
        eps = 0.3
        buffer, sink = make_buffer(g=4, eps=eps, dim=2)
        pts = rng.random((200, 2)) * 0.5
        for k in range(0, 200, 2):
            if np.linalg.norm(pts[k] - pts[k + 1]) < eps:
                buffer.add_link(k, k + 1, pts[k].tolist(), pts[k + 1].tolist())
            for group in buffer._window:
                diag = np.linalg.norm(np.array(group.hi) - np.array(group.lo))
                assert diag < eps


class TestMerging3D:
    def test_3d_fast_path(self):
        buffer, sink = make_buffer(g=2, eps=1.0, dim=3)
        buffer.create_group([1, 2], [0, 0, 0], [0.1, 0.1, 0.1])
        buffer.add_link(3, 4, [0.2, 0.2, 0.2], [0.3, 0.3, 0.3])
        buffer.flush()
        assert sink.groups == [(1, 2, 3, 4)]

    def test_3d_rejects_far_link(self):
        buffer, sink = make_buffer(g=2, eps=0.5, dim=3)
        buffer.create_group([1, 2], [0, 0, 0], [0.1, 0.1, 0.1])
        buffer.add_link(3, 4, [0.9, 0.9, 0.9], [1.0, 1.0, 1.0])
        buffer.flush()
        assert sink.links == [(1, 2), (3, 4)]


class TestGenericMetricPath:
    @pytest.mark.parametrize("metric_name", ["l1", "linf", 3])
    def test_merge_respects_metric(self, metric_name):
        from repro.geometry.metrics import get_metric

        metric = get_metric(metric_name)
        buffer, sink = make_buffer(g=2, eps=1.0, dim=2, metric=metric)
        buffer.create_group([1, 2], [0.0, 0.0], [0.2, 0.2])
        # Extending to (0.6, 0.6): spans (0.6, 0.6); L1 diag = 1.2 >= 1 but
        # Linf diag = 0.6 < 1 — the metric decides.
        buffer.add_link(3, 4, [0.5, 0.5], [0.6, 0.6])
        buffer.flush()
        if metric.name == "manhattan":
            assert sink.links == [(1, 2), (3, 4)]
        else:
            assert sink.groups == [(1, 2, 3, 4)]

    def test_generic_path_without_dim_hint(self):
        buffer, sink = make_buffer(g=2, eps=1.0, dim=None)
        buffer.create_group([1, 2], [0.0, 0.0], [0.1, 0.1])
        buffer.add_link(3, 4, [0.2, 0.2], [0.3, 0.3])
        buffer.flush()
        assert sink.groups == [(1, 2, 3, 4)]


class TestGroup:
    def test_len_and_repr(self):
        group = Group({1, 2, 3}, [0, 0], [1, 1])
        assert len(group) == 3
        assert "size=3" in repr(group)

    def test_mbr_property(self):
        group = Group({1}, [0.0, 0.0], [1.0, 2.0])
        assert group.mbr.hi.tolist() == [1.0, 2.0]
