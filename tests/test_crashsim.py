"""Crash-state enumeration and recovery verification.

Unit tests pin down the disk-state model on hand-built traces (fsync
barriers, zero-length creation artifacts, pending-rename semantics, torn
writes); the verifier tests and the hypothesis property suite then prove
the real components — checkpointed joins (serial and parallel), atomic
sinks, index persistence — recover byte-identically from *every*
enumerated post-crash disk state.
"""

import errno
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DiskFullError
from repro.resilience.chaos import FailurePlan, FlakySink
from repro.resilience.checkpoint import CheckpointedJoin
from repro.resilience.crashsim import (
    enumerate_crash_states,
    reconstruct,
    verify_atomic_sink,
    verify_checkpointed_join,
    verify_index_save,
)
from repro.resilience.sinks import RetryingSink
from repro.resilience.vfs import Op, TraceFS


def _ops(*specs):
    """Build a trace from (kind, path, kwargs) shorthand."""
    out = []
    for index, spec in enumerate(specs):
        kind, path, kwargs = spec[0], spec[1], (spec[2] if len(spec) > 2 else {})
        out.append(Op(index=index, kind=kind, path=path, **kwargs))
    return out


class TestDiskStateModel:
    def test_unsynced_creation_leaves_zero_length_artifact(self):
        ops = _ops(
            ("open", "/f", {"mode": "w"}),
            ("write", "/f", {"offset": 0, "data": b"hello"}),
        )
        # Crash after the write, durable view: the file exists but empty.
        assert reconstruct(ops, 2, "durable") == {"/f": b""}
        assert reconstruct(ops, 2, "full") == {"/f": b"hello"}
        assert any(
            s.files == {"/f": b""} for s in enumerate_crash_states(ops)
        )

    def test_fsync_is_a_durability_barrier(self):
        ops = _ops(
            ("open", "/f", {"mode": "w"}),
            ("write", "/f", {"offset": 0, "data": b"aaaa"}),
            ("fsync", "/f"),
            ("write", "/f", {"offset": 4, "data": b"bbbb"}),
        )
        assert reconstruct(ops, 4, "durable") == {"/f": b"aaaa"}  # post-barrier
        assert reconstruct(ops, 4, "full") == {"/f": b"aaaabbbb"}

    def test_torn_state_cuts_the_last_write_in_half(self):
        ops = _ops(
            ("open", "/f", {"mode": "w"}),
            ("write", "/f", {"offset": 0, "data": b"0123456789"}),
        )
        torn = [s for s in enumerate_crash_states(ops) if s.variant == "torn"]
        assert any(s.files == {"/f": b"01234"} for s in torn)

    def test_rename_pending_until_directory_fsync(self):
        base = {"/dst": b"old"}
        ops = _ops(
            ("open", "/tmp.part", {"mode": "w"}),
            ("write", "/tmp.part", {"offset": 0, "data": b"new!"}),
            ("fsync", "/tmp.part"),
            ("replace", "/tmp.part", {"dst": "/dst"}),
            ("fsync_dir", "/"),
        )
        # After the rename but before the dir fsync: the durable view may
        # still show the OLD destination and the source file.
        assert reconstruct(ops, 4, "durable", base) == {
            "/dst": b"old", "/tmp.part": b"new!",
        }
        # After the dir fsync the rename is durable; the source is gone.
        assert reconstruct(ops, 5, "durable", base) == {"/dst": b"new!"}
        # In every state the destination is exactly old or new — the
        # atomicity the sink claims.
        for state in enumerate_crash_states(ops, base=base):
            assert state.files.get("/dst") in (b"old", b"new!")

    def test_injected_metadata_fault_has_no_effect_on_replay(self):
        ops = _ops(
            ("open", "/f", {"mode": "w"}),
            ("write", "/f", {"offset": 0, "data": b"x"}),
            ("replace", "/f", {"dst": "/g", "injected": "eio"}),
        )
        assert reconstruct(ops, 3, "full") == {"/f": b"x"}  # rename never happened

    def test_states_are_deduplicated(self):
        ops = _ops(("open", "/f", {"mode": "w"}), ("fsync", "/f"))
        states = enumerate_crash_states(ops)
        keys = [s.key() for s in states]
        assert len(keys) == len(set(keys))

    def test_crash_point_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            enumerate_crash_states(_ops(("fsync", "/f")), crash_points=[5])


@pytest.fixture
def pts():
    return np.random.default_rng(3).random((36, 2))


class TestVerifiers:
    def test_checkpointed_join_recovers_from_every_state(self, pts, tmp_path):
        report = verify_checkpointed_join(
            pts, 0.2, str(tmp_path), algorithm="csj", cadence=2, max_states=40
        )
        assert report.ok, report.failures
        assert report.states_verified >= 10
        assert report.recovered_resume > 0

    def test_parallel_run_recovers_from_every_state(self, pts, tmp_path):
        report = verify_checkpointed_join(
            pts, 0.2, str(tmp_path), algorithm="ssj", cadence=2, workers=2,
            max_states=10,
        )
        assert report.ok, report.failures

    def test_atomic_sink_never_shows_a_torn_hybrid(self, pts, tmp_path):
        report = verify_atomic_sink(
            pts, 0.2, str(tmp_path), algorithm="csj", max_states=50
        )
        assert report.ok, report.failures
        assert report.states_verified >= 10

    def test_index_save_is_old_or_new_in_every_state(self, pts, tmp_path):
        report = verify_index_save(pts, str(tmp_path), max_states=40)
        assert report.ok, report.failures
        assert report.states_verified >= 10

    def test_report_serialises(self, pts, tmp_path):
        report = verify_atomic_sink(pts, 0.2, str(tmp_path), max_states=8)
        payload = report.as_dict()
        assert payload["ok"] is True
        assert payload["states_verified"] == report.states_verified


class TestDiskFullHardening:
    def test_enospc_fails_fast_leaving_a_resumable_checkpoint(
        self, pts, tmp_path
    ):
        out = str(tmp_path / "out.txt")
        plan = FailurePlan(fail_at=(8,), errno=errno.ENOSPC, max_failures=1)
        retrier = {}

        def wrapper(inner):
            retrier["sink"] = RetryingSink(
                FlakySink(inner, plan), max_retries=5, sleep=lambda _s: None
            )
            return retrier["sink"]

        kwargs = dict(algorithm="csj", g=10, cadence=2, sink_wrapper=wrapper)
        with pytest.raises(DiskFullError) as excinfo:
            CheckpointedJoin(pts, 0.2, out, **kwargs).run()
        assert excinfo.value.exit_code == 8
        assert excinfo.value.errno == errno.ENOSPC
        # Fail fast: no retry was burned on an unfixable errno.
        assert retrier["sink"].retries == 0

        # "Space freed": the journal resumes to a byte-identical output.
        CheckpointedJoin(pts, 0.2, out, **kwargs).run(resume=True)
        reference = str(tmp_path / "ref.txt")
        CheckpointedJoin(pts, 0.2, reference, algorithm="csj", g=10).run()
        assert open(out, "rb").read() == open(reference, "rb").read()

    def test_transient_eio_is_still_retried(self, pts, tmp_path):
        out = str(tmp_path / "out.txt")
        plan = FailurePlan(fail_at=(3,), errno=errno.EIO, max_failures=1)
        sink_box = {}

        def wrapper(inner):
            sink_box["sink"] = RetryingSink(
                FlakySink(inner, plan), max_retries=5, sleep=lambda _s: None
            )
            return sink_box["sink"]

        CheckpointedJoin(
            pts, 0.2, out, algorithm="csj", g=10, sink_wrapper=wrapper
        ).run()
        assert sink_box["sink"].retries == 1  # absorbed, not fatal

    def test_disk_full_exits_with_code_8_via_trace_injection(self, tmp_path):
        """End to end through the seam: TraceFS injects ENOSPC on a write."""
        from repro.io.durable import scoped_fs

        points = np.random.default_rng(0).random((30, 2))
        fs = TraceFS(root=str(tmp_path / "box"))
        # Fail the first *output* write (ops 0-2 are journal open/write/fsync).
        fs.fail_at = {4: errno.ENOSPC}
        with scoped_fs(fs):
            with pytest.raises(DiskFullError) as excinfo:
                CheckpointedJoin(
                    points, 0.2, "/out.txt", algorithm="csj", g=10, cadence=2,
                    sink_wrapper=lambda inner: RetryingSink(
                        inner, max_retries=3, sleep=lambda _s: None
                    ),
                ).run()
        assert excinfo.value.exit_code == 8

    def test_bare_sink_enospc_is_typed_without_a_retry_wrapper(
        self, pts, tmp_path
    ):
        """No RetryingSink in between: the raw OSError is still classified."""
        from repro.io.durable import scoped_fs

        fs = TraceFS(root=str(tmp_path / "box"))
        fs.fail_at = {4: errno.ENOSPC}  # first output write
        with scoped_fs(fs):
            with pytest.raises(DiskFullError):
                CheckpointedJoin(
                    pts, 0.2, "/out.txt", algorithm="csj", g=10, cadence=2
                ).run()
            fs.fail_at = {}
            CheckpointedJoin(
                pts, 0.2, "/out.txt", algorithm="csj", g=10, cadence=2
            ).run(resume=True)

    def test_errno_metric_label_exported(self, pts, tmp_path):
        from repro.obs.metrics import reset_registry

        registry = reset_registry()
        try:
            self.test_enospc_fails_fast_leaving_a_resumable_checkpoint(
                pts, tmp_path
            )
            name = 'repro_sink_errno_total{errno="enospc"}'
            assert name in registry
            assert registry.counter(name).value == 1
            rendered = registry.to_prometheus()
            assert '# TYPE repro_sink_errno_total counter' in rendered
            assert rendered.count("TYPE repro_sink_errno_total") == 1
        finally:
            reset_registry()


# ---------------------------------------------------------------------------
# Property suite: recovery is byte-identical from every crash state, for
# arbitrary small datasets across the algorithm families.
# ---------------------------------------------------------------------------

lattice_points = st.integers(8, 28).flatmap(
    lambda n: st.integers(0, 2**31 - 1).map(
        lambda seed: np.random.default_rng(seed).integers(0, 9, (n, 2)) / 8.0
    )
)


@settings(max_examples=6, deadline=None)
@given(points=lattice_points,
       algorithm=st.sampled_from(["ssj", "csj", "egrid"]),
       eps=st.sampled_from([0.13, 0.26]))
def test_checkpoint_recovery_property(points, algorithm, eps, tmp_path_factory):
    workdir = str(tmp_path_factory.mktemp("crashprop"))
    report = verify_checkpointed_join(
        points, eps, workdir, algorithm=algorithm, cadence=2, max_states=14
    )
    assert report.ok, report.failures


@settings(max_examples=5, deadline=None)
@given(points=lattice_points, eps=st.sampled_from([0.13, 0.26]))
def test_atomic_sink_property(points, eps, tmp_path_factory):
    workdir = str(tmp_path_factory.mktemp("atomprop"))
    report = verify_atomic_sink(points, eps, workdir, max_states=20)
    assert report.ok, report.failures
