"""Unit tests for PBSM and the spatial hash join (repro.core.partitioned)."""

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_cross_links, brute_force_links
from repro.core.partitioned import pbsm_join, spatial_hash_join
from repro.core.verify import check_equivalence


class TestPBSM:
    @pytest.mark.parametrize("eps", [0.02, 0.05, 0.15])
    def test_matches_brute_force(self, uniform_2d, eps):
        result = pbsm_join(uniform_2d, eps)
        assert set(result.links) == brute_force_links(uniform_2d, eps)

    def test_no_duplicate_links(self, clustered_2d):
        result = pbsm_join(clustered_2d, 0.05)
        assert len(result.links) == len(set(result.links))

    @pytest.mark.parametrize("parts", [1, 2, 3, 7])
    def test_partition_count_invariant(self, uniform_2d, parts):
        """Output identical regardless of how space is partitioned."""
        truth = brute_force_links(uniform_2d, 0.08)
        result = pbsm_join(uniform_2d, 0.08, partitions_per_axis=parts)
        assert set(result.links) == truth

    @pytest.mark.parametrize("g", [0, 10])
    def test_compact_lossless(self, clustered_2d, g):
        result = pbsm_join(clustered_2d, 0.05, compact=True, g=g)
        check_equivalence(clustered_2d, 0.05, result).raise_if_failed()

    def test_compact_reduces_output(self, clustered_2d):
        plain = pbsm_join(clustered_2d, 0.05)
        compact = pbsm_join(clustered_2d, 0.05, compact=True, g=10)
        assert compact.output_bytes < plain.output_bytes

    def test_3d(self, uniform_3d):
        result = pbsm_join(uniform_3d, 0.15, compact=True, g=10)
        check_equivalence(uniform_3d, 0.15, result).raise_if_failed()

    def test_metric_parameterised(self, uniform_2d):
        result = pbsm_join(uniform_2d, 0.1, metric="l1")
        assert set(result.links) == brute_force_links(uniform_2d, 0.1, "l1")

    def test_exact_distance_grid(self):
        side = 6
        xs, ys = np.meshgrid(np.arange(side), np.arange(side))
        pts = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(float)
        for eps in (1.0, np.sqrt(2.0)):
            result = pbsm_join(pts, eps, compact=True, g=10)
            check_equivalence(pts, eps, result).raise_if_failed()

    def test_labels(self, uniform_2d):
        assert pbsm_join(uniform_2d, 0.05).algorithm == "pbsm"
        assert pbsm_join(uniform_2d, 0.05, compact=True).algorithm == "pbsm-csj(10)"
        assert pbsm_join(uniform_2d, 0.05, compact=True, g=0).algorithm == "pbsm-ncsj"

    def test_edge_cases(self):
        assert pbsm_join(np.empty((0, 2)), 0.1).links == []
        assert pbsm_join(np.array([[0.5, 0.5]]), 0.1).links == []
        with pytest.raises(ValueError):
            pbsm_join(np.zeros((2, 2)), 0.0)


class TestSpatialHashJoin:
    @pytest.fixture
    def pair(self, rng):
        centers = rng.random((4, 2))
        a = np.clip(centers[rng.integers(0, 4, 250)] + rng.normal(scale=0.01, size=(250, 2)), 0, 1)
        b = np.clip(centers[rng.integers(0, 4, 300)] + rng.normal(scale=0.01, size=(300, 2)), 0, 1)
        return a, b

    @pytest.mark.parametrize("eps", [0.01, 0.05, 0.15])
    def test_matches_brute_force(self, pair, eps):
        a, b = pair
        result = spatial_hash_join(a, b, eps)
        assert set(result.links) == brute_force_cross_links(a, b, eps)

    @pytest.mark.parametrize("g", [0, 10])
    def test_compact_lossless(self, pair, g):
        a, b = pair
        result = spatial_hash_join(a, b, 0.05, compact=True, g=g)
        assert result.expanded_cross_links() == brute_force_cross_links(a, b, 0.05)

    def test_compact_reduces_output(self, pair):
        a, b = pair
        plain = spatial_hash_join(a, b, 0.05)
        compact = spatial_hash_join(a, b, 0.05, compact=True, g=10)
        assert compact.output_bytes < plain.output_bytes

    def test_asymmetric_sides(self, rng):
        build = rng.random((40, 2))
        probe = rng.random((500, 2)) * 0.3
        result = spatial_hash_join(build, probe, 0.1)
        assert set(result.links) == brute_force_cross_links(build, probe, 0.1)

    def test_empty_sides(self, rng):
        pts = rng.random((20, 2))
        assert spatial_hash_join(np.empty((0, 2)), pts, 0.1).links == []
        assert spatial_hash_join(pts, np.empty((0, 2)), 0.1).links == []

    def test_labels(self, pair):
        a, b = pair
        assert spatial_hash_join(a, b, 0.05).algorithm == "hash"
        assert spatial_hash_join(a, b, 0.05, compact=True).algorithm == "hash-csj(10)"

    def test_eps_validation(self, pair):
        a, b = pair
        with pytest.raises(ValueError):
            spatial_hash_join(a, b, -0.1)

    def test_agrees_with_dual_tree(self, pair):
        from repro.core.dual import spatial_join
        from repro.index.bulk import bulk_load

        a, b = pair
        hashed = spatial_hash_join(a, b, 0.05)
        dual = spatial_join(bulk_load(a), bulk_load(b), 0.05)
        assert set(hashed.links) == set(dual.links)
