"""Unit tests for the M-tree (repro.index.mtree)."""

import numpy as np
import pytest

from repro.index.base import IndexInvariantError
from repro.index.mtree import MTree


class TestBuild:
    def test_build_validates(self, uniform_2d):
        tree = MTree(uniform_2d, max_entries=8)
        tree.validate()
        assert tree.size == len(uniform_2d)

    def test_clustered(self, clustered_2d):
        MTree(clustered_2d, max_entries=8).validate()

    def test_empty_and_single(self):
        MTree(np.empty((0, 2))).validate()
        t = MTree(np.array([[0.0, 0.0]]))
        t.validate()
        assert t.root.entry_ids == [0]

    def test_duplicates(self):
        MTree(np.tile([[0.2, 0.8]], (30, 1)), max_entries=4).validate()

    @pytest.mark.parametrize("name", ["l1", "linf", 3])
    def test_non_euclidean_metrics(self, rng, name):
        tree = MTree(rng.random((150, 2)), metric=name, max_entries=8)
        tree.validate()

    def test_shuffle_seed(self, rng):
        pts = rng.random((100, 2))
        MTree(pts, max_entries=8, shuffle_seed=3).validate()


class TestRadii:
    def test_covering_radius_covers_all_points(self, rng, metric):
        pts = rng.random((200, 2))
        tree = MTree(pts, metric=metric, max_entries=8)
        for node in tree.nodes():
            ids = node.subtree_ids()
            center = pts[node.router]
            dists = metric.point_to_points(center, pts[ids])
            assert dists.max() <= node.radius + 1e-9

    def test_validate_detects_radius_corruption(self, rng):
        tree = MTree(rng.random((100, 2)), max_entries=8)
        if tree.root.is_leaf:
            pytest.skip("tree too small")
        tree.root.children[0].radius = 0.0
        with pytest.raises(IndexInvariantError):
            tree.validate()


class TestRangeQuery:
    def test_matches_brute_force(self, rng, metric):
        pts = rng.random((300, 2))
        tree = MTree(pts, metric=metric, max_entries=8)
        center = np.array([0.5, 0.5])
        expected = np.nonzero(metric.point_to_points(center, pts) < 0.2)[0]
        assert tree.range_query(center, 0.2).tolist() == expected.tolist()


class TestDeletion:
    def test_delete_removes_point(self, rng):
        pts = rng.random((60, 2))
        tree = MTree(pts, max_entries=8)
        assert tree.delete(3)
        assert not tree.delete(3)  # already gone
        tree.validate()
        center = pts[3]
        assert 3 not in tree.range_query(center, 0.3)

    def test_delete_router_reroutes(self, rng):
        pts = rng.random((80, 2))
        tree = MTree(pts, max_entries=8)
        # Delete every router in the tree, root first: repair must
        # re-route each affected node without corrupting the structure.
        routers = sorted({node.router for node in tree.nodes()})
        for pid in routers:
            assert tree.delete(pid)
            tree.validate()
        survivors = set(range(len(pts))) - set(routers)
        got = set(tree.range_query(np.array([0.5, 0.5]), 10.0).tolist())
        assert got == survivors

    def test_delete_all_then_reinsert(self, rng):
        pts = rng.random((30, 2))
        tree = MTree(pts, max_entries=4)
        for pid in range(len(pts)):
            assert tree.delete(pid)
        assert tree.root is None
        for pid in range(len(pts)):
            tree.insert(pid)  # insert clears the tombstone itself
        tree.validate()
        assert len(tree.range_query(np.array([0.5, 0.5]), 10.0)) == len(pts)


class TestNodeContract:
    def test_bounds(self, rng):
        from repro.geometry.metrics import Euclidean

        metric = Euclidean()
        pts = rng.random((300, 2))
        tree = MTree(pts, max_entries=8)
        leaves = list(tree.leaves())
        a, b = leaves[0], leaves[-1]
        ids_a, ids_b = np.asarray(a.entry_ids), np.asarray(b.entry_ids)
        cross = metric.pairwise(pts[ids_a], pts[ids_b])
        assert a.min_dist(b, metric) <= cross.min() + 1e-9
        both = np.vstack([pts[ids_a], pts[ids_b]])
        assert metric.self_pairwise(both).max() <= a.union_diameter(b, metric) + 1e-9

    def test_min_dist_point(self, rng):
        from repro.geometry.metrics import Euclidean

        metric = Euclidean()
        pts = rng.random((100, 2))
        tree = MTree(pts, max_entries=8)
        probe = np.array([2.0, 2.0])
        for leaf in tree.leaves():
            ids = np.asarray(leaf.entry_ids)
            observed = metric.point_to_points(probe, pts[ids]).min()
            assert leaf.min_dist_point(probe, metric) <= observed + 1e-9

    def test_repr(self, rng):
        tree = MTree(rng.random((50, 2)), max_entries=8)
        assert "BallNode" in repr(tree.root)
