"""Unit tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_join_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["join", "--eps", "0.1"])

    def test_join_args(self):
        args = build_parser().parse_args(
            ["join", "--dataset", "uniform", "--eps", "0.1", "-g", "5"]
        )
        assert args.dataset == "uniform"
        assert args.eps == 0.1
        assert args.g == 5

    def test_experiment_names_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "8 links" in out
        assert "50%" in out
        assert "True" in out  # lossless check


class TestJoinCommand:
    def test_generated_dataset(self, capsys):
        code = main(
            ["join", "--dataset", "uniform", "-n", "300", "--eps", "0.05",
             "--algorithm", "csj", "--verify"]
        )
        assert code == 0
        captured = capsys.readouterr()
        # Diagnostics go to stderr so stdout stays clean for pipelines.
        assert captured.out == ""
        assert "groups emitted" in captured.err
        assert "OK" in captured.err

    def test_input_file(self, tmp_path, capsys):
        path = tmp_path / "pts.txt"
        rng = np.random.default_rng(0)
        np.savetxt(path, rng.random((100, 2)))
        code = main(["join", "--input", str(path), "--eps", "0.1"])
        assert code == 0

    def test_output_file(self, tmp_path, capsys):
        out_path = tmp_path / "result.txt"
        code = main(
            ["join", "--dataset", "uniform", "-n", "200", "--eps", "0.1",
             "--algorithm", "ncsj", "--output", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        from repro.io.writer import read_output

        links, groups, _ = read_output(str(out_path))
        assert links or groups

    def test_ssj_algorithm(self, capsys):
        assert main(
            ["join", "--dataset", "uniform", "-n", "200", "--eps", "0.05",
             "--algorithm", "ssj"]
        ) == 0

    def test_egrid_algorithm(self, capsys):
        assert main(
            ["join", "--dataset", "uniform", "-n", "200", "--eps", "0.05",
             "--algorithm", "egrid-csj", "--verify"]
        ) == 0


class TestObservabilityFlags:
    def _run(self, tmp_path, *extra):
        pts = tmp_path / "pts.txt"
        np.savetxt(pts, np.random.default_rng(0).random((200, 2)))
        return main(["join", "--input", str(pts), "--eps", "0.1", *extra])

    def test_log_json_stderr_is_parseable(self, tmp_path, capsys):
        import json

        assert self._run(tmp_path, "--log-json") == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        lines = [ln for ln in captured.err.splitlines() if ln.strip()]
        assert lines
        records = [json.loads(ln) for ln in lines]
        summary = [r for r in records if r.get("event") == "run summary"]
        assert len(summary) == 1
        assert summary[0]["algorithm"].startswith("csj")
        assert all("run" in r and "eps" in r for r in records)

    def test_plain_log_level(self, tmp_path, capsys):
        assert self._run(tmp_path, "--log-level", "debug") == 0
        err = capsys.readouterr().err
        assert "join starting" in err
        assert "links emitted" in err  # human summary still present

    def test_trace_writes_spans(self, tmp_path, capsys):
        import json

        trace = tmp_path / "run.trace.jsonl"
        assert self._run(tmp_path, "--trace", str(trace)) == 0
        lines = trace.read_text().splitlines()
        assert lines
        records = [json.loads(ln) for ln in lines]
        assert any(r["name"] == "descend" for r in records)
        assert all({"name", "path", "ts", "dur", "depth"} <= r.keys()
                   for r in records)

    def test_trace_default_path_next_to_output(self, tmp_path, capsys):
        out = tmp_path / "result.txt"
        assert self._run(tmp_path, "--output", str(out), "--trace") == 0
        assert (tmp_path / "result.txt.trace.jsonl").exists()

    def test_metrics_out_json(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "m.json"
        assert self._run(tmp_path, "--metrics-out", str(metrics)) == 0
        snapshot = json.loads(metrics.read_text())
        assert snapshot["repro_join_links_emitted_total"] >= 0
        assert "repro_join_total_time_seconds_total" in snapshot

    def test_metrics_out_prometheus(self, tmp_path, capsys):
        metrics = tmp_path / "m.prom"
        assert self._run(tmp_path, "--metrics-out", str(metrics)) == 0
        text = metrics.read_text()
        assert "# TYPE repro_join_links_emitted_total counter" in text

    def test_metrics_match_joinstats(self, tmp_path, capsys):
        import json

        pts = tmp_path / "pts.txt"
        np.savetxt(pts, np.random.default_rng(1).random((300, 2)))
        metrics = tmp_path / "m.json"
        assert main(["join", "--input", str(pts), "--eps", "0.08",
                     "--metrics-out", str(metrics)]) == 0

        from repro.api import similarity_join

        expected = similarity_join(
            np.loadtxt(pts, ndmin=2), 0.08, algorithm="csj", g=10
        ).stats
        snapshot = json.loads(metrics.read_text())
        assert snapshot["repro_join_links_emitted_total"] == expected.links_emitted
        assert snapshot["repro_join_groups_emitted_total"] == expected.groups_emitted
        assert snapshot["repro_join_bytes_written_total"] == expected.bytes_written
        assert (
            snapshot["repro_join_distance_computations_total"]
            == expected.distance_computations
        )

    def test_log_json_error_path_stays_parseable(self, tmp_path, capsys):
        import json

        assert self._run(tmp_path, "--log-json", "--deadline", "0") == 3
        err = capsys.readouterr().err
        records = [json.loads(ln) for ln in err.splitlines() if ln.strip()]
        errors = [r for r in records if r["level"] == "error"]
        assert len(errors) == 1
        assert "budget exceeded" in errors[0]["event"]
        assert errors[0]["exit_code"] == 3

    def test_progress_heartbeat_logs(self, tmp_path, capsys):
        pts = tmp_path / "pts.txt"
        np.savetxt(pts, np.random.default_rng(2).random((3000, 2)))
        # A millisecond interval guarantees beats during this join; the
        # --progress flag alone must make the heartbeat logger visible.
        assert main(["join", "--input", str(pts), "--eps", "0.05",
                     "--progress", "0.001"]) == 0
        assert "progress" in capsys.readouterr().err


class TestClusterCommand:
    def test_cluster_output(self, capsys):
        code = main(
            ["cluster", "--dataset", "uniform", "-n", "400", "--eps", "0.08"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "clusters" in out
        assert "largest clusters" in out

    def test_requires_dataset(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--eps", "0.1"])


class TestResilienceFlags:
    def _pts_file(self, tmp_path, n=200, seed=0):
        path = tmp_path / "pts.txt"
        np.savetxt(path, np.random.default_rng(seed).random((n, 2)))
        return str(path)

    def test_checkpoint_flag_writes_journal(self, tmp_path, capsys):
        pts = self._pts_file(tmp_path)
        out = tmp_path / "out.txt"
        journal = tmp_path / "progress.journal"
        code = main(
            ["join", "--input", pts, "--eps", "0.1", "--output", str(out),
             "--checkpoint", str(journal)]
        )
        assert code == 0
        assert out.exists() and journal.exists()
        assert "checkpoint" in capsys.readouterr().err

    def test_checkpoint_requires_output(self, tmp_path):
        pts = self._pts_file(tmp_path)
        with pytest.raises(SystemExit):
            main(["join", "--input", pts, "--eps", "0.1",
                  "--checkpoint", str(tmp_path / "j")])

    def test_resume_requires_checkpoint(self, tmp_path):
        pts = self._pts_file(tmp_path)
        with pytest.raises(SystemExit):
            main(["join", "--input", pts, "--eps", "0.1", "--resume"])

    def test_resume_completes_interrupted_run(self, tmp_path, capsys):
        import filecmp

        pts = self._pts_file(tmp_path, n=300)
        direct = tmp_path / "direct.txt"
        assert main(["join", "--input", pts, "--eps", "0.08",
                     "--output", str(direct)]) == 0

        out = tmp_path / "out.txt"
        journal = tmp_path / "j.journal"
        # A zero deadline interrupts immediately -> exit code 3 ...
        code = main(
            ["join", "--input", pts, "--eps", "0.08", "--output", str(out),
             "--checkpoint", str(journal), "--deadline", "0"]
        )
        assert code == 3
        assert "csj: error:" in capsys.readouterr().err
        # ... and --resume finishes the run byte-identically.
        code = main(
            ["join", "--input", pts, "--eps", "0.08", "--output", str(out),
             "--checkpoint", str(journal), "--resume"]
        )
        assert code == 0
        assert filecmp.cmp(str(direct), str(out), shallow=False)

    def test_deadline_breach_exit_code(self, tmp_path, capsys):
        pts = self._pts_file(tmp_path)
        code = main(["join", "--input", pts, "--eps", "0.1",
                     "--deadline", "0"])
        assert code == 3
        assert "budget exceeded" in capsys.readouterr().err

    def test_max_bytes_ssj_degrades_to_estimate(self, tmp_path, capsys):
        pts = self._pts_file(tmp_path, n=400)
        code = main(["join", "--input", pts, "--eps", "0.2",
                     "--algorithm", "ssj", "--max-bytes", "100"])
        assert code == 0  # graceful: the estimator answered
        assert "analytic estimate" in capsys.readouterr().err

    def test_max_bytes_csj_exit_code(self, tmp_path, capsys):
        pts = self._pts_file(tmp_path, n=400)
        code = main(["join", "--input", pts, "--eps", "0.2",
                     "--algorithm", "csj", "--max-bytes", "100"])
        assert code == 3


class TestExitCodes:
    def test_invalid_input_exit_code(self, tmp_path, capsys):
        path = tmp_path / "pts.txt"
        path.write_text("0.1 nan\n0.2 0.3\n")
        code = main(["join", "--input", str(path), "--eps", "0.1"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("csj: error:")
        assert "NaN" in err

    def test_missing_input_file_exit_code(self, capsys):
        code = main(["join", "--input", "/nonexistent/pts.txt", "--eps", "0.1"])
        assert code == 1
        assert "csj: error:" in capsys.readouterr().err

    def test_corrupt_journal_exit_code(self, tmp_path, capsys):
        path = tmp_path / "pts.txt"
        np.savetxt(path, np.random.default_rng(0).random((50, 2)))
        journal = tmp_path / "j.journal"
        journal.write_text("garbage, not a journal\n")
        code = main(
            ["join", "--input", str(path), "--eps", "0.1",
             "--output", str(tmp_path / "out.txt"),
             "--checkpoint", str(journal), "--resume"]
        )
        assert code == 5
        assert str(journal) in capsys.readouterr().err


class TestExperimentCommand:
    def test_fig6_small(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        assert main(["experiment", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "algorithm" in out
        assert "csj" in out

    def test_exp4_small(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        assert main(["experiment", "exp4"]) == 0
        out = capsys.readouterr().out
        assert "mtree" in out


class TestUpdateCommand:
    def test_update_with_verify(self, capsys):
        code = main(
            ["update", "--dataset", "uniform", "-n", "300", "--eps", "0.08",
             "--updates", "60", "--verify"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "maintained join" in out
        assert "expansion-equivalence vs brute force: OK" in out

    def test_update_json(self, capsys):
        import json

        code = main(
            ["update", "--dataset", "uniform", "-n", "200", "--eps", "0.1",
             "--updates", "30", "--verify", "--json"]
        )
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["verified"] is True
        assert record["updates"]["inserts"] + record["updates"]["deletes"] == 30

    def test_bad_delete_fraction_exits_2(self, capsys):
        code = main(
            ["update", "--dataset", "uniform", "-n", "50", "--eps", "0.1",
             "--delete-fraction", "1.5"]
        )
        assert code == 2
        assert "delete-fraction" in capsys.readouterr().err


class TestServeCacheFlags:
    def test_repeats_hit_the_cache(self, capsys):
        import json

        code = main(
            ["serve", "--dataset", "uniform", "-n", "200", "--eps", "0.05",
             "--requests", "2", "--queue-depth", "8", "--seed", "3",
             "--cache", "--repeats", "3", "--json"]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        summary = json.loads(lines[-1])
        assert summary["counts"]["admitted"] == 6
        assert summary["metrics"]["repro_cache_hits_total"] == 4
        assert summary["metrics"]["repro_cache_misses_total"] == 2

    def test_without_cache_no_cache_metrics(self, capsys):
        import json

        code = main(
            ["serve", "--dataset", "uniform", "-n", "200", "--eps", "0.05",
             "--requests", "2", "--queue-depth", "8", "--seed", "3",
             "--repeats", "2", "--json"]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert not any(k.startswith("repro_cache") for k in summary["metrics"])

    def test_bad_repeats_exits_2(self, capsys):
        code = main(
            ["serve", "--dataset", "uniform", "-n", "50", "--eps", "0.1",
             "--requests", "2", "--repeats", "0"]
        )
        assert code == 2
        assert "repeats" in capsys.readouterr().err
