"""Unit tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_join_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["join", "--eps", "0.1"])

    def test_join_args(self):
        args = build_parser().parse_args(
            ["join", "--dataset", "uniform", "--eps", "0.1", "-g", "5"]
        )
        assert args.dataset == "uniform"
        assert args.eps == 0.1
        assert args.g == 5

    def test_experiment_names_restricted(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "8 links" in out
        assert "50%" in out
        assert "True" in out  # lossless check


class TestJoinCommand:
    def test_generated_dataset(self, capsys):
        code = main(
            ["join", "--dataset", "uniform", "-n", "300", "--eps", "0.05",
             "--algorithm", "csj", "--verify"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "groups emitted" in out
        assert "OK" in out

    def test_input_file(self, tmp_path, capsys):
        path = tmp_path / "pts.txt"
        rng = np.random.default_rng(0)
        np.savetxt(path, rng.random((100, 2)))
        code = main(["join", "--input", str(path), "--eps", "0.1"])
        assert code == 0

    def test_output_file(self, tmp_path, capsys):
        out_path = tmp_path / "result.txt"
        code = main(
            ["join", "--dataset", "uniform", "-n", "200", "--eps", "0.1",
             "--algorithm", "ncsj", "--output", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        from repro.io.writer import read_output

        links, groups, _ = read_output(str(out_path))
        assert links or groups

    def test_ssj_algorithm(self, capsys):
        assert main(
            ["join", "--dataset", "uniform", "-n", "200", "--eps", "0.05",
             "--algorithm", "ssj"]
        ) == 0

    def test_egrid_algorithm(self, capsys):
        assert main(
            ["join", "--dataset", "uniform", "-n", "200", "--eps", "0.05",
             "--algorithm", "egrid-csj", "--verify"]
        ) == 0


class TestClusterCommand:
    def test_cluster_output(self, capsys):
        code = main(
            ["cluster", "--dataset", "uniform", "-n", "400", "--eps", "0.08"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "clusters" in out
        assert "largest clusters" in out

    def test_requires_dataset(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--eps", "0.1"])


class TestExperimentCommand:
    def test_fig6_small(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        assert main(["experiment", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "algorithm" in out
        assert "csj" in out

    def test_exp4_small(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        assert main(["experiment", "exp4"]) == 0
        out = capsys.readouterr().out
        assert "mtree" in out
