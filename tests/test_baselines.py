"""Unit tests for the Section II clustering baselines (repro.baselines)."""

import numpy as np
import pytest

from repro.baselines.birch import BirchTree, ClusteringFeature
from repro.baselines.hierarchical import (
    single_linkage_components,
    single_linkage_from_links,
)
from repro.baselines.kmeans import kmeans, kmedoids
from repro.baselines.postprocess import cluster_violations, evaluate_postprocessing
from repro.core.bruteforce import brute_force_links


@pytest.fixture
def two_blobs(rng):
    a = rng.normal(loc=0.2, scale=0.02, size=(60, 2))
    b = rng.normal(loc=0.8, scale=0.02, size=(60, 2))
    return np.clip(np.vstack([a, b]), 0, 1)


class TestKMeans:
    def test_separates_blobs(self, two_blobs):
        labels, centers = kmeans(two_blobs, 2, seed=0)
        assert len(set(labels[:60].tolist())) == 1
        assert len(set(labels[60:].tolist())) == 1
        assert labels[0] != labels[100]
        assert centers.shape == (2, 2)

    def test_k_one(self, two_blobs):
        labels, centers = kmeans(two_blobs, 1)
        assert set(labels.tolist()) == {0}
        assert np.allclose(centers[0], two_blobs.mean(axis=0), atol=1e-6)

    def test_k_equals_n(self, rng):
        pts = rng.random((5, 2))
        labels, _ = kmeans(pts, 5, seed=3)
        assert len(set(labels.tolist())) >= 3  # near-singleton clusters

    def test_duplicate_points(self):
        pts = np.tile([[0.5, 0.5]], (20, 1))
        labels, _ = kmeans(pts, 3, seed=1)
        assert len(labels) == 20  # no crash on zero total distance

    def test_validation(self, two_blobs):
        with pytest.raises(ValueError):
            kmeans(two_blobs, 0)
        with pytest.raises(ValueError):
            kmeans(two_blobs, 2, max_iter=0)

    def test_deterministic_for_seed(self, two_blobs):
        a, _ = kmeans(two_blobs, 2, seed=5)
        b, _ = kmeans(two_blobs, 2, seed=5)
        assert np.array_equal(a, b)


class TestKMedoids:
    def test_separates_blobs(self, two_blobs):
        labels, medoids = kmedoids(two_blobs, 2, seed=0)
        assert labels[0] != labels[100]
        assert len(medoids) == 2
        # Medoids are actual data points.
        assert all(0 <= m < len(two_blobs) for m in medoids)

    def test_validation(self, two_blobs):
        with pytest.raises(ValueError):
            kmedoids(two_blobs, 0)


class TestSingleLinkage:
    def test_from_links_matches_direct(self, two_blobs):
        eps = 0.1
        links = brute_force_links(two_blobs, eps)
        via_links = single_linkage_from_links(links, len(two_blobs))
        direct = single_linkage_components(two_blobs, eps)

        def partition(labels):
            groups = {}
            for i, label in enumerate(labels.tolist()):
                groups.setdefault(label, set()).add(i)
            return frozenset(frozenset(v) for v in groups.values())

        assert partition(via_links) == partition(direct)

    def test_two_blobs_two_clusters(self, two_blobs):
        labels = single_linkage_components(two_blobs, 0.1)
        assert labels[0] == labels[30]
        assert labels[0] != labels[90]

    def test_chaining_violates_range(self, rng):
        """The classic single-linkage failure the paper alludes to: a
        chain of close points forms one cluster whose ends are far apart."""
        chain = np.stack([np.linspace(0, 1, 50), np.zeros(50)], axis=1)
        eps = 0.05
        labels = single_linkage_components(chain, eps)
        assert len(set(labels.tolist())) == 1  # all chained together
        truth = brute_force_links(chain, eps)
        violating, _ = cluster_violations(chain, labels, eps, truth)
        assert violating > 0  # ends of the chain are not within eps

    def test_validation(self, two_blobs):
        with pytest.raises(ValueError):
            single_linkage_components(two_blobs, 0.0)


class TestClusteringFeature:
    def test_of_point(self):
        cf = ClusteringFeature.of_point([3.0, 4.0])
        assert cf.n == 1
        assert cf.radius() == pytest.approx(0.0)
        assert cf.centroid.tolist() == [3.0, 4.0]

    def test_merge(self):
        a = ClusteringFeature.of_point([0.0, 0.0])
        b = ClusteringFeature.of_point([2.0, 0.0])
        merged = a.merged(b)
        assert merged.n == 2
        assert merged.centroid.tolist() == [1.0, 0.0]
        assert merged.radius() == pytest.approx(1.0)

    def test_absorb_into_empty(self):
        total = ClusteringFeature()
        total.absorb(ClusteringFeature.of_point([1.0, 1.0]))
        assert total.n == 1


class TestBirch:
    def test_partitions_all_points(self, two_blobs):
        tree = BirchTree(2, threshold=0.05).fit(two_blobs)
        labels = tree.labels()
        assert (labels >= 0).all()
        clusters = tree.leaf_clusters()
        ids = sorted(i for c in clusters for i in c)
        assert ids == list(range(len(two_blobs)))

    def test_threshold_bounds_cf_radius(self, two_blobs):
        threshold = 0.04
        tree = BirchTree(2, threshold=threshold).fit(two_blobs)
        for members in tree.leaf_clusters():
            pts = two_blobs[members]
            centroid = pts.mean(axis=0)
            rms = np.sqrt(((pts - centroid) ** 2).sum(axis=1).mean())
            assert rms < threshold + 1e-9

    def test_blob_separation(self, two_blobs):
        tree = BirchTree(2, threshold=0.1, branching=4).fit(two_blobs)
        labels = tree.labels()
        # No micro-cluster spans both blobs.
        for members in tree.leaf_clusters():
            sides = {0 if i < 60 else 1 for i in members}
            assert len(sides) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BirchTree(2, threshold=0.0)
        with pytest.raises(ValueError):
            BirchTree(2, threshold=0.1, branching=1)


class TestPostProcessing:
    def test_section_ii_c_claims(self, rng):
        """The paper's argument, quantified: every clustering baseline
        either implies non-qualifying pairs or drops qualifying ones,
        while CSJ does neither."""
        centers = rng.random((5, 2))
        pts = np.clip(
            centers[rng.integers(0, 5, 400)] + rng.normal(scale=0.015, size=(400, 2)),
            0,
            1,
        )
        eps = 0.03
        rows = evaluate_postprocessing(pts, eps, seed=1)
        by_method = {row["method"]: row for row in rows}
        assert by_method["csj(10)"]["violating_pairs"] == 0
        assert by_method["csj(10)"]["missing_links"] == 0
        for method in ("kmeans", "kmedoids", "single-linkage", "birch"):
            row = by_method[method]
            assert row["violating_pairs"] + row["missing_links"] > 0, method

    def test_unknown_method(self, two_blobs):
        with pytest.raises(ValueError, match="unknown method"):
            evaluate_postprocessing(two_blobs, 0.1, methods=("dbscan",))

    def test_violation_counts_consistent(self, two_blobs):
        eps = 0.1
        truth = brute_force_links(two_blobs, eps)
        labels = np.zeros(len(two_blobs), dtype=np.intp)  # everything together
        violating, missing = cluster_violations(two_blobs, labels, eps, truth)
        n = len(two_blobs)
        assert violating + len(truth) == n * (n - 1) // 2
        assert missing == 0
