"""Resource guards: deadlines, byte caps and graceful degradation."""

import numpy as np
import pytest

from repro.api import build_index, similarity_join
from repro.core.csj import csj
from repro.core.egrid import egrid_join
from repro.core.partitioned import pbsm_join
from repro.core.ssj import ssj
from repro.core.verify import brute_force_links
from repro.errors import BudgetExceededError
from repro.resilience.budget import Budget
from repro.stats.counters import JoinStats


class TestBudgetMechanics:
    def test_inactive_by_default(self):
        budget = Budget()
        assert not budget.active
        for _ in range(1000):
            budget.check(JoinStats())  # never trips

    def test_bytes_breach(self):
        budget = Budget(max_output_bytes=100, check_every=1)
        stats = JoinStats()
        stats.bytes_written = 101
        with pytest.raises(BudgetExceededError) as info:
            budget.check(stats)
        assert info.value.kind == "output_bytes"
        assert info.value.limit == 100
        assert info.value.actual == 101

    def test_groups_breach(self):
        budget = Budget(max_groups=5, check_every=1)
        stats = JoinStats()
        stats.groups_emitted = 6
        with pytest.raises(BudgetExceededError) as info:
            budget.enforce(stats)
        assert info.value.kind == "groups"

    def test_deadline_breach(self):
        budget = Budget(deadline_seconds=0.0, check_every=1).start()
        with pytest.raises(BudgetExceededError) as info:
            budget.enforce(JoinStats())
        assert info.value.kind == "deadline"
        assert budget.remaining_seconds() < 0

    def test_counter_limits_checked_every_call(self):
        # No cadence window for counters: a small run with huge leaves
        # must not slip past the byte cap between sparse checks.
        budget = Budget(max_output_bytes=1, check_every=10_000)
        stats = JoinStats()
        stats.bytes_written = 999
        with pytest.raises(BudgetExceededError):
            budget.check(stats)

    def test_deadline_clock_amortised(self):
        budget = Budget(deadline_seconds=0.0, check_every=8).start()
        stats = JoinStats()
        with pytest.raises(BudgetExceededError):
            budget.check(stats)  # call 0 reads the clock
        later = Budget(deadline_seconds=0.0, check_every=8).start()
        with pytest.raises(BudgetExceededError):
            later.check(stats)  # call 0 again
        # After the raise the counter advanced; calls 1..7 skip the clock.
        for _ in range(7):
            later.check(stats)
        with pytest.raises(BudgetExceededError):
            later.check(stats)  # call 8 reads it again

    def test_rejects_bad_cadence(self):
        with pytest.raises(ValueError):
            Budget(check_every=0)


@pytest.fixture
def pts():
    return np.random.default_rng(5).random((400, 2))


def _tight_bytes():
    return Budget(max_output_bytes=200, check_every=1)


class TestGracefulDegradation:
    def test_ssj_byte_breach_falls_back_to_estimate(self, pts):
        tree = build_index(pts, bulk="str")
        result = ssj(tree, 0.1, budget=_tight_bytes())
        assert result.estimated
        assert result.stats.links_emitted > 0  # the estimate, not a crash
        assert result.summary()["estimated"] is True

    def test_ssj_estimate_tracks_true_count(self, pts):
        tree = build_index(pts, bulk="str")
        exact = len(brute_force_links(pts, 0.1))
        result = ssj(tree, 0.1, budget=_tight_bytes())
        # The analytic estimator is coarse but must be the right magnitude.
        assert 0.2 * exact < result.stats.links_emitted < 5 * exact

    def test_ssj_under_budget_runs_exactly(self, pts):
        tree = build_index(pts, bulk="str")
        result = ssj(tree, 0.05, budget=Budget(max_output_bytes=10**9))
        assert not result.estimated
        assert result.stats.links_emitted == len(brute_force_links(pts, 0.05))

    @pytest.mark.parametrize("algo", ["csj", "egrid-csj", "pbsm-csj"])
    def test_compact_byte_breach_raises_with_valid_partial(self, pts, algo):
        with pytest.raises(BudgetExceededError) as info:
            similarity_join(pts, 0.1, algorithm=algo, g=10, budget=_tight_bytes())
        partial = info.value.partial
        assert partial is not None
        assert partial.stats.bytes_written >= 200
        # Theorem 2 on the prefix: every implied pair truly qualifies.
        exact = brute_force_links(pts, 0.1)
        assert partial.expanded_links() <= exact
        assert len(partial.expanded_links()) > 0

    def test_deadline_breach_stops_cleanly(self, pts):
        budget = Budget(deadline_seconds=0.0, check_every=1)
        with pytest.raises(BudgetExceededError) as info:
            csj(build_index(pts, bulk="str"), 0.1, g=10, budget=budget)
        assert info.value.kind == "deadline"
        assert info.value.partial is not None

    def test_egrid_deadline(self, pts):
        with pytest.raises(BudgetExceededError):
            egrid_join(
                pts, 0.1, compact=False,
                budget=Budget(deadline_seconds=0.0, check_every=1),
            )

    def test_pbsm_deadline(self, pts):
        with pytest.raises(BudgetExceededError):
            pbsm_join(
                pts, 0.1, compact=False,
                budget=Budget(deadline_seconds=0.0, check_every=1),
            )

    def test_unlimited_budget_changes_nothing(self, pts):
        tree = build_index(pts, bulk="str")
        plain = csj(tree, 0.07, g=10)
        budgeted = csj(tree, 0.07, g=10, budget=Budget())
        assert budgeted.expanded_links() == plain.expanded_links()
        assert budgeted.stats.groups_emitted == plain.stats.groups_emitted


class TestRunnerIntegration:
    def test_experiment_runner_estimates_over_budget(self, pts):
        from repro.experiments.runner import ExperimentConfig, run_algorithm

        tree = build_index(pts, bulk="str")
        config = ExperimentConfig(iterations=1, ssj_byte_budget=100)
        row = run_algorithm("ssj", tree, 0.1, config=config)
        assert row["estimated"] is True

    def test_experiment_runner_exact_under_budget(self, pts):
        from repro.experiments.runner import ExperimentConfig, run_algorithm

        tree = build_index(pts, bulk="str")
        config = ExperimentConfig(iterations=1)
        row = run_algorithm("csj", tree, 0.05, config=config)
        assert row["estimated"] is False
