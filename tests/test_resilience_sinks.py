"""Crash-safe sinks: durability, atomic publication, bounded retries."""

import os

import pytest

from repro.core.results import CollectSink
from repro.errors import SinkIOError
from repro.resilience.sinks import AtomicTextSink, DurableTextSink, RetryingSink


class TestDurableTextSink:
    def test_writes_and_tells(self, tmp_path):
        path = str(tmp_path / "out.txt")
        sink = DurableTextSink(path, id_width=4)
        sink.write_link(1, 2)
        sink.sync()
        assert sink.tell() == os.path.getsize(path) > 0
        sink.write_group([3, 4, 5])
        sink.close()
        assert sink.stats.links_emitted == 1
        assert sink.stats.groups_emitted == 1

    def test_append_continues_file(self, tmp_path):
        path = str(tmp_path / "out.txt")
        first = DurableTextSink(path, id_width=4)
        first.write_link(1, 2)
        first.close()
        size = os.path.getsize(path)
        second = DurableTextSink(path, id_width=4, append=True)
        second.write_link(3, 4)
        second.close()
        assert os.path.getsize(path) == 2 * size

    def test_fresh_open_truncates(self, tmp_path):
        path = str(tmp_path / "out.txt")
        for _ in range(2):
            sink = DurableTextSink(path, id_width=4)
            sink.write_link(1, 2)
            sink.close()
        content = open(path).read()
        assert content.count("\n") == 1


class TestAtomicTextSink:
    def test_clean_close_publishes(self, tmp_path):
        path = str(tmp_path / "out.txt")
        sink = AtomicTextSink(path, id_width=4)
        sink.write_link(1, 2)
        assert not os.path.exists(path)  # still only the temp file
        sink.close()
        assert sink.committed
        assert os.path.exists(path)
        assert not os.path.exists(path + ".part")

    def test_abort_leaves_destination_untouched(self, tmp_path):
        path = str(tmp_path / "out.txt")
        with open(path, "w") as f:
            f.write("previous good output\n")
        sink = AtomicTextSink(path, id_width=4)
        sink.write_link(1, 2)
        sink.abort()
        assert not sink.committed
        assert open(path).read() == "previous good output\n"
        assert not os.path.exists(path + ".part")

    def test_context_manager_aborts_on_exception(self, tmp_path):
        path = str(tmp_path / "out.txt")
        with pytest.raises(RuntimeError):
            with AtomicTextSink(path, id_width=4) as sink:
                sink.write_link(1, 2)
                raise RuntimeError("mid-join crash")
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".part")

    def test_context_manager_publishes_on_success(self, tmp_path):
        path = str(tmp_path / "out.txt")
        with AtomicTextSink(path, id_width=4) as sink:
            sink.write_group([1, 2, 3])
        assert sink.committed
        assert os.path.getsize(path) > 0

    def test_close_idempotent(self, tmp_path):
        path = str(tmp_path / "out.txt")
        sink = AtomicTextSink(path, id_width=4)
        sink.write_link(1, 2)
        sink.close()
        sink.close()
        sink.abort()  # after commit: no-op, file stays
        assert os.path.exists(path)


class _FailNTimesSink(CollectSink):
    """Raises OSError on the first ``n`` write attempts, then succeeds."""

    def __init__(self, n, **kw):
        super().__init__(**kw)
        self.remaining = n
        self.attempts = 0

    def write_link(self, i, j):
        self.attempts += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise OSError("transient")
        super().write_link(i, j)


class TestRetryingSink:
    def test_transparent_when_inner_healthy(self):
        inner = CollectSink(id_width=4)
        sink = RetryingSink(inner, sleep=lambda _s: None)
        sink.write_link(1, 2)
        sink.write_group([3, 4, 5])
        sink.close()
        assert inner.links == [(1, 2)]
        assert sink.retries == 0

    def test_recovers_from_transient_failures(self):
        inner = _FailNTimesSink(3, id_width=4)
        sink = RetryingSink(inner, max_retries=4, sleep=lambda _s: None)
        sink.write_link(1, 2)
        assert inner.links == [(1, 2)]
        assert sink.retries == 3
        assert inner.attempts == 4
        # Accounting charged exactly once despite four attempts.
        assert inner.stats.links_emitted == 1

    def test_exhaustion_raises_sink_io_error(self):
        inner = _FailNTimesSink(100, id_width=4)
        sink = RetryingSink(inner, max_retries=2, sleep=lambda _s: None)
        with pytest.raises(SinkIOError, match="after 3 attempts"):
            sink.write_link(1, 2)
        assert inner.links == []

    def test_backoff_is_exponential_and_capped(self):
        delays = []
        inner = _FailNTimesSink(100, id_width=4)
        sink = RetryingSink(
            inner, max_retries=5, base_delay=0.1, max_delay=0.5,
            sleep=delays.append, jitter=False,
        )
        with pytest.raises(SinkIOError):
            sink.write_link(1, 2)
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jittered_backoff_is_bounded_and_decorrelated(self):
        delays = []
        inner = _FailNTimesSink(100, id_width=4)
        sink = RetryingSink(
            inner, max_retries=8, base_delay=0.1, max_delay=0.5,
            sleep=delays.append, seed=7,
        )
        with pytest.raises(SinkIOError):
            sink.write_link(1, 2)
        assert len(delays) == 8
        assert all(0.1 <= d <= 0.5 for d in delays)
        # Decorrelated: a real spread of values, not a fixed ladder.
        assert len({round(d, 6) for d in delays}) > 3
        # Deterministic for a given seed.
        delays2 = []
        sink2 = RetryingSink(
            _FailNTimesSink(100, id_width=4), max_retries=8, base_delay=0.1,
            max_delay=0.5, sleep=delays2.append, seed=7,
        )
        with pytest.raises(SinkIOError):
            sink2.write_link(1, 2)
        assert delays2 == delays

    def test_max_elapsed_caps_total_retry_time(self):
        clock = [0.0]

        def fake_sleep(s):
            clock[0] += s

        inner = _FailNTimesSink(100, id_width=4)
        sink = RetryingSink(
            inner, max_retries=1000, base_delay=0.1, max_delay=0.5,
            sleep=fake_sleep, clock=lambda: clock[0], max_elapsed=2.0,
            jitter=False,
        )
        with pytest.raises(SinkIOError, match="retry time budget"):
            sink.write_link(1, 2)
        # Sleeps are trimmed to the cap: never sleeps past max_elapsed.
        assert clock[0] <= 2.0 + 1e-9

    def test_budget_deadline_trims_retries(self):
        from repro.resilience.budget import Budget

        clock = [0.0]

        def fake_sleep(s):
            clock[0] += s

        budget = Budget(deadline_seconds=0.25)
        budget.start()
        budget._started_at = 0.0  # pin the clock origin for the test
        import repro.resilience.budget as budget_mod

        real_monotonic = budget_mod.time.monotonic
        budget_mod.time.monotonic = lambda: clock[0]
        try:
            inner = _FailNTimesSink(100, id_width=4)
            sink = RetryingSink(
                inner, max_retries=1000, base_delay=0.1, max_delay=10.0,
                sleep=fake_sleep, clock=lambda: clock[0], budget=budget,
                jitter=False,
            )
            with pytest.raises(SinkIOError, match="retry time budget"):
                sink.write_link(1, 2)
            # Retries never slept past the budget's deadline.
            assert clock[0] <= 0.25 + 1e-9
        finally:
            budget_mod.time.monotonic = real_monotonic

    def test_inner_sink_io_error_is_final(self):
        class Fatal(CollectSink):
            def write_link(self, i, j):
                raise SinkIOError("disk is gone")

        sink = RetryingSink(Fatal(id_width=4), sleep=lambda _s: None)
        with pytest.raises(SinkIOError, match="disk is gone"):
            sink.write_link(1, 2)
        assert sink.retries == 0  # no pointless retries of a final error

    def test_rejects_negative_retry_budget(self):
        with pytest.raises(ValueError):
            RetryingSink(CollectSink(id_width=4), max_retries=-1)


class TestDeadlineCappedRetries:
    """Regression: a 50 ms request deadline must bound total retry sleep.

    Before the budget's composed-deadline fix, an *unstarted* budget
    reported its full allowance forever, so each of N retries could
    sleep the whole deadline again (N x 50 ms).  The wall-clock bound
    below fails under that behaviour and passes with the fix.
    """

    def test_50ms_deadline_bounds_wall_clock(self):
        import time as _time

        from repro.resilience.budget import Budget

        # Never started by the caller: the sink's own reads must arm it.
        budget = Budget(deadline_seconds=0.05)
        sink = RetryingSink(
            _FailNTimesSink(99, id_width=4),
            max_retries=8,
            base_delay=10.0,  # would sleep ~10 s per retry if uncapped
            max_delay=10.0,
            jitter=False,
            budget=budget,
        )
        started = _time.monotonic()
        with pytest.raises(SinkIOError):
            sink.write_link(1, 2)
        elapsed = _time.monotonic() - started
        # One deadline's worth of sleeping, not one per retry.
        assert elapsed < 0.05 * 3 + 0.1

    def test_armed_absolute_deadline_bounds_after_restart(self):
        import time as _time

        from repro.resilience.budget import Budget

        budget = Budget(check_every=1)
        budget.arm_deadline(0.05)
        budget.start()  # a retry loop restarting the relative clock
        sink = RetryingSink(
            _FailNTimesSink(99, id_width=4),
            max_retries=8,
            base_delay=10.0,
            max_delay=10.0,
            jitter=False,
            budget=budget,
        )
        started = _time.monotonic()
        with pytest.raises(SinkIOError):
            sink.write_link(1, 2)
        assert _time.monotonic() - started < 0.05 * 3 + 0.1
