"""The shard-parity battery: sharded execution is invisible in the output.

The load-bearing claim of :mod:`repro.shard`: partitioning the dataset
into K ε-replicated spatial shards and joining each shard independently
is an *execution* strategy, not an algorithm change — output bytes and
every canonical output counter are identical for any shard count,
partitioner, index, metric and worker count, and the implied pair set
equals the classic unsharded join's.  This suite proves that over the
full matrix (deterministically) and over random datasets (hypothesis).
"""

import filecmp

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import similarity_join
from repro.core.results import TextSink
from repro.geometry.metrics import Chebyshev, Euclidean, Manhattan
from repro.io.writer import width_for
from repro.obs.metrics import get_registry, reset_registry

INDEXES = ["rtree", "rstar", "mtree"]
METRICS = [Manhattan(), Euclidean(), Chebyshev()]
SHARD_COUNTS = [1, 2, 3, 8]


class TestParityMatrix:
    """index x metric x K x partitioner, one shared dataset."""

    @pytest.mark.parametrize("index", INDEXES)
    @pytest.mark.parametrize("metric", METRICS, ids=[m.name for m in METRICS])
    def test_index_metric_matrix(self, sharded_dataset, parity_check, index, metric):
        parity_check(
            sharded_dataset,
            0.06,
            index=index,
            metric=metric,
            cases=[(2, "grid", None), (3, "hilbert", None), (8, "grid", None)],
        )

    @pytest.mark.parametrize("algorithm", ["ssj", "ncsj", "csj", "egrid-csj", "pbsm"])
    def test_algorithm_matrix(self, sharded_dataset, parity_check, algorithm):
        parity_check(
            sharded_dataset,
            0.06,
            algorithm=algorithm,
            cases=[(3, "grid", None), (8, "hilbert", None)],
        )

    def test_worker_matrix(self, sharded_dataset, parity_check):
        # workers in {1, 2} per shard count: phase 1 through the real
        # supervised pool must not perturb a single output byte.
        parity_check(
            sharded_dataset,
            0.06,
            cases=[(2, "grid", 2), (3, "hilbert", 2), (8, "grid", 1), (8, "grid", 2)],
        )

    def test_shards_one_equals_no_sharding_pair_set(self, sharded_dataset):
        plain = similarity_join(sharded_dataset, 0.06, algorithm="csj", g=10)
        one = similarity_join(sharded_dataset, 0.06, algorithm="csj", g=10, shards=1)
        assert one.expanded_links() == plain.expanded_links()


class TestCounterIdentity:
    """The repro_join_* metrics are K-invariant (the counter contract)."""

    def _join_counters(self, points, **kwargs):
        reset_registry()
        result = similarity_join(points, 0.06, algorithm="csj", g=10, **kwargs)
        get_registry().record_join_stats(result.stats)
        snapshot = get_registry().snapshot()
        # Wall-clock seconds legitimately vary run to run; every other
        # repro_join_* counter must not.
        return {
            k: v
            for k, v in snapshot.items()
            if k.startswith("repro_join_") and "_seconds_" not in k
        }

    def test_repro_join_metrics_identical_across_k(self, sharded_dataset):
        base = self._join_counters(sharded_dataset, shards=1)
        assert base["repro_join_links_emitted_total"] > 0
        try:
            for k in (2, 3, 8):
                for partitioner in ("grid", "hilbert"):
                    got = self._join_counters(
                        sharded_dataset, shards=k, partitioner=partitioner
                    )
                    assert got == base, (k, partitioner)
        finally:
            reset_registry()

    def test_work_counters_live_in_shard_report_not_stats(self, sharded_dataset):
        result = similarity_join(sharded_dataset, 0.06, shards=4)
        # Phase-1 tree descent work is K-dependent (halo points are
        # probed in more than one shard) so it is quarantined in the
        # shard report; the canonical stats charge nothing for it.
        assert result.stats.distance_computations == 0
        assert result.shard_report["work"]["distance_computations"] > 0

    def test_shard_metrics_recorded(self, sharded_dataset):
        reset_registry()
        try:
            result = similarity_join(
                sharded_dataset, 0.06, shards=4, partitioner="grid"
            )
            snap = get_registry().snapshot()
            assert snap["repro_shard_plans_total"] == 1
            assert snap["repro_shard_count"] == 4
            assert snap["repro_shard_points"] == len(sharded_dataset)
            assert snap["repro_shard_halo_points"] == result.shard_report["halo_points"]
            assert snap["repro_shard_tasks"] == result.shard_report["tasks"]
            assert snap["repro_shard_skew_ratio"] == pytest.approx(
                result.shard_report["skew_ratio"]
            )
        finally:
            reset_registry()


class TestParityProperty:
    """Hypothesis: parity holds on arbitrary datasets, not just ours."""

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(2, 120),
        dim=st.integers(1, 3),
        eps=st.floats(0.02, 0.3),
        k=st.sampled_from(SHARD_COUNTS),
        partitioner=st.sampled_from(["grid", "hilbert"]),
        index=st.sampled_from(INDEXES),
        metric=st.sampled_from(["l1", "l2", "linf"]),
        algorithm=st.sampled_from(["csj", "ssj"]),
    )
    def test_random_datasets_byte_identical(
        self, tmp_path_factory, seed, n, dim, eps, k, partitioner, index,
        metric, algorithm,
    ):
        d = tmp_path_factory.mktemp("shard-prop")
        points = np.random.default_rng(seed).random((n, dim))
        width = width_for(n)
        kwargs = dict(algorithm=algorithm, g=10, index=index, metric=metric)

        def run(path, **extra):
            sink = TextSink(str(path), id_width=width)
            result = similarity_join(points, eps, sink=sink, **kwargs, **extra)
            sink.close()
            return result

        base = run(d / "base.txt", shards=1)
        sharded = run(d / "sharded.txt", shards=k, partitioner=partitioner)
        assert filecmp.cmp(str(d / "base.txt"), str(d / "sharded.txt"), shallow=False)
        assert sharded.stats.links_emitted == base.stats.links_emitted
        assert sharded.stats.groups_emitted == base.stats.groups_emitted
        assert sharded.stats.bytes_written == base.stats.bytes_written
        plain = similarity_join(points, eps, **kwargs)
        assert sharded.expanded_links() == plain.expanded_links()
