"""The durable-I/O seam and the TraceFS interposer.

Covers the seam contract (scoping, sandbox remapping, best-effort
directory fsync visibility) and the recorder: byte-exact write offsets
from text handles, the op vocabulary, fault injection with real errno
semantics, and torn writes.
"""

import errno
import io
import os

import pytest

from repro.io.durable import (
    OsFileSystem,
    SandboxFS,
    best_effort_fsync_dir,
    get_fs,
    scoped_fs,
    set_fs,
)
from repro.io.writer import FixedWidthWriter
from repro.obs.metrics import get_registry, reset_registry
from repro.resilience.sinks import AtomicTextSink
from repro.resilience.vfs import TraceFS


class TestSeam:
    def test_default_is_os_passthrough(self):
        assert isinstance(get_fs(), OsFileSystem)

    def test_scoped_fs_installs_and_restores(self, tmp_path):
        fs = SandboxFS(str(tmp_path / "box"))
        before = get_fs()
        with scoped_fs(fs) as active:
            assert get_fs() is fs is active
        assert get_fs() is before

    def test_scoped_fs_restores_after_exception(self, tmp_path):
        before = get_fs()
        with pytest.raises(RuntimeError):
            with scoped_fs(SandboxFS(str(tmp_path))):
                raise RuntimeError("boom")
        assert get_fs() is before

    def test_set_fs_none_restores_os(self, tmp_path):
        set_fs(SandboxFS(str(tmp_path)))
        try:
            assert isinstance(get_fs(), SandboxFS)
        finally:
            set_fs(None)
        assert isinstance(get_fs(), OsFileSystem)

    def test_fsync_tolerates_memory_handles(self):
        OsFileSystem().fsync(io.StringIO())  # no fileno: flush only

    def test_os_truncate(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_bytes(b"0123456789")
        OsFileSystem().truncate(str(path), 4)
        assert path.read_bytes() == b"0123"


class TestSandboxFS:
    def test_remaps_absolute_paths_under_root(self, tmp_path):
        box = SandboxFS(str(tmp_path / "box"))
        with box.open("/data/out.txt", "w") as handle:
            handle.write("hello")
        real = box.map("/data/out.txt")
        assert real.startswith(str(tmp_path / "box"))
        assert open(real).read() == "hello"
        assert not os.path.exists("/data/out.txt")

    def test_metadata_and_rename(self, tmp_path):
        box = SandboxFS(str(tmp_path / "box"))
        with box.open("/a.txt", "w") as handle:
            handle.write("x")
        assert box.exists("/a.txt") and box.getsize("/a.txt") == 1
        box.replace("/a.txt", "/b.txt")
        assert not box.exists("/a.txt") and box.exists("/b.txt")
        box.unlink("/b.txt")
        assert not box.exists("/b.txt")


class TestBestEffortFsyncDir:
    def test_success_returns_true(self, tmp_path):
        assert best_effort_fsync_dir(str(tmp_path)) is True

    def test_failure_is_visible_not_silent(self, tmp_path):
        registry = reset_registry()
        try:
            ok = best_effort_fsync_dir(str(tmp_path / "does-not-exist"))
        finally:
            pass
        assert ok is False
        counter = registry.counter("repro_fsync_dir_failures_total")
        assert counter.value == 1


class TestTraceFS:
    def test_text_writes_record_byte_offsets(self, tmp_path):
        fs = TraceFS(root=str(tmp_path / "box"))
        with fs.open("/out.txt", "w", encoding="ascii") as handle:
            handle.write("alpha\n")
            handle.write("beta\n")
            fs.fsync(handle)
        kinds = [op.kind for op in fs.ops]
        assert kinds == ["open", "write", "write", "fsync"]
        assert fs.ops[1].offset == 0 and fs.ops[1].data == b"alpha\n"
        assert fs.ops[2].offset == 6 and fs.ops[2].data == b"beta\n"
        with fs.delegate.open("/out.txt", "rb") as handle:
            assert handle.read() == b"alpha\nbeta\n"

    def test_append_offsets_continue_from_existing_size(self, tmp_path):
        fs = TraceFS(root=str(tmp_path / "box"))
        with fs.open("/out.txt", "w") as handle:
            handle.write("12345")
        with fs.open("/out.txt", "a") as handle:
            handle.write("67")
        append_write = fs.ops[-1]
        assert append_write.kind == "write" and append_write.offset == 5

    def test_metadata_ops_recorded(self, tmp_path):
        fs = TraceFS(root=str(tmp_path / "box"))
        with fs.open("/a.txt", "w") as handle:
            handle.write("abc")
        fs.replace("/a.txt", "/b.txt")
        fs.fsync_dir("/")
        fs.truncate("/b.txt", 1)
        fs.unlink("/b.txt")
        kinds = [op.kind for op in fs.ops]
        assert kinds == [
            "open", "write", "replace", "fsync_dir", "truncate", "unlink",
        ]
        assert fs.ops[2].dst == "/b.txt"
        assert fs.ops[4].size == 1

    def test_reads_pass_through_unrecorded(self, tmp_path):
        fs = TraceFS(root=str(tmp_path / "box"))
        with fs.open("/a.txt", "w") as handle:
            handle.write("abc")
        n_ops = len(fs.ops)
        with fs.open("/a.txt", "r") as handle:
            assert handle.read() == "abc"
        assert fs.exists("/a.txt") and fs.getsize("/a.txt") == 3
        assert len(fs.ops) == n_ops

    def test_update_mode_rejected(self, tmp_path):
        fs = TraceFS(root=str(tmp_path / "box"))
        with pytest.raises(OSError):
            fs.open("/a.txt", "r+b")

    def test_fault_injection_write_fails_with_errno(self, tmp_path):
        fs = TraceFS(root=str(tmp_path / "box"),
                     fail_at={1: errno.ENOSPC})
        handle = fs.open("/out.txt", "w")
        with pytest.raises(OSError) as excinfo:
            handle.write("doomed")
        handle.close()
        assert excinfo.value.errno == errno.ENOSPC
        failed = fs.ops[1]
        assert failed.injected == "enospc" and failed.data == b""
        with fs.delegate.open("/out.txt", "rb") as readback:
            assert readback.read() == b""  # the failed write stored nothing

    def test_torn_write_stores_half_then_raises_eio(self, tmp_path):
        fs = TraceFS(root=str(tmp_path / "box"), torn_at={1})
        handle = fs.open("/out.txt", "w")
        with pytest.raises(OSError) as excinfo:
            handle.write("0123456789")
        handle.close()
        assert excinfo.value.errno == errno.EIO
        torn = fs.ops[1]
        assert torn.injected == "torn" and torn.data == b"01234"
        with fs.delegate.open("/out.txt", "rb") as readback:
            assert readback.read() == b"01234"

    def test_metadata_fault_has_no_effect(self, tmp_path):
        fs = TraceFS(root=str(tmp_path / "box"))
        with fs.open("/a.txt", "w") as handle:
            handle.write("abc")
        fs.fail_at = {len(fs.ops): errno.EIO}
        with pytest.raises(OSError):
            fs.replace("/a.txt", "/b.txt")
        assert fs.exists("/a.txt") and not fs.exists("/b.txt")
        assert fs.ops[-1].kind == "replace" and fs.ops[-1].injected == "eio"


class TestSeamIntegration:
    def test_writer_captures_active_fs(self, tmp_path):
        fs = TraceFS(root=str(tmp_path / "box"))
        with scoped_fs(fs):
            writer = FixedWidthWriter("/w.txt", width=4)
        # Writes after the scope still land in the captured filesystem.
        writer.write_link(1, 2)
        writer.close()
        assert fs.delegate.exists("/w.txt")
        assert [op.kind for op in fs.ops][:2] == ["open", "write"]

    def test_atomic_sink_trace_shows_publication_barriers(self, tmp_path):
        fs = TraceFS(root=str(tmp_path / "box"))
        with scoped_fs(fs):
            with AtomicTextSink("/out.txt", id_width=4) as sink:
                sink.write_link(1, 2)
        kinds = [op.kind for op in fs.ops]
        # write → fsync (content durable) → replace (publish) → fsync_dir
        # (rename durable): the exact order the durability contract states.
        assert kinds[-3:] == ["fsync", "replace", "fsync_dir"]
        assert kinds.index("fsync") < kinds.index("replace")

    def test_registry_reset(self):
        # Leave a clean global registry for other test modules.
        reset_registry()
        assert len(get_registry()) == 0
