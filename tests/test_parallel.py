"""Supervised parallel join execution (the worker pool layer).

The load-bearing claim: the pool is an *execution* strategy, not an
algorithm change — output is byte-identical to the serial run for any
worker count, so every correctness theorem carries over unchanged.  The
failure policy (retry, timeout-kill, poison quarantine, straggler
speculation) is exercised with deterministic fault injection.
"""

import filecmp

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import similarity_join
from repro.core.results import CollectSink, TextSink
from repro.core.verify import brute_force_links
from repro.errors import BudgetExceededError, InvalidInputError, PoisonTaskError
from repro.io.writer import width_for
from repro.parallel import (
    JoinSpec,
    SupervisorConfig,
    WorkScheduler,
    parallel_join,
)
from repro.resilience.budget import Budget
from repro.resilience.chaos import FlakyWorker

ALGORITHMS = ["ssj", "csj", "egrid", "pbsm"]


@pytest.fixture(scope="module")
def pts(sharded_dataset):
    # The shared shard-parity dataset: one workload backs both the
    # worker-count and the shard-count determinism matrices (and the CI
    # shard-parity job reseeds it via REPRO_SHARD_SEED).
    return sharded_dataset


def _serial_file(pts, eps, algo, path, g=10):
    sink = TextSink(str(path), id_width=width_for(len(pts)))
    result = similarity_join(pts, eps, algorithm=algo, g=g, sink=sink)
    sink.close()
    return result


class TestDeterminismMatrix:
    """workers in {1, 2, 4} all reproduce the serial output exactly."""

    @pytest.mark.parametrize("algo", ALGORITHMS)
    def test_expanded_links_identical_across_worker_counts(self, pts, algo):
        serial = similarity_join(pts, 0.06, algorithm=algo, g=10)
        expected = sorted(serial.expanded_links())
        for workers in (1, 2, 4):
            par = parallel_join(pts, 0.06, algorithm=algo, g=10, workers=workers)
            assert sorted(par.expanded_links()) == expected, (
                f"{algo} diverged at workers={workers}"
            )

    @pytest.mark.parametrize("algo", ALGORITHMS)
    def test_output_files_byte_identical(self, pts, algo, tmp_path):
        serial_path = tmp_path / "serial.txt"
        r_serial = _serial_file(pts, 0.06, algo, serial_path)
        for workers in (1, 2, 4):
            par_path = tmp_path / f"par{workers}.txt"
            sink = TextSink(str(par_path), id_width=width_for(len(pts)))
            r_par = parallel_join(
                pts, 0.06, algorithm=algo, g=10, workers=workers, sink=sink
            )
            sink.close()
            assert filecmp.cmp(str(serial_path), str(par_path), shallow=False)
            assert r_par.stats.links_emitted == r_serial.stats.links_emitted
            assert r_par.stats.groups_emitted == r_serial.stats.groups_emitted
            assert r_par.stats.bytes_written == r_serial.stats.bytes_written

    def test_compact_counters_match_serial(self, pts):
        serial = similarity_join(pts, 0.06, algorithm="csj", g=10)
        par = parallel_join(pts, 0.06, algorithm="csj", g=10, workers=4)
        assert par.stats.distance_computations == serial.stats.distance_computations
        assert par.stats.early_stops == serial.stats.early_stops
        assert par.algorithm == serial.algorithm


class TestHypothesisDeterminism:
    @given(
        seed=st.integers(0, 2**16),
        algo=st.sampled_from(["csj", "egrid-csj", "pbsm-csj", "ssj"]),
        workers=st.sampled_from([2, 3]),
    )
    @settings(max_examples=5, deadline=None)
    def test_parallel_equals_brute_force(self, seed, algo, workers):
        pts = np.random.default_rng(seed).random((120, 2))
        result = parallel_join(pts, 0.08, algorithm=algo, g=5, workers=workers)
        assert result.expanded_links() == brute_force_links(pts, 0.08)


class TestApiRouting:
    def test_similarity_join_workers_kwarg(self, pts):
        serial = similarity_join(pts, 0.06, algorithm="csj", g=10)
        par = similarity_join(pts, 0.06, algorithm="csj", g=10, workers=2)
        assert sorted(par.expanded_links()) == sorted(serial.expanded_links())

    def test_workers_one_or_none_stays_serial(self, pts):
        # No pool machinery: identical object path as the plain call.
        r0 = similarity_join(pts, 0.06, algorithm="csj", workers=None)
        r1 = similarity_join(pts, 0.06, algorithm="csj", workers=1)
        assert sorted(r0.expanded_links()) == sorted(r1.expanded_links())

    def test_prebuilt_index_rejected_in_parallel(self, pts):
        from repro.api import build_index

        tree = build_index(pts, "rstar")
        with pytest.raises(InvalidInputError, match="prebuilt"):
            similarity_join(pts, 0.06, index=tree, workers=2)

    def test_bad_worker_config_rejected(self):
        with pytest.raises(InvalidInputError):
            SupervisorConfig(workers=0)
        with pytest.raises(InvalidInputError):
            SupervisorConfig(workers=2, task_timeout=-1.0)


class TestFailurePolicy:
    def test_killed_worker_respawned_and_task_retried(self, pts, tmp_path):
        serial_path = tmp_path / "serial.txt"
        _serial_file(pts, 0.06, "csj", serial_path)
        # One SIGKILL budgeted: the retry lands on a fresh worker and wins.
        fault = FlakyWorker(kill_at=(1,), max_failures=1)
        par_path = tmp_path / "par.txt"
        sink = TextSink(str(par_path), id_width=width_for(len(pts)))
        parallel_join(
            pts, 0.06, algorithm="csj", g=10, workers=2, sink=sink, fault=fault
        )
        sink.close()
        assert filecmp.cmp(str(serial_path), str(par_path), shallow=False)

    def test_poison_task_quarantined_with_partial(self, pts):
        fault = FlakyWorker(error_at=(2,))  # fails on every attempt
        with pytest.raises(PoisonTaskError) as info:
            parallel_join(pts, 0.06, algorithm="csj", g=10, workers=2,
                          fault=fault)
        err = info.value
        assert err.task_id == 2
        assert err.attempts == 3  # 1 try + max_task_retries(2)
        assert err.exit_code == 6
        assert err.partial is not None
        # Every *other* task's output made it into the partial result.
        assert err.partial.stats.links_emitted + err.partial.stats.groups_emitted > 0

    def test_worker_killing_task_quarantined(self, pts):
        fault = FlakyWorker(kill_at=(0,))  # unlimited kill budget
        with pytest.raises(PoisonTaskError) as info:
            parallel_join(pts, 0.06, algorithm="csj", g=10, workers=2,
                          fault=fault)
        assert info.value.task_id == 0
        assert info.value.attempts == 3

    def test_hung_task_killed_and_retried(self, pts, tmp_path):
        serial_path = tmp_path / "serial.txt"
        _serial_file(pts, 0.06, "csj", serial_path)
        fault = FlakyWorker(hang_at=(1,), max_failures=1, hang_seconds=60.0)
        config = SupervisorConfig(
            workers=2, task_timeout=0.4, heartbeat_grace=30.0
        )
        par_path = tmp_path / "par.txt"
        sink = TextSink(str(par_path), id_width=width_for(len(pts)))
        parallel_join(
            pts, 0.06, algorithm="csj", g=10, workers=2, sink=sink,
            fault=fault, config=config,
        )
        sink.close()
        assert filecmp.cmp(str(serial_path), str(par_path), shallow=False)

    def test_straggler_speculation_rescues_hung_worker(self, pts):
        spec = JoinSpec(points=pts, eps=0.06, algorithm="csj", g=10)
        state = spec.build_state()
        sink = CollectSink(id_width=width_for(len(pts)))
        buffer = state.make_buffer(sink, sink.stats)
        # Task 0 hangs once (budget 1); no task timeout — only the
        # speculative duplicate can rescue the run.
        fault = FlakyWorker(hang_at=(0,), max_failures=1, hang_seconds=60.0)
        config = SupervisorConfig(
            workers=2, speculate=True, straggler_factor=0.5,
            straggler_min_seconds=0.1, heartbeat_grace=30.0,
        )
        scheduler = WorkScheduler(
            state, sink, config, stats=sink.stats, buffer=buffer, fault=fault
        )
        scheduler.run()
        assert scheduler.merged == len(state.tasks)
        assert scheduler.speculated >= 1

    def test_deadline_breach_raises_with_partial(self, pts):
        budget = Budget(deadline_seconds=0.0, check_every=1)
        with pytest.raises(BudgetExceededError) as info:
            parallel_join(pts, 0.06, algorithm="csj", g=10, workers=2,
                          budget=budget)
        assert info.value.kind == "deadline"
        assert info.value.partial is not None

    def test_byte_cap_partial_is_serial_prefix(self, pts, tmp_path):
        serial_path = tmp_path / "serial.txt"
        _serial_file(pts, 0.06, "csj", serial_path)
        cap = 600
        budget = Budget(max_output_bytes=cap, check_every=1)
        par_path = tmp_path / "par.txt"
        sink = TextSink(str(par_path), id_width=width_for(len(pts)))
        with pytest.raises(BudgetExceededError):
            parallel_join(pts, 0.06, algorithm="csj", g=10, workers=4,
                          sink=sink, budget=budget)
        sink.close()
        whole = open(serial_path, "rb").read()
        prefix = open(par_path, "rb").read()
        assert prefix  # made progress before the cap
        assert whole.startswith(prefix)
