"""Unit tests for the ground-truth joins (repro.core.bruteforce)."""

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_cross_links, brute_force_links, count_links


class TestBruteForceLinks:
    def test_simple(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0]])
        assert brute_force_links(pts, 0.2) == {(0, 1)}

    def test_strict_inequality(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert brute_force_links(pts, 1.0) == set()
        assert brute_force_links(pts, 1.0 + 1e-9) == {(0, 1)}

    def test_blocking_matches_unblocked(self, rng):
        pts = rng.random((300, 2))
        assert brute_force_links(pts, 0.1, block=64) == brute_force_links(
            pts, 0.1, block=1024
        )

    def test_metric_sensitive(self, rng):
        pts = rng.random((100, 2))
        l2 = brute_force_links(pts, 0.2, metric="l2")
        l1 = brute_force_links(pts, 0.2, metric="l1")
        linf = brute_force_links(pts, 0.2, metric="linf")
        # L1 ball is inside L2 ball is inside Linf ball.
        assert l1 <= l2 <= linf

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            brute_force_links(np.zeros((2, 2)), 0.0)

    def test_pairs_are_ordered(self, rng):
        for i, j in brute_force_links(rng.random((50, 2)), 0.3):
            assert i < j


class TestCrossLinks:
    def test_simple(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.05, 0.0], [1.0, 1.0]])
        assert brute_force_cross_links(a, b, 0.1) == {(0, 0)}

    def test_positional_ids(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        b = np.array([[1.0, 1.0], [0.0, 0.0]])
        assert brute_force_cross_links(a, b, 0.01) == {(0, 1), (1, 0)}

    def test_blocked(self, rng):
        a, b = rng.random((150, 2)), rng.random((170, 2))
        assert brute_force_cross_links(a, b, 0.1, block=32) == brute_force_cross_links(
            a, b, 0.1
        )

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            brute_force_cross_links(np.zeros((1, 2)), np.zeros((1, 2)), -1.0)


class TestCountLinks:
    def test_matches_brute_force(self, rng):
        pts = rng.random((400, 2))
        for eps in (0.01, 0.1, 0.5):
            assert count_links(pts, eps) == len(brute_force_links(pts, eps))

    def test_strictness_on_exact_distances(self):
        """Grid points realise many exact distances — the k-d-tree count
        must agree with the strict brute force."""
        side = 10
        xs, ys = np.meshgrid(np.arange(side), np.arange(side))
        pts = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(float)
        for eps in (1.0, np.sqrt(2.0), 2.0):
            assert count_links(pts, eps) == len(brute_force_links(pts, eps))

    @pytest.mark.parametrize("metric", ["l1", "linf", 3])
    def test_minkowski_metrics(self, rng, metric):
        pts = rng.random((200, 2))
        assert count_links(pts, 0.15, metric) == len(
            brute_force_links(pts, 0.15, metric)
        )

    def test_generic_metric_fallback(self, rng):
        """A metric without a cKDTree mapping uses the blocked counter."""
        from repro.geometry.metrics import Minkowski

        class Odd(Minkowski):
            def __init__(self):
                super().__init__(2.0)
                self.name = "custom-metric"

        pts = rng.random((150, 2))
        assert count_links(pts, 0.2, Odd()) == len(brute_force_links(pts, 0.2))

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            count_links(np.zeros((2, 2)), 0.0)
