"""The overload-resilient serving layer: admission, brownout, breakers.

Every test drives :class:`repro.service.JoinService` (or the breaker
state machine directly, with an injected clock) and asserts the serving
contract: bounded queues, exactly one typed outcome per request,
byte-identical admitted answers, and ``degraded=True`` estimator
answers instead of failures.
"""

import threading
import time

import numpy as np
import pytest

from repro.api import open_service, similarity_join
from repro.errors import AdmissionRejectedError, CircuitOpenError
from repro.obs.metrics import get_registry, reset_registry
from repro.resilience.chaos import OverloadInjector
from repro.service import (
    OUTCOMES,
    CircuitBreaker,
    JoinRequest,
    JoinService,
    RequestOutcome,
    ServiceConfig,
)


@pytest.fixture(autouse=True)
def _fresh_metrics():
    reset_registry()
    yield
    reset_registry()


@pytest.fixture
def pts():
    return np.random.default_rng(0).random((300, 2))


def _service(chaos=None, **kwargs):
    kwargs.setdefault("queue_depth", 4)
    kwargs.setdefault("breaker_cooldown_base", 0.01)
    return JoinService(ServiceConfig(**kwargs), chaos=chaos)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        br = CircuitBreaker("t")
        assert br.state == "closed"
        assert br.allow()
        assert br.retry_after() == 0.0

    def test_opens_at_threshold(self):
        clock = FakeClock()
        br = CircuitBreaker("t", failure_threshold=3, clock=clock)
        br.record_failure()
        br.record_failure()
        assert br.state == "closed"
        br.record_failure()
        assert br.state == "open"
        assert not br.allow()
        assert br.retry_after() > 0.0

    def test_success_resets_failure_count(self):
        br = CircuitBreaker("t", failure_threshold=2)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == "closed"

    def test_half_open_probe_then_close(self):
        clock = FakeClock()
        br = CircuitBreaker(
            "t", failure_threshold=1, cooldown_base=1.0, clock=clock
        )
        br.record_failure()
        assert br.state == "open"
        clock.advance(100.0)  # past any jittered cooldown
        assert br.allow()  # consumes the single probe slot
        assert br.state == "half_open"
        assert not br.allow()  # no second probe
        br.record_success()
        assert br.state == "closed"
        assert br.allow()

    def test_failed_probe_reopens_with_longer_cooldown(self):
        clock = FakeClock()
        br = CircuitBreaker(
            "t", failure_threshold=1, cooldown_base=1.0, cooldown_max=1e9,
            seed=3, clock=clock,
        )
        br.record_failure()
        first = br.retry_after()
        clock.advance(first + 1e-9)
        assert br.allow()
        br.record_failure()  # probe failed
        assert br.state == "open"
        # Decorrelated jitter grows in expectation; with these seeds the
        # second cooldown exceeds the base for sure (drawn from
        # U(base, 3 * previous) with previous >= base).
        assert br.retry_after() >= 0.0
        assert br._cooldown >= br.cooldown_base

    def test_jitter_is_seed_deterministic(self):
        def cooldowns(seed):
            clock = FakeClock()
            br = CircuitBreaker(
                "t", failure_threshold=1, cooldown_base=0.5,
                cooldown_max=1e9, seed=seed, clock=clock,
            )
            out = []
            for _ in range(5):
                br.record_failure()
                out.append(br._cooldown)
                clock.advance(br._cooldown + 1e-9)
                assert br.allow()  # half-open probe
            return out

        assert cooldowns(7) == cooldowns(7)
        assert cooldowns(7) != cooldowns(8)

    def test_jitter_bounds(self):
        clock = FakeClock()
        br = CircuitBreaker(
            "t", failure_threshold=1, cooldown_base=0.5, cooldown_max=2.0,
            clock=clock,
        )
        for _ in range(20):
            br.record_failure()
            assert 0.5 <= br._cooldown <= 2.0
            clock.advance(br._cooldown + 1e-9)
            assert br.allow()

    def test_call_wraps_and_counts(self):
        br = CircuitBreaker("t", failure_threshold=1, cooldown_base=60.0)
        with pytest.raises(RuntimeError):
            br.call(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        assert br.state == "open"
        with pytest.raises(CircuitOpenError) as exc_info:
            br.call(lambda: 42)
        assert exc_info.value.exit_code == 10
        assert exc_info.value.retry_after > 0.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("t", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("t", half_open_probes=0)

    def test_acquire_reports_probe_and_release_returns_slot(self):
        clock = FakeClock()
        br = CircuitBreaker(
            "t", failure_threshold=1, cooldown_base=1.0, clock=clock
        )
        assert br.acquire() == (True, False)  # closed: no probe consumed
        br.record_failure()
        assert br.acquire() == (False, False)  # open and cooling
        clock.advance(100.0)
        assert br.acquire() == (True, True)  # the half-open probe slot
        assert br.state == "half_open"
        assert not br.allow()  # slot taken
        br.release_probe()
        assert br.allow()  # slot returned, consumable again

    def test_allow_non_consuming_health_check(self):
        clock = FakeClock()
        br = CircuitBreaker(
            "t", failure_threshold=1, cooldown_base=1.0, clock=clock
        )
        assert br.allow(consume=False)
        br.record_failure()
        assert not br.allow(consume=False)  # open, cooling
        clock.advance(100.0)
        assert br.allow(consume=False)  # drives half-open, burns nothing
        assert br.state == "half_open"
        assert br.acquire() == (True, True)  # slot still available

    def test_retry_after_positive_while_probes_in_flight(self):
        # A rejection issued half-open (probes exhausted) must not hint
        # "retry immediately" — that is the retry storm the breaker
        # exists to prevent.
        clock = FakeClock()
        br = CircuitBreaker(
            "t", failure_threshold=1, cooldown_base=1.0, clock=clock
        )
        br.record_failure()
        clock.advance(100.0)
        assert br.allow()  # consume the only probe
        assert not br.allow()
        assert br.retry_after() > 0.0


class TestAdmission:
    def test_bounded_queue_sheds_with_retry_after(self, pts):
        # One executor stuck behind a slow first request: the queue
        # fills to its bound and the overflow is shed, typed.
        release = threading.Event()
        executing = threading.Event()

        class Stall:
            def before_execute(self, request_id):
                executing.set()
                release.wait(timeout=10.0)

        svc = _service(chaos=Stall(), queue_depth=2)
        try:
            tickets = [svc.submit(JoinRequest(points=pts, eps=0.05))]
            # Wait until the executor picked it up, then fill the queue:
            # 1 executing + 2 queued fit; everything beyond is shed.
            assert executing.wait(10.0)
            for _ in range(2):
                tickets.append(
                    svc.submit(JoinRequest(points=pts, eps=0.05))
                )
            with pytest.raises(AdmissionRejectedError) as exc_info:
                svc.submit(JoinRequest(points=pts, eps=0.05))
            assert exc_info.value.exit_code == 9
            assert exc_info.value.retry_after > 0.0
            assert exc_info.value.queue_depth == 2
            assert svc.peak_queue <= svc.config.queue_depth
            assert svc.counts()["shed"] == 1
        finally:
            release.set()
            svc.close()
        assert all(t.wait(10.0).status == "admitted" for t in tickets)

    def test_shed_outcome_recorded_and_counted(self, pts):
        release = threading.Event()
        executing = threading.Event()

        class Stall:
            def before_execute(self, request_id):
                executing.set()
                release.wait(timeout=10.0)

        svc = _service(chaos=Stall(), queue_depth=1)
        try:
            svc.submit(JoinRequest(points=pts, eps=0.05))
            assert executing.wait(10.0)
            svc.submit(JoinRequest(points=pts, eps=0.05))
            with pytest.raises(AdmissionRejectedError):
                svc.submit(JoinRequest(points=pts, eps=0.05, request_id="over"))
            shed = [o for o in svc.outcomes if o.status == "shed"]
            assert [o.request_id for o in shed] == ["over"]
            assert shed[0].retry_after > 0.0
        finally:
            release.set()
            svc.close()
        snap = get_registry().snapshot()
        assert snap.get("repro_service_shed_total") == 1

    def test_submit_after_close_refused(self, pts):
        svc = _service()
        svc.close()
        with pytest.raises(RuntimeError):
            svc.submit(JoinRequest(points=pts, eps=0.05))

    def test_close_without_drain_sheds_queue(self, pts):
        release = threading.Event()

        class Stall:
            def before_execute(self, request_id):
                release.wait(timeout=10.0)

        svc = _service(chaos=Stall(), queue_depth=4)
        t0 = svc.submit(JoinRequest(points=pts, eps=0.05))
        t1 = svc.submit(JoinRequest(points=pts, eps=0.05))
        release.set()
        svc.close(drain=False)
        # The executing request finishes; the queued one was shed.
        statuses = sorted([t0.wait(10.0).status, t1.wait(10.0).status])
        assert "shed" in statuses


class TestBrownoutLadder:
    def test_expired_deadline_degrades_not_fails(self, pts):
        svc = _service()
        try:
            ticket = svc.submit(
                JoinRequest(points=pts, eps=0.05, deadline_seconds=1e-6)
            )
            outcome = ticket.wait(10.0)
        finally:
            svc.close()
        assert outcome.status == "degraded"
        assert outcome.result is not None
        assert outcome.result.degraded is True
        assert outcome.result.estimated is True
        assert outcome.result.stats.links_emitted > 0  # estimator answer
        assert outcome.degraded

    def test_byte_budget_breach_degrades(self, pts):
        svc = _service()
        try:
            ticket = svc.submit(
                JoinRequest(
                    points=pts, eps=0.2, algorithm="csj", max_output_bytes=64
                )
            )
            outcome = ticket.wait(10.0)
        finally:
            svc.close()
        assert outcome.status == "degraded"
        assert outcome.result.degraded is True

    def test_normal_request_admitted_exact(self, pts):
        svc = _service()
        try:
            outcome = svc.submit(JoinRequest(points=pts, eps=0.05)).wait(10.0)
        finally:
            svc.close()
        assert outcome.status == "admitted"
        assert outcome.result.degraded is False
        assert outcome.result.estimated is False

    def test_admitted_byte_identical_to_offline(self, pts):
        svc = _service()
        try:
            outcome = svc.submit(
                JoinRequest(points=pts, eps=0.06, algorithm="csj", g=10)
            ).wait(10.0)
        finally:
            svc.close()
        offline = similarity_join(pts, 0.06, algorithm="csj", g=10)
        assert outcome.result.links == offline.links
        assert outcome.result.group_pairs == offline.group_pairs
        assert (
            outcome.result.stats.bytes_written == offline.stats.bytes_written
        )

    def test_brownout_engine_same_bytes(self, pts):
        # Rung 2 swaps engines; the contract is identical bytes, so an
        # admitted answer under brownout matches the vectorized offline
        # run exactly.
        offline = similarity_join(pts, 0.05, engine="vectorized")
        browned = similarity_join(pts, 0.05, engine="scalar")
        assert browned.links == offline.links
        assert browned.stats.bytes_written == offline.stats.bytes_written

    def test_degrade_threshold_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(brownout_threshold=0.9, degrade_threshold=0.5)
        with pytest.raises(ValueError):
            ServiceConfig(queue_depth=0)


class TestBreakerIntegration:
    def test_pool_failures_open_breaker_then_fail_fast(self, pts):
        chaos = OverloadInjector(seed=1, fail_at=(0,), failure="pool")
        svc = _service(
            chaos=chaos, breaker_threshold=1, breaker_cooldown_base=30.0
        )
        try:
            requests = chaos.storm(pts, 0.05, requests=1)
            outcome = svc.submit(requests[0]).wait(10.0)
            # The failed dependency browns the request out, not kills it.
            assert outcome.status == "degraded"
            assert svc.pool_breaker.state == "open"
            with pytest.raises(CircuitOpenError) as exc_info:
                svc.submit(JoinRequest(points=pts, eps=0.05))
            assert exc_info.value.exit_code == 10
            assert exc_info.value.retry_after > 0.0
            assert svc.counts()["breaker_open"] == 1
        finally:
            svc.close()

    def test_sink_failures_feed_sink_breaker(self, pts):
        chaos = OverloadInjector(seed=1, fail_at=(0, 1), failure="sink")
        svc = _service(chaos=chaos, breaker_threshold=2)
        try:
            requests = chaos.storm(pts, 0.05, requests=2)
            outcomes = svc.serve(requests)
            assert all(o.status == "degraded" for o in outcomes)
            assert svc.sink_breaker.state == "open"
            # The pool breaker is untouched: admission stays open.
            assert svc.pool_breaker.state == "closed"
        finally:
            svc.close()

    def test_degraded_probe_request_does_not_wedge_breaker(self, pts):
        # Regression: the half-open probe slot consumed at admission
        # used to leak when the admitted request then degraded without
        # touching the pool, wedging the circuit half-open with zero
        # probes — every later submit failed until process restart.
        chaos = OverloadInjector(seed=1, fail_at=(0,), failure="pool")
        svc = _service(
            chaos=chaos,
            breaker_threshold=1,
            breaker_cooldown_base=0.01,
            breaker_cooldown_max=0.05,
        )
        try:
            requests = chaos.storm(pts, 0.05, requests=1)
            svc.submit(requests[0]).wait(10.0)
            assert svc.pool_breaker.state == "open"
            time.sleep(0.2)  # next submit consumes the half-open probe
            degraded = svc.submit(
                JoinRequest(points=pts, eps=0.05, deadline_seconds=1e-6)
            ).wait(10.0)
            assert degraded.status == "degraded"  # never reached the pool
            assert svc.pool_breaker.state == "half_open"
            # The slot was released, so the next request can still probe
            # and close the circuit.
            outcome = svc.submit(JoinRequest(points=pts, eps=0.05)).wait(10.0)
            assert outcome.status == "admitted"
            assert svc.pool_breaker.state == "closed"
        finally:
            svc.close()

    def test_breaker_recovers_after_cooldown(self, pts):
        chaos = OverloadInjector(seed=1, fail_at=(0,), failure="pool")
        svc = _service(
            chaos=chaos,
            breaker_threshold=1,
            breaker_cooldown_base=0.01,
            breaker_cooldown_max=0.05,
        )
        try:
            requests = chaos.storm(pts, 0.05, requests=1)
            svc.submit(requests[0]).wait(10.0)
            assert svc.pool_breaker.state == "open"
            time.sleep(0.2)  # past the jittered cooldown
            outcome = svc.submit(JoinRequest(points=pts, eps=0.05)).wait(10.0)
            assert outcome.status == "admitted"
            assert svc.pool_breaker.state == "closed"
        finally:
            svc.close()


class TestOutcomePartition:
    def test_storm_every_request_exactly_one_outcome(self, pts):
        chaos = OverloadInjector(seed=7, slow_every=4, slow_seconds=0.03)
        svc = _service(chaos=chaos, queue_depth=3, default_deadline=5.0)
        try:
            requests = chaos.storm(pts, 0.05, requests=16, deadline_seconds=5.0)
            outcomes = svc.serve(requests)
        finally:
            svc.close()
        assert len(outcomes) == len(requests)
        assert [o.request_id for o in outcomes] == [
            r.request_id for r in requests
        ]
        for outcome in outcomes:
            assert outcome.status in OUTCOMES
        # Counters agree with the audit trail, one increment per request.
        counts = svc.counts()
        assert sum(counts.values()) == len(requests)
        snap = get_registry().snapshot()
        for status, n in counts.items():
            if n:
                assert snap[f"repro_service_{status}_total"] == n
        assert svc.peak_queue <= svc.config.queue_depth

    def test_storm_is_seed_reproducible(self, pts):
        a = OverloadInjector(seed=5).storm(pts, 0.05, requests=6)
        b = OverloadInjector(seed=5).storm(pts, 0.05, requests=6)
        for ra, rb in zip(a, b):
            assert ra.request_id == rb.request_id
            assert ra.eps == rb.eps
            assert np.array_equal(ra.points, rb.points)
        c = OverloadInjector(seed=6).storm(pts, 0.05, requests=6)
        assert any(
            not np.array_equal(ra.points, rc.points) for ra, rc in zip(a, c)
        )

    def test_serve_duplicate_request_ids_keeps_outcomes_straight(self, pts):
        # Regression: serve() used to recover shed outcomes by scanning
        # the audit trail for the first matching request id; with
        # caller-supplied duplicate ids the wrong request's outcome came
        # back.  The outcome now rides on the rejection exception.
        release = threading.Event()
        executing = threading.Event()

        class Stall:
            def before_execute(self, request_id):
                executing.set()
                release.wait(timeout=10.0)

        svc = _service(chaos=Stall(), queue_depth=1)
        try:
            svc.submit(JoinRequest(points=pts, eps=0.05, request_id="dup"))
            assert executing.wait(10.0)
            # Room for exactly one more "dup"; the second in the batch
            # sheds while its twin later finishes admitted.
            batch = [
                JoinRequest(points=pts, eps=0.05, request_id="dup"),
                JoinRequest(points=pts, eps=0.05, request_id="dup"),
            ]
            threading.Timer(0.1, release.set).start()
            outcomes = svc.serve(batch)
        finally:
            release.set()
            svc.close()
        assert [o.status for o in outcomes] == ["admitted", "shed"]

    def test_failed_outcome_for_invalid_algorithm(self, pts):
        svc = _service()
        try:
            outcome = svc.submit(
                JoinRequest(points=pts, eps=0.05, algorithm="nope")
            ).wait(10.0)
        finally:
            svc.close()
        assert outcome.status == "failed"
        assert outcome.error is not None


class TestOpenService:
    def test_factory_and_context_manager(self, pts):
        with open_service(queue_depth=2, deadline_ms=5000.0) as svc:
            assert svc.config.queue_depth == 2
            assert svc.config.default_deadline == 5.0
            outcome = svc.submit(JoinRequest(points=pts, eps=0.05)).wait(10.0)
            assert outcome.status == "admitted"

    def test_deadline_ms_none(self):
        with open_service() as svc:
            assert svc.config.default_deadline is None


class TestMetricsSurface:
    def test_pressure_gauges_exported(self, pts):
        svc = _service()
        try:
            svc.submit(JoinRequest(points=pts, eps=0.05)).wait(10.0)
        finally:
            svc.close()
        snap = get_registry().snapshot()
        assert "repro_service_queue_depth" in snap
        assert "repro_service_queue_limit" in snap

    def test_labels_argument_builds_canonical_keys(self):
        registry = get_registry()
        registry.counter("demo_total", "demo", labels={"b": "x", "a": "y"}).inc()
        assert get_registry().snapshot()['demo_total{a="y",b="x"}'] == 1

    def test_breaker_transition_metrics(self):
        br = CircuitBreaker("demo", failure_threshold=1)
        br.record_failure()
        snap = get_registry().snapshot()
        assert (
            snap['repro_service_breaker_transitions_total{breaker="demo",to="open"}']
            == 1
        )
        assert snap['repro_service_breaker_state{breaker="demo"}'] == 2
