"""Tests for the observability layer (repro.obs) and its CLI wiring."""

import io
import json
import logging

import numpy as np
import pytest

from repro.obs.logging import (
    JsonFormatter,
    bind_context,
    configure_logging,
    current_context,
    get_logger,
    log_mode,
    reset_logging,
    run_context,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from repro.obs.progress import ProgressHeartbeat
from repro.obs.tracing import (
    Tracer,
    configure_tracing,
    disable_tracing,
    get_tracer,
    span,
    trace_event,
    tracing_enabled,
)
from repro.stats.counters import JoinStats


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with the layer fully disabled."""
    reset_logging()
    disable_tracing()
    reset_registry()
    yield
    reset_logging()
    disable_tracing()
    reset_registry()


# ---------------------------------------------------------------------------
# Logging
# ---------------------------------------------------------------------------

class TestLogging:
    def test_silent_by_default(self, capsys):
        # NullHandler contract: an unconfigured library logger prints
        # nothing and does not warn about missing handlers.
        get_logger("core.ssj").warning("should not appear")
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""
        assert log_mode() is None

    def test_logger_hierarchy(self):
        assert get_logger().name == "repro"
        assert get_logger("core.ssj").name == "repro.core.ssj"
        # Parent chain reaches the "repro" root of the hierarchy.
        parent = get_logger("core.ssj").parent
        while parent is not None and parent.name != "repro":
            parent = parent.parent
        assert parent is get_logger()

    def test_json_lines_output(self):
        stream = io.StringIO()
        configure_logging(level="info", json_lines=True, stream=stream)
        get_logger("test").info("hello", extra={"answer": 42})
        record = json.loads(stream.getvalue())
        assert record["event"] == "hello"
        assert record["level"] == "info"
        assert record["logger"] == "repro.test"
        assert record["answer"] == 42
        assert isinstance(record["ts"], float)
        assert log_mode() == "json"

    def test_plain_output(self):
        stream = io.StringIO()
        configure_logging(level="info", json_lines=False, stream=stream)
        get_logger("test").info("hello", extra={"answer": 42})
        line = stream.getvalue()
        assert "hello" in line and "answer=42" in line
        assert log_mode() == "plain"

    def test_level_filtering(self):
        stream = io.StringIO()
        configure_logging(level="warning", json_lines=True, stream=stream)
        get_logger("test").info("dropped")
        get_logger("test").warning("kept")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "kept"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(level="loud")

    def test_run_context_scoping(self):
        stream = io.StringIO()
        configure_logging(level="info", json_lines=True, stream=stream)
        with run_context(run="r1", algorithm="csj"):
            assert current_context() == {"run": "r1", "algorithm": "csj"}
            with run_context(algorithm="ssj", eps=0.1):
                get_logger("t").info("inner")
            get_logger("t").info("outer")
        get_logger("t").info("outside")
        inner, outer, outside = [
            json.loads(ln) for ln in stream.getvalue().splitlines()
        ]
        assert inner["run"] == "r1" and inner["algorithm"] == "ssj"
        assert inner["eps"] == 0.1
        assert outer["algorithm"] == "csj" and "eps" not in outer
        assert "run" not in outside

    def test_explicit_extra_beats_context(self):
        stream = io.StringIO()
        configure_logging(level="info", json_lines=True, stream=stream)
        with run_context(algorithm="csj"):
            get_logger("t").info("e", extra={"algorithm": "override"})
        assert json.loads(stream.getvalue())["algorithm"] == "override"

    def test_bind_context_is_permanent(self):
        token_before = current_context()
        bind_context(worker=3)
        try:
            assert current_context()["worker"] == 3
        finally:
            # Restore for other tests (bind_context has no unwind).
            import repro.obs.logging as obs_logging

            obs_logging._context.set(token_before)

    def test_configure_is_idempotent(self):
        stream = io.StringIO()
        configure_logging(level="info", json_lines=True, stream=stream)
        configure_logging(level="info", json_lines=True, stream=stream)
        root = logging.getLogger("repro")
        tagged = [
            h for h in root.handlers
            if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(tagged) == 1

    def test_exception_serialised(self):
        stream = io.StringIO()
        configure_logging(level="info", json_lines=True, stream=stream)
        try:
            raise ValueError("boom")
        except ValueError:
            get_logger("t").exception("failed")
        record = json.loads(stream.getvalue())
        assert "boom" in record["exception"]

    def test_non_json_values_stringified(self):
        stream = io.StringIO()
        configure_logging(level="info", json_lines=True, stream=stream)
        get_logger("t").info("e", extra={"obj": object()})
        assert "object object" in json.loads(stream.getvalue())["obj"]


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_monotonic(self):
        c = Counter("c_total")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("g")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7

    def test_histogram_buckets(self):
        h = Histogram("h", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(5.55)
        cumulative = dict(h.cumulative())
        assert cumulative[0.1] == 1
        assert cumulative[1.0] == 2
        assert cumulative[float("inf")] == 3

    def test_registry_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total")
        b = reg.counter("x_total")
        assert a is b
        assert len(reg) == 1
        assert "x_total" in reg
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_record_join_stats_matches(self):
        reg = MetricsRegistry()
        stats = JoinStats(
            links_emitted=12, groups_emitted=3, bytes_written=99,
            distance_computations=456, compute_time=1.5, write_time=0.5,
        )
        reg.record_join_stats(stats)
        snap = reg.snapshot()
        assert snap["repro_join_links_emitted_total"] == 12
        assert snap["repro_join_groups_emitted_total"] == 3
        assert snap["repro_join_bytes_written_total"] == 99
        assert snap["repro_join_distance_computations_total"] == 456
        assert snap["repro_join_compute_time_seconds_total"] == 1.5
        assert snap["repro_join_total_time_seconds_total"] == 2.0
        assert snap["repro_join_pairs_reported_total"] == 12

    def test_record_budget(self):
        from repro.resilience.budget import Budget

        reg = MetricsRegistry()
        budget = Budget(deadline_seconds=30.0, max_output_bytes=1000)
        budget.start()
        reg.record_budget(budget)
        snap = reg.snapshot()
        assert snap["repro_budget_active"] == 1
        assert snap["repro_budget_deadline_seconds"] == 30.0
        assert snap["repro_budget_max_output_bytes"] == 1000

    def test_json_export_parses(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc(3)
        reg.histogram("d_seconds", buckets=(1.0,)).observe(0.5)
        snap = json.loads(reg.to_json())
        assert snap["a_total"] == 3
        assert snap["d_seconds"]["count"] == 1
        assert snap["d_seconds"]["buckets"]["+Inf"] == 1

    def test_prometheus_export_format(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "things").inc(3)
        reg.gauge("b", "level").set(7)
        reg.histogram("d_seconds", "durations", buckets=(1.0,)).observe(0.5)
        text = reg.to_prometheus()
        assert "# HELP a_total things" in text
        assert "# TYPE a_total counter" in text
        assert "a_total 3" in text
        assert "# TYPE b gauge" in text
        assert 'd_seconds_bucket{le="1.0"} 1' in text
        assert 'd_seconds_bucket{le="+Inf"} 1' in text
        assert "d_seconds_count 1" in text

    def test_reset_registry_replaces_global(self):
        get_registry().counter("junk_total").inc()
        fresh = reset_registry()
        assert get_registry() is fresh
        assert "junk_total" not in fresh


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------

class TestTracing:
    def test_disabled_span_is_shared_noop(self):
        assert not tracing_enabled()
        a = span("descend")
        b = span("emit")
        assert a is b  # one shared object: the disabled path allocates nothing
        with a:
            pass
        trace_event("nothing")  # no-op, no error

    def test_spans_written_as_json_lines(self):
        stream = io.StringIO()
        tracer = Tracer(stream)
        with tracer.span("descend", algorithm="csj"):
            with tracer.span("emit"):
                pass
        records = [json.loads(ln) for ln in stream.getvalue().splitlines()]
        assert len(records) == 2
        emit, descend = records  # children complete first
        assert emit["name"] == "emit"
        assert emit["path"] == "descend;emit"
        assert emit["depth"] == 1
        assert descend["name"] == "descend"
        assert descend["path"] == "descend"
        assert descend["algorithm"] == "csj"
        assert descend["dur"] >= emit["dur"]

    def test_events(self):
        stream = io.StringIO()
        tracer = Tracer(stream)
        with tracer.span("outer"):
            tracer.event("worker-spawn", worker=2)
        records = [json.loads(ln) for ln in stream.getvalue().splitlines()]
        event = records[0]
        assert event["event"] is True
        assert event["dur"] == 0.0
        assert event["path"] == "outer;worker-spawn"
        assert event["worker"] == 2

    def test_global_tracer_wiring(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = configure_tracing(str(path))
        assert get_tracer() is tracer and tracing_enabled()
        with span("descend", eps=0.1):
            pass
        disable_tracing()
        assert get_tracer() is None
        records = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert records[0]["name"] == "descend"
        assert tracer.records == 1

    def test_join_emits_descend_span(self, tmp_path):
        from repro.api import similarity_join

        path = tmp_path / "t.jsonl"
        configure_tracing(str(path))
        pts = np.random.default_rng(0).random((150, 2))
        similarity_join(pts, 0.1, algorithm="csj")
        disable_tracing()
        names = {
            json.loads(ln)["name"] for ln in path.read_text().splitlines()
        }
        assert "descend" in names
        assert "emit" in names

    def test_checkpoint_span_recorded(self, tmp_path):
        from repro.resilience.checkpoint import CheckpointedJoin

        path = tmp_path / "t.jsonl"
        configure_tracing(str(path))
        pts = np.random.default_rng(0).random((150, 2))
        CheckpointedJoin(
            pts, 0.08, output_path=str(tmp_path / "out.txt"), cadence=8
        ).run()
        disable_tracing()
        names = [
            json.loads(ln)["name"] for ln in path.read_text().splitlines()
        ]
        assert "checkpoint" in names

    def test_thread_local_stacks(self):
        import threading

        stream = io.StringIO()
        tracer = Tracer(stream)

        def worker():
            with tracer.span("b"):
                pass

        with tracer.span("a"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        records = {
            r["name"]: r
            for r in map(json.loads, stream.getvalue().splitlines())
        }
        # The other thread's span must not inherit this thread's stack.
        assert records["b"]["path"] == "b"
        assert records["a"]["path"] == "a"


# ---------------------------------------------------------------------------
# Progress heartbeat
# ---------------------------------------------------------------------------

class TestProgressHeartbeat:
    def test_beats_and_reads_live_stats(self):
        stream = io.StringIO()
        configure_logging(level="info", json_lines=True, stream=stream)
        stats = JoinStats()
        import time as _time

        with run_context(run="hb-run"):
            with ProgressHeartbeat(stats, interval=0.01) as hb:
                for _ in range(5):
                    stats.links_emitted += 10
                    _time.sleep(0.015)
        assert hb.beats >= 1
        records = [json.loads(ln) for ln in stream.getvalue().splitlines()]
        beats = [r for r in records if r["event"] == "progress"]
        assert beats
        assert beats[-1]["links_emitted"] >= 10
        assert all("elapsed_seconds" in r for r in beats)
        # Threads don't inherit contextvars; the heartbeat must carry a
        # copy of the caller's run context anyway.
        assert all(r["run"] == "hb-run" for r in beats)

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            ProgressHeartbeat(JoinStats(), interval=0)

    def test_stop_is_idempotent(self):
        hb = ProgressHeartbeat(JoinStats(), interval=1.0).start()
        hb.stop()
        hb.stop()


# ---------------------------------------------------------------------------
# End-to-end CLI smoke: serial vs parallel, artifacts parseable
# ---------------------------------------------------------------------------

class TestCliSmoke:
    def _run(self, tmp_path, workers, capsys):
        from repro.cli import main

        tag = f"w{workers}"
        pts = tmp_path / "pts.txt"
        if not pts.exists():
            np.savetxt(pts, np.random.default_rng(7).random((250, 2)))
        metrics = tmp_path / f"{tag}.metrics.json"
        trace = tmp_path / f"{tag}.trace.jsonl"
        out = tmp_path / f"{tag}.out.txt"
        argv = [
            "join", "--input", str(pts), "--eps", "0.08",
            "--algorithm", "csj", "--output", str(out),
            "--log-json", "--trace", str(trace),
            "--metrics-out", str(metrics),
        ]
        if workers > 1:
            argv += ["--workers", str(workers)]
        assert main(argv) == 0
        err = capsys.readouterr().err
        log_records = [json.loads(ln) for ln in err.splitlines() if ln.strip()]
        trace_records = [
            json.loads(ln) for ln in trace.read_text().splitlines()
        ]
        snapshot = json.loads(metrics.read_text())
        return out.read_bytes(), log_records, trace_records, snapshot

    def test_artifacts_parse_and_agree_across_worker_counts(
        self, tmp_path, capsys
    ):
        out1, logs1, trace1, snap1 = self._run(tmp_path, 1, capsys)
        out2, logs2, trace2, snap2 = self._run(tmp_path, 2, capsys)

        # Every artifact is non-empty and parsed already (json.loads above).
        assert logs1 and trace1 and snap1
        assert logs2 and trace2 and snap2

        # Output bytes are identical between worker counts.
        assert out1 == out2

        # The run summary matches the exported metrics, which match the
        # final JoinStats for every machine-independent counter.
        for logs, snap in ((logs1, snap1), (logs2, snap2)):
            summary = [r for r in logs if r["event"] == "run summary"]
            assert len(summary) == 1
            s = summary[0]
            for field in (
                "links_emitted", "groups_emitted", "bytes_written",
                "early_stops", "distance_computations",
            ):
                assert snap[f"repro_join_{field}_total"] == s[field], field

        # And the deterministic counters agree across worker counts.
        for name in (
            "repro_join_links_emitted_total",
            "repro_join_groups_emitted_total",
            "repro_join_bytes_written_total",
            "repro_join_distance_computations_total",
        ):
            assert snap1[name] == snap2[name], name

        # Parallel runs additionally report pool health.
        assert snap2["repro_pool_spawns_total"] >= 2

        # Trace files carry the expected phases.
        assert any(r["name"] == "descend" for r in trace1)
        assert any(r["name"] == "csj-merge" for r in trace2)
