"""Unit tests for the high-level API (repro.api)."""

import numpy as np
import pytest

from repro import build_index, similarity_join, spatial_join_datasets
from repro.core.verify import check_equivalence
from repro.index import MTree, RStarTree, RTree


class TestBuildIndex:
    def test_default_rstar(self, uniform_2d):
        tree = build_index(uniform_2d)
        assert isinstance(tree, RStarTree)
        tree.validate()

    @pytest.mark.parametrize("name,cls", [("rtree", RTree), ("rstar", RStarTree), ("mtree", MTree)])
    def test_by_name(self, uniform_2d, name, cls):
        assert isinstance(build_index(uniform_2d, name), cls)

    def test_bulk_methods(self, uniform_2d):
        for bulk in ("str", "hilbert", "omt"):
            build_index(uniform_2d, bulk=bulk).validate()

    def test_passthrough(self, uniform_2d):
        tree = build_index(uniform_2d)
        assert build_index(uniform_2d, tree) is tree

    def test_unknown_index(self, uniform_2d):
        with pytest.raises(ValueError, match="unknown index"):
            build_index(uniform_2d, "btree")


class TestSimilarityJoin:
    @pytest.mark.parametrize(
        "algorithm", ["ssj", "ncsj", "csj", "egrid", "egrid-csj", "pbsm", "pbsm-csj"]
    )
    def test_all_algorithms_lossless(self, clustered_2d, algorithm):
        result = similarity_join(clustered_2d, 0.05, algorithm=algorithm)
        check_equivalence(clustered_2d, 0.05, result).raise_if_failed()

    def test_case_insensitive(self, uniform_2d):
        result = similarity_join(uniform_2d, 0.05, algorithm="CSJ")
        assert result.algorithm == "csj(10)"

    def test_unknown_algorithm(self, uniform_2d):
        with pytest.raises(ValueError, match="unknown algorithm"):
            similarity_join(uniform_2d, 0.05, algorithm="hash-join")

    def test_prebuilt_index_reused(self, uniform_2d):
        tree = build_index(uniform_2d)
        result = similarity_join(uniform_2d, 0.05, algorithm="csj", index=tree)
        check_equivalence(uniform_2d, 0.05, result).raise_if_failed()

    def test_custom_metric(self, uniform_2d):
        result = similarity_join(uniform_2d, 0.05, algorithm="csj", metric="l1")
        check_equivalence(uniform_2d, 0.05, result, metric="l1").raise_if_failed()

    def test_g_respected(self, clustered_2d):
        result = similarity_join(clustered_2d, 0.05, algorithm="csj", g=3)
        assert result.g == 3

    def test_custom_sink(self, uniform_2d):
        from repro.core.results import CountingSink

        sink = CountingSink(id_width=3)
        result = similarity_join(uniform_2d, 0.05, algorithm="ssj", sink=sink)
        assert result.links == []
        assert result.stats is sink.stats


class TestSpatialJoinDatasets:
    def test_compact_and_standard(self, rng):
        centers = rng.random((4, 2))
        a = np.clip(centers[rng.integers(0, 4, 200)] + rng.normal(scale=0.01, size=(200, 2)), 0, 1)
        b = np.clip(centers[rng.integers(0, 4, 250)] + rng.normal(scale=0.01, size=(250, 2)), 0, 1)
        from repro.core.bruteforce import brute_force_cross_links

        gt = brute_force_cross_links(a, b, 0.05)
        compact = spatial_join_datasets(a, b, 0.05, compact=True)
        standard = spatial_join_datasets(a, b, 0.05, compact=False)
        assert compact.expanded_cross_links() == gt
        assert standard.expanded_cross_links() == gt
        assert compact.output_bytes <= standard.output_bytes
