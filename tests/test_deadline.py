"""End-to-end deadline propagation.

A request deadline is armed once, as an absolute
``time.monotonic()`` timestamp, and must bind every layer underneath:
the :class:`~repro.resilience.budget.Budget` composition, pickling into
:class:`~repro.parallel.tasks.JoinSpec` for worker processes, the
shared-memory deadline workers poll, supervisor task timeouts, and
kill-and-resume through :class:`~repro.resilience.checkpoint.CheckpointedJoin`.
Nothing — not :meth:`Budget.start`, not a resume, not a retry — may
extend an armed deadline.
"""

import multiprocessing
import pickle
import time

import numpy as np
import pytest

from repro.errors import BudgetExceededError
from repro.parallel import parallel_join
from repro.parallel.shared import SharedCounters
from repro.parallel.tasks import JoinSpec
from repro.resilience.budget import Budget
from repro.resilience.checkpoint import CheckpointedJoin
from repro.stats.counters import JoinStats


@pytest.fixture
def pts():
    return np.random.default_rng(3).random((400, 2))


class TestArmDeadline:
    def test_arm_pins_absolute_timestamp(self):
        budget = Budget()
        before = time.monotonic()
        budget.arm_deadline(5.0)
        assert budget.deadline_at is not None
        assert before + 4.9 <= budget.deadline_at <= time.monotonic() + 5.0
        # Arming backfills the relative allowance for reporting.
        assert budget.deadline_seconds == 5.0
        assert budget.active

    def test_arm_uses_deadline_seconds_by_default(self):
        budget = Budget(deadline_seconds=2.0)
        budget.arm_deadline()
        assert budget.deadline_at is not None
        assert budget.deadline_at <= time.monotonic() + 2.0

    def test_start_cannot_extend_armed_deadline(self):
        budget = Budget(check_every=1)
        budget.arm_deadline(0.01)
        time.sleep(0.03)
        budget.start()  # a retry/resume restarting the relative clock
        with pytest.raises(BudgetExceededError) as info:
            budget.enforce(JoinStats())
        assert info.value.kind == "deadline"

    def test_remaining_composes_tighter_bound(self):
        budget = Budget(deadline_seconds=100.0)
        budget.start()
        budget.arm_deadline(0.5)
        remaining = budget.remaining_seconds()
        assert remaining is not None and remaining <= 0.5
        # And the other way: an expired relative clock binds too.
        b2 = Budget(deadline_seconds=0.0)
        b2.start()
        b2.deadline_at = time.monotonic() + 100.0
        assert b2.remaining_seconds() <= 0.0

    def test_remaining_lazily_starts_relative_clock(self):
        # Regression: an unstarted budget used to report its full
        # allowance forever, so N retries could each sleep the whole
        # deadline.  Reading the remainder must start the clock.
        budget = Budget(deadline_seconds=0.05)
        first = budget.remaining_seconds()
        assert first is not None
        time.sleep(0.02)
        second = budget.remaining_seconds()
        assert second < first

    def test_cap_timeout(self):
        assert Budget().cap_timeout(3.0) == 3.0
        assert Budget().cap_timeout(None) is None
        budget = Budget()
        budget.arm_deadline(0.5)
        capped = budget.cap_timeout(100.0)
        assert 0.0 < capped <= 0.5
        assert budget.cap_timeout(None) <= 0.5
        expired = Budget()
        expired.deadline_at = time.monotonic() - 1.0
        assert expired.cap_timeout(100.0) == 0.0  # never negative


class TestPicklePropagation:
    def test_budget_pickle_preserves_armed_deadline(self):
        budget = Budget(max_output_bytes=1234)
        budget.arm_deadline(7.0)
        clone = pickle.loads(pickle.dumps(budget))
        assert clone.deadline_at == budget.deadline_at
        assert clone.deadline_seconds == budget.deadline_seconds
        assert clone.max_output_bytes == 1234
        # The clone enforces the same absolute point in time.
        assert abs(clone.remaining_seconds() - budget.remaining_seconds()) < 0.1

    def test_joinspec_carries_deadline_through_pickle(self, pts):
        deadline_at = time.monotonic() + 9.0
        spec = JoinSpec(points=pts, eps=0.05, deadline_at=deadline_at)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.deadline_at == deadline_at
        assert JoinSpec(points=pts, eps=0.05).deadline_at is None

    def test_expired_spec_deadline_detectable_after_pickle(self, pts):
        # What a worker checks before starting a task.
        spec = JoinSpec(
            points=pts, eps=0.05, deadline_at=time.monotonic() - 0.1
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert time.monotonic() > clone.deadline_at


class TestSharedCounters:
    def test_start_publishes_armed_absolute_deadline(self):
        ctx = multiprocessing.get_context()
        budget = Budget(deadline_seconds=100.0)
        budget.arm_deadline(0.0)  # already expired
        shared = SharedCounters.from_budget(ctx, budget)
        assert shared is not None
        shared.start()
        # The armed (tighter) deadline wins over now + 100s.
        assert shared.breached() == "deadline"

    def test_relative_deadline_wins_when_tighter(self):
        ctx = multiprocessing.get_context()
        budget = Budget(deadline_seconds=0.0)
        budget.deadline_at = time.monotonic() + 100.0
        shared = SharedCounters(ctx, budget)
        shared.start()
        time.sleep(0.001)
        assert shared.breached() == "deadline"

    def test_no_deadline_never_breaches(self):
        ctx = multiprocessing.get_context()
        shared = SharedCounters(ctx, Budget(max_output_bytes=10))
        shared.start()
        assert shared.breached() is None


class TestParallelBinding:
    def test_armed_deadline_binds_worker_tasks(self, pts):
        # The deadline expired before the pool even spawned: the run
        # must stop at a cooperative check with the partial attached,
        # not run to completion.
        budget = Budget(check_every=1)
        budget.arm_deadline(0.0)
        with pytest.raises(BudgetExceededError) as info:
            parallel_join(pts, 0.06, algorithm="csj", g=10, workers=2,
                          budget=budget, task_timeout=30.0)
        assert info.value.kind == "deadline"
        assert info.value.partial is not None

    def test_generous_deadline_does_not_perturb_output(self, pts):
        budget = Budget(check_every=1)
        budget.arm_deadline(300.0)
        bounded = parallel_join(pts, 0.06, algorithm="csj", g=10,
                                workers=2, budget=budget)
        free = parallel_join(pts, 0.06, algorithm="csj", g=10, workers=2)
        assert bounded.links == free.links
        assert bounded.stats.bytes_written == free.stats.bytes_written


class TestKillAndResume:
    def test_resume_cannot_extend_armed_deadline(self, pts, tmp_path):
        # First run: crash partway via a byte cap, journal intact.
        out = tmp_path / "out.txt"
        first = Budget(max_output_bytes=400, check_every=1)
        with pytest.raises(BudgetExceededError):
            CheckpointedJoin(
                pts, 0.06, str(out), algorithm="csj", g=10, cadence=8,
                budget=first,
            ).run()
        # Resume under the original request's armed deadline, which has
        # since expired.  run() calls budget.start() internally — that
        # must not grant a fresh allowance.
        resumed = Budget(check_every=1)
        resumed.arm_deadline(0.01)
        time.sleep(0.03)
        with pytest.raises(BudgetExceededError) as info:
            CheckpointedJoin(
                pts, 0.06, str(out), algorithm="csj", g=10, cadence=8,
                budget=resumed,
            ).run(resume=True)
        assert info.value.kind == "deadline"

    def test_resume_with_slack_finishes_byte_identical(self, pts, tmp_path):
        reference = tmp_path / "ref.txt"
        CheckpointedJoin(
            pts, 0.06, str(reference), algorithm="csj", g=10, cadence=8
        ).run()
        out = tmp_path / "out.txt"
        with pytest.raises(BudgetExceededError):
            CheckpointedJoin(
                pts, 0.06, str(out), algorithm="csj", g=10, cadence=8,
                budget=Budget(max_output_bytes=400, check_every=1),
            ).run()
        generous = Budget(check_every=1)
        generous.arm_deadline(300.0)
        CheckpointedJoin(
            pts, 0.06, str(out), algorithm="csj", g=10, cadence=8,
            budget=generous,
        ).run(resume=True)
        assert out.read_bytes() == reference.read_bytes()
