"""Unit tests for repro.geometry.mbr."""

import numpy as np
import pytest

from repro.geometry.mbr import MBR
from repro.geometry.metrics import get_metric


class TestConstruction:
    def test_of_points(self):
        mbr = MBR.of_points([[0, 1], [2, -1], [1, 0]])
        assert mbr.lo.tolist() == [0, -1]
        assert mbr.hi.tolist() == [2, 1]

    def test_of_single_point(self):
        mbr = MBR.of_point([3.0, 4.0])
        assert mbr.lo.tolist() == mbr.hi.tolist() == [3.0, 4.0]
        assert mbr.area() == 0.0

    def test_of_mbrs(self):
        combined = MBR.of_mbrs([MBR([0, 0], [1, 1]), MBR([2, -1], [3, 0.5])])
        assert combined.lo.tolist() == [0, -1]
        assert combined.hi.tolist() == [3, 1]

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            MBR.of_points(np.empty((0, 2)))

    def test_empty_mbrs_rejected(self):
        with pytest.raises(ValueError):
            MBR.of_mbrs([])

    def test_inverted_rejected(self):
        with pytest.raises(ValueError, match="inverted"):
            MBR([1, 0], [0, 1])

    def test_copy_is_independent(self):
        a = MBR([0, 0], [1, 1])
        b = a.copy()
        b.extend_point([5, 5])
        assert a.hi.tolist() == [1, 1]

    def test_constructor_copies_input(self):
        lo = np.array([0.0, 0.0])
        mbr = MBR(lo, [1, 1])
        lo[0] = 99.0
        assert mbr.lo[0] == 0.0


class TestScalars:
    def test_area_margin(self):
        mbr = MBR([0, 0], [2, 3])
        assert mbr.area() == 6.0
        assert mbr.margin() == 5.0

    def test_center_extents(self):
        mbr = MBR([0, 2], [4, 6])
        assert mbr.center.tolist() == [2, 4]
        assert mbr.extents.tolist() == [4, 4]

    def test_diagonal_euclidean(self):
        assert MBR([0, 0], [3, 4]).diagonal() == pytest.approx(5.0)

    def test_diagonal_is_metric_dependent(self):
        mbr = MBR([0, 0], [3, 4])
        assert mbr.diagonal(get_metric("l1")) == pytest.approx(7.0)
        assert mbr.diagonal(get_metric("linf")) == pytest.approx(4.0)

    def test_diagonal_of_two_point_mbr_equals_distance(self, metric, rng):
        # The completeness proof relies on this for every Minkowski metric.
        for _ in range(25):
            p, q = rng.random(3), rng.random(3)
            mbr = MBR.of_points([p, q])
            assert mbr.diagonal(metric) == pytest.approx(metric.distance(p, q))


class TestPredicates:
    def test_contains_point(self):
        mbr = MBR([0, 0], [1, 1])
        assert mbr.contains_point([0.5, 0.5])
        assert mbr.contains_point([0, 1])  # boundary included
        assert not mbr.contains_point([1.01, 0.5])

    def test_contains_mbr(self):
        outer = MBR([0, 0], [2, 2])
        assert outer.contains_mbr(MBR([0.5, 0.5], [1, 1]))
        assert outer.contains_mbr(outer)
        assert not outer.contains_mbr(MBR([1, 1], [3, 3]))

    def test_intersects(self):
        a = MBR([0, 0], [1, 1])
        assert a.intersects(MBR([0.5, 0.5], [2, 2]))
        assert a.intersects(MBR([1, 1], [2, 2]))  # touching counts
        assert not a.intersects(MBR([1.1, 1.1], [2, 2]))


class TestDistances:
    def test_min_dist_disjoint(self):
        a = MBR([0, 0], [1, 1])
        b = MBR([4, 5], [6, 7])
        assert a.min_dist(b) == pytest.approx(5.0)  # gap (3, 4)

    def test_min_dist_overlapping_is_zero(self):
        a = MBR([0, 0], [2, 2])
        b = MBR([1, 1], [3, 3])
        assert a.min_dist(b) == 0.0

    def test_max_dist(self):
        a = MBR([0, 0], [1, 1])
        b = MBR([4, 0], [5, 1])
        # Farthest corners: (0, 0)-(5, 1) or (0, 1)-(5, 0).
        assert a.max_dist(b) == pytest.approx(np.hypot(5, 1))

    def test_union_diagonal_bounds_all_pairs(self, rng, metric):
        pts_a = rng.random((20, 2)) * 0.3
        pts_b = rng.random((20, 2)) * 0.3 + 0.3
        a, b = MBR.of_points(pts_a), MBR.of_points(pts_b)
        bound = a.union_diagonal(b, metric)
        both = np.vstack([pts_a, pts_b])
        observed = metric.self_pairwise(both).max()
        assert observed <= bound + 1e-12

    def test_min_max_dist_point(self):
        mbr = MBR([0, 0], [1, 1])
        assert mbr.min_dist_point([0.5, 0.5]) == 0.0
        assert mbr.min_dist_point([2, 1]) == pytest.approx(1.0)
        assert mbr.max_dist_point([0, 0]) == pytest.approx(np.sqrt(2))

    def test_min_dist_sandwich(self, rng, metric):
        """min_dist lower-bounds every realised cross distance."""
        pts_a = rng.random((15, 3))
        pts_b = rng.random((15, 3)) + 1.5
        a, b = MBR.of_points(pts_a), MBR.of_points(pts_b)
        lower = a.min_dist(b, metric)
        observed = metric.pairwise(pts_a, pts_b).min()
        assert lower <= observed + 1e-12


class TestCombination:
    def test_union(self):
        u = MBR([0, 0], [1, 1]).union(MBR([2, -1], [3, 0]))
        assert u.lo.tolist() == [0, -1]
        assert u.hi.tolist() == [3, 1]

    def test_union_point(self):
        u = MBR([0, 0], [1, 1]).union_point([2, -3])
        assert u.lo.tolist() == [0, -3]
        assert u.hi.tolist() == [2, 1]

    def test_extend_in_place(self):
        mbr = MBR([0, 0], [1, 1])
        mbr.extend_point([2, 2])
        mbr.extend_mbr(MBR([-1, 0], [0, 0.5]))
        assert mbr.lo.tolist() == [-1, 0]
        assert mbr.hi.tolist() == [2, 2]

    def test_enlargement(self):
        base = MBR([0, 0], [1, 1])
        assert base.enlargement(MBR([0.2, 0.2], [0.8, 0.8])) == 0.0
        assert base.enlargement(MBR([0, 0], [2, 1])) == pytest.approx(1.0)

    def test_overlap_area(self):
        a = MBR([0, 0], [2, 2])
        assert a.overlap_area(MBR([1, 1], [3, 3])) == pytest.approx(1.0)
        assert a.overlap_area(MBR([5, 5], [6, 6])) == 0.0
        assert a.overlap_area(MBR([2, 0], [3, 2])) == 0.0  # touching edge


class TestDunder:
    def test_eq_and_hash(self):
        a = MBR([0, 0], [1, 1])
        b = MBR([0, 0], [1, 1])
        assert a == b
        assert hash(a) == hash(b)
        assert a != MBR([0, 0], [1, 2])

    def test_eq_other_type(self):
        assert MBR([0], [1]) != "not an mbr"

    def test_repr_round_trips_values(self):
        text = repr(MBR([0, 0], [1, 1]))
        assert "lo=[0.0, 0.0]" in text and "hi=[1.0, 1.0]" in text

    def test_dim(self):
        assert MBR([0, 0, 0], [1, 1, 1]).dim == 3
