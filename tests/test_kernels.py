"""Batched geometry kernels vs. their scalar counterparts.

The vectorized frontier engine's correctness rests entirely on one
claim: every kernel in :mod:`repro.geometry.kernels` computes exactly
what the corresponding :class:`~repro.geometry.mbr.MBR` /
:class:`~repro.geometry.ball.Ball` method computes, for every supported
metric and dimensionality, including degenerate (point-sized) boxes.
Hypothesis hunts for counterexamples here; the engine-parity suite
(``test_engine_parity.py``) then checks the end-to-end consequence.

Also covers the condensed self-distance path (``Metric.condensed_self``)
including its memory shape: the whole point of the condensed form is
that no ``k x k`` intermediate is ever materialised.
"""

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import kernels
from repro.geometry.ball import Ball
from repro.geometry.mbr import MBR
from repro.geometry.metrics import Minkowski, get_metric, triu_pair_indices

METRICS = ["manhattan", "euclidean", "chebyshev", Minkowski(3)]

TOL = 1e-12

coordinate = st.one_of(
    st.integers(-8, 8).map(lambda v: v / 4.0),
    st.floats(-2.0, 2.0, allow_nan=False, allow_infinity=False, width=32),
)


@st.composite
def box_sets(draw, min_boxes=1, max_boxes=8):
    """Two sets of (lo, hi) corner arrays of a shared dimensionality.

    Degenerate boxes (``lo == hi`` on some or all axes) arise naturally
    from sorting two draws that may coincide — those are the leaf MBRs
    of single points, the exact case the joins hit constantly.
    """
    dim = draw(st.integers(1, 5))

    def one_set():
        n = draw(st.integers(min_boxes, max_boxes))
        lo = np.empty((n, dim))
        hi = np.empty((n, dim))
        for i in range(n):
            for d in range(dim):
                a = draw(coordinate)
                b = draw(coordinate)
                lo[i, d], hi[i, d] = min(a, b), max(a, b)
        return lo, hi

    return one_set(), one_set()


@st.composite
def ball_sets(draw, min_balls=1, max_balls=8):
    dim = draw(st.integers(1, 5))

    def one_set():
        n = draw(st.integers(min_balls, max_balls))
        centers = np.array(
            [[draw(coordinate) for _ in range(dim)] for _ in range(n)]
        )
        radii = np.array(
            [abs(draw(coordinate)) for _ in range(n)]
        )
        return centers, radii

    return one_set(), one_set()


@pytest.mark.parametrize("metric_name", METRICS)
@settings(max_examples=25, deadline=None)
@given(sets=box_sets())
def test_rect_matrices_match_scalar(sets, metric_name):
    (lo1, hi1), (lo2, hi2) = sets
    metric = get_metric(metric_name)
    boxes1 = [MBR(l, h) for l, h in zip(lo1, hi1)]
    boxes2 = [MBR(l, h) for l, h in zip(lo2, hi2)]
    mind = kernels.min_dist_matrix(lo1, hi1, lo2, hi2, metric)
    maxd = kernels.max_dist_matrix(lo1, hi1, lo2, hi2, metric)
    uniond = kernels.union_diagonal_matrix(lo1, hi1, lo2, hi2, metric)
    diag = kernels.diagonal(lo1, hi1, metric)
    for i, b1 in enumerate(boxes1):
        assert abs(diag[i] - b1.diagonal(metric)) <= TOL
        for j, b2 in enumerate(boxes2):
            assert abs(mind[i, j] - b1.min_dist(b2, metric)) <= TOL
            assert abs(maxd[i, j] - b1.max_dist(b2, metric)) <= TOL
            assert abs(uniond[i, j] - b1.union_diagonal(b2, metric)) <= TOL


@pytest.mark.parametrize("metric_name", METRICS)
@settings(max_examples=25, deadline=None)
@given(sets=box_sets(min_boxes=2))
def test_rect_prunes_match_scalar_order_and_content(sets, metric_name):
    (lo, hi), (lo2, hi2) = sets
    metric = get_metric(metric_name)
    eps = 1.0
    boxes = [MBR(l, h) for l, h in zip(lo, hi)]
    rows, cols = kernels.self_pairs_within(lo, hi, eps, metric)
    expected = [
        (a, b)
        for a in range(len(boxes))
        for b in range(a + 1, len(boxes))
        if boxes[a].min_dist(boxes[b], metric) < eps
    ]
    assert list(zip(rows.tolist(), cols.tolist())) == expected

    boxes2 = [MBR(l, h) for l, h in zip(lo2, hi2)]
    rows, cols = kernels.cross_pairs_within(lo, hi, lo2, hi2, eps, metric)
    expected = [
        (a, b)
        for a in range(len(boxes))
        for b in range(len(boxes2))
        if boxes[a].min_dist(boxes2[b], metric) < eps
    ]
    assert list(zip(rows.tolist(), cols.tolist())) == expected


@pytest.mark.parametrize("metric_name", METRICS)
@settings(max_examples=25, deadline=None)
@given(sets=ball_sets())
def test_ball_matrices_match_scalar(sets, metric_name):
    (c1, r1), (c2, r2) = sets
    metric = get_metric(metric_name)
    balls1 = [Ball(c, r) for c, r in zip(c1, r1)]
    balls2 = [Ball(c, r) for c, r in zip(c2, r2)]
    mind = kernels.ball_min_dist_matrix(c1, r1, c2, r2, metric)
    maxd = kernels.ball_max_dist_matrix(c1, r1, c2, r2, metric)
    uniond = kernels.ball_union_diameter_matrix(c1, r1, c2, r2, metric)
    diam = kernels.ball_diameter(r1)
    for i, b1 in enumerate(balls1):
        assert abs(diam[i] - b1.diameter()) <= TOL
        for j, b2 in enumerate(balls2):
            assert abs(mind[i, j] - b1.min_dist(b2, metric)) <= TOL
            assert abs(maxd[i, j] - b1.max_dist(b2, metric)) <= TOL
            assert abs(uniond[i, j] - b1.union_diameter(b2, metric)) <= TOL


@pytest.mark.parametrize("metric_name", METRICS)
def test_condensed_self_matches_full_pairwise(metric_name):
    metric = get_metric(metric_name)
    pts = np.random.default_rng(3).random((50, 3))
    rows, cols, dists = metric.condensed_self(pts)
    full = metric.pairwise(pts, pts)
    assert np.array_equal(dists, full[rows, cols])
    # Canonical condensed order: row-major upper triangle.
    exp_rows, exp_cols = np.triu_indices(len(pts), k=1)
    assert np.array_equal(rows, exp_rows)
    assert np.array_equal(cols, exp_cols)


def test_triu_pair_indices_cached_and_readonly():
    a = triu_pair_indices(40)
    b = triu_pair_indices(40)
    assert a[0] is b[0] and a[1] is b[1]
    assert not a[0].flags.writeable
    with pytest.raises(ValueError):
        a[0][0] = 1


def test_condensed_self_memory_shape():
    """The condensed path must beat the full-matrix path on peak memory.

    The old leaf kernel materialised the full ``k x k`` pairwise matrix
    plus a ``k x k`` boolean upper-triangle mask before discarding half
    of it.  The condensed form allocates only ``k(k-1)/2``-sized arrays;
    for float64 that alone caps the win at ~2x, and the dropped boolean
    mask pushes it further.  Guard the ratio, not absolute bytes.
    """
    metric = get_metric("euclidean")
    k, d = 400, 4
    pts = np.random.default_rng(0).random((k, d))
    triu_pair_indices(k)  # prime the cache: steady-state cost, not setup

    def full_matrix_peak():
        tracemalloc.start()
        dists = metric.pairwise(pts, pts)
        mask = np.triu(np.ones((k, k), dtype=bool), k=1)
        rows, cols = np.nonzero(mask & (dists < 0.05))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    def condensed_peak():
        tracemalloc.start()
        rows, cols, dists = metric.condensed_self(pts)
        hit = np.flatnonzero(dists < 0.05)
        rows, cols = rows[hit], cols[hit]
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    assert condensed_peak() < 0.7 * full_matrix_peak()


def test_mbr_stack_and_of_mbrs():
    boxes = [
        MBR(np.array([0.0, 1.0]), np.array([2.0, 3.0])),
        MBR(np.array([-1.0, 2.0]), np.array([0.5, 2.5])),
        MBR(np.array([0.2, 0.2]), np.array([0.2, 0.2])),
    ]
    los, his = MBR.stack(boxes)
    assert los.shape == his.shape == (3, 2)
    assert np.array_equal(los[1], [-1.0, 2.0])
    union = MBR.of_mbrs(boxes)
    assert np.array_equal(union.lo, [-1.0, 0.2])
    assert np.array_equal(union.hi, [2.0, 3.0])
    with pytest.raises(ValueError):
        MBR.stack([])
    with pytest.raises(ValueError):
        MBR.of_mbrs([])
