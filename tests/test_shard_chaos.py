"""Sharded execution under injected faults and real process death.

Three escalation levels:

* a **worker** SIGKILLed mid-shard-task — the supervisor respawns it,
  retries the task, and the output is still byte-identical;
* the **sink** dying mid-replay of a checkpointed sharded run — the
  journal's durable prefix survives and the run resumes *at a different
  shard count* with a byte-identical tail;
* the whole **process** SIGKILLed from outside mid-run — resume across
  a different K and partitioner reproduces the uninterrupted file
  exactly.

Every path also asserts zero leaked shared-memory segments — crash
cleanup is part of the contract, not best-effort.
"""

import filecmp
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.api import similarity_join
from repro.core.results import TextSink
from repro.errors import PoisonTaskError
from repro.io.writer import width_for
from repro.parallel.shm import owned_segments
from repro.resilience.chaos import FailurePlan, FlakySink, FlakyWorker
from repro.resilience.checkpoint import CheckpointedJoin, read_journal
from repro.shard import sharded_join

EPS = 0.06


def _reference_file(pts, path):
    sink = TextSink(str(path), id_width=width_for(len(pts)))
    similarity_join(pts, EPS, algorithm="csj", g=10, sink=sink, shards=1)
    sink.close()


class TestWorkerDeath:
    def test_sigkilled_worker_mid_shard_task_output_identical(
        self, sharded_dataset, tmp_path
    ):
        ref = tmp_path / "ref.txt"
        _reference_file(sharded_dataset, ref)
        # One SIGKILL budgeted on shard task 1: the worker dies mid-task,
        # the supervisor respawns a fresh one and retries.
        fault = FlakyWorker(kill_at=(1,), max_failures=1)
        out = tmp_path / "killed.txt"
        sink = TextSink(str(out), id_width=width_for(len(sharded_dataset)))
        sharded_join(
            sharded_dataset, EPS, algorithm="csj", g=10, shards=4,
            workers=2, sink=sink, fault=fault,
        )
        sink.close()
        assert filecmp.cmp(str(ref), str(out), shallow=False)
        assert owned_segments() == []

    def test_poisoned_shard_task_quarantined_with_partial(self, sharded_dataset):
        # A task that fails on every attempt is quarantined; the typed
        # error carries the partial result from the surviving shards.
        fault = FlakyWorker(error_at=(2,))
        with pytest.raises(PoisonTaskError) as info:
            sharded_join(
                sharded_dataset, EPS, algorithm="csj", g=10, shards=4,
                workers=2, fault=fault,
            )
        assert info.value.task_id == 2
        assert info.value.partial is not None
        assert info.value.partial.shard_report["shards"] == 4
        assert owned_segments() == []


class TestCheckpointResumeAcrossK:
    @pytest.mark.parametrize("kill_at", [5, 60, 200])
    def test_sink_death_mid_replay_resume_at_other_k(
        self, sharded_dataset, tmp_path, kill_at
    ):
        ref = tmp_path / "ref.txt"
        _reference_file(sharded_dataset, ref)
        out = tmp_path / "out.txt"
        wrapper = lambda inner: FlakySink(
            inner, FailurePlan(fail_at=[kill_at], max_failures=1)
        )
        job = CheckpointedJoin(
            sharded_dataset, EPS, output_path=str(out), algorithm="csj",
            g=10, shards=8, cadence=8, sink_wrapper=wrapper,
        )
        with pytest.raises(OSError):
            job.run()
        # The journal kept a durable prefix; the fingerprint excludes
        # the plan, so the resume may pick ANY shard count/partitioner.
        header, ckpt = read_journal(str(out) + ".journal")
        assert header["fingerprint"]["sharded"] is True
        resumed = CheckpointedJoin(
            sharded_dataset, EPS, output_path=str(out), algorithm="csj",
            g=10, shards=3, partitioner="hilbert", cadence=8, workers=2,
        )
        resumed.run(resume=True)
        assert filecmp.cmp(str(ref), str(out), shallow=False)
        assert owned_segments() == []

    def test_resume_across_k_preserves_canonical_counters(
        self, sharded_dataset, tmp_path
    ):
        out = tmp_path / "out.txt"
        wrapper = lambda inner: FlakySink(
            inner, FailurePlan(fail_at=[40], max_failures=1)
        )
        with pytest.raises(OSError):
            CheckpointedJoin(
                sharded_dataset, EPS, output_path=str(out), algorithm="csj",
                g=10, shards=8, cadence=8, sink_wrapper=wrapper,
            ).run()
        resumed = CheckpointedJoin(
            sharded_dataset, EPS, output_path=str(out), algorithm="csj",
            g=10, shards=2, cadence=8,
        ).run(resume=True)
        clean = similarity_join(
            sharded_dataset, EPS, algorithm="csj", g=10, shards=1
        )
        for name in ("links_emitted", "groups_emitted", "bytes_written",
                     "merge_attempts", "merge_successes"):
            assert getattr(resumed.stats, name) == getattr(clean.stats, name)


class TestProcessDeath:
    """SIGKILL the whole interpreter mid-run; resume across K."""

    CHILD = """
import sys
import numpy as np
from repro.resilience.checkpoint import CheckpointedJoin

out, seed, shards, partitioner, resume = (
    sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), sys.argv[4], sys.argv[5]
)
pts = np.random.default_rng(seed).random((2500, 2))
CheckpointedJoin(
    pts, 0.05, output_path=out, algorithm="csj", g=10,
    shards=shards, partitioner=partitioner, cadence=4,
).run(resume=resume == "1")
"""

    def test_sigkill_process_resume_other_k_byte_identical(self, tmp_path):
        seed = int(os.environ.get("REPRO_SHARD_SEED", "5"))
        pts = np.random.default_rng(seed).random((2500, 2))
        ref = tmp_path / "ref.txt"
        sink = TextSink(str(ref), id_width=width_for(len(pts)))
        similarity_join(pts, 0.05, algorithm="csj", g=10, sink=sink, shards=1)
        sink.close()

        out = tmp_path / "out.txt"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        proc = subprocess.Popen(
            [sys.executable, "-c", self.CHILD, str(out), str(seed), "8", "grid", "0"],
            env=env,
        )
        # Kill -9 once the replay has demonstrably started writing.
        deadline = time.monotonic() + 120
        killed = False
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            if out.exists() and out.stat().st_size > 1024:
                proc.kill()  # SIGKILL: no atexit, no flush, torn tail
                proc.wait()
                killed = True
                break
            time.sleep(0.01)
        if not killed:
            proc.wait()
        if killed:
            assert proc.returncode == -signal.SIGKILL
            rc = subprocess.run(
                [sys.executable, "-c", self.CHILD, str(out), str(seed), "3",
                 "hilbert", "1"],
                env=env,
            ).returncode
            assert rc == 0
        assert filecmp.cmp(str(ref), str(out), shallow=False)
        assert owned_segments() == []
