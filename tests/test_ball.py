"""Unit tests for repro.geometry.ball."""

import numpy as np
import pytest

from repro.geometry.ball import Ball
from repro.geometry.metrics import get_metric


class TestConstruction:
    def test_basic(self):
        ball = Ball([0, 0], 2.0)
        assert ball.radius == 2.0
        assert ball.dim == 2
        assert ball.diameter() == 4.0

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Ball([0, 0], -0.1)

    def test_of_points_anchors_first(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0], [1.0, 0.0]])
        ball = Ball.of_points(pts)
        assert ball.center.tolist() == [0.0, 0.0]
        assert ball.radius == pytest.approx(5.0)

    def test_of_single_point(self):
        ball = Ball.of_points([[1.0, 2.0]])
        assert ball.radius == 0.0

    def test_of_empty_rejected(self):
        with pytest.raises(ValueError):
            Ball.of_points(np.empty((0, 2)))

    def test_center_copied(self):
        c = np.array([0.0, 0.0])
        ball = Ball(c, 1.0)
        c[0] = 9.0
        assert ball.center[0] == 0.0


class TestGeometry:
    def test_contains_point(self):
        ball = Ball([0, 0], 1.0)
        assert ball.contains_point([0.5, 0.5])
        assert ball.contains_point([1.0, 0.0])
        assert not ball.contains_point([1.0, 1.0])

    def test_min_max_dist(self):
        a = Ball([0, 0], 1.0)
        b = Ball([10, 0], 2.0)
        assert a.min_dist(b) == pytest.approx(7.0)
        assert a.max_dist(b) == pytest.approx(13.0)

    def test_min_dist_overlapping_is_zero(self):
        assert Ball([0, 0], 2.0).min_dist(Ball([1, 0], 2.0)) == 0.0

    def test_union_diameter_dominates(self):
        a = Ball([0, 0], 3.0)
        b = Ball([1, 0], 0.1)
        # The big ball's own diameter dominates the union bound.
        assert a.union_diameter(b) == pytest.approx(6.0)

    def test_union_diameter_bounds_observed(self, rng, metric):
        pts_a = rng.random((20, 2))
        pts_b = rng.random((20, 2)) + 0.5
        a = Ball.of_points(pts_a, metric)
        b = Ball.of_points(pts_b, metric)
        bound = a.union_diameter(b, metric)
        observed = metric.self_pairwise(np.vstack([pts_a, pts_b])).max()
        assert observed <= bound + 1e-12

    def test_point_distances(self):
        ball = Ball([0, 0], 1.0)
        assert ball.min_dist_point([3, 0]) == pytest.approx(2.0)
        assert ball.min_dist_point([0.5, 0]) == 0.0
        assert ball.max_dist_point([3, 0]) == pytest.approx(4.0)

    def test_expanded_to(self):
        ball = Ball([0, 0], 1.0)
        bigger = ball.expanded_to([5, 0])
        assert bigger.radius == pytest.approx(5.0)
        unchanged = ball.expanded_to([0.5, 0])
        assert unchanged.radius == 1.0

    def test_metric_aware(self):
        a = Ball([0, 0], 1.0)
        b = Ball([3, 4], 1.0)
        assert a.min_dist(b, get_metric("l1")) == pytest.approx(5.0)

    def test_repr(self):
        assert "radius=1" in repr(Ball([0, 0], 1.0))
