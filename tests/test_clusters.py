"""Unit tests for cluster extraction from compact output (repro.core.clusters)."""

import numpy as np
import pytest

from repro.core.clusters import UnionFind, component_sizes, connected_components
from repro.core.csj import csj
from repro.core.results import JoinResult
from repro.core.ssj import ssj
from repro.index.bulk import bulk_load


class TestUnionFind:
    def test_basic(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(3, 4)
        assert uf.connected(0, 1)
        assert not uf.connected(1, 3)
        uf.union(1, 3)
        assert uf.connected(0, 4)

    def test_idempotent_union(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        uf.union(1, 0)
        assert uf.connected(0, 1)

    def test_labels(self):
        uf = UnionFind(4)
        uf.union(0, 2)
        labels = uf.labels()
        assert labels[0] == labels[2]
        assert labels[1] != labels[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_empty(self):
        assert UnionFind(0).labels().shape == (0,)


class TestConnectedComponents:
    def test_links_only(self):
        result = JoinResult(eps=1, algorithm="x", links=[(0, 1), (1, 2)])
        labels = connected_components(result, 4)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] != labels[0]

    def test_groups_are_hyperedges(self):
        result = JoinResult(eps=1, algorithm="x", groups=[(0, 1, 2), (2, 3)])
        labels = connected_components(result, 5)
        assert len(set(labels[:4].tolist())) == 1
        assert labels[4] != labels[0]

    def test_group_pairs(self):
        result = JoinResult(eps=1, algorithm="x", group_pairs=[((0, 1), (2,))])
        labels = connected_components(result, 3)
        assert len(set(labels.tolist())) == 1

    def test_labels_consecutive(self):
        result = JoinResult(eps=1, algorithm="x", links=[(2, 3)])
        labels = connected_components(result, 4)
        assert set(labels.tolist()) == {0, 1, 2}

    def test_component_sizes(self):
        result = JoinResult(eps=1, algorithm="x", links=[(0, 1)])
        sizes = component_sizes(connected_components(result, 3))
        assert sorted(sizes.tolist()) == [1, 2]

    def test_compact_and_standard_agree(self, clustered_2d):
        """The whole point: clustering the compact output gives the same
        components as clustering the expanded standard output."""
        eps = 0.05
        tree = bulk_load(clustered_2d, max_entries=16)
        standard = ssj(tree, eps)
        compact = csj(tree, eps, g=10)
        labels_standard = connected_components(standard, len(clustered_2d))
        labels_compact = connected_components(compact, len(clustered_2d))
        # Same partition (labels may be permuted): compare co-membership
        # via canonical relabeling by first occurrence — both results use
        # first-appearance numbering, and iteration order may differ, so
        # compare partitions as frozensets.
        def partition(labels):
            groups: dict[int, set[int]] = {}
            for i, label in enumerate(labels.tolist()):
                groups.setdefault(label, set()).add(i)
            return frozenset(frozenset(v) for v in groups.values())

        assert partition(labels_standard) == partition(labels_compact)

    def test_matches_geometric_truth(self, rng):
        """Two well-separated blobs -> exactly two non-trivial clusters."""
        blob_a = rng.random((100, 2)) * 0.1
        blob_b = rng.random((100, 2)) * 0.1 + 0.8
        pts = np.vstack([blob_a, blob_b])
        tree = bulk_load(pts, max_entries=16)
        result = csj(tree, 0.2, g=10)
        labels = connected_components(result, len(pts))
        assert len(set(labels[:100].tolist())) == 1
        assert len(set(labels[100:].tolist())) == 1
        assert labels[0] != labels[150]
