"""Unit tests for the Guttman R-tree (repro.index.rtree)."""

import numpy as np
import pytest

from repro.index.base import IndexInvariantError
from repro.index.rtree import RTree


class TestBuild:
    @pytest.mark.parametrize("split", ["quadratic", "linear"])
    def test_build_validates(self, uniform_2d, split):
        tree = RTree(uniform_2d, max_entries=8, split=split)
        tree.validate()
        assert tree.size == len(uniform_2d)

    def test_unknown_split_rejected(self, uniform_2d):
        with pytest.raises(ValueError, match="split"):
            RTree(uniform_2d, split="magic")

    def test_bad_points_shape(self):
        with pytest.raises(ValueError, match="\\(n, d\\)"):
            RTree(np.zeros(5))

    def test_bad_capacity(self):
        with pytest.raises(ValueError, match="max_entries"):
            RTree(np.zeros((3, 2)), max_entries=1)

    def test_bad_min_fill(self):
        with pytest.raises(ValueError, match="min_fill"):
            RTree(np.zeros((3, 2)), min_fill=0.9)

    def test_empty_tree(self):
        tree = RTree(np.empty((0, 2)))
        assert tree.root is None
        assert tree.height == 0
        assert list(tree.nodes()) == []
        tree.validate()

    def test_single_point(self):
        tree = RTree(np.array([[0.5, 0.5]]))
        tree.validate()
        assert tree.height == 1
        assert tree.root.entry_ids == [0]

    def test_duplicate_points(self):
        pts = np.tile([[0.5, 0.5]], (50, 1))
        tree = RTree(pts, max_entries=8)
        tree.validate()
        assert tree.root.subtree_count() == 50

    def test_grows_multiple_levels(self, rng):
        tree = RTree(rng.random((300, 2)), max_entries=5)
        assert tree.height >= 3
        tree.validate()

    def test_shuffle_seed_changes_structure(self, rng):
        pts = rng.random((200, 2))
        a = RTree(pts, max_entries=8, shuffle_seed=1)
        b = RTree(pts, max_entries=8, shuffle_seed=2)
        a.validate(), b.validate()
        # Same data, same invariants — order only affects internal shape.
        assert a.size == b.size


class TestRangeQuery:
    def test_matches_brute_force(self, uniform_2d):
        tree = RTree(uniform_2d, max_entries=8)
        center = np.array([0.5, 0.5])
        for radius in (0.05, 0.2, 0.7):
            expected = np.nonzero(
                np.linalg.norm(uniform_2d - center, axis=1) < radius
            )[0]
            got = tree.range_query(center, radius)
            assert got.tolist() == expected.tolist()

    def test_strict_inequality(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        tree = RTree(pts)
        # Point at exactly radius 1 is excluded.
        assert tree.range_query([0.0, 0.0], 1.0).tolist() == [0]

    def test_empty_result(self, uniform_2d):
        tree = RTree(uniform_2d)
        assert tree.range_query([50.0, 50.0], 0.1).size == 0

    def test_empty_tree_query(self):
        tree = RTree(np.empty((0, 2)))
        assert tree.range_query([0.0, 0.0], 1.0).size == 0

    def test_metric_respected(self, rng):
        pts = rng.random((100, 2))
        tree = RTree(pts, metric="l1")
        center = np.array([0.5, 0.5])
        expected = np.nonzero(np.abs(pts - center).sum(axis=1) < 0.3)[0]
        assert tree.range_query(center, 0.3).tolist() == expected.tolist()


class TestDelete:
    def test_delete_then_query(self, rng):
        pts = rng.random((120, 2))
        tree = RTree(pts, max_entries=6)
        assert tree.delete(7)
        hits = tree.range_query(pts[7], 1e-9)
        assert 7 not in hits.tolist()

    def test_delete_missing_returns_false(self, rng):
        pts = rng.random((30, 2))
        tree = RTree(pts, max_entries=6)
        assert tree.delete(3)
        assert not tree.delete(3)

    def test_delete_many_keeps_invariants(self, rng):
        pts = rng.random((150, 2))
        tree = RTree(pts, max_entries=6)
        removed = rng.choice(150, size=100, replace=False)
        for pid in removed:
            assert tree.delete(int(pid))
        remaining = sorted(set(range(150)) - set(removed.tolist()))
        got = sorted(
            int(i) for leaf in tree.leaves() for i in leaf.entry_ids
        )
        assert got == remaining

    def test_delete_everything(self, rng):
        pts = rng.random((40, 2))
        tree = RTree(pts, max_entries=4)
        for pid in range(40):
            assert tree.delete(pid)
        assert tree.root is None or tree.root.subtree_count() == 0


class TestNodeContract:
    def test_min_dist_lower_bounds(self, rng, metric):
        pts = rng.random((200, 2))
        tree = RTree(pts, metric=metric, max_entries=8)
        leaves = list(tree.leaves())
        a, b = leaves[0], leaves[-1]
        ids_a = np.asarray(a.entry_ids)
        ids_b = np.asarray(b.entry_ids)
        observed = metric.pairwise(pts[ids_a], pts[ids_b]).min()
        assert a.min_dist(b, metric) <= observed + 1e-12

    def test_diameter_upper_bounds(self, rng, metric):
        pts = rng.random((200, 2))
        tree = RTree(pts, metric=metric, max_entries=8)
        for leaf in tree.leaves():
            ids = np.asarray(leaf.entry_ids)
            if len(ids) < 2:
                continue
            observed = metric.self_pairwise(pts[ids]).max()
            assert observed <= leaf.diameter(metric) + 1e-12

    def test_subtree_ids_cached_and_correct(self, rng):
        tree = RTree(rng.random((100, 2)), max_entries=8)
        ids = tree.root.subtree_ids()
        assert sorted(ids.tolist()) == list(range(100))
        assert tree.root.subtree_ids() is ids  # cached

    def test_insert_invalidates_cache(self, rng):
        pts = rng.random((60, 2))
        tree = RTree(pts[:50], max_entries=8)
        _ = tree.root.subtree_ids()
        tree.points = pts  # extend backing store
        tree.insert(55)
        assert 55 in tree.root.subtree_ids().tolist()

    def test_validate_detects_corruption(self, rng):
        tree = RTree(rng.random((100, 2)), max_entries=8)
        # Shrink the root MBR so it no longer covers children.
        tree.root.mbr.hi[:] = tree.root.mbr.lo + 1e-9
        with pytest.raises(IndexInvariantError):
            tree.validate()

    def test_validate_detects_duplicate_entries(self, rng):
        tree = RTree(rng.random((50, 2)), max_entries=8)
        leaf = next(iter(tree.leaves()))
        leaf.entry_ids.append(leaf.entry_ids[0])
        with pytest.raises(IndexInvariantError, match="partition"):
            tree.validate()

    def test_repr(self, rng):
        tree = RTree(rng.random((50, 2)), max_entries=8)
        assert "RTree" in repr(tree)
        assert "leaf" in repr(next(iter(tree.leaves())))


class TestSplits:
    def test_linear_split_on_identical_rects(self):
        # All points identical: seeds degenerate; split must still work.
        pts = np.tile([[0.3, 0.3]], (20, 1))
        tree = RTree(pts, max_entries=4, split="linear")
        tree.validate()

    def test_quadratic_min_fill_respected(self, rng):
        tree = RTree(rng.random((500, 2)), max_entries=10, min_fill=0.4)
        tree.validate()  # validate() enforces the fill bounds
