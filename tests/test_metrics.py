"""Unit tests for repro.geometry.metrics."""

import numpy as np
import pytest

from repro.geometry.metrics import (
    Chebyshev,
    Euclidean,
    Manhattan,
    Metric,
    Minkowski,
    get_metric,
)


class TestGetMetric:
    def test_default_is_euclidean(self):
        assert get_metric(None).name == "euclidean"

    @pytest.mark.parametrize(
        "spec,name",
        [
            ("euclidean", "euclidean"),
            ("l2", "euclidean"),
            ("L1", "manhattan"),
            ("cityblock", "manhattan"),
            ("linf", "chebyshev"),
            ("Chebyshev", "chebyshev"),
            (1, "manhattan"),
            (2, "euclidean"),
            (3, "minkowski-3"),
            (2.5, "minkowski-2.5"),
            (float("inf"), "chebyshev"),
        ],
    )
    def test_specs(self, spec, name):
        assert get_metric(spec).name == name

    def test_passthrough(self):
        m = Euclidean()
        assert get_metric(m) is m

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown metric"):
            get_metric("hamming")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            get_metric(object())

    def test_order_below_one_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            Minkowski(0.5)

    def test_infinite_order_rejected(self):
        with pytest.raises(ValueError, match="Chebyshev"):
            Minkowski(float("inf"))


class TestDistances:
    def test_euclidean_345(self):
        assert get_metric("euclidean").distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_manhattan(self):
        assert get_metric("l1").distance([0, 0], [3, 4]) == pytest.approx(7.0)

    def test_chebyshev(self):
        assert get_metric("linf").distance([0, 0], [3, 4]) == pytest.approx(4.0)

    def test_minkowski_three(self):
        expected = (3**3 + 4**3) ** (1 / 3)
        assert get_metric(3).distance([0, 0], [3, 4]) == pytest.approx(expected)

    def test_identity(self, metric):
        p = np.array([0.3, 0.7])
        assert metric.distance(p, p) == 0.0

    def test_symmetry(self, metric, rng):
        a, b = rng.random(3), rng.random(3)
        assert metric.distance(a, b) == pytest.approx(metric.distance(b, a))

    def test_triangle_inequality(self, metric, rng):
        for _ in range(20):
            a, b, c = rng.random(4), rng.random(4), rng.random(4)
            assert metric.distance(a, c) <= (
                metric.distance(a, b) + metric.distance(b, c) + 1e-12
            )


class TestVectorised:
    def test_pairwise_shape(self, metric, rng):
        a, b = rng.random((7, 2)), rng.random((5, 2))
        assert metric.pairwise(a, b).shape == (7, 5)

    def test_pairwise_matches_scalar(self, metric, rng):
        a, b = rng.random((4, 3)), rng.random((6, 3))
        mat = metric.pairwise(a, b)
        for i in range(4):
            for j in range(6):
                assert mat[i, j] == pytest.approx(metric.distance(a[i], b[j]))

    def test_self_pairwise_symmetric_zero_diag(self, metric, rng):
        pts = rng.random((10, 2))
        mat = metric.self_pairwise(pts)
        assert np.allclose(mat, mat.T)
        assert np.allclose(np.diag(mat), 0.0)

    def test_point_to_points(self, metric, rng):
        p = rng.random(2)
        pts = rng.random((8, 2))
        dists = metric.point_to_points(p, pts)
        for j in range(8):
            assert dists[j] == pytest.approx(metric.distance(p, pts[j]))

    def test_norm_seq_matches_norm(self, metric, rng):
        v = rng.random(3) - 0.5
        assert metric.norm_seq(v.tolist()) == pytest.approx(metric.norm(v))


class TestEquality:
    def test_same_name_equal(self):
        assert Euclidean() == Minkowski(2) or Euclidean().name != Minkowski(2).name
        assert Euclidean() == Euclidean()
        assert hash(Manhattan()) == hash(Manhattan())

    def test_different_metrics_unequal(self):
        assert Euclidean() != Manhattan()
        assert Chebyshev() != Minkowski(3)

    def test_base_metric_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Metric().norm_rows(np.zeros(2))
