"""Unit tests for the fixed-width output format (repro.io.writer)."""

import io

import pytest

from repro.io.writer import FixedWidthWriter, line_bytes, read_output, width_for


class TestLineBytes:
    def test_link_line(self):
        # "0001 0002\n" = 10 bytes.
        assert line_bytes(2, 4) == 10

    def test_group_line(self):
        # "0001 0002 0003\n" = 15 bytes.
        assert line_bytes(3, 4) == 15

    def test_empty(self):
        assert line_bytes(0, 4) == 0

    def test_matches_rendered_text(self):
        buf = io.StringIO()
        writer = FixedWidthWriter(buf, width=6)
        writer.write_link(1, 2)
        writer.write_group([1, 2, 3, 4])
        assert len(buf.getvalue()) == line_bytes(2, 6) + line_bytes(4, 6)
        assert writer.bytes_written == len(buf.getvalue())


class TestWidthFor:
    @pytest.mark.parametrize("n,expected", [(1, 1), (10, 1), (11, 2), (1000, 3), (10**6, 6)])
    def test_widths(self, n, expected):
        assert width_for(n) == expected

    def test_zero_points(self):
        assert width_for(0) == 1


class TestWriter:
    def test_zero_padding(self):
        buf = io.StringIO()
        FixedWidthWriter(buf, width=4).write_link(1, 23)
        assert buf.getvalue() == "0001 0023\n"

    def test_group_format_matches_paper(self):
        buf = io.StringIO()
        FixedWidthWriter(buf, width=4).write_group([1, 2, 3])
        assert buf.getvalue() == "0001 0002 0003\n"

    def test_group_pair(self):
        buf = io.StringIO()
        FixedWidthWriter(buf, width=2).write_group_pair([1], [2, 3])
        assert buf.getvalue() == "01 | 02 03\n"

    def test_batched_links(self):
        buf = io.StringIO()
        writer = FixedWidthWriter(buf, width=3)
        writer.write_links([1, 2], [5, 6])
        assert buf.getvalue() == "001 005\n002 006\n"
        assert writer.bytes_written == 16

    def test_empty_group_ignored(self):
        buf = io.StringIO()
        writer = FixedWidthWriter(buf, width=3)
        writer.write_group([])
        assert buf.getvalue() == ""
        assert writer.bytes_written == 0

    def test_width_validation(self):
        with pytest.raises(ValueError):
            FixedWidthWriter(io.StringIO(), width=0)

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "out.txt")
        with FixedWidthWriter(path, width=5) as writer:
            writer.write_link(3, 7)
            writer.write_group([1, 2, 9])
            writer.write_group_pair([0, 1], [5])
            expected_bytes = writer.bytes_written
        import os

        assert os.path.getsize(path) == expected_bytes
        links, groups, pairs = read_output(path)
        assert links == [(3, 7)]
        assert groups == [(1, 2, 9)]
        assert pairs == [((0, 1), (5,))]


class TestReadOutput:
    def test_reads_stream(self):
        text = "001 002\n003 004 005\n\n001 | 006 007\n"
        links, groups, pairs = read_output(io.StringIO(text))
        assert links == [(1, 2)]
        assert groups == [(3, 4, 5)]
        assert pairs == [((1,), (6, 7))]

    def test_blank_lines_skipped(self):
        links, groups, pairs = read_output(io.StringIO("\n\n"))
        assert links == [] and groups == [] and pairs == []
