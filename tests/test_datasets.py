"""Unit tests for the dataset generators (repro.datasets)."""

import numpy as np
import pytest

from repro.datasets import (
    gaussian_clusters,
    grid_points,
    lb_county,
    line_points,
    load_dataset,
    mg_county,
    normalize_unit_box,
    pacific_nw,
    sierpinski_pyramid,
    sierpinski_triangle,
    uniform_points,
)


def in_unit_box(pts):
    return pts.min() >= -1e-9 and pts.max() <= 1 + 1e-9


class TestNormalize:
    def test_unit_box(self, rng):
        pts = rng.random((100, 2)) * 40 - 17
        norm = normalize_unit_box(pts)
        assert in_unit_box(norm)
        assert norm.max() == pytest.approx(1.0)

    def test_aspect_preserved(self):
        pts = np.array([[0.0, 0.0], [10.0, 1.0]])
        norm = normalize_unit_box(pts)
        # Uniform scaling: the y-extent stays 1/10 of the x-extent.
        assert norm[1, 1] == pytest.approx(0.1)

    def test_anisotropic(self):
        pts = np.array([[0.0, 0.0], [10.0, 1.0]])
        norm = normalize_unit_box(pts, preserve_aspect=False)
        assert norm[1].tolist() == [1.0, 1.0]

    def test_degenerate_axis(self):
        pts = np.array([[0.0, 5.0], [2.0, 5.0]])
        norm = normalize_unit_box(pts)
        assert in_unit_box(norm)

    def test_empty(self):
        assert normalize_unit_box(np.empty((0, 2))).shape == (0, 2)

    def test_original_untouched(self, rng):
        pts = rng.random((10, 2)) * 5
        before = pts.copy()
        normalize_unit_box(pts)
        assert np.array_equal(pts, before)


class TestSierpinski:
    def test_shapes(self):
        assert sierpinski_triangle(500).shape == (500, 2)
        assert sierpinski_pyramid(500).shape == (500, 3)

    def test_unit_box(self):
        assert in_unit_box(sierpinski_pyramid(2000))

    def test_deterministic(self):
        a = sierpinski_pyramid(100, seed=5)
        b = sierpinski_pyramid(100, seed=5)
        assert np.array_equal(a, b)

    def test_seed_changes_output(self):
        assert not np.array_equal(
            sierpinski_pyramid(100, seed=1), sierpinski_pyramid(100, seed=2)
        )

    def test_fractal_holes(self):
        """The central inverted triangle of the attractor is empty."""
        pts = sierpinski_triangle(5000)
        center = np.array([0.5, np.sqrt(3) / 6])
        dists = np.linalg.norm(pts - center, axis=1)
        assert dists.min() > 0.05

    def test_negative_n(self):
        with pytest.raises(ValueError):
            sierpinski_triangle(-1)

    def test_zero_points(self):
        assert sierpinski_pyramid(0).shape == (0, 3)


class TestSynthetic:
    def test_uniform(self):
        pts = uniform_points(200, dim=3)
        assert pts.shape == (200, 3)
        assert in_unit_box(pts)

    def test_gaussian_clusters_are_clustered(self):
        pts = gaussian_clusters(2000, n_clusters=4, std=0.01)
        # Clustered data has far more close pairs than uniform data.
        from repro.core.bruteforce import count_links

        clustered = count_links(pts, 0.02)
        uniform = count_links(uniform_points(2000), 0.02)
        assert clustered > uniform * 5

    def test_gaussian_custom_centers(self):
        centers = np.array([[0.5, 0.5]])
        pts = gaussian_clusters(300, centers=centers, std=0.001)
        assert np.linalg.norm(pts - centers[0], axis=1).max() < 0.05

    def test_grid(self):
        pts = grid_points(5, dim=2)
        assert pts.shape == (25, 2)
        assert len(np.unique(pts, axis=0)) == 25

    def test_grid_jitter(self):
        a = grid_points(4, jitter=0.0)
        b = grid_points(4, jitter=0.01, seed=1)
        assert not np.array_equal(a, b)

    def test_line(self):
        pts = line_points(5, spacing=2.0)
        assert pts[:, 0].tolist() == [0, 2, 4, 6, 8]
        assert (pts[:, 1] == 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_points(-1)
        with pytest.raises(ValueError):
            grid_points(0)
        with pytest.raises(ValueError):
            line_points(-2)
        with pytest.raises(ValueError):
            gaussian_clusters(-5)


class TestCountyAndRoads:
    @pytest.mark.parametrize("generator", [mg_county, lb_county, pacific_nw])
    def test_basic_properties(self, generator):
        pts = generator(3000, seed=0)
        assert pts.shape == (3000, 2)
        assert in_unit_box(pts)
        assert np.array_equal(pts, generator(3000, seed=0))  # deterministic

    @pytest.mark.parametrize("generator", [mg_county, lb_county, pacific_nw])
    def test_locally_dense(self, generator):
        """The simulated maps must be much denser locally than uniform —
        that is the property driving the paper's output explosions."""
        from repro.core.bruteforce import count_links

        pts = generator(3000, seed=0)
        uniform = uniform_points(3000, seed=1)
        assert count_links(pts, 0.01) > count_links(uniform, 0.01) * 3

    def test_default_sizes_match_paper(self):
        # Default n mirrors the paper's dataset sizes.
        import inspect

        assert inspect.signature(mg_county).parameters["n"].default == 27_000
        assert inspect.signature(lb_county).parameters["n"].default == 36_000

    def test_pacific_nw_zero(self):
        assert pacific_nw(0).shape == (0, 2)

    def test_pacific_nw_validation(self):
        with pytest.raises(ValueError):
            pacific_nw(-1)


class TestLoadDataset:
    def test_by_name(self):
        pts = load_dataset("sierpinski3d", 100)
        assert pts.shape == (100, 3)

    def test_case_insensitive(self):
        assert load_dataset("MG_County", 50).shape == (50, 2)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("mars_craters", 10)
