"""Unit tests for repro.stats.counters."""

import time

import pytest

from repro.stats.counters import JoinStats, Timer


class TestJoinStats:
    def test_defaults_zero(self):
        stats = JoinStats()
        assert stats.distance_computations == 0
        assert stats.total_time == 0.0
        assert stats.bytes_written == 0

    def test_addition(self):
        a = JoinStats(distance_computations=5, compute_time=1.0)
        b = JoinStats(distance_computations=3, compute_time=0.5, links_emitted=2)
        c = a + b
        assert c.distance_computations == 8
        assert c.compute_time == 1.5
        assert c.links_emitted == 2
        # Operands untouched.
        assert a.distance_computations == 5

    def test_addition_wrong_type(self):
        with pytest.raises(TypeError):
            JoinStats() + 5

    def test_total_time(self):
        stats = JoinStats(compute_time=1.5, write_time=0.5)
        assert stats.total_time == 2.0

    def test_as_dict_round_trip(self):
        stats = JoinStats(links_emitted=7)
        d = stats.as_dict()
        assert d["links_emitted"] == 7
        assert set(d) >= {"distance_computations", "compute_time", "write_time"}

    def test_reset(self):
        stats = JoinStats(links_emitted=7, compute_time=1.0)
        stats.reset()
        assert stats.links_emitted == 0
        assert stats.compute_time == 0.0

    def test_pairs_reported(self):
        assert JoinStats(links_emitted=4).pairs_reported == 4


class TestTimer:
    def test_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        first = timer.elapsed
        assert first >= 0.009
        with timer:
            time.sleep(0.01)
        assert timer.elapsed > first

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
