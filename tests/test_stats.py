"""Unit tests for repro.stats.counters."""

import time

import pytest

from repro.stats.counters import JoinStats, Timer


class TestJoinStats:
    def test_defaults_zero(self):
        stats = JoinStats()
        assert stats.distance_computations == 0
        assert stats.total_time == 0.0
        assert stats.bytes_written == 0

    def test_addition(self):
        a = JoinStats(distance_computations=5, compute_time=1.0)
        b = JoinStats(distance_computations=3, compute_time=0.5, links_emitted=2)
        c = a + b
        assert c.distance_computations == 8
        assert c.compute_time == 1.5
        assert c.links_emitted == 2
        # Operands untouched.
        assert a.distance_computations == 5

    def test_addition_wrong_type(self):
        with pytest.raises(TypeError):
            JoinStats() + 5

    def test_total_time(self):
        stats = JoinStats(compute_time=1.5, write_time=0.5)
        assert stats.total_time == 2.0

    def test_as_dict_round_trip(self):
        stats = JoinStats(links_emitted=7)
        d = stats.as_dict()
        assert d["links_emitted"] == 7
        assert set(d) >= {"distance_computations", "compute_time", "write_time"}

    def test_as_dict_includes_derived_values(self):
        stats = JoinStats(links_emitted=4, compute_time=1.5, write_time=0.5)
        d = stats.as_dict()
        assert d["total_time"] == 2.0
        assert d["pairs_reported"] == 4

    def test_as_dict_restores_identical_stats(self):
        stats = JoinStats(links_emitted=9, groups_emitted=3, compute_time=0.25)
        d = stats.as_dict()
        restored = JoinStats()
        from dataclasses import fields

        for f in fields(JoinStats):
            setattr(restored, f.name, d[f.name])
        assert restored == stats
        assert restored.as_dict() == d

    def test_reset(self):
        stats = JoinStats(links_emitted=7, compute_time=1.0)
        stats.reset()
        assert stats.links_emitted == 0
        assert stats.compute_time == 0.0

    def test_reset_preserves_declared_types(self):
        # Regression: under `from __future__ import annotations` field
        # types are strings, so a `f.type is int` check silently reset
        # int counters to 0.0 and they accumulated as floats thereafter.
        stats = JoinStats(links_emitted=7, compute_time=1.0)
        stats.reset()
        from dataclasses import fields

        for f in fields(JoinStats):
            value = getattr(stats, f.name)
            assert type(value) is type(f.default), f.name
        assert type(stats.links_emitted) is int
        assert type(stats.compute_time) is float
        stats.links_emitted += 5
        assert type(stats.links_emitted) is int

    def test_add_preserves_declared_types(self):
        a = JoinStats(links_emitted=2, compute_time=0.5)
        b = JoinStats(links_emitted=3, compute_time=0.25)
        c = a + b
        assert type(c.links_emitted) is int
        assert type(c.distance_computations) is int
        assert type(c.compute_time) is float

    def test_reset_then_add_stays_int(self):
        a = JoinStats(links_emitted=2)
        a.reset()
        a.links_emitted = 4
        c = a + JoinStats(links_emitted=1)
        assert c.links_emitted == 5
        assert type(c.links_emitted) is int

    def test_pairs_reported(self):
        assert JoinStats(links_emitted=4).pairs_reported == 4


class TestTimer:
    def test_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        first = timer.elapsed
        assert first >= 0.009
        with timer:
            time.sleep(0.01)
        assert timer.elapsed > first

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0

    def test_nested_entry_counts_outer_interval_once(self):
        # Regression: re-entrant __enter__ used to clobber _start, so the
        # outer interval before the inner block was silently dropped and
        # the inner region was double-counted.
        timer = Timer()
        with timer:
            time.sleep(0.02)
            with timer:
                time.sleep(0.01)
            time.sleep(0.02)
        # Exactly one wall-clock interval of ~0.05s, not ~0.01-0.03s.
        assert timer.elapsed >= 0.045
        assert timer.elapsed < 0.5

    def test_nested_exit_restores_reentrancy(self):
        timer = Timer()
        with timer:
            with timer:
                pass
        first = timer.elapsed
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= first + 0.009
