"""Unit tests for the general-metric-space joins (repro.core.metricspace)."""

import numpy as np
import pytest

from repro.core.metricspace import (
    BallGroupBuffer,
    ObjectMetric,
    brute_force_object_links,
    build_metric_index,
    metric_csj,
    metric_similarity_join,
)
from repro.core.results import CollectSink


def hamming(a: str, b: str) -> float:
    """Hamming-with-length-penalty distance over strings."""
    return float(sum(x != y for x, y in zip(a, b)) + abs(len(a) - len(b)))


def levenshtein(a: str, b: str) -> float:
    prev = list(range(len(b) + 1))
    for i, ca in enumerate(a, 1):
        cur = [i]
        for j, cb in enumerate(b, 1):
            cur.append(min(prev[j] + 1, cur[-1] + 1, prev[j - 1] + (ca != cb)))
        prev = cur
    return float(prev[-1])


@pytest.fixture
def words(rng):
    """Clusters of mutated words plus isolated strings."""
    seeds = ["alpha", "bridge", "crystal", "domino"]
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    out = []
    for seed_word in seeds:
        out.append(seed_word)
        for _ in range(12):
            chars = list(seed_word)
            pos = int(rng.integers(0, len(chars)))
            chars[pos] = alphabet[int(rng.integers(0, 26))]
            out.append("".join(chars))
    out.extend(["zzzzzzzzzzzz", "qqq"])
    return out


class TestObjectMetric:
    def test_distance_resolves_ids(self, words):
        metric = ObjectMetric(words, hamming)
        assert metric.distance([0.0], [0.0]) == 0.0
        direct = hamming(words[0], words[3])
        assert metric.distance([0.0], [3.0]) == direct

    def test_pairwise(self, words):
        metric = ObjectMetric(words, hamming)
        ids = np.arange(5, dtype=float).reshape(-1, 1)
        mat = metric.pairwise(ids, ids)
        assert mat.shape == (5, 5)
        assert np.allclose(np.diag(mat), 0.0)
        assert mat[1, 2] == hamming(words[1], words[2])

    def test_norm_rows_forbidden(self, words):
        with pytest.raises(TypeError, match="no vector norm"):
            ObjectMetric(words, hamming).norm_rows(np.zeros(2))


class TestMetricIndex:
    def test_builds_and_validates(self, words):
        tree = build_metric_index(words, hamming, max_entries=4)
        tree.validate()
        assert tree.size == len(words)

    def test_range_query(self, words):
        tree = build_metric_index(words, hamming, max_entries=4)
        hits = tree.range_query(np.array([0.0]), 2.0)
        expected = [
            i for i, w in enumerate(words) if hamming(words[0], w) < 2.0
        ]
        assert sorted(hits.tolist()) == expected


class TestMetricCSJ:
    @pytest.mark.parametrize("g", [0, 5, 10])
    @pytest.mark.parametrize("eps", [1.5, 2.5, 4.0])
    def test_lossless(self, words, eps, g):
        truth = brute_force_object_links(words, eps, hamming)
        result = metric_similarity_join(words, eps, hamming, g=g, max_entries=4)
        assert result.expanded_links() == truth

    def test_levenshtein_lossless(self, words):
        truth = brute_force_object_links(words, 2.0, levenshtein)
        result = metric_similarity_join(words, 2.0, levenshtein, max_entries=4)
        assert result.expanded_links() == truth

    def test_groups_mutually_satisfy(self, words):
        eps = 3.0
        result = metric_similarity_join(words, eps, hamming, max_entries=4)
        for ids in result.groups:
            for a in range(len(ids)):
                for b in range(a + 1, len(ids)):
                    assert hamming(words[ids[a]], words[ids[b]]) < eps

    def test_compacts_clustered_strings(self, words):
        eps = 3.0
        compact = metric_similarity_join(words, eps, hamming, g=10, max_entries=4)
        naive = metric_similarity_join(words, eps, hamming, g=0, max_entries=4)
        assert compact.stats.groups_emitted > 0
        assert compact.output_bytes <= naive.output_bytes

    def test_labels(self, words):
        assert metric_similarity_join(words, 2.0, hamming).algorithm == "metric-csj(10)"
        assert metric_similarity_join(words, 2.0, hamming, g=0).algorithm == "metric-ncsj"

    def test_rejects_vector_trees(self, rng):
        from repro.index.mtree import MTree

        tree = MTree(rng.random((30, 2)), max_entries=8)
        with pytest.raises(TypeError, match="ObjectMetric"):
            metric_csj(tree, 0.1)

    def test_eps_validation(self, words):
        tree = build_metric_index(words, hamming)
        with pytest.raises(ValueError):
            metric_csj(tree, 0.0)

    def test_vector_data_through_object_interface(self, rng):
        """Sanity: a Euclidean callable gives the same links as the
        vector pipeline."""
        pts = [tuple(row) for row in rng.random((80, 2))]

        def euclid(a, b):
            return ((a[0] - b[0]) ** 2 + (a[1] - b[1]) ** 2) ** 0.5

        truth = brute_force_object_links(pts, 0.15, euclid)
        result = metric_similarity_join(pts, 0.15, euclid, max_entries=8)
        assert result.expanded_links() == truth


class TestBallGroupBuffer:
    def test_merge_within_half_eps(self):
        sink = CollectSink(id_width=2)
        buffer = BallGroupBuffer(3, 4.0, sink, distance_fn=hamming)
        buffer.create_group([0, 1], "cat", 1.0)
        buffer.add_link(2, 3, "cap", "car")  # both within 1 of "cat"
        buffer.flush()
        assert sink.groups == [(0, 1, 2, 3)]

    def test_reject_beyond_half_eps(self):
        sink = CollectSink(id_width=2)
        buffer = BallGroupBuffer(3, 4.0, sink, distance_fn=hamming)
        buffer.create_group([0, 1], "cat", 1.0)
        buffer.add_link(2, 3, "dddddd", "ddddddd")  # far from "cat", d=1
        buffer.flush()
        # The far link seeds its own ball group (d = 1, 2*1 < 4).
        assert (2, 3) in sink.links or (2, 3) in [tuple(sorted(g[:2])) for g in sink.groups]

    def test_unseedable_link_written_individually(self):
        sink = CollectSink(id_width=2)
        buffer = BallGroupBuffer(3, 2.0, sink, distance_fn=hamming)
        # d("ab", "cd") = 2; 2*... wait strict: link qualifies at eps > 2.
        buffer.add_link(0, 1, "ax", "ay")  # d=1; 2*1 = 2 >= eps -> no ball
        buffer.flush()
        assert sink.links == [(0, 1)]
        assert sink.groups == []

    def test_validation(self):
        sink = CollectSink()
        with pytest.raises(ValueError):
            BallGroupBuffer(-1, 1.0, sink, distance_fn=hamming)
        with pytest.raises(ValueError):
            BallGroupBuffer(1, 0.0, sink, distance_fn=hamming)
