"""Unit tests for sinks and JoinResult (repro.core.results)."""

import numpy as np
import pytest

from repro.core.results import (
    CallbackSink,
    CollectSink,
    CountingSink,
    JoinResult,
    TextSink,
    make_sink,
    normalized_link,
)
from repro.io.writer import line_bytes


class TestNormalizedLink:
    def test_orders(self):
        assert normalized_link(5, 2) == (2, 5)
        assert normalized_link(2, 5) == (2, 5)


class TestCollectSink:
    def test_links_normalised(self):
        sink = CollectSink(id_width=4)
        sink.write_link(9, 3)
        assert sink.links == [(3, 9)]
        assert sink.stats.links_emitted == 1
        assert sink.stats.bytes_written == line_bytes(2, 4)

    def test_batch_links(self):
        sink = CollectSink(id_width=4)
        sink.write_links(np.array([5, 1]), np.array([2, 8]))
        assert sink.links == [(2, 5), (1, 8)]
        assert sink.stats.links_emitted == 2

    def test_raw_link_not_normalised(self):
        sink = CollectSink(id_width=4)
        sink.write_link_raw(9, 3)
        assert sink.links == [(9, 3)]

    def test_groups_sorted(self):
        sink = CollectSink(id_width=4)
        sink.write_group([5, 2, 9])
        assert sink.groups == [(2, 5, 9)]
        assert sink.stats.groups_emitted == 1
        assert sink.stats.group_members_emitted == 3

    def test_singleton_group_dropped(self):
        sink = CollectSink()
        sink.write_group([7])
        assert sink.groups == []
        assert sink.stats.groups_emitted == 0

    def test_group_pair(self):
        sink = CollectSink(id_width=4)
        sink.write_group_pair([2, 1], [7])
        assert sink.group_pairs == [((1, 2), (7,))]
        assert sink.stats.bytes_written == line_bytes(3, 4) + 2

    def test_empty_group_pair_dropped(self):
        sink = CollectSink()
        sink.write_group_pair([], [1])
        assert sink.group_pairs == []


class TestCountingSink:
    def test_counts_only(self):
        sink = CountingSink(id_width=4)
        sink.write_link(1, 2)
        sink.write_links(np.array([1, 2, 3]), np.array([4, 5, 6]))
        sink.write_group([1, 2, 3])
        assert sink.stats.links_emitted == 4
        assert sink.stats.groups_emitted == 1
        assert sink.stats.bytes_written == 4 * line_bytes(2, 4) + line_bytes(3, 4)


class TestCallbackSink:
    def test_streams_events(self):
        links, groups, pairs = [], [], []
        sink = CallbackSink(
            on_link=lambda i, j: links.append((i, j)),
            on_group=lambda ids: groups.append(ids),
            on_group_pair=lambda a, b: pairs.append((a, b)),
            id_width=3,
        )
        sink.write_link(5, 2)
        sink.write_group([4, 1, 9])
        sink.write_group_pair([0], [7, 8])
        assert links == [(2, 5)]
        assert groups == [(1, 4, 9)]
        assert pairs == [((0,), (7, 8))]
        assert sink.stats.links_emitted == 1
        assert sink.stats.groups_emitted == 2

    def test_callbacks_optional(self):
        sink = CallbackSink()
        sink.write_link(1, 2)  # no callbacks registered: counters only
        assert sink.stats.links_emitted == 1

    def test_streaming_join(self, rng):
        """A join can stream into a callback without buffering."""
        from repro.core.csj import csj
        from repro.index.bulk import bulk_load

        pts = rng.random((300, 2))
        seen = []
        sink = CallbackSink(
            on_link=lambda i, j: seen.append(("link", i, j)),
            on_group=lambda ids: seen.append(("group", ids)),
            id_width=3,
        )
        result = csj(bulk_load(pts, max_entries=16), 0.1, g=10, sink=sink)
        assert len(seen) == result.stats.links_emitted + result.stats.groups_emitted


class TestTextSink:
    def test_bytes_match_file(self, tmp_path):
        path = str(tmp_path / "out.txt")
        with TextSink(path, id_width=5) as sink:
            sink.write_link(1, 2)
            sink.write_links(np.array([3]), np.array([4]))
            sink.write_group([5, 6, 7])
        import os

        assert os.path.getsize(path) == sink.stats.bytes_written
        assert sink.stats.write_time > 0.0


class TestMakeSink:
    def test_kinds(self, tmp_path):
        assert isinstance(make_sink("collect"), CollectSink)
        assert isinstance(make_sink("count"), CountingSink)
        assert isinstance(
            make_sink("text", target=str(tmp_path / "t.txt")), TextSink
        )

    def test_text_needs_target(self):
        with pytest.raises(ValueError, match="target"):
            make_sink("text")

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown sink"):
            make_sink("null")


class TestJoinResult:
    def test_expand_links_groups(self):
        result = JoinResult(
            eps=0.1,
            algorithm="csj",
            links=[(1, 2)],
            groups=[(3, 4, 5)],
        )
        assert result.expanded_links() == {(1, 2), (3, 4), (3, 5), (4, 5)}
        assert result.implied_link_count() == 4

    def test_expand_group_pairs_self_join_semantics(self):
        result = JoinResult(eps=0.1, algorithm="x", group_pairs=[((1,), (2, 3))])
        assert result.expanded_links() == {(1, 2), (1, 3)}

    def test_expand_cross_links_keeps_order(self):
        result = JoinResult(
            eps=0.1,
            algorithm="spatial",
            links=[(7, 2)],
            group_pairs=[((1,), (0,))],
        )
        assert result.expanded_cross_links() == {(7, 2), (1, 0)}

    def test_from_sink_collect(self):
        sink = CollectSink()
        sink.write_link(2, 1)
        result = JoinResult.from_sink(sink, eps=0.5, algorithm="ssj")
        assert result.links == [(1, 2)]
        assert result.stats is sink.stats
        assert result.output_bytes == sink.stats.bytes_written

    def test_from_sink_counting_has_no_payload(self):
        sink = CountingSink()
        sink.write_link(1, 2)
        result = JoinResult.from_sink(sink, eps=0.5, algorithm="ssj")
        assert result.links == []
        assert result.stats.links_emitted == 1

    def test_summary_keys(self):
        result = JoinResult(eps=0.25, algorithm="csj(10)", g=10)
        summary = result.summary()
        assert summary["algorithm"] == "csj(10)"
        assert summary["eps"] == 0.25
        assert "output_bytes" in summary and "total_time" in summary

    def test_repr(self):
        assert "csj" in repr(JoinResult(eps=0.1, algorithm="csj"))
