"""Unit tests for fractal dimension estimation (repro.stats.fractal)."""

import numpy as np
import pytest

from repro.datasets import sierpinski_triangle, uniform_points
from repro.stats.fractal import correlation_dimension, correlation_integral


class TestCorrelationIntegral:
    def test_monotone_in_radius(self, rng):
        pts = rng.random((500, 2))
        counts = correlation_integral(pts, [0.01, 0.05, 0.2])
        assert counts[0] <= counts[1] <= counts[2]

    def test_matches_count_links(self, rng):
        from repro.core.bruteforce import count_links

        pts = rng.random((300, 2))
        counts = correlation_integral(pts, [0.1])
        assert counts[0] == count_links(pts, 0.1)


class TestCorrelationDimension:
    def test_line_has_dimension_one(self, rng):
        line = np.stack([rng.random(4000), np.zeros(4000)], axis=1)
        est = correlation_dimension(line)
        assert est.dimension == pytest.approx(1.0, abs=0.15)

    def test_uniform_square_has_dimension_two(self):
        pts = uniform_points(5000, seed=1)
        est = correlation_dimension(pts, r_min=2.0**-7, r_max=2.0**-4)
        assert est.dimension == pytest.approx(2.0, abs=0.25)

    def test_sierpinski_triangle_dimension(self):
        """D2 of the Sierpinski triangle is log 3 / log 2 ~ 1.585."""
        pts = sierpinski_triangle(8000, seed=0)
        est = correlation_dimension(pts, r_min=2.0**-7, r_max=2.0**-4)
        assert est.dimension == pytest.approx(np.log(3) / np.log(2), abs=0.2)

    def test_predicted_pairs_extrapolates(self, rng):
        pts = uniform_points(2000, seed=2)
        est = correlation_dimension(pts, r_min=2.0**-7, r_max=2.0**-4)
        from repro.core.bruteforce import count_links

        predicted = est.predicted_pairs(2.0**-3, reference_index=len(est.radii) - 1)
        actual = count_links(pts, 2.0**-3)
        assert predicted == pytest.approx(actual, rel=0.5)

    def test_validation(self, rng):
        pts = rng.random((100, 2))
        with pytest.raises(ValueError):
            correlation_dimension(pts, r_min=0.2, r_max=0.1)
        with pytest.raises(ValueError):
            correlation_dimension(pts, n_radii=1)

    def test_too_sparse_raises(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(ValueError, match="non-empty radii"):
            correlation_dimension(pts, r_min=1e-6, r_max=1e-5)

    def test_local_slopes_diagnostic(self):
        pts = uniform_points(2000, seed=3)
        est = correlation_dimension(pts, r_min=2.0**-7, r_max=2.0**-4)
        assert len(est.local_slopes) == len(est.radii) - 1
