"""Unit tests for the epsilon-grid-order join (repro.core.egrid)."""

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_links
from repro.core.egrid import (
    _positive_neighbour_offsets,
    egrid_join,
    egrid_sorted_join,
    epsilon_grid_order,
    grid_cells,
)
from repro.core.verify import check_equivalence


class TestGridCells:
    def test_cells_partition_ids(self, uniform_2d):
        cells = grid_cells(uniform_2d, 0.1)
        ids = sorted(int(i) for arr in cells.values() for i in arr)
        assert ids == list(range(len(uniform_2d)))

    def test_cell_coordinates(self):
        pts = np.array([[0.05, 0.05], [0.15, 0.05], [0.05, 0.15]])
        cells = grid_cells(pts, 0.1)
        assert set(cells) == {(0, 0), (1, 0), (0, 1)}

    def test_cells_in_lexicographic_order(self, uniform_2d):
        keys = list(grid_cells(uniform_2d, 0.2))
        assert keys == sorted(keys)

    def test_points_in_same_cell_grouped(self):
        pts = np.array([[0.01, 0.01], [0.02, 0.02], [0.5, 0.5]])
        cells = grid_cells(pts, 0.1)
        assert sorted(cells[(0, 0)].tolist()) == [0, 1]


class TestNeighbourOffsets:
    def test_2d_count(self):
        # Half of the 3^2 - 1 = 8 neighbours are lexicographically positive.
        assert len(_positive_neighbour_offsets(2)) == 4

    def test_3d_count(self):
        assert len(_positive_neighbour_offsets(3)) == 13

    def test_all_positive(self):
        for offset in _positive_neighbour_offsets(3):
            assert offset > tuple([0] * 3)


class TestJoin:
    @pytest.mark.parametrize("eps", [0.01, 0.05, 0.2])
    def test_standard_matches_brute_force(self, uniform_2d, eps):
        result = egrid_join(uniform_2d, eps, compact=False)
        assert set(result.links) == brute_force_links(uniform_2d, eps)

    @pytest.mark.parametrize("eps", [0.02, 0.07])
    def test_compact_lossless(self, clustered_2d, eps):
        result = egrid_join(clustered_2d, eps, compact=True, g=10)
        check_equivalence(clustered_2d, eps, result).raise_if_failed()

    def test_compact_g0_lossless(self, clustered_2d):
        result = egrid_join(clustered_2d, 0.05, compact=True, g=0)
        check_equivalence(clustered_2d, 0.05, result).raise_if_failed()

    def test_3d(self, uniform_3d):
        result = egrid_join(uniform_3d, 0.15, compact=True, g=10)
        check_equivalence(uniform_3d, 0.15, result).raise_if_failed()

    def test_compact_reduces_output(self, clustered_2d):
        plain = egrid_join(clustered_2d, 0.05, compact=False)
        compact = egrid_join(clustered_2d, 0.05, compact=True, g=10)
        assert compact.output_bytes < plain.output_bytes

    def test_early_termination_as_group(self, clustered_2d):
        result = egrid_join(clustered_2d, 0.08, compact=True, g=10)
        assert result.stats.early_stops > 0

    def test_non_euclidean(self, uniform_2d):
        result = egrid_join(uniform_2d, 0.1, compact=True, g=5, metric="l1")
        check_equivalence(uniform_2d, 0.1, result, metric="l1").raise_if_failed()

    def test_labels(self, uniform_2d):
        assert egrid_join(uniform_2d, 0.1).algorithm == "egrid"
        assert egrid_join(uniform_2d, 0.1, compact=True, g=10).algorithm == "egrid-csj(10)"
        assert egrid_join(uniform_2d, 0.1, compact=True, g=0).algorithm == "egrid-ncsj"

    def test_eps_validation(self, uniform_2d):
        with pytest.raises(ValueError):
            egrid_join(uniform_2d, 0.0)

    def test_single_point(self):
        result = egrid_join(np.array([[0.5, 0.5]]), 0.1)
        assert result.links == []

    def test_exact_distance_grid(self):
        side = 6
        xs, ys = np.meshgrid(np.arange(side), np.arange(side))
        pts = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(float)
        for eps in (1.0, np.sqrt(2.0), 2.0):
            result = egrid_join(pts, eps, compact=True, g=10)
            check_equivalence(pts, eps, result).raise_if_failed()

    def test_agrees_with_tree_join(self, clustered_2d):
        """Same implied link set as the tree-based CSJ."""
        from repro.core.csj import csj
        from repro.index.bulk import bulk_load

        tree = bulk_load(clustered_2d, max_entries=16)
        tree_links = csj(tree, 0.05, g=10).expanded_links()
        grid_links = egrid_join(clustered_2d, 0.05, compact=True, g=10).expanded_links()
        assert tree_links == grid_links


class TestSortedVariant:
    """The sequential-scan (Boehm-style) grid-order join."""

    def test_order_is_lexicographic_by_cell(self, uniform_2d):
        eps = 0.1
        order = epsilon_grid_order(uniform_2d, eps)
        import numpy as np

        cells = np.floor(uniform_2d[order] / eps).astype(int)
        keys = [tuple(c) for c in cells.tolist()]
        assert keys == sorted(keys)

    @pytest.mark.parametrize("eps", [0.02, 0.07, 0.2])
    def test_standard_matches_brute_force(self, uniform_2d, eps):
        result = egrid_sorted_join(uniform_2d, eps)
        assert set(result.links) == brute_force_links(uniform_2d, eps)

    @pytest.mark.parametrize("g", [0, 10])
    def test_compact_lossless(self, clustered_2d, g):
        result = egrid_sorted_join(clustered_2d, 0.05, compact=True, g=g)
        check_equivalence(clustered_2d, 0.05, result).raise_if_failed()

    def test_identical_output_to_hash_variant(self, clustered_2d):
        """Same cells, same visiting order: byte-identical output."""
        hashed = egrid_join(clustered_2d, 0.05, compact=True, g=10)
        swept = egrid_sorted_join(clustered_2d, 0.05, compact=True, g=10)
        assert hashed.expanded_links() == swept.expanded_links()
        assert hashed.output_bytes == swept.output_bytes

    def test_3d(self, uniform_3d):
        result = egrid_sorted_join(uniform_3d, 0.15, compact=True, g=10)
        check_equivalence(uniform_3d, 0.15, result).raise_if_failed()

    def test_labels(self, uniform_2d):
        assert egrid_sorted_join(uniform_2d, 0.1).algorithm == "egrid-sorted"
        assert (
            egrid_sorted_join(uniform_2d, 0.1, compact=True, g=10).algorithm
            == "egrid-sorted-csj(10)"
        )

    def test_eps_validation(self, uniform_2d):
        with pytest.raises(ValueError):
            egrid_sorted_join(uniform_2d, -1.0)

    def test_single_point(self):
        import numpy as np

        assert egrid_sorted_join(np.array([[0.4, 0.4]]), 0.1).links == []
