"""Unit tests for the R*-tree (repro.index.rstar)."""

import numpy as np
import pytest

from repro.index.rstar import RStarTree
from repro.index.rtree import RTree


class TestBuild:
    def test_build_validates(self, uniform_2d):
        tree = RStarTree(uniform_2d, max_entries=8)
        tree.validate()
        assert tree.size == len(uniform_2d)

    def test_three_dimensional(self, uniform_3d):
        tree = RStarTree(uniform_3d, max_entries=8)
        tree.validate()

    def test_clustered(self, clustered_2d):
        tree = RStarTree(clustered_2d, max_entries=8)
        tree.validate()

    def test_empty_and_single(self):
        RStarTree(np.empty((0, 2))).validate()
        t = RStarTree(np.array([[0.1, 0.2]]))
        t.validate()
        assert t.height == 1

    def test_duplicates(self):
        tree = RStarTree(np.tile([[0.4, 0.6]], (40, 1)), max_entries=4)
        tree.validate()

    def test_forced_reinsert_occurs(self, rng):
        """With a small capacity, at least one insertion should trigger
        forced reinsertion rather than an immediate split."""
        tree = RStarTree(rng.random((200, 2)), max_entries=6)
        tree.validate()
        # Structural sanity only: reinsert is internal, but the tree must
        # still partition all ids exactly once.
        assert tree.root.subtree_count() == 200


class TestQuality:
    def test_rstar_overlap_not_worse_than_rtree(self, rng):
        """R* split/reinsert should produce leaf MBRs with no more total
        overlap than plain Guttman on clustered data (the design goal)."""
        centers = rng.random((8, 2))
        pts = np.clip(
            centers[rng.integers(0, 8, 600)] + rng.normal(scale=0.02, size=(600, 2)),
            0,
            1,
        )

        def total_leaf_overlap(tree):
            leaves = list(tree.leaves())
            total = 0.0
            for i in range(len(leaves)):
                for j in range(i + 1, len(leaves)):
                    total += leaves[i].mbr.overlap_area(leaves[j].mbr)
            return total

        rstar = RStarTree(pts, max_entries=10)
        guttman = RTree(pts, max_entries=10)
        assert total_leaf_overlap(rstar) <= total_leaf_overlap(guttman) * 1.25

    def test_range_query_matches_brute_force(self, rng):
        pts = rng.random((400, 2))
        tree = RStarTree(pts, max_entries=8)
        center = np.array([0.4, 0.6])
        expected = np.nonzero(np.linalg.norm(pts - center, axis=1) < 0.15)[0]
        assert tree.range_query(center, 0.15).tolist() == expected.tolist()


class TestDelete:
    def test_delete_keeps_invariants(self, rng):
        pts = rng.random((150, 2))
        tree = RStarTree(pts, max_entries=6)
        for pid in range(0, 150, 3):
            assert tree.delete(pid)
        tree.validate()
        remaining = sorted(
            int(i) for leaf in tree.leaves() for i in leaf.entry_ids
        )
        assert remaining == [i for i in range(150) if i % 3 != 0]

    def test_delete_missing(self, rng):
        tree = RStarTree(rng.random((30, 2)), max_entries=6)
        tree.delete(5)
        assert not tree.delete(5)


class TestName:
    def test_class_metadata(self):
        assert RStarTree.name == "rstar"
        assert 0 < RStarTree.reinsert_fraction < 1
