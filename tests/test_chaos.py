"""The fault-injection harness: deterministic plans, flaky sinks/indexes."""

import numpy as np
import pytest

from repro.api import build_index
from repro.core.csj import csj
from repro.core.results import CollectSink
from repro.core.ssj import ssj
from repro.core.verify import brute_force_links
from repro.resilience.chaos import FailurePlan, FlakyIndex, FlakySink
from repro.resilience.sinks import RetryingSink


class TestFailurePlan:
    def test_deterministic_under_same_seed(self):
        def failures(seed):
            plan = FailurePlan(seed=seed, rate=0.3)
            out = []
            for op in range(100):
                try:
                    plan.tick()
                except OSError:
                    out.append(op)
            return out

        assert failures(7) == failures(7)
        assert failures(7) != failures(8)

    def test_explicit_schedule(self):
        plan = FailurePlan(fail_at=[2, 5])
        hit = []
        for op in range(8):
            try:
                plan.tick()
            except OSError as exc:
                hit.append(op)
                assert f"op {op}" in str(exc)
        assert hit == [2, 5]

    def test_max_failures_exhausts(self):
        plan = FailurePlan(rate=1.0, max_failures=3)
        hit = 0
        for _ in range(10):
            try:
                plan.tick()
            except OSError:
                hit += 1
        assert hit == 3
        assert plan.failures == 3
        assert plan.ops == 10

    def test_stream_position_independent_of_outcomes(self):
        # max_failures must not shift later failure decisions: the draw
        # happens unconditionally, so op k's roll depends only on k.
        unlimited = FailurePlan(seed=3, rate=0.5)
        limited = FailurePlan(seed=3, rate=0.5, max_failures=2)
        pattern_a, pattern_b = [], []
        for _ in range(50):
            try:
                unlimited.tick()
                pattern_a.append(False)
            except OSError:
                pattern_a.append(True)
        for _ in range(50):
            try:
                limited.tick()
                pattern_b.append(False)
            except OSError:
                pattern_b.append(True)
        assert [i for i, f in enumerate(pattern_b) if f] == \
            [i for i, f in enumerate(pattern_a) if f][:2]

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            FailurePlan(rate=1.5)


class TestFlakySink:
    def test_no_plan_is_identity(self):
        inner = CollectSink(id_width=4)
        sink = FlakySink(inner, FailurePlan())
        sink.write_link(1, 2)
        sink.write_group([3, 4, 5])
        sink.close()
        assert inner.links == [(1, 2)]
        assert inner.groups == [(3, 4, 5)]

    def test_failed_write_stores_nothing(self):
        inner = CollectSink(id_width=4)
        sink = FlakySink(inner, FailurePlan(fail_at=[0]))
        with pytest.raises(OSError):
            sink.write_link(1, 2)
        assert inner.links == []
        assert inner.stats.links_emitted == 0
        sink.write_link(1, 2)  # op 1 succeeds
        assert inner.links == [(1, 2)]

    def test_retrying_sink_rides_through_flaky_sink(self):
        inner = CollectSink(id_width=4)
        flaky = FlakySink(inner, FailurePlan(seed=5, rate=0.4))
        sink = RetryingSink(flaky, max_retries=8, sleep=lambda _s: None)
        for i in range(50):
            sink.write_link(i, i + 1)
        sink.close()
        assert len(inner.links) == 50
        assert sink.retries > 0  # the plan really did inject failures


class TestFlakyIndex:
    def _tree(self, n=300, seed=4):
        pts = np.random.default_rng(seed).random((n, 2))
        return pts, build_index(pts, bulk="str")

    def test_no_failures_is_identity(self):
        pts, tree = self._tree()
        flaky = FlakyIndex(tree, FailurePlan())
        assert ssj(flaky, 0.08).links == ssj(tree, 0.08).links
        assert flaky.size == tree.size

    def test_scheduled_page_read_fails(self):
        pts, tree = self._tree()
        flaky = FlakyIndex(tree, FailurePlan(fail_at=[5]))
        with pytest.raises(OSError, match="index page read"):
            ssj(flaky, 0.08)
        assert flaky.plan.failures == 1

    def test_join_recovers_after_plan_exhausts(self):
        pts = np.random.default_rng(4).random((300, 2))
        from repro.index.bulk import bulk_load

        tree = bulk_load(pts, max_entries=8)
        exact = brute_force_links(pts, 0.08)
        # The plan keeps counting ops across retries, so each scheduled
        # failure kills one attempt; the fourth attempt runs clean.
        plan = FailurePlan(fail_at=[3, 20, 45])
        flaky = FlakyIndex(tree, plan)
        attempts = 0
        while True:
            attempts += 1
            assert attempts < 10
            try:
                result = csj(flaky, 0.08, g=10)
                break
            except OSError:
                continue  # retry the whole join; plan eventually dries up
        assert plan.failures == 3
        assert attempts == 4
        assert result.expanded_links() == exact


class TestEndToEndRecovery:
    """Three seeds of sink chaos against checkpointed runs (the CI chaos
    job runs this battery)."""

    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_checkpointed_run_survives_seeded_chaos(self, seed, tmp_path):
        import filecmp

        from repro.api import similarity_join
        from repro.core.results import TextSink
        from repro.io.writer import width_for
        from repro.resilience.checkpoint import CheckpointedJoin

        pts = np.random.default_rng(seed).random((250, 2))
        direct = tmp_path / "direct.txt"
        sink = TextSink(str(direct), id_width=width_for(len(pts)))
        similarity_join(pts, 0.07, algorithm="csj", g=10, sink=sink)
        sink.close()

        ck = tmp_path / "ck.txt"
        crashes = 0
        while True:
            wrapper = lambda inner: FlakySink(
                inner, FailurePlan(seed=seed + crashes, rate=0.01)
            )
            job = CheckpointedJoin(pts, 0.07, str(ck), algorithm="csj", g=10,
                                   cadence=6, sink_wrapper=wrapper)
            try:
                result = job.run(resume=crashes > 0)
                break
            except OSError:
                crashes += 1
                assert crashes < 300
        assert filecmp.cmp(str(direct), str(ck), shallow=False)
        assert result.expanded_links() == brute_force_links(pts, 0.07)
