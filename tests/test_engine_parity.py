"""Scalar vs. vectorized engine: byte-identical output, identical counters.

The vectorized frontier engine is only admissible because it is
*observationally identical* to the recursive scalar engine: same links,
same groups, in the same order, with the same ``JoinStats`` counters —
at any worker count, and across a kill-and-resume boundary even when the
resuming process picks the other engine.  This suite is that contract's
regression harness, on the paper's two workload shapes (the Figure 5
real-data distribution and the Figure 7 fractal used for scalability).
"""

import filecmp

import numpy as np
import pytest

from repro.api import similarity_join, spatial_join_datasets
from repro.core.frontier import enumerate_tree_tasks_packed, resolve_engine
from repro.core.verify import cross_check_engines
from repro.datasets import load_dataset
from repro.index.packed import pack_index
from repro.resilience.chaos import FailurePlan, FlakySink
from repro.resilience.checkpoint import CheckpointedJoin, _enumerate_tree_tasks

# Small cuts of the paper's workloads: fig5's real-data distribution and
# fig7's fractal. Sizes keep the full matrix under a few seconds.
WORKLOADS = {
    "fig5": (load_dataset("mg_county", 300, seed=0), 0.05),
    "fig7": (load_dataset("sierpinski3d", 400, seed=0), 0.125),
}
TREE_ALGORITHMS = ["ssj", "ncsj", "csj"]


def _payload(result):
    return (result.links, result.groups, result.group_pairs)


def _int_counters(result):
    return {
        k: v for k, v in result.stats.as_dict().items() if isinstance(v, int)
    }


def _assert_identical(a, b, context=""):
    assert _payload(a) == _payload(b), f"payload diverged: {context}"
    assert _int_counters(a) == _int_counters(b), f"counters diverged: {context}"


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("algorithm", TREE_ALGORITHMS + ["egrid"])
def test_serial_engines_identical(workload, algorithm):
    pts, eps = WORKLOADS[workload]
    scalar = similarity_join(pts, eps, algorithm=algorithm, engine="scalar")
    vec = similarity_join(pts, eps, algorithm=algorithm, engine="vectorized")
    _assert_identical(scalar, vec, f"{algorithm} on {workload}")


@pytest.mark.parametrize("index", ["rtree", "mtree"])
def test_serial_engines_identical_other_indexes(index):
    pts, eps = WORKLOADS["fig5"]
    bulk = "str" if index == "rtree" else None
    for algorithm in TREE_ALGORITHMS:
        scalar = similarity_join(
            pts, eps, algorithm=algorithm, index=index, bulk=bulk,
            max_entries=8, engine="scalar",
        )
        vec = similarity_join(
            pts, eps, algorithm=algorithm, index=index, bulk=bulk,
            max_entries=8, engine="vectorized",
        )
        _assert_identical(scalar, vec, f"{algorithm} on {index}")


@pytest.mark.parametrize("compact", [False, True])
def test_dual_tree_engines_identical(compact):
    pts_a, eps = WORKLOADS["fig7"]
    pts_b = load_dataset("sierpinski3d", 350, seed=1)
    scalar = spatial_join_datasets(
        pts_a, pts_b, eps, compact=compact, engine="scalar"
    )
    vec = spatial_join_datasets(
        pts_a, pts_b, eps, compact=compact, engine="vectorized"
    )
    _assert_identical(scalar, vec, f"dual compact={compact}")


@pytest.mark.parametrize("algorithm", ["ssj", "csj"])
def test_workers_two_engines_identical(algorithm):
    pts, eps = WORKLOADS["fig5"]
    serial = similarity_join(pts, eps, algorithm=algorithm, engine="vectorized")
    for engine in ("scalar", "vectorized"):
        pooled = similarity_join(
            pts, eps, algorithm=algorithm, workers=2, engine=engine
        )
        assert _payload(pooled) == _payload(serial), engine


@pytest.mark.parametrize("compact", [False, True])
def test_packed_task_enumeration_matches_recursive(compact):
    from repro.api import build_index

    for workload in sorted(WORKLOADS):
        pts, eps = WORKLOADS[workload]
        for index, bulk in (("rstar", "str"), ("rtree", None), ("mtree", None)):
            tree = build_index(pts, index, max_entries=8, bulk=bulk)
            packed = enumerate_tree_tasks_packed(tree, eps, compact)
            assert packed is not None
            assert packed == _enumerate_tree_tasks(tree, eps, compact)


def test_kill_and_resume_across_engines(tmp_path):
    """A run started vectorized and resumed scalar (and vice versa) is
    byte-identical to an uninterrupted run on either engine."""
    pts, eps = WORKLOADS["fig5"]
    baseline = tmp_path / "baseline.txt"
    CheckpointedJoin(pts, eps, str(baseline), algorithm="csj", cadence=9,
                     engine="scalar").run()

    for first, second in (("vectorized", "scalar"), ("scalar", "vectorized")):
        out = tmp_path / f"{first}-{second}.txt"
        wrapper = lambda inner: FlakySink(
            inner, FailurePlan(seed=5, rate=0.0, fail_at=[40])
        )
        with pytest.raises(OSError):
            CheckpointedJoin(pts, eps, str(out), algorithm="csj", cadence=9,
                             sink_wrapper=wrapper, engine=first).run()
        CheckpointedJoin(pts, eps, str(out), algorithm="csj", cadence=9,
                         engine=second).run(resume=True)
        assert filecmp.cmp(str(baseline), str(out), shallow=False), (
            f"{first} -> {second} resume diverged"
        )


def test_cross_check_engines_agrees_and_guards_kwargs():
    pts, eps = WORKLOADS["fig7"]
    result = cross_check_engines(pts, eps, algorithm="csj", g=10)
    direct = similarity_join(pts, eps, algorithm="csj", g=10)
    _assert_identical(result, direct, "cross_check vs direct")
    with pytest.raises(ValueError):
        cross_check_engines(pts, eps, engine="scalar")


def test_object_metric_falls_back_to_scalar():
    """A non-vectorizable metric must quietly take the scalar path —
    same results, no crash — because pack_index declines it."""
    from repro.api import build_index
    from repro.core.metricspace import ObjectMetric

    rng = np.random.default_rng(2)
    pts = rng.random((80, 2))
    metric = ObjectMetric(
        pts,
        lambda a, b: float(np.abs(np.asarray(a) - np.asarray(b)).sum()),
        name="obj-l1",
    )
    tree = build_index(pts, "mtree", metric=metric, max_entries=8, bulk=None)
    assert pack_index(tree) is None
    scalar = similarity_join(
        pts, 0.05, algorithm="csj", index="mtree", bulk=None,
        metric=metric, engine="scalar",
    )
    vec = similarity_join(
        pts, 0.05, algorithm="csj", index="mtree", bulk=None,
        metric=metric, engine="vectorized",
    )
    _assert_identical(scalar, vec, "object metric fallback")


def test_resolve_engine_validates():
    assert resolve_engine(None) == "vectorized"
    assert resolve_engine("Scalar") == "scalar"
    with pytest.raises(ValueError):
        resolve_engine("turbo")
