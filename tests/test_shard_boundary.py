"""Adversarial shard geometry: borders, halos, skew and degeneracy.

Every case here is built to stress one clause of the sharding contract:
the strict ``< eps`` predicate at an exact-ε border straddle, halos that
swallow entire neighbor shards, plans where all points land in one
shard, shards with no points at all, and duplicate coordinates
replicated into a halo.  In every case the sharded output must be
byte-identical to the ``shards=1`` run and pair-equal to the classic
unsharded join.
"""

import numpy as np
import pytest

from repro.api import similarity_join
from repro.errors import InvalidInputError
from repro.geometry.metrics import get_metric
from repro.shard import ShardPlanner, sharded_join
from repro.shard.planner import grid_shape


class TestBorderStraddle:
    """Points around a shard border, at and just inside the range."""

    # grid_shape(2, 2) splits the unit square into two cells along one
    # axis; the border of a [0,1]^2 bounding box falls at 0.5 on that
    # axis.  Points at 0.45/0.55 are *exactly* eps=0.1 apart.
    def _straddle(self, delta):
        return np.array(
            [
                [0.45, 0.30], [0.55 - delta, 0.30],   # straddling pair
                [0.10, 0.10], [0.12, 0.10],           # deep inside shard 0
                [0.90, 0.90], [0.88, 0.90],           # deep inside shard 1
            ]
        )

    def test_exactly_eps_apart_is_excluded_everywhere(self, parity_check):
        pts = self._straddle(0.0)
        base = parity_check(
            pts, 0.1, cases=[(2, "grid", None), (4, "grid", None)]
        )
        # The strict predicate drops the exact-ε straddle pair in the
        # sharded run just as in the classic one.
        assert (0, 1) not in base.expanded_links()
        assert (2, 3) in base.expanded_links()

    def test_just_under_eps_straddle_is_kept(self, parity_check):
        pts = self._straddle(1e-9)
        base = parity_check(
            pts, 0.1, cases=[(2, "grid", None), (4, "hilbert", None)]
        )
        assert (0, 1) in base.expanded_links()

    def test_straddle_pair_owned_exactly_once(self):
        pts = self._straddle(1e-9)
        result = sharded_join(pts, 0.1, algorithm="ssj", shards=2)
        assert sorted(result.links).count((0, 1)) == 1


class TestDegeneratePlans:
    # The grid spans the data's bounding box, so a lone far outlier
    # stretches it: the tight cluster then falls entirely inside one
    # cell and most shards end up with an empty core.
    def _clustered(self):
        cluster = 0.01 + 0.01 * np.random.default_rng(0).random((39, 2))
        return np.vstack([cluster, [[0.99, 0.99]]])

    def test_all_points_in_one_shard(self, parity_check):
        pts = self._clustered()
        base = parity_check(pts, 0.05, cases=[(8, "grid", None), (8, "hilbert", None)])
        plan = ShardPlanner(8, "grid").plan(pts, 0.05, get_metric(None))
        assert max(plan.core_counts) == 39  # the whole cluster, one shard
        assert base.stats.links_emitted + base.stats.groups_emitted > 0

    def test_empty_shards_stay_in_the_plan(self):
        pts = self._clustered()
        plan = ShardPlanner(8, "grid").plan(pts, 0.05, get_metric(None))
        assert plan.k == 8
        assert len(plan.members) == 8
        empty_cores = int((np.asarray(plan.core_counts) == 0).sum())
        assert empty_cores >= 1
        # Empty-core shards contribute no tasks but keep their slot, so
        # task ids and the canonical order are stable.
        assert sum(plan.core_counts) == len(pts)

    def test_more_shards_than_points(self, parity_check):
        pts = np.array([[0.1, 0.1], [0.15, 0.1], [0.9, 0.9]])
        parity_check(pts, 0.1, cases=[(8, "grid", None), (8, "hilbert", None)])

    def test_eps_larger_than_a_shard_cell(self, parity_check):
        # eps far beyond the unit square's diameter: every point is
        # within range of every core MBR, so each shard's halo is the
        # *entire* rest of the dataset — maximal replication, and the
        # output must still come out byte-identical.
        pts = np.random.default_rng(3).random((60, 2))
        parity_check(pts, 1.5, cases=[(4, "grid", None), (4, "hilbert", None)])
        plan = ShardPlanner(4, "grid").plan(pts, 1.5, get_metric(None))
        for ids in plan.members:
            assert len(ids) == len(pts)  # halo = whole neighbor(s)
        assert plan.halo_points == 3 * len(pts)

    def test_duplicate_coordinates_in_the_halo(self, parity_check):
        # Four identical points sitting right at the border, plus their
        # duplicates' neighbors: replication must not double-report.
        pts = np.array(
            [
                [0.5, 0.5], [0.5, 0.5], [0.5, 0.5], [0.5, 0.5],
                [0.48, 0.5], [0.52, 0.5],
                [0.1, 0.1], [0.9, 0.9],
            ]
        )
        base = parity_check(
            pts, 0.05, cases=[(2, "grid", None), (4, "grid", None), (8, "hilbert", None)]
        )
        expanded = base.expanded_links()
        # All 4 duplicates pairwise joined (distance 0 < eps), once each.
        for a in range(4):
            for b in range(a + 1, 4):
                assert (a, b) in expanded

    def test_single_point_and_pair(self, parity_check):
        parity_check(np.array([[0.3, 0.3], [0.31, 0.3]]), 0.05,
                     cases=[(2, "grid", None), (8, "hilbert", None)])


class TestPlannerInvariants:
    def test_grid_shape_covers_k_exactly(self):
        for k in (1, 2, 3, 4, 6, 8, 12, 30):
            for dim in (1, 2, 3):
                shape = grid_shape(k, dim)
                assert len(shape) == dim
                assert int(np.prod(shape)) == k

    @pytest.mark.parametrize("partitioner", ["grid", "hilbert"])
    def test_halo_invariant(self, sharded_dataset, partitioner):
        """Every point within eps of a shard's core MBR is a member."""
        eps = 0.07
        metric = get_metric(None)
        plan = ShardPlanner(6, partitioner).plan(sharded_dataset, eps, metric)
        from repro.geometry.mbr import MBR

        for s, ids in enumerate(plan.members):
            core = np.flatnonzero(plan.home == s)
            if len(core) == 0:
                continue
            box = MBR.of_points(sharded_dataset[core])
            near = np.flatnonzero(
                box.min_dist_points(sharded_dataset, metric) <= eps
            )
            assert set(near).issubset(set(ids.tolist()))
            assert set(core).issubset(set(ids.tolist()))

    def test_homes_partition_the_dataset(self, sharded_dataset):
        for partitioner in ("grid", "hilbert"):
            plan = ShardPlanner(5, partitioner).plan(sharded_dataset, 0.06, get_metric(None))
            assert plan.home.shape == (len(sharded_dataset),)
            assert plan.home.min() >= 0 and plan.home.max() < 5
            assert sum(plan.core_counts) == len(sharded_dataset)

    def test_skew_ratio_reported(self, sharded_dataset):
        result = similarity_join(sharded_dataset, 0.06, shards=4)
        report = result.shard_report
        assert report["skew_ratio"] >= 1.0
        assert report["points"] == len(sharded_dataset)
        assert report["halo_points"] == sum(report["halo_counts"])
        assert len(report["core_counts"]) == 4

    def test_invalid_configuration_rejected(self, sharded_dataset):
        with pytest.raises(InvalidInputError):
            similarity_join(sharded_dataset, 0.06, shards=0)
        with pytest.raises(InvalidInputError):
            similarity_join(sharded_dataset, 0.06, shards=2, partitioner="voronoi")
        from repro.index import get_index_class

        tree = get_index_class("rstar")(sharded_dataset[:10])
        with pytest.raises(InvalidInputError):
            similarity_join(sharded_dataset[:10], 0.06, shards=2, index=tree)
