"""Checkpointed, resumable join execution (the journal + recovery layer).

The central claims mirror the paper's Theorems 1 and 2 across a crash:
a run interrupted at any point and resumed from its journal produces the
byte-identical output file of an uninterrupted run — hence the same
expanded link set, which equals the brute-force join.
"""

import filecmp
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import similarity_join
from repro.core.results import TextSink
from repro.core.verify import brute_force_links
from repro.errors import BudgetExceededError, CheckpointCorruptError
from repro.io.writer import width_for
from repro.resilience.budget import Budget
from repro.resilience.chaos import FailurePlan, FlakySink
from repro.resilience.checkpoint import CheckpointedJoin, read_journal

ALGORITHMS = ["ssj", "ncsj", "csj", "egrid", "egrid-csj"]


@pytest.fixture
def pts():
    return np.random.default_rng(11).random((350, 2))


def _direct_output(pts, eps, algo, path, g=10):
    sink = TextSink(str(path), id_width=width_for(len(pts)))
    result = similarity_join(pts, eps, algorithm=algo, g=g, sink=sink)
    sink.close()
    return result


class TestFreshRuns:
    @pytest.mark.parametrize("algo", ALGORITHMS)
    def test_byte_identical_to_direct_join(self, pts, algo, tmp_path):
        direct = tmp_path / "direct.txt"
        r_direct = _direct_output(pts, 0.06, algo, direct)
        ck = tmp_path / "ck.txt"
        job = CheckpointedJoin(pts, 0.06, str(ck), algorithm=algo, g=10, cadence=13)
        r_ck = job.run()
        assert filecmp.cmp(str(direct), str(ck), shallow=False)
        assert r_ck.stats.links_emitted == r_direct.stats.links_emitted
        assert r_ck.stats.groups_emitted == r_direct.stats.groups_emitted
        assert r_ck.stats.bytes_written == os.path.getsize(ck)

    def test_journal_records_completion(self, pts, tmp_path):
        ck = tmp_path / "ck.txt"
        CheckpointedJoin(pts, 0.06, str(ck), cadence=13).run()
        header, last = read_journal(str(ck) + ".journal")
        assert header["type"] == "header"
        assert last["done"] is True
        assert last["offset"] == os.path.getsize(ck)

    def test_custom_journal_path(self, pts, tmp_path):
        ck = tmp_path / "ck.txt"
        journal = tmp_path / "elsewhere.journal"
        CheckpointedJoin(pts, 0.06, str(ck), journal_path=str(journal)).run()
        assert journal.exists()
        assert not os.path.exists(str(ck) + ".journal")

    def test_mtree_index_supported(self, pts, tmp_path):
        direct = tmp_path / "direct.txt"
        sink = TextSink(str(direct), id_width=width_for(len(pts)))
        similarity_join(pts, 0.06, algorithm="csj", g=10, index="mtree",
                        bulk=None, sink=sink)
        sink.close()
        ck = tmp_path / "ck.txt"
        CheckpointedJoin(pts, 0.06, str(ck), algorithm="csj", g=10,
                         index="mtree", bulk=None, cadence=7).run()
        assert filecmp.cmp(str(direct), str(ck), shallow=False)


def _run_until_done(pts, eps, algo, ck, seed, rate=0.004, cadence=9, g=10):
    """Crash-and-resume loop; returns (result, crash_count).

    The first attempt always dies (scheduled failure at op 3, well within
    even SSJ's batched-write op count); later attempts crash randomly at
    ``rate`` until one runs clean.
    """
    crashes = 0
    while True:
        fail_at = [3] if crashes == 0 else []
        wrapper = lambda inner: FlakySink(
            inner, FailurePlan(seed=seed + crashes, rate=rate, fail_at=fail_at)
        )
        job = CheckpointedJoin(pts, eps, str(ck), algorithm=algo, g=g,
                               cadence=cadence, sink_wrapper=wrapper)
        try:
            return job.run(resume=crashes > 0), crashes
        except OSError:
            crashes += 1
            assert crashes < 300, "resume is not making progress"


class TestCrashAndResume:
    @pytest.mark.parametrize("algo", ALGORITHMS)
    def test_interrupted_run_recovers_byte_identically(self, pts, algo, tmp_path):
        direct = tmp_path / "direct.txt"
        r_direct = _direct_output(pts, 0.06, algo, direct)
        ck = tmp_path / "ck.txt"
        result, crashes = _run_until_done(pts, 0.06, algo, ck, seed=1)
        assert crashes > 0, "fault plan injected nothing; raise the rate"
        assert filecmp.cmp(str(direct), str(ck), shallow=False)
        assert result.expanded_links() == r_direct.expanded_links()

    def test_expanded_links_equal_brute_force(self, pts, tmp_path):
        ck = tmp_path / "ck.txt"
        result, crashes = _run_until_done(pts, 0.06, "csj", ck, seed=2)
        assert crashes > 0
        assert result.expanded_links() == brute_force_links(pts, 0.06)

    def test_resume_after_budget_breach(self, pts, tmp_path):
        ck = tmp_path / "ck.txt"
        job = CheckpointedJoin(
            pts, 0.06, str(ck), algorithm="csj", g=10, cadence=9,
            budget=Budget(deadline_seconds=0.0, check_every=1),
        )
        with pytest.raises(BudgetExceededError) as info:
            job.run()
        assert info.value.partial is not None
        # The deadline-killed run left a durable journal: resume finishes it.
        job2 = CheckpointedJoin(pts, 0.06, str(ck), algorithm="csj", g=10,
                                cadence=9)
        result = job2.run(resume=True)
        direct = tmp_path / "direct.txt"
        _direct_output(pts, 0.06, "csj", direct)
        assert filecmp.cmp(str(direct), str(ck), shallow=False)
        assert result.expanded_links() == brute_force_links(pts, 0.06)

    def test_resume_of_completed_run_is_noop(self, pts, tmp_path):
        ck = tmp_path / "ck.txt"
        CheckpointedJoin(pts, 0.06, str(ck), cadence=9).run()
        before = open(ck, "rb").read()
        CheckpointedJoin(pts, 0.06, str(ck), cadence=9).run(resume=True)
        assert open(ck, "rb").read() == before


class TestJournalSafety:
    def test_resume_without_journal_fails(self, pts, tmp_path):
        job = CheckpointedJoin(pts, 0.06, str(tmp_path / "ck.txt"))
        with pytest.raises(CheckpointCorruptError):
            job.run(resume=True)

    def test_fingerprint_mismatch_rejected(self, pts, tmp_path):
        ck = tmp_path / "ck.txt"
        CheckpointedJoin(pts, 0.06, str(ck), cadence=9).run()
        with pytest.raises(CheckpointCorruptError, match="configuration"):
            CheckpointedJoin(pts, 0.07, str(ck)).run(resume=True)
        other = np.random.default_rng(99).random((350, 2))
        with pytest.raises(CheckpointCorruptError, match="configuration"):
            CheckpointedJoin(other, 0.06, str(ck)).run(resume=True)

    def test_torn_journal_tail_is_ignored(self, pts, tmp_path):
        ck = tmp_path / "ck.txt"
        wrapper = lambda inner: FlakySink(inner, FailurePlan(fail_at=[40]))
        with pytest.raises(OSError):
            CheckpointedJoin(pts, 0.06, str(ck), cadence=5,
                             sink_wrapper=wrapper).run()
        journal = str(ck) + ".journal"
        with open(journal, "a") as f:
            f.write('deadbeef {"type":"ckpt","cursor":9')  # torn, bad CRC
        header, last = read_journal(journal)
        assert last is None or last["type"] == "ckpt"
        result = CheckpointedJoin(pts, 0.06, str(ck), cadence=5).run(resume=True)
        assert result.expanded_links() == brute_force_links(pts, 0.06)

    def test_corrupt_header_rejected(self, pts, tmp_path):
        journal = tmp_path / "bad.journal"
        journal.write_text("this is not a journal\n")
        with pytest.raises(CheckpointCorruptError):
            read_journal(str(journal))

    def test_truncated_output_beyond_offset_restored(self, pts, tmp_path):
        """Extra non-durable bytes after the recorded offset are discarded."""
        ck = tmp_path / "ck.txt"
        wrapper = lambda inner: FlakySink(inner, FailurePlan(fail_at=[60]))
        with pytest.raises(OSError):
            CheckpointedJoin(pts, 0.06, str(ck), cadence=5,
                             sink_wrapper=wrapper).run()
        with open(ck, "a") as f:
            f.write("TORN PARTIAL LIN")  # crash mid-line after last fsync
        result = CheckpointedJoin(pts, 0.06, str(ck), cadence=5).run(resume=True)
        direct = tmp_path / "direct.txt"
        _direct_output(pts, 0.06, "csj", direct)
        assert filecmp.cmp(str(direct), str(ck), shallow=False)

    def test_missing_output_with_progress_rejected(self, pts, tmp_path):
        ck = tmp_path / "ck.txt"
        wrapper = lambda inner: FlakySink(inner, FailurePlan(fail_at=[60]))
        with pytest.raises(OSError):
            CheckpointedJoin(pts, 0.06, str(ck), cadence=5,
                             sink_wrapper=wrapper).run()
        os.unlink(ck)
        with pytest.raises(CheckpointCorruptError):
            CheckpointedJoin(pts, 0.06, str(ck), cadence=5).run(resume=True)


class TestPropertyKillAndResume:
    """Hypothesis: kill at a random write, resume — exactly the brute-force
    links, for random point sets, ranges and algorithms (Theorems 1-2
    across a crash)."""

    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(60, 160),
        eps=st.sampled_from([0.05, 0.1, 0.2]),
        algo=st.sampled_from(["csj", "ssj", "egrid-csj"]),
        kill_op=st.integers(1, 120),
    )
    @settings(max_examples=25, deadline=None)
    def test_kill_anywhere_resume_lossless(self, tmp_path_factory, seed, n,
                                           eps, algo, kill_op):
        pts = np.random.default_rng(seed).random((n, 2))
        d = tmp_path_factory.mktemp("ck")
        ck = d / "out.txt"
        wrapper = lambda inner: FlakySink(
            inner, FailurePlan(fail_at=[kill_op], max_failures=1)
        )
        job = CheckpointedJoin(pts, eps, str(ck), algorithm=algo, g=7,
                               cadence=4, sink_wrapper=wrapper)
        try:
            result = job.run()
            interrupted = False
        except OSError:
            interrupted = True
            result = CheckpointedJoin(pts, eps, str(ck), algorithm=algo, g=7,
                                      cadence=4).run(resume=True)
        assert result.expanded_links() == brute_force_links(pts, eps)
        direct = d / "direct.txt"
        _direct_output(pts, eps, algo, direct, g=7)
        assert filecmp.cmp(str(direct), str(ck), shallow=False), (
            f"divergent output (interrupted={interrupted})"
        )


class TestValidation:
    def test_rejects_unknown_algorithm(self, pts, tmp_path):
        from repro.errors import InvalidInputError

        with pytest.raises(InvalidInputError):
            CheckpointedJoin(pts, 0.06, str(tmp_path / "x"), algorithm="hash")

    def test_rejects_bad_inputs(self, tmp_path):
        from repro.errors import InvalidInputError

        with pytest.raises(InvalidInputError):
            CheckpointedJoin(np.empty((0, 2)), 0.06, str(tmp_path / "x"))
        with pytest.raises(InvalidInputError):
            CheckpointedJoin(np.zeros((5, 2)), -1.0, str(tmp_path / "x"))
