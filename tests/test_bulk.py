"""Unit tests for bulk loading (repro.index.bulk)."""

import numpy as np
import pytest

from repro.index.bulk import bulk_load, hilbert_pack, omt_pack, str_pack
from repro.index.mtree import MTree
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree

PACKERS = [str_pack, hilbert_pack, omt_pack]
PACKER_IDS = ["str", "hilbert", "omt"]


@pytest.mark.parametrize("packer", PACKERS, ids=PACKER_IDS)
class TestPackers:
    def test_packs_validate(self, rng, packer):
        pts = rng.random((777, 2))
        tree = RTree.from_packed_root(pts, packer(pts, 16, 16), max_entries=16)
        tree.validate()

    def test_all_points_present(self, rng, packer):
        pts = rng.random((250, 3))
        root = packer(pts, 16, 16)
        tree = RTree.from_packed_root(pts, root, max_entries=16)
        ids = sorted(int(i) for leaf in tree.leaves() for i in leaf.entry_ids)
        assert ids == list(range(250))

    def test_small_inputs(self, rng, packer):
        for n in (1, 2, 15, 16, 17):
            pts = rng.random((n, 2))
            tree = RTree.from_packed_root(pts, packer(pts, 16, 16), max_entries=16)
            tree.validate()
            assert tree.root.subtree_count() == n

    def test_awkward_sizes(self, rng, packer):
        # Sizes straddling capacity boundaries, the classic underfill trap.
        for n in (17, 33, 65, 257):
            pts = rng.random((n, 2))
            tree = RTree.from_packed_root(pts, packer(pts, 16, 16), max_entries=16)
            tree.validate()

    def test_range_query_after_pack(self, rng, packer):
        pts = rng.random((400, 2))
        tree = RTree.from_packed_root(pts, packer(pts, 16, 16), max_entries=16)
        center = np.array([0.3, 0.3])
        expected = np.nonzero(np.linalg.norm(pts - center, axis=1) < 0.2)[0]
        assert tree.range_query(center, 0.2).tolist() == expected.tolist()

    def test_dynamic_insert_after_pack(self, rng, packer):
        pts = rng.random((130, 2))
        tree = RTree.from_packed_root(pts[:100], packer(pts[:100], 8, 8), max_entries=8)
        tree.points = pts
        for pid in range(100, 130):
            tree.insert(pid)
        tree.validate()
        assert tree.root.subtree_count() == 130


class TestBulkLoad:
    def test_default(self, rng):
        tree = bulk_load(rng.random((300, 2)))
        assert isinstance(tree, RStarTree)
        tree.validate()

    @pytest.mark.parametrize("method", ["str", "hilbert", "omt"])
    def test_methods(self, rng, method):
        tree = bulk_load(rng.random((300, 2)), method=method, max_entries=16)
        tree.validate()

    def test_tree_class_by_name(self, rng):
        tree = bulk_load(rng.random((100, 2)), tree_class="rtree")
        assert isinstance(tree, RTree)

    def test_unknown_method(self, rng):
        with pytest.raises(ValueError, match="unknown bulk method"):
            bulk_load(rng.random((10, 2)), method="sorted")

    def test_mtree_rejected(self, rng):
        with pytest.raises(TypeError, match="R-tree family"):
            bulk_load(rng.random((10, 2)), tree_class=MTree)

    def test_morton_curve_variant(self, rng):
        tree = bulk_load(
            rng.random((200, 2)), method="hilbert", curve="morton", max_entries=16
        )
        tree.validate()

    def test_unknown_curve(self, rng):
        with pytest.raises(ValueError, match="unknown curve"):
            bulk_load(rng.random((10, 2)), method="hilbert", curve="peano")

    def test_str_leaves_tile_space(self, rng):
        """STR leaves on uniform data should have small mutual overlap."""
        pts = rng.random((1024, 2))
        tree = bulk_load(pts, method="str", max_entries=32)
        leaves = list(tree.leaves())
        overlap = sum(
            leaves[i].mbr.overlap_area(leaves[j].mbr)
            for i in range(len(leaves))
            for j in range(i + 1, len(leaves))
        )
        assert overlap < 0.05  # of a unit of total area

    def test_packed_trees_beat_dynamic_on_build_time(self, rng):
        import time

        pts = rng.random((2000, 2))
        t0 = time.perf_counter()
        bulk_load(pts, method="str", max_entries=32)
        bulk_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        RStarTree(pts, max_entries=32)
        dyn_time = time.perf_counter() - t0
        assert bulk_time < dyn_time
