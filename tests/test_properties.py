"""Property-based tests (hypothesis) for the core invariants.

The central property is the paper's Theorems 1 and 2: for *any* point set,
query range, index structure and window size, the compact join output
expands to exactly the brute-force link set.  Hypothesis explores point
configurations (duplicates, collinear points, exact-distance ties,
degenerate dimensions) far nastier than the random fixtures.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import brute_force_links
from repro.core.csj import csj
from repro.core.egrid import egrid_join
from repro.core.ssj import ssj
from repro.core.verify import check_equivalence
from repro.geometry.mbr import MBR
from repro.index.bulk import bulk_load
from repro.index.mtree import MTree
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree

# Coordinates on a coarse lattice maximise exact-distance ties, the
# hardest case for strict-inequality agreement.
coordinate = st.one_of(
    st.integers(0, 8).map(lambda v: v / 8.0),
    st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False, width=32),
)


def point_sets(min_points=2, max_points=60, dims=(1, 2, 3)):
    return st.integers(min(dims), max(dims)).flatmap(
        lambda d: st.lists(
            st.lists(coordinate, min_size=d, max_size=d),
            min_size=min_points,
            max_size=max_points,
        ).map(lambda rows: np.asarray(rows, dtype=float))
    )


epsilons = st.sampled_from([0.05, 0.125, 0.25, 0.5, 1.0])
window_sizes = st.sampled_from([0, 1, 3, 10])


@settings(max_examples=60, deadline=None)
@given(pts=point_sets(), eps=epsilons, g=window_sizes)
def test_csj_lossless_on_arbitrary_input(pts, eps, g):
    tree = bulk_load(pts, max_entries=4)
    result = csj(tree, eps, g=g)
    check_equivalence(pts, eps, result).raise_if_failed()


@settings(max_examples=30, deadline=None)
@given(pts=point_sets(), eps=epsilons)
def test_ssj_matches_brute_force(pts, eps):
    tree = bulk_load(pts, max_entries=4)
    result = ssj(tree, eps)
    assert set(result.links) == brute_force_links(pts, eps)


@settings(max_examples=30, deadline=None)
@given(pts=point_sets(max_points=40), eps=epsilons, g=window_sizes)
def test_csj_lossless_on_dynamic_rtree(pts, eps, g):
    tree = RTree(pts, max_entries=4)
    result = csj(tree, eps, g=g)
    check_equivalence(pts, eps, result).raise_if_failed()


@settings(max_examples=25, deadline=None)
@given(pts=point_sets(max_points=40), eps=epsilons)
def test_csj_lossless_on_mtree(pts, eps):
    tree = MTree(pts, max_entries=4)
    result = csj(tree, eps, g=10)
    check_equivalence(pts, eps, result).raise_if_failed()


@settings(max_examples=30, deadline=None)
@given(pts=point_sets(), eps=epsilons, g=window_sizes)
def test_egrid_lossless(pts, eps, g):
    result = egrid_join(pts, eps, compact=True, g=g)
    check_equivalence(pts, eps, result).raise_if_failed()


@settings(max_examples=40, deadline=None)
@given(pts=point_sets(), eps=epsilons)
def test_groups_internally_valid(pts, eps):
    """Theorem 2 at the point level: every group's realised diameter is
    strictly below the range."""
    tree = bulk_load(pts, max_entries=4)
    result = csj(tree, eps, g=10)
    for ids in result.groups:
        members = pts[list(ids)]
        diffs = members[:, None, :] - members[None, :, :]
        dists = np.sqrt((diffs**2).sum(axis=-1))
        assert dists.max() < eps


@settings(max_examples=40, deadline=None)
@given(pts=point_sets(min_points=1))
def test_tree_invariants_hold(pts):
    for cls in (RTree, RStarTree, MTree):
        cls(pts, max_entries=4).validate()


@settings(max_examples=40, deadline=None)
@given(pts=point_sets(min_points=1), drop=st.lists(st.integers(0, 59), max_size=30))
def test_rtree_delete_preserves_invariants(pts, drop):
    tree = RTree(pts, max_entries=4)
    expected = set(range(len(pts)))
    for pid in drop:
        if pid < len(pts) and pid in expected:
            assert tree.delete(pid)
            expected.discard(pid)
    tree.validate()
    stored = {int(i) for leaf in tree.leaves() for i in leaf.entry_ids}
    assert stored == expected


@settings(max_examples=25, deadline=None)
@given(
    pts=point_sets(min_points=4, max_points=40),
    ops=st.lists(st.tuples(st.booleans(), st.integers(0, 39)), max_size=40),
)
def test_rstar_interleaved_updates_preserve_invariants(pts, ops):
    """Random insert/delete interleavings keep the R*-tree valid and the
    stored set consistent, and the join on the final tree is lossless."""
    half = len(pts) // 2
    tree = RStarTree(pts[:half], max_entries=4)
    tree.points = pts  # allow inserting the back half...
    tree._deleted = set(range(half, len(pts)))  # ...which starts absent
    stored = set(range(half))
    for is_insert, pid in ops:
        if pid >= len(pts):
            continue
        if is_insert and pid not in stored:
            tree.insert(pid)
            stored.add(pid)
        elif not is_insert and pid in stored:
            assert tree.delete(pid)
            stored.discard(pid)
    tree.validate()
    in_leaves = {int(i) for leaf in tree.leaves() for i in leaf.entry_ids}
    assert in_leaves == stored
    if len(stored) >= 2:
        result = csj(tree, 0.25, g=5)
        implied = result.expanded_links()
        kept = sorted(stored)
        truth = {
            (kept[a], kept[b])
            for a in range(len(kept))
            for b in range(a + 1, len(kept))
            if np.sqrt(((pts[kept[a]] - pts[kept[b]]) ** 2).sum()) < 0.25
        }
        assert implied == truth


@settings(max_examples=50, deadline=None)
@given(pts=point_sets(min_points=2, max_points=20))
def test_mbr_of_points_covers_and_is_tight(pts):
    mbr = MBR.of_points(pts)
    for p in pts:
        assert mbr.contains_point(p)
    assert np.array_equal(mbr.lo, pts.min(axis=0))
    assert np.array_equal(mbr.hi, pts.max(axis=0))


@settings(max_examples=50, deadline=None)
@given(
    pts=point_sets(min_points=2, max_points=20),
    probe=st.lists(coordinate, min_size=3, max_size=3),
)
def test_mbr_distance_bounds_bracket_truth(pts, probe):
    p = np.asarray(probe[: pts.shape[1]], dtype=float)
    mbr = MBR.of_points(pts)
    dists = np.sqrt(((pts - p) ** 2).sum(axis=1))
    assert mbr.min_dist_point(p) <= dists.min() + 1e-9
    assert mbr.max_dist_point(p) >= dists.max() - 1e-9


@settings(max_examples=40, deadline=None)
@given(pts=point_sets(min_points=2, max_points=50), eps=epsilons)
def test_range_query_agrees_with_scan(pts, eps):
    tree = bulk_load(pts, max_entries=4)
    probe = pts[0]
    expected = np.nonzero(np.sqrt(((pts - probe) ** 2).sum(axis=1)) < eps)[0]
    assert tree.range_query(probe, eps).tolist() == expected.tolist()


@settings(max_examples=25, deadline=None)
@given(
    pts_a=point_sets(min_points=1, max_points=30, dims=(2,)),
    pts_b=point_sets(min_points=1, max_points=30, dims=(2,)),
    eps=epsilons,
    g=window_sizes,
)
def test_spatial_join_lossless(pts_a, pts_b, eps, g):
    from repro.core.bruteforce import brute_force_cross_links
    from repro.core.dual import compact_spatial_join

    tree_a = bulk_load(pts_a, max_entries=4)
    tree_b = bulk_load(pts_b, max_entries=4)
    result = compact_spatial_join(tree_a, tree_b, eps, g=g)
    assert result.expanded_cross_links() == brute_force_cross_links(pts_a, pts_b, eps)


@settings(max_examples=25, deadline=None)
@given(
    words=st.lists(st.text(alphabet="abc", min_size=0, max_size=6), min_size=2, max_size=25),
    eps=st.sampled_from([1.0, 2.0, 3.0]),
    g=window_sizes,
)
def test_metric_space_join_lossless(words, eps, g):
    from repro.core.metricspace import (
        brute_force_object_links,
        metric_similarity_join,
    )

    def hamming(a, b):
        return float(sum(x != y for x, y in zip(a, b)) + abs(len(a) - len(b)))

    result = metric_similarity_join(words, eps, hamming, g=g, max_entries=4)
    assert result.expanded_links() == brute_force_object_links(words, eps, hamming)


@settings(max_examples=30, deadline=None)
@given(pts=point_sets(min_points=1, max_points=40), k=st.integers(1, 8))
def test_knn_matches_linear_scan(pts, k):
    tree = bulk_load(pts, max_entries=4)
    probe = pts[0] * 0.5
    dists = np.sqrt(((pts - probe) ** 2).sum(axis=1))
    expected = np.lexsort((np.arange(len(pts)), dists))[: min(k, len(pts))]
    assert tree.nearest(probe, k=k).tolist() == expected.tolist()


@settings(max_examples=30, deadline=None)
@given(pts=point_sets(min_points=2, max_points=40), eps=epsilons)
def test_clusters_from_compact_equal_clusters_from_standard(pts, eps):
    from repro.core.clusters import connected_components
    from repro.core.ssj import ssj as run_ssj

    tree = bulk_load(pts, max_entries=4)
    compact = csj(tree, eps, g=10)
    standard = run_ssj(tree, eps)

    def partition(labels):
        groups = {}
        for i, label in enumerate(labels.tolist()):
            groups.setdefault(label, set()).add(i)
        return frozenset(frozenset(v) for v in groups.values())

    assert partition(connected_components(compact, len(pts))) == partition(
        connected_components(standard, len(pts))
    )
