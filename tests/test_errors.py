"""The typed exception hierarchy and API-boundary input validation."""

import numpy as np
import pytest

from repro.api import build_index, similarity_join
from repro.errors import (
    BudgetExceededError,
    CheckpointCorruptError,
    InvalidInputError,
    ReproError,
    SinkIOError,
    validate_eps,
    validate_points,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for cls in (
            InvalidInputError,
            BudgetExceededError,
            SinkIOError,
            CheckpointCorruptError,
        ):
            assert issubclass(cls, ReproError)

    def test_builtin_compatibility(self):
        # Callers that historically caught the builtin types keep working.
        assert issubclass(InvalidInputError, ValueError)
        assert issubclass(BudgetExceededError, RuntimeError)
        assert issubclass(SinkIOError, OSError)

    def test_exit_codes_distinct(self):
        codes = [
            ReproError.exit_code,
            InvalidInputError.exit_code,
            BudgetExceededError.exit_code,
            SinkIOError.exit_code,
            CheckpointCorruptError.exit_code,
        ]
        assert codes == [1, 2, 3, 4, 5]

    def test_budget_error_carries_breach_details(self):
        exc = BudgetExceededError("deadline", 1.5, 2.25)
        assert exc.kind == "deadline"
        assert exc.limit == 1.5
        assert exc.actual == 2.25
        assert exc.partial is None
        assert "deadline" in str(exc)

    def test_checkpoint_error_names_path(self):
        exc = CheckpointCorruptError("/tmp/x.journal", "bad header")
        assert exc.path == "/tmp/x.journal"
        assert "/tmp/x.journal" in str(exc)
        assert "bad header" in str(exc)


class TestValidatePoints:
    def test_passthrough(self):
        pts = np.random.default_rng(0).random((10, 3))
        out = validate_points(pts)
        assert out.shape == (10, 3)
        assert out.dtype == np.float64

    def test_list_input_normalised(self):
        out = validate_points([[0.0, 1.0], [2.0, 3.0]])
        assert out.shape == (2, 2)

    @pytest.mark.parametrize(
        "bad",
        [
            np.empty((0, 2)),
            np.empty((5, 0)),
            np.zeros(5),
            np.zeros((2, 2, 2)),
        ],
        ids=["no-rows", "no-cols", "1d", "3d"],
    )
    def test_bad_shapes(self, bad):
        with pytest.raises(InvalidInputError):
            validate_points(bad)

    @pytest.mark.parametrize("bad_value", [np.nan, np.inf, -np.inf])
    def test_non_finite(self, bad_value):
        pts = np.random.default_rng(0).random((20, 2))
        pts[7, 1] = bad_value
        with pytest.raises(InvalidInputError, match="first bad row: 7"):
            validate_points(pts)

    def test_non_numeric(self):
        with pytest.raises(InvalidInputError):
            validate_points([["a", "b"]])


class TestValidateEps:
    @pytest.mark.parametrize("bad", [0.0, -0.5, float("nan"), float("inf"), None])
    def test_rejects(self, bad):
        with pytest.raises(InvalidInputError):
            validate_eps(bad)

    def test_accepts_positive(self):
        assert validate_eps(0.25) == 0.25
        assert validate_eps("0.5") == 0.5


class TestApiBoundary:
    """similarity_join / build_index reject bad input before any tree code."""

    def test_join_rejects_nan_points(self):
        pts = np.random.default_rng(0).random((30, 2))
        pts[3, 0] = np.nan
        with pytest.raises(InvalidInputError):
            similarity_join(pts, 0.1)

    def test_join_rejects_empty(self):
        with pytest.raises(InvalidInputError):
            similarity_join(np.empty((0, 2)), 0.1)

    def test_join_rejects_1d(self):
        with pytest.raises(InvalidInputError):
            similarity_join(np.zeros(8), 0.1)

    @pytest.mark.parametrize("eps", [0.0, -1.0, float("inf")])
    def test_join_rejects_bad_eps(self, eps):
        pts = np.random.default_rng(0).random((30, 2))
        with pytest.raises(InvalidInputError):
            similarity_join(pts, eps)

    def test_join_rejects_negative_g(self):
        pts = np.random.default_rng(0).random((30, 2))
        with pytest.raises(InvalidInputError):
            similarity_join(pts, 0.1, g=-1)

    def test_caught_as_value_error(self):
        # Backward compatibility: the old contract was ValueError.
        with pytest.raises(ValueError):
            similarity_join(np.empty((0, 2)), 0.1)

    def test_unknown_algorithm_stays_value_error(self):
        pts = np.random.default_rng(0).random((30, 2))
        with pytest.raises(ValueError, match="unknown algorithm"):
            similarity_join(pts, 0.1, algorithm="nope")

    def test_build_index_rejects_inf(self):
        pts = np.random.default_rng(0).random((30, 2))
        pts[0, 0] = np.inf
        with pytest.raises(InvalidInputError):
            build_index(pts)

    def test_build_index_passthrough_skips_validation(self):
        pts = np.random.default_rng(0).random((30, 2))
        tree = build_index(pts)
        assert build_index(pts, tree) is tree


class TestExitCodeRegistry:
    """`repro.errors.EXIT_CODES` is the single source of truth.

    The CLI docstring, `scripts/chaos_demo.py` and the DESIGN.md failure
    table all cite exit codes; these tests keep every citation in
    agreement with the registry, so a new code cannot be added in one
    place only.
    """

    def _registry(self):
        from repro.errors import EXIT_CODES

        return EXIT_CODES

    def test_registry_complete_and_self_consistent(self):
        from repro.errors import EXIT_CODES, ReproError, exit_code_registry

        assert exit_code_registry() == EXIT_CODES
        assert sorted(EXIT_CODES) == list(range(1, 11))
        for code, cls in EXIT_CODES.items():
            assert cls.exit_code == code
            assert issubclass(cls, ReproError)
        # Codes are distinct per class (the registry is a bijection).
        assert len({cls for cls in EXIT_CODES.values()}) == len(EXIT_CODES)

    def test_new_serving_codes(self):
        from repro.errors import AdmissionRejectedError, CircuitOpenError

        shed = AdmissionRejectedError(4, retry_after=1.5)
        assert shed.exit_code == 9
        assert shed.queue_depth == 4
        assert shed.retry_after == 1.5
        assert "retry" in str(shed).lower()
        open_ = CircuitOpenError("worker-pool", retry_after=0.25)
        assert open_.exit_code == 10
        assert open_.component == "worker-pool"
        assert "worker-pool" in str(open_)

    def test_cli_docstring_agrees(self):
        import re

        from repro import cli

        doc = cli.main.__doc__
        cited = {int(m) for m in re.findall(r"\b(\d+)\b", doc)}
        assert cited == set(self._registry())

    def test_design_table_agrees(self):
        import re
        from pathlib import Path

        text = (Path(__file__).resolve().parent.parent / "DESIGN.md").read_text()
        rows = re.findall(
            r"^\|[^|]+\|\s*`(\w+)`(?:\s*\(`\w+`\))?\s*\|\s*(\d+)\s*\|",
            text,
            flags=re.MULTILINE,
        )
        table = {int(code): name for name, code in rows}
        registry = self._registry()
        # Every documented row names the registered class for its code...
        for code, name in table.items():
            assert registry[code].__name__ == name, (code, name)
        # ...and every nonzero failure code except the catch-all base
        # class (exit 1, undocumented by design) has a row.
        assert set(table) == set(registry) - {1}

    def test_chaos_demo_agrees(self):
        import re
        from pathlib import Path

        src = (
            Path(__file__).resolve().parent.parent / "scripts" / "chaos_demo.py"
        ).read_text()
        cited = {
            int(m) for m in re.findall(r"exit(?:\s+code)?\s+(\d+)", src)
        }
        assert cited  # the demo does cite codes
        assert cited <= set(self._registry())
