"""The ε-keyed result cache and its serving-layer integration.

The contract: a cache hit is byte-identical to the cold run it replays
and skips the tree descent entirely (the ``repro_join_*`` counters stay
flat across a hit); eviction is LRU under an entry *and* a byte budget;
invalidation downgrades entries to stale, which the brownout ladder may
still serve — honestly marked — before falling back to the estimator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import open_service, similarity_join
from repro.obs.metrics import get_registry, reset_registry
from repro.service import JoinRequest, ResultCache, ServiceConfig


@pytest.fixture(autouse=True)
def _fresh_metrics():
    reset_registry()
    yield
    reset_registry()


@pytest.fixture
def pts(rng):
    return rng.random((300, 2))


def _result(pts, eps=0.05, g=10):
    return similarity_join(pts, eps, algorithm="csj", g=g)


def _counter(name):
    return get_registry().snapshot().get(name, 0)


class TestResultCache:
    def test_key_is_content_addressed(self, pts):
        key_a = ResultCache.key_for(pts, 0.05, 10)
        key_b = ResultCache.key_for(pts.copy(), 0.05, 10)
        assert key_a == key_b
        assert ResultCache.key_for(pts, 0.06, 10) != key_a
        assert ResultCache.key_for(pts, 0.05, 5) != key_a
        moved = pts.copy()
        moved[0, 0] += 0.25
        assert ResultCache.key_for(moved, 0.05, 10) != key_a

    def test_hit_is_byte_identical(self, pts):
        cache = ResultCache()
        key = ResultCache.key_for(pts, 0.05, 10)
        cold = _result(pts)
        cache.put(key, cold)
        hit = cache.get(key)
        assert hit is not None
        assert hit.links == cold.links
        assert hit.groups == cold.groups
        assert hit.output_bytes == cold.output_bytes
        assert _counter("repro_cache_hits_total") == 1

    def test_miss_counted(self, pts):
        cache = ResultCache()
        assert cache.get(ResultCache.key_for(pts, 0.05, 10)) is None
        assert _counter("repro_cache_misses_total") == 1
        assert _counter("repro_cache_hits_total") == 0

    def test_hit_copy_protects_cached_flags(self, pts):
        cache = ResultCache()
        key = ResultCache.key_for(pts, 0.05, 10)
        cache.put(key, _result(pts))
        cache.get(key).stale = True  # caller mutates its copy
        again = cache.get(key)
        assert again is not None and not again.stale

    def test_degraded_and_estimated_results_never_cached(self, pts):
        cache = ResultCache()
        key = ResultCache.key_for(pts, 0.05, 10)
        bad = _result(pts)
        bad.degraded = True
        cache.put(key, bad)
        assert len(cache) == 0
        bad = _result(pts)
        bad.estimated = True
        cache.put(key, bad)
        assert len(cache) == 0

    def test_oversized_result_not_cached(self, pts):
        cold = _result(pts)
        cache = ResultCache(max_bytes=max(1, cold.stats.bytes_written - 1))
        cache.put(ResultCache.key_for(pts, 0.05, 10), cold)
        assert len(cache) == 0

    def test_lru_entry_eviction(self, rng):
        cache = ResultCache(max_entries=2)
        datasets = [rng.random((50, 2)) for _ in range(3)]
        keys = [ResultCache.key_for(d, 0.1, 10) for d in datasets]
        for d, k in zip(datasets[:2], keys[:2]):
            cache.put(k, _result(d, eps=0.1))
        assert cache.get(keys[0]) is not None  # refresh: 0 becomes MRU
        cache.put(keys[2], _result(datasets[2], eps=0.1))
        assert len(cache) == 2
        assert cache.get(keys[1]) is None  # LRU victim
        assert cache.get(keys[0]) is not None
        assert _counter("repro_cache_evictions_total") == 1

    def test_byte_budget_eviction(self, rng):
        datasets = [rng.random((80, 2)) for _ in range(3)]
        results = [_result(d, eps=0.1) for d in datasets]
        budget = results[0].stats.bytes_written + results[1].stats.bytes_written
        cache = ResultCache(max_bytes=budget)
        for d, r in zip(datasets, results):
            cache.put(ResultCache.key_for(d, 0.1, 10), r)
        assert cache.bytes_used <= budget
        assert len(cache) < 3
        assert _counter("repro_cache_evictions_total") >= 1

    def test_invalidate_downgrades_to_stale(self, pts):
        cache = ResultCache()
        key = ResultCache.key_for(pts, 0.05, 10)
        cache.put(key, _result(pts))
        assert cache.invalidate(key[0]) == 1
        assert cache.get(key) is None  # stale entries stop exact-hitting
        stale = cache.get_stale(0.05, 10)
        assert stale is not None
        assert stale.stale
        assert cache.invalidate("no-such-fingerprint") == 0
        assert cache.stats()["stale_entries"] == 1

    def test_get_stale_follows_latest_params(self, rng):
        cache = ResultCache()
        old_pts, new_pts = rng.random((60, 2)), rng.random((60, 2))
        cache.put(ResultCache.key_for(old_pts, 0.1, 10), _result(old_pts, eps=0.1))
        cache.put(ResultCache.key_for(new_pts, 0.1, 10), _result(new_pts, eps=0.1))
        newest = _result(new_pts, eps=0.1)
        assert cache.get_stale(0.1, 10).links == newest.links
        assert cache.get_stale(0.2, 10) is None  # params never stored

    def test_eviction_clears_stale_lookup(self, rng):
        cache = ResultCache(max_entries=1)
        a, b = rng.random((40, 2)), rng.random((40, 2))
        cache.put(ResultCache.key_for(a, 0.1, 10), _result(a, eps=0.1))
        cache.put(ResultCache.key_for(b, 0.1, 5), _result(b, eps=0.1, g=5))
        # The g=10 entry was evicted; its params must not resolve stale.
        assert cache.get_stale(0.1, 10) is None
        assert cache.get_stale(0.1, 5) is not None

    def test_patched_counter(self, pts):
        cache = ResultCache()
        cache.patched(ResultCache.key_for(pts, 0.05, 10), _result(pts))
        assert _counter("repro_cache_patched_total") == 1
        assert len(cache) == 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


class TestServiceIntegration:
    def test_hit_skips_descent_and_matches_cold_run(self, pts):
        with open_service(cache_bytes=1 << 20) as svc:
            request = lambda: JoinRequest(points=pts, eps=0.05)
            cold = svc.submit(request()).wait(10.0)
            assert cold.status == "admitted"
            descents = _counter("repro_join_distance_computations_total")
            assert descents > 0
            warm = svc.submit(request()).wait(10.0)
        assert warm.status == "admitted"
        # Byte-identical answer...
        assert warm.result.links == cold.result.links
        assert warm.result.groups == cold.result.groups
        assert warm.result.output_bytes == cold.result.output_bytes
        assert not warm.result.stale
        # ...without any tree descent: the join counters did not move.
        assert _counter("repro_join_distance_computations_total") == descents
        assert _counter("repro_cache_hits_total") == 1
        assert _counter("repro_cache_misses_total") == 1

    def test_cache_disabled_by_default(self, pts):
        with open_service() as svc:
            assert svc.cache is None
            svc.submit(JoinRequest(points=pts, eps=0.05)).wait(10.0)
            svc.submit(JoinRequest(points=pts, eps=0.05)).wait(10.0)
        assert _counter("repro_cache_hits_total") == 0

    def test_stale_serve_on_brownout(self, pts):
        with open_service(cache_bytes=1 << 20) as svc:
            cold = svc.submit(JoinRequest(points=pts, eps=0.05)).wait(10.0)
            assert cold.status == "admitted"
            svc.cache.invalidate()
            # An already-expired deadline rides the brownout ladder; the
            # stale entry beats the estimator.
            outcome = svc.submit(
                JoinRequest(points=pts, eps=0.05, deadline_seconds=1e-9)
            ).wait(10.0)
        assert outcome.status == "degraded"
        assert outcome.result.stale
        assert outcome.result.degraded
        assert not outcome.result.estimated
        assert outcome.result.links == cold.result.links

    def test_brownout_without_stale_falls_to_estimator(self, pts):
        with open_service(cache_bytes=1 << 20) as svc:
            outcome = svc.submit(
                JoinRequest(points=pts, eps=0.05, deadline_seconds=1e-9)
            ).wait(10.0)
        assert outcome.status == "degraded"
        assert outcome.result.estimated
        assert not outcome.result.stale

    def test_serve_stale_opt_out(self, pts):
        with open_service(cache_bytes=1 << 20, serve_stale=False) as svc:
            svc.submit(JoinRequest(points=pts, eps=0.05)).wait(10.0)
            svc.cache.invalidate()
            outcome = svc.submit(
                JoinRequest(points=pts, eps=0.05, deadline_seconds=1e-9)
            ).wait(10.0)
        assert outcome.status == "degraded"
        assert outcome.result.estimated  # stale serving disabled

    def test_degraded_answers_stay_out_of_the_cache(self, pts):
        with open_service(cache_bytes=1 << 20) as svc:
            outcome = svc.submit(
                JoinRequest(points=pts, eps=0.05, deadline_seconds=1e-9)
            ).wait(10.0)
            assert outcome.status == "degraded"
            assert len(svc.cache) == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(cache_bytes=-1)
        with pytest.raises(ValueError):
            ServiceConfig(cache_entries=0)
