"""Unit tests for the simulated disk (repro.io.pagesim)."""

import pytest

from repro.index.rtree import RTree
from repro.io.pagesim import NodePager, PageCache, PagedFile


class TestPageCache:
    def test_miss_then_hit(self):
        cache = PageCache(capacity_pages=2)
        assert not cache.access(1)
        assert cache.access(1)
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.accesses == 2

    def test_lru_eviction(self):
        cache = PageCache(capacity_pages=2)
        cache.access(1)
        cache.access(2)
        cache.access(3)  # evicts 1
        assert not cache.access(1)

    def test_lru_recency_update(self):
        cache = PageCache(capacity_pages=2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # 1 becomes most recent
        cache.access(3)  # evicts 2, not 1
        assert cache.access(1)

    def test_reset(self):
        cache = PageCache(4)
        cache.access(1)
        cache.reset()
        assert cache.hits == cache.misses == 0
        assert not cache.access(1)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PageCache(0)


class TestPagedFile:
    def test_page_counting(self):
        pf = PagedFile(page_size=100)
        assert pf.pages_written == 0
        assert pf.append(50) == 1
        assert pf.append(49) == 0  # still first page
        assert pf.append(2) == 1  # spills to second page
        assert pf.pages_written == 2

    def test_negative_append_rejected(self):
        with pytest.raises(ValueError):
            PagedFile().append(-1)

    def test_page_size_validation(self):
        with pytest.raises(ValueError):
            PagedFile(page_size=0)


class TestNodePager:
    def test_visits_counted(self, rng):
        tree = RTree(rng.random((200, 2)), max_entries=8)
        cache = PageCache(capacity_pages=4)
        pager = NodePager(tree, cache, nodes_per_page=2)
        for node in tree.nodes():
            pager.visit(node)
        assert cache.accesses == tree.node_count()

    def test_unknown_node_ignored(self, rng):
        tree = RTree(rng.random((50, 2)), max_entries=8)
        pager = NodePager(tree, PageCache(4))
        pager.visit(object())  # not in the tree: silently skipped
        assert pager.cache.accesses == 0

    def test_nodes_per_page_validation(self, rng):
        tree = RTree(rng.random((20, 2)), max_entries=8)
        with pytest.raises(ValueError):
            NodePager(tree, PageCache(4), nodes_per_page=0)
