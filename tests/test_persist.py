"""Unit tests for index persistence (repro.index.persist)."""

import os

import numpy as np
import pytest

from repro.core.csj import csj
from repro.core.ssj import ssj
from repro.index.bulk import bulk_load
from repro.index.mtree import MTree
from repro.index.persist import load_index, save_index
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree


def round_trip(tree, tmp_path):
    path = str(tmp_path / "index.npz")
    save_index(tree, path)
    return load_index(path)


class TestRoundTrip:
    @pytest.mark.parametrize("cls", [RTree, RStarTree, MTree])
    def test_structure_preserved(self, uniform_2d, tmp_path, cls):
        tree = cls(uniform_2d, max_entries=8)
        loaded = round_trip(tree, tmp_path)
        loaded.validate()
        assert type(loaded) is cls
        assert loaded.height == tree.height
        assert loaded.node_count() == tree.node_count()
        assert loaded.max_entries == tree.max_entries

    def test_bulk_loaded_tree(self, uniform_2d, tmp_path):
        tree = bulk_load(uniform_2d, max_entries=16)
        loaded = round_trip(tree, tmp_path)
        loaded.validate()

    def test_join_output_identical(self, clustered_2d, tmp_path):
        tree = bulk_load(clustered_2d, max_entries=16)
        loaded = round_trip(tree, tmp_path)
        original = csj(tree, 0.05, g=10)
        restored = csj(loaded, 0.05, g=10)
        assert original.groups == restored.groups
        assert original.links == restored.links

    def test_ssj_identical(self, uniform_2d, tmp_path):
        tree = bulk_load(uniform_2d, max_entries=16)
        loaded = round_trip(tree, tmp_path)
        assert ssj(tree, 0.1).links == ssj(loaded, 0.1).links

    def test_queries_identical(self, uniform_2d, tmp_path):
        tree = bulk_load(uniform_2d, max_entries=16)
        loaded = round_trip(tree, tmp_path)
        probe = np.array([0.3, 0.3])
        assert tree.range_query(probe, 0.2).tolist() == loaded.range_query(probe, 0.2).tolist()
        assert tree.nearest(probe, 5).tolist() == loaded.nearest(probe, 5).tolist()

    def test_metric_preserved(self, uniform_2d, tmp_path):
        tree = bulk_load(uniform_2d, metric="l1", max_entries=16)
        loaded = round_trip(tree, tmp_path)
        assert loaded.metric.name == "manhattan"

    def test_deleted_ids_preserved(self, rng, tmp_path):
        pts = rng.random((100, 2))
        tree = RTree(pts, max_entries=8)
        for pid in (3, 17, 42):
            tree.delete(pid)
        loaded = round_trip(tree, tmp_path)
        loaded.validate()
        assert loaded._deleted == {3, 17, 42}

    def test_loaded_tree_stays_dynamic(self, rng, tmp_path):
        pts = rng.random((80, 2))
        tree = RStarTree(pts[:60], max_entries=8)
        loaded = round_trip(tree, tmp_path)
        loaded.points = pts
        for pid in range(60, 80):
            loaded.insert(pid)
        loaded.validate()
        assert loaded.root.subtree_count() == 80

    def test_empty_tree(self, tmp_path):
        tree = RTree(np.empty((0, 2)))
        loaded = round_trip(tree, tmp_path)
        assert loaded.root is None
        loaded.validate()

    def test_file_exists(self, uniform_2d, tmp_path):
        path = str(tmp_path / "t.npz")
        save_index(bulk_load(uniform_2d), path)
        assert os.path.getsize(path) > 0


class TestErrors:
    def test_object_metric_rejected(self, tmp_path):
        from repro.core.metricspace import build_metric_index

        tree = build_metric_index(["aa", "ab"], lambda a, b: float(a != b))
        with pytest.raises(TypeError, match="ObjectMetric"):
            save_index(tree, str(tmp_path / "t.npz"))

    def test_unknown_kind_rejected(self, uniform_2d, tmp_path):
        path = str(tmp_path / "t.npz")
        save_index(bulk_load(uniform_2d), path)
        # Corrupt the kind field.
        data = dict(np.load(path, allow_pickle=False))
        data["kind"] = np.array("btree")
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="unknown index kind"):
            load_index(path)


class TestCorruptFiles:
    """Damaged index files fail with CheckpointCorruptError naming the
    path — never a raw zipfile / unpickling traceback."""

    def _saved(self, uniform_2d, tmp_path):
        path = str(tmp_path / "t.npz")
        save_index(bulk_load(uniform_2d, max_entries=16), path)
        return path

    def test_missing_file_is_not_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(str(tmp_path / "never_saved.npz"))

    def test_truncated_file(self, uniform_2d, tmp_path):
        from repro.errors import CheckpointCorruptError

        path = self._saved(uniform_2d, tmp_path)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(CheckpointCorruptError) as info:
            load_index(path)
        assert info.value.path == path

    def test_garbage_file(self, uniform_2d, tmp_path):
        from repro.errors import CheckpointCorruptError

        path = str(tmp_path / "t.npz")
        open(path, "wb").write(b"\x00" * 512)
        with pytest.raises(CheckpointCorruptError):
            load_index(path)

    def test_missing_array_key(self, uniform_2d, tmp_path):
        from repro.errors import CheckpointCorruptError

        path = self._saved(uniform_2d, tmp_path)
        data = dict(np.load(path, allow_pickle=False))
        del data["entry_offsets"]
        np.savez_compressed(path, **data)
        with pytest.raises(CheckpointCorruptError):
            load_index(path)

    def test_inconsistent_structure(self, uniform_2d, tmp_path):
        from repro.errors import CheckpointCorruptError

        path = self._saved(uniform_2d, tmp_path)
        data = dict(np.load(path, allow_pickle=False))
        data["parents"] = data["parents"][:-1]  # truncated hierarchy
        np.savez_compressed(path, **data)
        with pytest.raises(CheckpointCorruptError, match="inconsistent"):
            load_index(path)

    def test_out_of_range_entries(self, uniform_2d, tmp_path):
        from repro.errors import CheckpointCorruptError

        path = self._saved(uniform_2d, tmp_path)
        data = dict(np.load(path, allow_pickle=False))
        entries = data["entries"].copy()
        entries[0] = 10**9
        data["entries"] = entries
        np.savez_compressed(path, **data)
        with pytest.raises(CheckpointCorruptError, match="out of range"):
            load_index(path)

    def test_corruption_error_is_catchable_as_repro_error(self, uniform_2d, tmp_path):
        from repro.errors import ReproError

        path = self._saved(uniform_2d, tmp_path)
        open(path, "wb").write(b"junk")
        with pytest.raises(ReproError):
            load_index(path)
