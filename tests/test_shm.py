"""The zero-copy shared-memory data plane: same bytes, fewer copies.

Every guarantee the plane makes is asserted here:

* **determinism matrix** — shm and pickle planes produce byte-identical
  output files and identical ``repro_join_*`` counters at 1, 2 and 4
  workers, for tree, compact-tree and partitioned algorithms alike;
* **no leaks** — worker SIGKILL chaos ends with zero owned segments and
  nothing matching ``repro-shm-*`` left in ``/dev/shm``;
* **resumability** — a checkpointed run killed under one data plane
  resumes to byte-identical output under the other;
* **integrity** — a fingerprint mismatch on attach fails loudly;
* **reuse** — warm ``TaskState`` s are adopted (not rebuilt), spec bytes
  are pickled once, and ``pack_index`` memoizes until the tree changes.
"""

import dataclasses
import filecmp
import glob
import os
import pickle

import numpy as np
import pytest

from repro.api import similarity_join
from repro.core.results import TextSink
from repro.core.verify import brute_force_links
from repro.errors import BudgetExceededError, InvalidInputError, WorkerPoolError
from repro.io.writer import width_for
from repro.obs.metrics import get_registry, reset_registry
from repro.parallel import parallel_join
from repro.parallel.shm import (
    SEGMENT_PREFIX,
    SharedDataset,
    attach_points,
    clear_process_caches,
    owned_segments,
    resolve_data_plane,
    shm_available,
)
from repro.parallel.tasks import JoinSpec
from repro.resilience.budget import Budget
from repro.resilience.chaos import FlakyWorker
from repro.resilience.checkpoint import CheckpointedJoin

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


@pytest.fixture(autouse=True)
def _fresh_metrics():
    reset_registry()
    yield
    reset_registry()


@pytest.fixture(scope="module")
def pts():
    return np.random.default_rng(11).random((220, 2))


def _devshm_segments():
    return sorted(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


def _serial_file(pts, eps, algo, path, g=10):
    sink = TextSink(str(path), id_width=width_for(len(pts)))
    result = similarity_join(pts, eps, algorithm=algo, g=g, sink=sink)
    sink.close()
    return result


def _parallel_file(pts, eps, algo, path, plane, workers=2, g=10, fault=None):
    sink = TextSink(str(path), id_width=width_for(len(pts)))
    result = parallel_join(
        pts, eps, algorithm=algo, g=g, workers=workers, sink=sink,
        data_plane=plane, fault=fault,
    )
    sink.close()
    return result


class TestPlaneResolution:
    def test_auto_resolves_to_a_concrete_plane(self):
        assert resolve_data_plane("auto") in ("shm", "pickle")
        assert resolve_data_plane(None) in ("shm", "pickle")
        assert resolve_data_plane("pickle") == "pickle"

    def test_unknown_plane_rejected(self):
        with pytest.raises(InvalidInputError):
            resolve_data_plane("carrier-pigeon")


@needs_shm
class TestDeterminismMatrix:
    """The acceptance gate: shm vs pickle is invisible in the output."""

    @pytest.mark.parametrize("algo", ["ssj", "csj", "pbsm-csj"])
    def test_byte_identity_across_planes(self, pts, algo, tmp_path):
        serial = tmp_path / "serial.txt"
        _serial_file(pts, 0.06, algo, serial)
        for plane in ("pickle", "shm"):
            out = tmp_path / f"{plane}.txt"
            result = _parallel_file(pts, 0.06, algo, out, plane)
            assert filecmp.cmp(str(serial), str(out), shallow=False), (
                f"{algo}: {plane} plane output differs from serial"
            )
            assert result.expanded_links() == brute_force_links(pts, 0.06)
        assert owned_segments() == []

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_join_counters_identical_across_planes(self, pts, workers):
        """``repro_join_*`` counters (the integer ones — wall-clock times
        legitimately differ) must not depend on the data plane."""
        snaps = {}
        for plane in ("pickle", "shm"):
            registry = reset_registry()
            result = parallel_join(
                pts, 0.055, algorithm="csj", g=10, workers=workers,
                data_plane=plane,
            )
            registry.record_join_stats(result.stats)
            snaps[plane] = {
                name: value
                for name, value in registry.snapshot().items()
                if name.startswith("repro_join_") and "seconds" not in name
            }
        assert snaps["shm"] == snaps["pickle"]
        assert snaps["shm"]["repro_join_distance_computations_total"] > 0


@needs_shm
class TestChaosNoLeak:
    def test_worker_sigkills_leak_no_segments(self, pts, tmp_path):
        before = _devshm_segments()
        serial = tmp_path / "serial.txt"
        _serial_file(pts, 0.06, "csj", serial)
        fault = FlakyWorker(kill_rate=0.5, seed=0, max_failures=2)
        par = tmp_path / "par.txt"
        _parallel_file(pts, 0.06, "csj", par, "shm", fault=fault)
        assert filecmp.cmp(str(serial), str(par), shallow=False)
        assert owned_segments() == []
        assert _devshm_segments() == before

    def test_close_is_idempotent_and_context_managed(self, pts):
        before = _devshm_segments()
        with SharedDataset(pts) as ds:
            if ds.plane == "shm":
                assert ds.ref is not None
                assert len(_devshm_segments()) == len(before) + 1
        assert ds.closed
        ds.close()  # second close is a no-op
        assert owned_segments() == []
        assert _devshm_segments() == before


@needs_shm
class TestKillAndResumeAcrossPlanes:
    @pytest.mark.parametrize("first,second", [("shm", "pickle"),
                                              ("pickle", "shm")])
    def test_resume_under_the_other_plane(self, pts, first, second, tmp_path):
        serial = tmp_path / "serial.txt"
        _serial_file(pts, 0.06, "csj", serial)
        ck = tmp_path / "ck.txt"
        job = CheckpointedJoin(
            pts, 0.06, str(ck), algorithm="csj", g=10, cadence=3, workers=2,
            data_plane=first, budget=Budget(max_output_bytes=400, check_every=1),
        )
        with pytest.raises(BudgetExceededError):
            job.run()
        CheckpointedJoin(
            pts, 0.06, str(ck), algorithm="csj", g=10, cadence=3, workers=2,
            data_plane=second,
        ).run(resume=True)
        assert filecmp.cmp(str(serial), str(ck), shallow=False)
        assert owned_segments() == []


@needs_shm
class TestAttachIntegrity:
    def test_fingerprint_mismatch_fails_loudly(self, pts):
        with SharedDataset(pts, data_plane="shm") as ds:
            clear_process_caches()  # drop the owner's pre-seeded attach
            bad = dataclasses.replace(ds.ref, fingerprint="0" * 64)
            with pytest.raises(WorkerPoolError, match="fingerprint mismatch"):
                attach_points(bad)
            arr = attach_points(ds.ref)
            assert not arr.flags.writeable
            assert np.array_equal(arr, ds.points)
            # cached per (process, segment): same object back
            assert attach_points(ds.ref) is arr
        assert owned_segments() == []

    def test_orphans_of_dead_owners_are_swept(self, pts, tmp_path):
        import subprocess
        import sys

        from repro.parallel.shm import sweep_orphan_segments

        # A pid guaranteed dead and freshly retired: a child that just exited.
        dead_pid = int(subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True, check=True,
        ).stdout)
        orphan = f"/dev/shm/{SEGMENT_PREFIX}{dead_pid:x}-deadbeefcafe"
        with open(orphan, "wb") as f:
            f.write(b"\0" * 64)
        try:
            with SharedDataset(pts, data_plane="shm") as ds:
                assert ds.ref is not None
                assert not os.path.exists(orphan)  # swept on creation
                # our own (live) segments are never treated as orphans
                assert sweep_orphan_segments() == []
                assert owned_segments() != []
        finally:
            if os.path.exists(orphan):
                os.unlink(orphan)

    def test_vanished_segment_fails_loudly(self, pts):
        ds = SharedDataset(pts, data_plane="shm")
        ref = ds.ref
        ds.close()
        clear_process_caches()
        with pytest.raises(WorkerPoolError, match="vanished"):
            attach_points(ref)


@needs_shm
class TestWarmStateReuse:
    def _spec(self, ds, eps):
        spec = JoinSpec(
            points=ds.points, eps=eps, algorithm="csj", g=10,
            data_plane=ds.plane, dataset_ref=ds.ref,
        )
        spec._shared = ds
        return spec

    def test_second_build_adopts_not_rebuilds(self, pts):
        clear_process_caches()
        with SharedDataset(pts, data_plane="shm") as ds:
            registry = get_registry()
            s1 = self._spec(ds, 0.0525).build_state()
            assert registry.snapshot()["repro_taskstate_rebuilds_total"] == 1
            spec2 = self._spec(ds, 0.0525)
            s2 = spec2.build_state()
            snap = registry.snapshot()
            assert snap["repro_taskstate_rebuilds_total"] == 1
            assert snap["repro_taskstate_warm_hits_total"] == 1
            assert s2 is not s1  # rebound clone carrying the new spec
            assert s2.tasks is s1.tasks
            assert spec2.packed_ref is not None  # restored on the warm hit

    def test_different_config_rebuilds(self, pts):
        clear_process_caches()
        with SharedDataset(pts, data_plane="shm") as ds:
            registry = get_registry()
            self._spec(ds, 0.0525).build_state()
            self._spec(ds, 0.0625).build_state()  # different eps: new tasks
            assert registry.snapshot()["repro_taskstate_rebuilds_total"] == 2

    def test_standalone_pickle_spec_does_not_cache(self, pts):
        spec = JoinSpec(points=pts, eps=0.05, algorithm="csj")
        assert spec.state_key() is None


@needs_shm
class TestSpecShipping:
    def test_spec_bytes_pickled_once_and_small(self, pts):
        with SharedDataset(pts, data_plane="shm") as ds:
            spec = JoinSpec(
                points=ds.points, eps=0.05, algorithm="csj",
                data_plane=ds.plane, dataset_ref=ds.ref,
            )
            spec._shared = ds
            payload = spec.to_bytes()
            assert spec.to_bytes() is payload  # serialized exactly once
            assert len(payload) < 1024  # ~200-byte ref, not the array
            clone = pickle.loads(payload)
            assert np.array_equal(clone.points, pts)
            assert not hasattr(clone, "_shared")  # ownership never ships

    def test_pickle_plane_spec_ships_the_array(self, pts):
        spec = JoinSpec(points=pts, eps=0.05, algorithm="csj")
        clone = pickle.loads(spec.to_bytes())
        assert np.array_equal(clone.points, pts)
        assert len(spec.to_bytes()) > pts.nbytes


class TestPackMemoization:
    def test_pack_cached_until_structure_changes(self, pts):
        from repro.api import build_index
        from repro.index.packed import pack_index

        tree = build_index(pts, "rstar", bulk="str")
        p1 = pack_index(tree)
        assert p1 is not None
        assert pack_index(tree) is p1  # memoized
        pid = tree.add_point(np.array([0.5, 0.5]))
        p2 = pack_index(tree)
        assert p2 is not p1  # add_point invalidated the cache
        assert pack_index(tree) is p2
        tree.delete(pid)
        p3 = pack_index(tree)
        assert p3 is not p2  # delete invalidated it again
        assert pack_index(tree) is p3


@needs_shm
class TestServiceRegistration:
    def test_registered_dataset_served_identically(self, pts):
        from repro.service import JoinRequest, JoinService, ServiceConfig

        offline = similarity_join(pts, 0.05, algorithm="csj")
        svc = JoinService(ServiceConfig(queue_depth=4, executors=1))
        try:
            registered = svc.register_dataset(pts)
            assert registered.plane in ("shm", "pickle")
            outcome = svc.submit(
                JoinRequest(points=registered.points, eps=0.05)
            ).wait(60.0)
            assert outcome.status == "admitted"
            assert outcome.result.links == offline.links
            assert outcome.result.groups == offline.groups
        finally:
            svc.close()
        assert owned_segments() == []  # close() released registrations
