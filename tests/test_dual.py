"""Unit tests for the dual-tree spatial join (repro.core.dual)."""

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_cross_links
from repro.core.dual import compact_spatial_join, spatial_join
from repro.index.bulk import bulk_load
from repro.index.mtree import MTree


@pytest.fixture
def overlapping_pair(rng):
    """Two datasets sharing cluster centres (explosion-prone overlap)."""
    centers = rng.random((5, 2))
    a = np.clip(
        centers[rng.integers(0, 5, 300)] + rng.normal(scale=0.01, size=(300, 2)), 0, 1
    )
    b = np.clip(
        centers[rng.integers(0, 5, 350)] + rng.normal(scale=0.012, size=(350, 2)), 0, 1
    )
    return a, b


class TestStandardSpatialJoin:
    @pytest.mark.parametrize("eps", [0.01, 0.05, 0.2])
    def test_matches_brute_force(self, overlapping_pair, eps):
        a, b = overlapping_pair
        result = spatial_join(bulk_load(a, max_entries=16), bulk_load(b, max_entries=16), eps)
        assert set(result.links) == brute_force_cross_links(a, b, eps)

    def test_no_self_pairs(self, overlapping_pair):
        """A spatial join never reports within-dataset pairs, even though
        both sides are dense."""
        a, b = overlapping_pair
        result = spatial_join(bulk_load(a), bulk_load(b), 0.05)
        # Positional semantics: all links are (a-index, b-index) — checked
        # by the ground-truth comparison; here we check the label.
        assert result.algorithm == "ssj-spatial"

    def test_disjoint_datasets(self, rng):
        a = rng.random((100, 2)) * 0.2
        b = rng.random((100, 2)) * 0.2 + 0.7
        result = spatial_join(bulk_load(a), bulk_load(b), 0.05)
        assert result.links == []


class TestCompactSpatialJoin:
    @pytest.mark.parametrize("eps", [0.01, 0.05, 0.15])
    @pytest.mark.parametrize("g", [0, 10])
    def test_lossless(self, overlapping_pair, eps, g):
        a, b = overlapping_pair
        result = compact_spatial_join(
            bulk_load(a, max_entries=16), bulk_load(b, max_entries=16), eps, g=g
        )
        assert result.expanded_cross_links() == brute_force_cross_links(a, b, eps)

    def test_compacts_output(self, overlapping_pair):
        a, b = overlapping_pair
        ta, tb = bulk_load(a, max_entries=16), bulk_load(b, max_entries=16)
        standard = spatial_join(ta, tb, 0.08)
        compact = compact_spatial_join(ta, tb, 0.08, g=10)
        assert compact.output_bytes < standard.output_bytes

    def test_group_pairs_satisfy_range(self, overlapping_pair):
        a, b = overlapping_pair
        eps = 0.05
        result = compact_spatial_join(bulk_load(a), bulk_load(b), eps, g=10)
        for ids_a, ids_b in result.group_pairs:
            cross = np.linalg.norm(
                a[list(ids_a)][:, None] - b[list(ids_b)][None, :], axis=-1
            )
            assert cross.max() < eps

    def test_labels(self, overlapping_pair):
        a, b = overlapping_pair
        ta, tb = bulk_load(a), bulk_load(b)
        assert compact_spatial_join(ta, tb, 0.05, g=10).algorithm == "csj(10)-spatial"
        assert compact_spatial_join(ta, tb, 0.05, g=0).algorithm == "ncsj-spatial"

    def test_mtree_spatial(self, overlapping_pair):
        a, b = overlapping_pair
        result = compact_spatial_join(
            MTree(a, max_entries=16), MTree(b, max_entries=16), 0.05, g=10
        )
        assert result.expanded_cross_links() == brute_force_cross_links(a, b, 0.05)

    def test_early_stop_on_shared_dense_regions(self, overlapping_pair):
        a, b = overlapping_pair
        result = compact_spatial_join(bulk_load(a), bulk_load(b), 0.3, g=10)
        assert result.stats.early_stops > 0


class TestValidation:
    def test_metric_mismatch(self, overlapping_pair):
        a, b = overlapping_pair
        with pytest.raises(ValueError, match="metric mismatch"):
            spatial_join(bulk_load(a, metric="l1"), bulk_load(b, metric="l2"), 0.1)

    def test_eps_validation(self, overlapping_pair):
        a, b = overlapping_pair
        with pytest.raises(ValueError):
            spatial_join(bulk_load(a), bulk_load(b), -0.1)
        with pytest.raises(ValueError):
            compact_spatial_join(bulk_load(a), bulk_load(b), 0.1, g=-2)

    def test_empty_sides(self, rng):
        a = rng.random((50, 2))
        empty = np.empty((0, 2))
        result = spatial_join(bulk_load(a), bulk_load(empty), 0.1)
        assert result.links == []
        result = compact_spatial_join(bulk_load(empty), bulk_load(a), 0.1)
        assert result.group_pairs == []
