"""Ablation A2: the Section VII epsilon-grid-order extension.

The paper sketches extending the compact idea to Boehm et al.'s
epsilon-grid-order join by adding the early-termination-as-a-group case
to the JoinBuffer.  This bench quantifies that sketch: plain grid join vs
compact grid join vs the tree-based CSJ(10), on Sierpinski3D.
"""

from __future__ import annotations

import pytest

from repro.core.csj import csj
from repro.core.egrid import egrid_join
from repro.core.results import CountingSink
from repro.io.writer import width_for

EPS_GRID = [0.05, 0.125]


@pytest.mark.parametrize("eps", EPS_GRID, ids=lambda e: f"eps={e:g}")
def test_ablation_egrid_plain(benchmark, run_once, sierpinski_points, eps):
    sink = CountingSink(id_width=width_for(len(sierpinski_points)))
    result = run_once(egrid_join, sierpinski_points, eps, False, 10, sink)
    benchmark.extra_info.update(eps=eps, output_bytes=result.output_bytes)


@pytest.mark.parametrize("eps", EPS_GRID, ids=lambda e: f"eps={e:g}")
def test_ablation_egrid_compact(benchmark, run_once, sierpinski_points, eps):
    sink = CountingSink(id_width=width_for(len(sierpinski_points)))
    result = run_once(egrid_join, sierpinski_points, eps, True, 10, sink)
    benchmark.extra_info.update(
        eps=eps,
        output_bytes=result.output_bytes,
        early_stops=result.stats.early_stops,
    )


@pytest.mark.parametrize("eps", EPS_GRID, ids=lambda e: f"eps={e:g}")
def test_ablation_egrid_tree_csj(benchmark, run_once, sierpinski_points, sierpinski_tree, eps):
    sink = CountingSink(id_width=width_for(len(sierpinski_points)))
    result = run_once(csj, sierpinski_tree, eps, 10, sink=sink)
    benchmark.extra_info.update(eps=eps, output_bytes=result.output_bytes)


def test_ablation_egrid_shape(benchmark, run_once, sierpinski_points):
    """The compact extension shrinks the grid join's output, and both
    grid variants imply the same links as the tree join."""
    width = width_for(len(sierpinski_points))
    eps = 0.125

    def sweep():
        plain = egrid_join(
            sierpinski_points, eps, compact=False,
            sink=CountingSink(id_width=width),
        ).output_bytes
        compact = egrid_join(
            sierpinski_points, eps, compact=True, g=10,
            sink=CountingSink(id_width=width),
        ).output_bytes
        return plain, compact

    plain, compact = run_once(sweep)
    # Fractal data at this range compacts ~2x under the grid extension
    # (tighter on clustered data; see results/ablation_egrid.txt).
    assert compact < plain * 0.6
    benchmark.extra_info.update(plain_bytes=plain, compact_bytes=compact)
