#!/usr/bin/env python
"""Vectorized frontier engine vs. scalar recursion: honest wall-clock.

Runs the tree joins on the Figure 7 scalability workload (the Sierpinski
pyramid at the paper's medium size) with both execution engines and
records the median of 3 timed runs each, engine warm-up excluded.  The
index is built once per configuration and shared by every timed run, so
the comparison isolates exactly what the engines differ in: traversal
and pruning.

The tree uses ``max_entries = 8`` — the deep-tree regime where node-pair
pruning dominates the non-leaf time, which is precisely the cost the
batched kernels attack.  At fanout 64 the same workload is bound by leaf
distance kernels and sink writes, code both engines *share*, so the
engines tie there by construction; the JSON records the fanout so the
number is never mistaken for a universal constant.

Every configuration re-verifies the contract that makes the numbers
comparable — identical links, groups, group pairs and integer counters
across engines — and the report says so per row.

Writes ``BENCH_kernels.json`` next to this file (or ``--out``).  Exits
nonzero when the vectorized engine fails to reach the acceptance bar of
a 1.5x median speedup on the fig7 medium N-CSJ configuration — the
pruning-dominated row, and the gate CI reads.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--out PATH] [--n N]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time

from repro.core.csj import csj, ncsj
from repro.core.ssj import ssj
from repro.datasets import sierpinski_pyramid
from repro.experiments.runner import scaled
from repro.index.bulk import bulk_load

EPS = 0.125
MAX_ENTRIES = 8
RUNS = 3
SPEEDUP_GATE = 1.5
GATE_ALGORITHM = "ncsj"

JOINS = {
    "ssj": lambda tree, engine: ssj(tree, EPS, engine=engine),
    "ncsj": lambda tree, engine: ncsj(tree, EPS, engine=engine),
    "csj": lambda tree, engine: csj(tree, EPS, g=10, engine=engine),
}


def _int_counters(result) -> dict:
    return {
        k: v for k, v in result.stats.as_dict().items() if isinstance(v, int)
    }


def _timed(run, tree, engine: str) -> tuple[float, object]:
    t0 = time.perf_counter()
    result = run(tree, engine)
    return time.perf_counter() - t0, result


def bench_algorithm(name: str, tree) -> dict:
    run = JOINS[name]
    medians = {}
    results = {}
    for engine in ("scalar", "vectorized"):
        # Warm-up run (caches, triangle-index tables), reused for the
        # engine-parity check so timing runs stay untouched.
        _, results[engine] = _timed(run, tree, engine)
        times = [_timed(run, tree, engine)[0] for _ in range(RUNS)]
        medians[engine] = statistics.median(times)
    scalar, vec = results["scalar"], results["vectorized"]
    identical = (
        scalar.links == vec.links
        and scalar.groups == vec.groups
        and scalar.group_pairs == vec.group_pairs
        and _int_counters(scalar) == _int_counters(vec)
    )
    return {
        "algorithm": name,
        "scalar_s": round(medians["scalar"], 4),
        "vectorized_s": round(medians["vectorized"], 4),
        "speedup": round(medians["scalar"] / medians["vectorized"], 3),
        "links": vec.stats.links_emitted,
        "groups": vec.stats.groups_emitted,
        "engines_identical": bool(identical),
    }


def main() -> int:
    default_out = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_kernels.json"
    )
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=default_out)
    parser.add_argument("--n", type=int, default=scaled(20_000))
    args = parser.parse_args()

    pts = sierpinski_pyramid(args.n, seed=0)
    tree = bulk_load(pts, method="str", max_entries=MAX_ENTRIES)
    rows = [bench_algorithm(name, tree) for name in JOINS]

    gate_row = next(r for r in rows if r["algorithm"] == GATE_ALGORITHM)
    report = {
        "benchmark": "vectorized frontier engine vs scalar recursion",
        "workload": {
            "dataset": "sierpinski3d (fig7 medium)",
            "n": int(len(pts)),
            "eps": EPS,
            "index": "rstar/str",
            "max_entries": MAX_ENTRIES,
        },
        "runs_per_engine": RUNS,
        "host_cpus": os.cpu_count(),
        "speedup_gate": SPEEDUP_GATE,
        "gate_algorithm": GATE_ALGORITHM,
        "note": (
            "max_entries=8 is the deep-tree, pruning-dominated regime the "
            "batched kernels target; at fanout 64 this workload is bound "
            "by leaf distance kernels and sink writes shared by both "
            "engines, and they tie. The gate reads the N-CSJ row, whose "
            "non-leaf time is almost entirely node-pair pruning."
        ),
        "results": rows,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(json.dumps(report, indent=2))

    if not all(r["engines_identical"] for r in rows):
        print("FAIL: engines diverged — the speedup is meaningless")
        return 1
    if gate_row["speedup"] < SPEEDUP_GATE:
        print(
            f"FAIL: {GATE_ALGORITHM} vectorized speedup "
            f"{gate_row['speedup']}x below the {SPEEDUP_GATE}x gate"
        )
        return 1
    print(f"OK: {GATE_ALGORITHM} vectorized speedup {gate_row['speedup']}x "
          f">= {SPEEDUP_GATE}x gate")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
