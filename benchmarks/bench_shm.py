#!/usr/bin/env python
"""Data-plane benchmark: shared-memory vs pickled dataset shipping.

Writes ``BENCH_shm.json`` next to this file (or ``--out``).  The figure
of merit is **spawn-to-first-result latency**: the wall time from
calling ``parallel_join`` to the first merged result reaching the sink.
That window contains everything the data plane changes — parent state
construction, dataset shipping, worker attach/rebuild — and none of the
things it must not change (the join itself).  ``tasks_per_s`` (canonical
tasks / total wall) is recorded alongside for throughput context.

All numbers are medians of ``--repeat`` (default 3) timed runs on THIS
host (``host_cpus`` records the core count).  Each plane gets one
untimed warmup run first: the shm plane is *designed* to reuse warm
state across requests, so steady-state latency is the honest comparison
— the pickle plane has no such cache, and its warmup changes nothing.

Every timed run re-verifies the invariant that makes the comparison
meaningful: both planes produce results byte-identical to serial.

The gate (exit status) requires the shm plane to reach the first result
>= 1.5x faster than the pickle plane at 4 workers on the PBSM workload.

Usage::

    PYTHONPATH=src python benchmarks/bench_shm.py [--out PATH] [--n 4000]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time

import numpy as np

from repro.api import similarity_join
from repro.core.results import CollectSink
from repro.experiments.runner import scaled
from repro.parallel import JoinSpec, parallel_join
from repro.parallel.shm import owned_segments, shm_available

WORKER_COUNTS = (1, 2, 4)


class FirstResultSink(CollectSink):
    """Collecting sink that timestamps the first stored result."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.first_result_at = None

    def _mark(self):
        if self.first_result_at is None:
            self.first_result_at = time.perf_counter()

    def _store_link(self, i, j):
        self._mark()
        super()._store_link(i, j)

    def write_links(self, ids_i, ids_j):
        self._mark()
        super().write_links(ids_i, ids_j)

    def _store_group(self, ids):
        self._mark()
        super()._store_group(ids)

    def _store_group_pair(self, ids_a, ids_b):
        self._mark()
        super()._store_group_pair(ids_a, ids_b)


def timed_run(pts, eps, algorithm, g, workers, plane):
    sink = FirstResultSink()
    t0 = time.perf_counter()
    result = parallel_join(
        pts, eps, algorithm=algorithm, g=g, workers=workers, sink=sink,
        data_plane=plane,
    )
    wall = time.perf_counter() - t0
    first = (sink.first_result_at or time.perf_counter()) - t0
    return result, first, wall


def bench_config(name, pts, eps, algorithm, g=10, repeat=3):
    serial = similarity_join(pts, eps, algorithm=algorithm, g=g)
    serial_links = sorted(serial.expanded_links())
    ntasks = len(
        JoinSpec(points=pts, eps=eps, algorithm=algorithm, g=g)
        .build_state().tasks
    )

    row = {
        "dataset": name,
        "n": int(len(pts)),
        "eps": eps,
        "algorithm": serial.algorithm,
        "tasks": ntasks,
        "repeat": repeat,
        "first_result_s": {},   # plane -> workers -> median seconds
        "tasks_per_s": {},
        "byte_identical": {},
        "speedup_first_result": {},  # workers -> pickle / shm
    }

    for plane in ("pickle", "shm"):
        row["first_result_s"][plane] = {}
        row["tasks_per_s"][plane] = {}
        identical = True
        for workers in WORKER_COUNTS:
            timed_run(pts, eps, algorithm, g, workers, plane)  # warmup
            firsts, rates = [], []
            for _ in range(repeat):
                result, first, wall = timed_run(
                    pts, eps, algorithm, g, workers, plane
                )
                firsts.append(first)
                rates.append(ntasks / wall if wall > 0 else 0.0)
                identical = identical and (
                    sorted(result.expanded_links()) == serial_links
                )
            row["first_result_s"][plane][str(workers)] = round(
                statistics.median(firsts), 5
            )
            row["tasks_per_s"][plane][str(workers)] = round(
                statistics.median(rates), 1
            )
        row["byte_identical"][plane] = bool(identical)

    for workers in WORKER_COUNTS:
        shm_t = row["first_result_s"]["shm"][str(workers)]
        pkl_t = row["first_result_s"]["pickle"][str(workers)]
        row["speedup_first_result"][str(workers)] = round(
            pkl_t / shm_t if shm_t > 0 else float("inf"), 3
        )
    return row


def main() -> int:
    default_out = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "BENCH_shm.json")
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=default_out)
    parser.add_argument("--n", type=int, default=scaled(4000))
    parser.add_argument("--repeat", type=int, default=3)
    args = parser.parse_args()

    if not shm_available():
        print("shared memory unavailable on this host; nothing to compare")
        return 1

    uniform = np.random.default_rng(3).random((args.n, 2))

    rows = [
        bench_config("synthetic-uniform2d", uniform, 0.03, "pbsm-csj",
                     repeat=args.repeat),
        bench_config("synthetic-uniform2d", uniform, 0.03, "csj",
                     repeat=args.repeat),
    ]

    report = {
        "benchmark": "data plane (shared-memory vs pickled dataset shipping)",
        "host_cpus": os.cpu_count(),
        "note": (
            "first_result_s is the spawn-to-first-result latency (call to "
            "first merged result) on THIS host, median of timed runs after "
            "one warmup per plane; the shm plane's warm-state reuse across "
            "requests is the feature under test, the pickle plane rebuilds "
            "everything per run by design. tasks_per_s is canonical tasks "
            "over total wall time."
        ),
        "results": rows,
        "leaked_segments": owned_segments(),
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    print(json.dumps(report, indent=2))
    ok = all(all(r["byte_identical"].values()) for r in rows)
    clean = not report["leaked_segments"]
    pbsm4 = next(r for r in rows if r["algorithm"].startswith("pbsm")
                 )["speedup_first_result"]["4"]
    print(f"\nbyte-identical everywhere        : {ok}")
    print(f"no leaked segments               : {clean}")
    print(f"pbsm first-result speedup @4     : {pbsm4:.2f}x (shm vs pickle)")
    return 0 if ok and clean and pbsm4 >= 1.5 else 1


if __name__ == "__main__":
    main()
