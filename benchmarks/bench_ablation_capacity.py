"""Ablation A3: node capacity sensitivity.

Beyond the paper: leaf capacity trades early-stop granularity against
traversal cost.  Small leaves give tight MBRs (early stops fire at small
ranges, good compaction) but deep trees; big leaves batch distance work
efficiently in NumPy but group coarsely.  The R-tree literature's 50-100
recommendation (paper Section V-B) sits in the middle.
"""

from __future__ import annotations

import pytest

from repro.core.csj import csj
from repro.core.results import CountingSink
from repro.index.bulk import bulk_load
from repro.io.writer import width_for

EPS = 0.1
CAPACITIES = [8, 16, 32, 64, 128]


@pytest.mark.parametrize("capacity", CAPACITIES)
def test_ablation_capacity_join(benchmark, run_once, mg_points, capacity):
    tree = bulk_load(mg_points, max_entries=capacity)
    sink = CountingSink(id_width=width_for(len(mg_points)))
    result = run_once(csj, tree, EPS, 10, sink=sink)
    benchmark.extra_info.update(
        capacity=capacity,
        output_bytes=result.output_bytes,
        early_stops=result.stats.early_stops,
        nodes_visited=result.stats.nodes_visited,
    )


def test_ablation_capacity_shape(benchmark, run_once, mg_points):
    """Lossless at every capacity; smaller leaves never produce *larger*
    N-CSJ output (tighter nodes can only group more)."""
    width = width_for(len(mg_points))

    def sweep():
        out = {}
        for capacity in (8, 64):
            tree = bulk_load(mg_points, max_entries=capacity)
            out[capacity] = csj(
                tree, EPS, g=0, sink=CountingSink(id_width=width)
            ).output_bytes
        return out

    by_capacity = run_once(sweep)
    assert by_capacity[8] <= by_capacity[64] * 1.05
    benchmark.extra_info.update(series=by_capacity)
