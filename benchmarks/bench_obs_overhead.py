"""Observability overhead: the acceptance gate for the obs layer.

The instrumentation must be free when nobody asked for it.  On the
Figure-7 workload (Sierpinski3D, eps = 0.125) this bench measures

* the join's wall-clock with all observability disabled (the default),
* the per-call cost of a disabled ``span()`` (one global read returning
  a shared no-op object),
* the number of span call sites actually crossed by an enabled run,

and asserts that ``spans_crossed * disabled_span_cost`` — the entire
disabled-mode tax — is under 5% of the disabled wall-clock.  A second
test reports the *enabled* overhead (tracing to a real file) for the
record; that one is informational, not a gate.
"""

from __future__ import annotations

import time

from repro.core.csj import csj
from repro.core.results import CountingSink
from repro.datasets import sierpinski_pyramid
from repro.experiments.runner import scaled
from repro.index.bulk import bulk_load
from repro.io.writer import width_for
from repro.obs.tracing import configure_tracing, disable_tracing, span

EPS = 0.125
N = scaled(8_000)


def _tree_and_sink():
    points = sierpinski_pyramid(N, seed=0)
    return bulk_load(points, max_entries=64), CountingSink(id_width=width_for(N))


def _disabled_wall_clock():
    tree, sink = _tree_and_sink()
    start = time.perf_counter()
    csj(tree, EPS, 10, sink=sink)
    return time.perf_counter() - start


def _noop_span_cost(calls=200_000):
    start = time.perf_counter()
    for _ in range(calls):
        with span("descend"):
            pass
    return (time.perf_counter() - start) / calls


def _spans_crossed(tmp_path):
    trace = tmp_path / "overhead.trace.jsonl"
    configure_tracing(str(trace))
    try:
        tree, sink = _tree_and_sink()
        start = time.perf_counter()
        csj(tree, EPS, 10, sink=sink)
        enabled_wall = time.perf_counter() - start
    finally:
        disable_tracing()
    count = sum(1 for line in trace.read_text().splitlines() if line.strip())
    return count, enabled_wall


def test_disabled_overhead_under_5_percent(benchmark, run_once, tmp_path):
    """spans_crossed x noop_cost must stay below 5% of the join's
    uninstrumented wall-clock on the fig7 workload."""

    def measure():
        wall = _disabled_wall_clock()
        noop_cost = _noop_span_cost()
        spans_crossed, enabled_wall = _spans_crossed(tmp_path)
        return wall, noop_cost, spans_crossed, enabled_wall

    wall, noop_cost, spans_crossed, enabled_wall = run_once(measure)
    disabled_tax = spans_crossed * noop_cost
    benchmark.extra_info.update(
        n=N,
        wall_disabled_s=wall,
        wall_enabled_s=enabled_wall,
        noop_span_cost_s=noop_cost,
        spans_crossed=spans_crossed,
        disabled_tax_s=disabled_tax,
        disabled_tax_pct=100.0 * disabled_tax / wall,
    )
    assert spans_crossed > 0
    assert disabled_tax < 0.05 * wall, (
        f"disabled instrumentation tax {disabled_tax:.4f}s is >= 5% of "
        f"wall {wall:.4f}s ({spans_crossed} spans x {noop_cost * 1e9:.0f}ns)"
    )


def test_enabled_overhead_reported(benchmark, run_once, tmp_path):
    """Informational: wall-clock ratio with tracing writing to disk."""

    def measure():
        disabled = _disabled_wall_clock()
        _, enabled = _spans_crossed(tmp_path)
        return disabled, enabled

    disabled, enabled = run_once(measure)
    ratio = enabled / disabled if disabled else float("inf")
    benchmark.extra_info.update(
        wall_disabled_s=disabled, wall_enabled_s=enabled, ratio=ratio
    )
    # Not a gate — enabled tracing pays for file writes — but a runaway
    # regression (an order of magnitude) should still fail the bench.
    assert ratio < 10.0
