"""Ablation A1: bulk-loading strategy versus join performance.

Beyond the paper: does how the tree was built (STR / Hilbert / OMT
packing, or dynamic R* insertion) change the compact join's
effectiveness?  Better-tiled leaves mean tighter node MBRs and therefore
more early stops.  Build time is also benchmarked — the reason bulk
loading exists (paper Section VII's discussion of [22-24]).
"""

from __future__ import annotations

import pytest

from repro.core.csj import csj
from repro.core.results import CountingSink
from repro.index.bulk import bulk_load
from repro.index.rstar import RStarTree
from repro.io.writer import width_for

EPS = 0.1
METHODS = ["str", "hilbert", "omt", "dynamic"]


def _build(method, points):
    if method == "dynamic":
        return RStarTree(points, max_entries=64)
    return bulk_load(points, method=method, tree_class=RStarTree, max_entries=64)


@pytest.mark.parametrize("method", METHODS)
def test_ablation_bulk_build_time(benchmark, run_once, mg_points, method):
    tree = run_once(_build, method, mg_points)
    tree.validate()
    benchmark.extra_info.update(method=method, leaves=tree.leaf_count())


@pytest.mark.parametrize("method", METHODS)
def test_ablation_bulk_join(benchmark, run_once, mg_points, method):
    tree = _build(method, mg_points)
    sink = CountingSink(id_width=width_for(len(mg_points)))
    result = run_once(csj, tree, EPS, 10, sink=sink)
    benchmark.extra_info.update(
        method=method,
        output_bytes=result.output_bytes,
        early_stops=result.stats.early_stops,
        distance_computations=result.stats.distance_computations,
    )


def test_ablation_bulk_shape(benchmark, run_once, mg_points):
    """All build strategies produce lossless joins of identical implied
    link sets, and packed trees are no worse than dynamic insertion on
    work proxies (they tile space at least as well)."""
    from repro.core.results import CollectSink

    def sweep():
        out = {}
        for method in METHODS:
            tree = _build(method, mg_points)
            sink = CollectSink(id_width=width_for(len(mg_points)))
            result = csj(tree, EPS, g=10, sink=sink)
            out[method] = (
                result.expanded_links(),
                result.stats.distance_computations,
            )
        return out

    out = run_once(sweep)
    links = [v[0] for v in out.values()]
    assert all(l == links[0] for l in links[1:])
    benchmark.extra_info.update(
        distance_computations={k: v[1] for k, v in out.items()}
    )
