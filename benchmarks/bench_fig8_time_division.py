"""Figure 8 / Experiment 3: computation versus disk-write time.

MG County at eps = 0.1; the five paper bars are SSJ, N-CSJ, CSJ(1),
CSJ(10), CSJ(100), each split into computation and output-write time and
written through a real file (TextSink), with index page accesses counted
through the simulated LRU cache.

Paper shape asserted:
* page/cache accesses are essentially identical across algorithms;
* the compact joins write far fewer bytes than SSJ;
* SSJ's total time exceeds the compact joins' at this range.
"""

from __future__ import annotations

import os

import pytest

from repro.core.csj import csj
from repro.core.results import TextSink
from repro.core.ssj import ssj
from repro.io.pagesim import NodePager, PageCache
from repro.io.writer import width_for

EPS = 0.1
VARIANTS = [("ssj", None), ("ncsj", 0), ("csj", 1), ("csj", 10), ("csj", 100)]


def _run_variant(name, g, tree, width, path):
    pager = NodePager(tree, PageCache(256))
    with TextSink(path, id_width=width) as sink:
        if name == "ssj":
            return ssj(tree, EPS, sink=sink, pager=pager)
        return csj(tree, EPS, g=g, sink=sink, pager=pager)


@pytest.mark.parametrize("name,g", VARIANTS, ids=[f"{n}-{g}" for n, g in VARIANTS])
def test_fig8_variant(benchmark, run_once, tmp_path, mg_points, mg_tree, name, g):
    width = width_for(len(mg_points))
    path = str(tmp_path / "out.txt")
    result = run_once(_run_variant, name, g, mg_tree, width, path)
    benchmark.extra_info.update(
        algorithm=f"{name}({g})" if g else name,
        compute_time=result.stats.compute_time,
        write_time=result.stats.write_time,
        output_bytes=result.stats.bytes_written,
        page_reads=result.stats.page_reads,
        cache_hits=result.stats.cache_hits,
    )
    assert os.path.getsize(path) == result.stats.bytes_written


def test_fig8_shape(benchmark, run_once, tmp_path, mg_points, mg_tree):
    width = width_for(len(mg_points))

    def sweep():
        rows = {}
        for i, (name, g) in enumerate(VARIANTS):
            path = str(tmp_path / f"{i}.txt")
            result = _run_variant(name, g, mg_tree, width, path)
            rows[(name, g)] = result.stats
        return rows

    rows = run_once(sweep)
    accesses = {
        key: stats.page_reads + stats.cache_hits for key, stats in rows.items()
    }
    # Experiment 3's headline: no significant difference in page accesses.
    assert max(accesses.values()) <= min(accesses.values()) * 1.5
    # The compact joins write much less.
    assert rows[("csj", 10)].bytes_written < rows[("ssj", None)].bytes_written
    assert rows[("ncsj", 0)].bytes_written <= rows[("ssj", None)].bytes_written
    benchmark.extra_info.update(
        accesses={f"{k[0]}-{k[1]}": v for k, v in accesses.items()}
    )
