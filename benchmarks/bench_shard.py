#!/usr/bin/env python
"""Sharded-execution benchmark: halo overhead, skew, and parity cost.

Writes ``BENCH_shard.json`` next to this file (or ``--out``).  Two
figures of merit per (dataset, K, partitioner) cell:

* ``halo_overhead`` — replicated halo points over core points.  This is
  the *price* of the ε-margin replication that makes every shard join
  exact without a cross-shard dedup pass; it should shrink as density
  spreads and grow with K.
* ``skew_ratio`` — max over mean shard working-set size.  The hilbert
  partitioner exists to keep this near 1.0 on clustered data where the
  uniform grid degrades.

``wall_s`` (median of ``--repeat`` timed runs) and ``tasks_per_s`` are
recorded for throughput context, plus the serial unsharded wall for the
baseline column.

Every timed run re-verifies the invariant the whole subsystem is built
on: the sharded output stream is byte-identical to ``shards=1`` and the
canonical output counters match.  The gate (exit status) requires parity
in every cell, zero leaked shared-memory segments, and the hilbert
partitioner beating the grid's skew on the clustered dataset.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard.py [--out PATH] [--n 4000]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time

import numpy as np

from repro.api import similarity_join
from repro.core.results import CollectSink
from repro.experiments.runner import scaled
from repro.io.writer import width_for
from repro.parallel.shm import owned_segments
from repro.shard import ShardedJoin

SHARD_COUNTS = (2, 4, 8)
PARTITIONERS = ("grid", "hilbert")


def clustered_dataset(n: int, seed: int = 11) -> np.ndarray:
    """Half the mass in a tight corner blob, half uniform: the skew case."""
    rng = np.random.default_rng(seed)
    blob = 0.05 + 0.08 * rng.random((n // 2, 2))
    rest = rng.random((n - n // 2, 2))
    return np.vstack([blob, rest])


def _canonical(result):
    stats = result.stats
    return (
        stats.links_emitted,
        stats.groups_emitted,
        stats.group_members_emitted,
        stats.bytes_written,
        stats.merge_attempts,
        stats.merge_successes,
        stats.pairs_reported,
    )


def bench_dataset(name, pts, eps, workers, repeat):
    t0 = time.perf_counter()
    serial = similarity_join(pts, eps, algorithm="csj", g=10)
    serial_wall = time.perf_counter() - t0
    baseline = similarity_join(pts, eps, algorithm="csj", g=10, shards=1)
    key = _canonical(baseline)

    row = {
        "dataset": name,
        "n": int(len(pts)),
        "eps": eps,
        "algorithm": baseline.algorithm,
        "repeat": repeat,
        "workers": workers,
        "serial_wall_s": round(serial_wall, 5),
        "cells": [],
        "parity": True,
    }
    for partitioner in PARTITIONERS:
        for k in SHARD_COUNTS:
            job = ShardedJoin(
                pts, eps, algorithm="csj", g=10, shards=k,
                partitioner=partitioner, workers=workers,
            )
            walls = []
            report = None
            parity = True
            for _ in range(repeat):
                sink = CollectSink(id_width=width_for(len(pts)))
                t0 = time.perf_counter()
                result = job.run(sink=sink)
                walls.append(time.perf_counter() - t0)
                report = result.shard_report
                parity = parity and _canonical(result) == key
            wall = statistics.median(walls)
            row["parity"] = row["parity"] and parity
            row["cells"].append({
                "shards": k,
                "partitioner": partitioner,
                "wall_s": round(wall, 5),
                "tasks": report["tasks"],
                "tasks_per_s": round(report["tasks"] / wall, 1) if wall else 0.0,
                "halo_points": report["halo_points"],
                "halo_overhead": round(report["halo_points"] / len(pts), 4),
                "skew_ratio": round(report["skew_ratio"], 4),
                "work_distance_computations": report["work"]["distance_computations"],
                "byte_identical": bool(parity),
            })
    return row


def _skew(row, partitioner, k=8):
    return next(
        c["skew_ratio"] for c in row["cells"]
        if c["partitioner"] == partitioner and c["shards"] == k
    )


def main() -> int:
    default_out = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "BENCH_shard.json")
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=default_out)
    parser.add_argument("--n", type=int, default=scaled(3000))
    parser.add_argument("--eps", type=float, default=0.03)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--workers", type=int, default=None,
                        help="phase-1 worker pool size (default: serial)")
    args = parser.parse_args()

    uniform = np.random.default_rng(3).random((args.n, 2))
    rows = [
        bench_dataset("synthetic-uniform2d", uniform, args.eps,
                      args.workers, args.repeat),
        bench_dataset("synthetic-clustered2d", clustered_dataset(args.n),
                      args.eps, args.workers, args.repeat),
    ]

    report = {
        "benchmark": "sharded execution (halo overhead, skew, parity cost)",
        "host_cpus": os.cpu_count(),
        "note": (
            "halo_overhead = replicated halo points / dataset points — the "
            "price of exact per-shard joins with no dedup pass. skew_ratio "
            "= max/mean shard working set. wall_s is the full two-phase "
            "sharded run (median); serial_wall_s the unsharded baseline. "
            "byte_identical re-verified against shards=1 on every timed run."
        ),
        "results": rows,
        "leaked_segments": owned_segments(),
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(json.dumps(report, indent=2))

    parity = all(r["parity"] for r in rows)
    clean = not report["leaked_segments"]
    clustered = next(r for r in rows if "clustered" in r["dataset"])
    grid_skew = _skew(clustered, "grid")
    hilbert_skew = _skew(clustered, "hilbert")
    print(f"\nparity in every cell             : {parity}")
    print(f"no leaked segments               : {clean}")
    print(f"clustered skew @K=8              : grid {grid_skew:.2f} vs "
          f"hilbert {hilbert_skew:.2f}")
    return 0 if parity and clean and hilbert_skew <= grid_skew else 1


if __name__ == "__main__":
    raise SystemExit(main())
