"""Figure 6 / Experiment 1b: CSJ(g) versus the window size g.

Paper shape: on MG County at a fixed range, output size drops ~20% from
g=1 to g~10 and flattens afterwards, while runtime grows mildly with g —
hence the recommended sweet spot g ~ 10.  Both halves are asserted.
"""

from __future__ import annotations

import pytest

from repro.core.csj import csj
from repro.core.results import CountingSink
from repro.io.writer import width_for

G_VALUES = [1, 2, 3, 4, 5, 10, 20, 50, 100]
EPS = 0.1


@pytest.mark.parametrize("g", G_VALUES)
def test_fig6_csj_g(benchmark, run_once, mg_points, mg_tree, g):
    sink = CountingSink(id_width=width_for(len(mg_points)))
    result = run_once(csj, mg_tree, EPS, g, sink=sink)
    benchmark.extra_info.update(
        g=g,
        output_bytes=result.output_bytes,
        groups=result.stats.groups_emitted,
        merge_attempts=result.stats.merge_attempts,
        merge_successes=result.stats.merge_successes,
    )


def test_fig6_shape(benchmark, run_once, mg_points, mg_tree):
    """Output shrinks with g and saturates: the g=10 output is within a
    few percent of the g=100 output, and well below the g=1 output."""
    width = width_for(len(mg_points))

    def sweep():
        return {
            g: csj(mg_tree, EPS, g=g, sink=CountingSink(id_width=width)).output_bytes
            for g in (1, 10, 100)
        }

    by_g = run_once(sweep)
    assert by_g[10] <= by_g[1]
    assert by_g[100] <= by_g[10]
    # Diminishing returns: going 10 -> 100 buys far less than 1 -> 10.
    gain_1_to_10 = by_g[1] - by_g[10]
    gain_10_to_100 = by_g[10] - by_g[100]
    assert gain_10_to_100 <= gain_1_to_10
    benchmark.extra_info.update(series=by_g)
