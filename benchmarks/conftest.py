"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures (see
DESIGN.md's per-experiment index).  Dataset sizes default to quick,
laptop-friendly values; set ``REPRO_SCALE`` (e.g. ``REPRO_SCALE=5``) to
approach paper scale — the code paths are identical.

Benchmarks use ``benchmark.pedantic(..., rounds=1)`` because join runtimes
here range from milliseconds to minutes; pytest-benchmark's automatic
calibration would re-run the expensive ones dozens of times.
"""

from __future__ import annotations

import pytest

from repro.datasets import lb_county, mg_county, pacific_nw, sierpinski_pyramid
from repro.experiments.runner import scaled
from repro.index.bulk import bulk_load


def _cached(generator, n, seed=0):
    return generator(n, seed=seed)


@pytest.fixture(scope="session")
def mg_points():
    return _cached(mg_county, scaled(2_700))


@pytest.fixture(scope="session")
def lb_points():
    return _cached(lb_county, scaled(3_600))


@pytest.fixture(scope="session")
def sierpinski_points():
    return _cached(sierpinski_pyramid, scaled(10_000))


@pytest.fixture(scope="session")
def pacific_points():
    return _cached(pacific_nw, scaled(15_000))


@pytest.fixture(scope="session")
def mg_tree(mg_points):
    return bulk_load(mg_points, max_entries=64)


@pytest.fixture(scope="session")
def lb_tree(lb_points):
    return bulk_load(lb_points, max_entries=64)


@pytest.fixture(scope="session")
def sierpinski_tree(sierpinski_points):
    return bulk_load(sierpinski_points, max_entries=64)


@pytest.fixture(scope="session")
def pacific_tree(pacific_points):
    return bulk_load(pacific_points, max_entries=64)


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under the benchmark clock."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
