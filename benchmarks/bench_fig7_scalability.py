"""Figure 7 / Experiment 2: scalability with the number of data points.

Sierpinski3D at fixed eps = 0.125.  Paper shape: SSJ's output size grows
quadratically with n (it eventually crashed and was estimated), while
N-CSJ and CSJ(10) grow near-linearly — asserted via growth exponents on
an n / 4n size pair.
"""

from __future__ import annotations

import math

import pytest

from repro.core.csj import csj
from repro.core.results import CountingSink
from repro.core.ssj import ssj
from repro.datasets import sierpinski_pyramid
from repro.experiments.runner import scaled
from repro.index.bulk import bulk_load
from repro.io.writer import width_for

EPS = 0.125
SIZES = [scaled(2_000), scaled(8_000)]


def _tree_and_sink(n):
    points = sierpinski_pyramid(n, seed=0)
    return bulk_load(points, max_entries=64), CountingSink(id_width=width_for(n))


@pytest.mark.parametrize("n", SIZES)
def test_fig7_ssj(benchmark, run_once, n):
    tree, sink = _tree_and_sink(n)
    result = run_once(ssj, tree, EPS, sink=sink)
    benchmark.extra_info.update(n=n, output_bytes=result.output_bytes)


@pytest.mark.parametrize("n", SIZES)
def test_fig7_ncsj(benchmark, run_once, n):
    tree, sink = _tree_and_sink(n)
    result = run_once(csj, tree, EPS, 0, sink=sink)
    benchmark.extra_info.update(n=n, output_bytes=result.output_bytes)


@pytest.mark.parametrize("n", SIZES)
def test_fig7_csj10(benchmark, run_once, n):
    tree, sink = _tree_and_sink(n)
    result = run_once(csj, tree, EPS, 10, sink=sink)
    benchmark.extra_info.update(n=n, output_bytes=result.output_bytes)


def test_fig7_growth_exponents(benchmark, run_once):
    """Output-growth exponents over a 4x size step: SSJ close to
    quadratic, the compact joins close to linear."""
    n_small, n_large = SIZES

    def measure():
        out = {}
        for n in (n_small, n_large):
            tree, _ = _tree_and_sink(n)
            width = width_for(n)
            out[("ssj", n)] = ssj(
                tree, EPS, sink=CountingSink(id_width=width)
            ).output_bytes
            out[("ncsj", n)] = csj(
                tree, EPS, g=0, sink=CountingSink(id_width=width)
            ).output_bytes
            out[("csj", n)] = csj(
                tree, EPS, g=10, sink=CountingSink(id_width=width)
            ).output_bytes
        return out

    out = run_once(measure)
    ratio = n_large / n_small

    def exponent(name):
        return math.log(out[(name, n_large)] / out[(name, n_small)]) / math.log(ratio)

    e_ssj, e_ncsj, e_csj = exponent("ssj"), exponent("ncsj"), exponent("csj")
    benchmark.extra_info.update(exponents={"ssj": e_ssj, "ncsj": e_ncsj, "csj": e_csj})
    # SSJ explodes (output superlinear in n) while the compact joins grow
    # strictly slower and the SSJ/CSJ level gap widens with n — the
    # "controls the explosion" claim.  At the paper's full 5e5 scale the
    # gap is visually flat on its linear-axis plot; at bench scale we
    # assert the ordering and the widening (see EXPERIMENTS.md).
    assert e_ssj > 1.5
    assert e_csj < e_ssj
    assert e_ncsj <= e_ssj + 0.05
    gap_small = out[("ssj", n_small)] / out[("csj", n_small)]
    gap_large = out[("ssj", n_large)] / out[("csj", n_large)]
    assert gap_large > gap_small
    assert gap_large > 2.0
