"""Figure 5 / Experiment 1: time and output size versus query range.

Paper shape being reproduced (per dataset row of Figure 5):

* at small ranges all three algorithms coincide;
* as the range grows, SSJ's output (and hence time) explodes while the
  compact joins stay controlled — N-CSJ <= SSJ, CSJ(10) <= N-CSJ in
  output bytes at *every* range (asserted below);
* at the largest ranges SSJ exceeds the byte budget and the paper plots
  estimates; here the SSJ benches are capped to the feasible ranges and
  the output-size series is still reported exactly via the estimator in
  the companion test.

Each benchmark row carries ``output_bytes`` (the paper's space metric)
and work counters in ``extra_info`` so the full Figure 5 series can be
read off the pytest-benchmark table.
"""

from __future__ import annotations

import pytest

from repro.core.csj import csj
from repro.core.results import CountingSink
from repro.core.ssj import ssj
from repro.experiments.estimate import estimate_ssj
from repro.io.writer import width_for

#: Subset of the paper's nine ranges used for timed runs (the full grid is
#: exercised by the experiments module; SSJ at 2**-1 on clustered county
#: data explodes far past any byte budget).
EPS_GRID = [2.0**-9, 2.0**-7, 2.0**-5, 2.0**-3]
SSJ_EPS_GRID = [2.0**-9, 2.0**-7, 2.0**-5]

_DATASETS = ["mg", "lb", "sierpinski", "pacific"]


def _fixture(request, name):
    points = request.getfixturevalue(f"{name}_points")
    tree = request.getfixturevalue(f"{name}_tree")
    return points, tree


def _sink(points):
    return CountingSink(id_width=width_for(len(points)))


@pytest.mark.parametrize("dataset", _DATASETS)
@pytest.mark.parametrize("eps", SSJ_EPS_GRID, ids=lambda e: f"eps={e:g}")
def test_fig5_ssj(benchmark, run_once, request, dataset, eps):
    points, tree = _fixture(request, dataset)
    result = run_once(ssj, tree, eps, sink=_sink(points))
    benchmark.extra_info.update(
        dataset=dataset,
        algorithm="ssj",
        eps=eps,
        output_bytes=result.output_bytes,
        links=result.stats.links_emitted,
        distance_computations=result.stats.distance_computations,
    )


@pytest.mark.parametrize("dataset", _DATASETS)
@pytest.mark.parametrize("eps", EPS_GRID, ids=lambda e: f"eps={e:g}")
def test_fig5_ncsj(benchmark, run_once, request, dataset, eps):
    points, tree = _fixture(request, dataset)
    result = run_once(csj, tree, eps, 0, sink=_sink(points))
    benchmark.extra_info.update(
        dataset=dataset,
        algorithm="ncsj",
        eps=eps,
        output_bytes=result.output_bytes,
        early_stops=result.stats.early_stops,
    )


@pytest.mark.parametrize("dataset", _DATASETS)
@pytest.mark.parametrize("eps", EPS_GRID, ids=lambda e: f"eps={e:g}")
def test_fig5_csj10(benchmark, run_once, request, dataset, eps):
    points, tree = _fixture(request, dataset)
    result = run_once(csj, tree, eps, 10, sink=_sink(points))
    benchmark.extra_info.update(
        dataset=dataset,
        algorithm="csj(10)",
        eps=eps,
        output_bytes=result.output_bytes,
        groups=result.stats.groups_emitted,
    )


@pytest.mark.parametrize("dataset", _DATASETS)
def test_fig5_shape_space_ordering(benchmark, run_once, request, dataset):
    """The figure's space claim across the whole grid, including ranges
    where SSJ itself is only estimated: CSJ(10) <= N-CSJ <= SSJ."""
    points, tree = _fixture(request, dataset)
    width = width_for(len(points))

    def sweep():
        rows = []
        for eps in EPS_GRID:
            ssj_bytes = estimate_ssj(points, eps, width, metric=tree.metric).output_bytes
            ncsj_bytes = csj(tree, eps, g=0, sink=CountingSink(id_width=width)).output_bytes
            csj_bytes = csj(tree, eps, g=10, sink=CountingSink(id_width=width)).output_bytes
            rows.append((eps, ssj_bytes, ncsj_bytes, csj_bytes))
        return rows

    rows = run_once(sweep)
    for eps, ssj_bytes, ncsj_bytes, csj_bytes in rows:
        assert csj_bytes <= ncsj_bytes <= ssj_bytes, (dataset, eps)
    # The SSJ/CSJ gap must *grow* with the range (the explosion regime is
    # where compaction pays; the paper's orders-of-magnitude gaps are at
    # its largest ranges and full dataset sizes — see EXPERIMENTS.md).
    gaps = [s / max(c, 1) for _, s, _, c in rows]
    assert gaps[-1] > gaps[0]
    assert gaps[-1] > 2.0
    benchmark.extra_info.update(dataset=dataset, series=rows)
