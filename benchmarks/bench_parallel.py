#!/usr/bin/env python
"""Parallel execution benchmark: serial vs supervised pool at 2 and 4 workers.

Writes ``BENCH_parallel.json`` next to this file (or ``--out``).  Two
figures of merit are recorded, deliberately kept apart:

* **measured wall time** of the actual runs on this host — on a
  single-core container the pool cannot beat serial on wall time, and
  the numbers say so honestly (``host_cpus`` records the core count);
* **load-balance speedup** — the parallelism the task decomposition
  itself admits: ``sum(per-task seconds) / greedy-LPT makespan at k
  workers``, from per-task timings of the real executors.  This is the
  speedup an unloaded k-core host approaches, bounded by the task
  granularity, and is the figure the acceptance gate reads.

Every configuration also re-verifies the invariant that makes the
comparison meaningful: pool output is byte-identical to serial.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--out PATH] [--n 4000]
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.api import similarity_join
from repro.datasets import sierpinski_pyramid
from repro.experiments.runner import scaled
from repro.parallel import JoinSpec, parallel_join

WORKER_COUNTS = (2, 4)


def greedy_makespan(durations: list[float], k: int) -> float:
    """LPT list-scheduling makespan of ``durations`` on ``k`` machines."""
    loads = [0.0] * k
    for d in sorted(durations, reverse=True):
        loads[loads.index(min(loads))] += d
    return max(loads)


def per_task_seconds(spec: JoinSpec) -> list[float]:
    """Time every task of the join's canonical decomposition in-process."""
    state = spec.build_state()
    durations = []
    for tid in range(len(state.tasks)):
        t0 = time.perf_counter()
        state.execute(tid)
        durations.append(time.perf_counter() - t0)
    return durations


def bench_config(name: str, pts: np.ndarray, eps: float, algorithm: str,
                 g: int = 10) -> dict:
    serial_t0 = time.perf_counter()
    serial = similarity_join(pts, eps, algorithm=algorithm, g=g)
    serial_wall = time.perf_counter() - serial_t0
    serial_links = sorted(serial.expanded_links())

    row = {
        "dataset": name,
        "n": int(len(pts)),
        "eps": eps,
        "algorithm": serial.algorithm,
        "serial_wall_s": round(serial_wall, 4),
        "parallel_wall_s": {},
        "byte_identical": {},
    }

    for workers in WORKER_COUNTS:
        t0 = time.perf_counter()
        par = parallel_join(pts, eps, algorithm=algorithm, g=g,
                            workers=workers)
        row["parallel_wall_s"][str(workers)] = round(
            time.perf_counter() - t0, 4
        )
        row["byte_identical"][str(workers)] = bool(
            par.stats.bytes_written == serial.stats.bytes_written
            and sorted(par.expanded_links()) == serial_links
        )

    spec = JoinSpec(points=pts, eps=eps, algorithm=algorithm, g=g)
    durations = per_task_seconds(spec)
    total = sum(durations)
    row["tasks"] = len(durations)
    row["task_seconds_total"] = round(total, 4)
    row["load_balance_speedup"] = {
        str(k): round(total / greedy_makespan(durations, k), 3)
        for k in WORKER_COUNTS
        if durations
    }
    return row


def main() -> int:
    default_out = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "BENCH_parallel.json")
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=default_out)
    parser.add_argument("--n", type=int, default=scaled(4000))
    args = parser.parse_args()

    sierpinski = sierpinski_pyramid(args.n, seed=0)
    synthetic = np.random.default_rng(3).random((args.n, 2))

    rows = [
        bench_config("sierpinski3d", sierpinski, 0.05, "pbsm"),
        bench_config("sierpinski3d", sierpinski, 0.05, "pbsm-csj"),
        bench_config("synthetic-uniform2d", synthetic, 0.03, "pbsm"),
        bench_config("synthetic-uniform2d", synthetic, 0.03, "csj"),
    ]

    report = {
        "benchmark": "parallel join execution (supervised worker pool)",
        "host_cpus": os.cpu_count(),
        "note": (
            "parallel_wall_s is measured on THIS host; with host_cpus=1 the "
            "pool adds IPC overhead and cannot beat serial wall time. "
            "load_balance_speedup is the decomposition's admitted "
            "parallelism (sum of per-task seconds / LPT makespan at k "
            "workers), the ceiling an unloaded k-core host approaches."
        ),
        "results": rows,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    print(json.dumps(report, indent=2))
    ok = all(all(r["byte_identical"].values()) for r in rows)
    pbsm4 = max(
        r["load_balance_speedup"]["4"]
        for r in rows if r["algorithm"].startswith("pbsm")
    )
    print(f"\nbyte-identical everywhere : {ok}")
    print(f"best pbsm speedup @4      : {pbsm4:.2f}x (load-balance bound)")
    return 0 if ok and pbsm4 >= 1.5 else 1


if __name__ == "__main__":
    main()
