"""Experiment 4: different underlying tree structures.

The paper implemented the algorithms over R*-trees, R-trees and Metric
trees and found "no significant difference in any of the performance
measures".  Benchmarks run CSJ(10) and N-CSJ over all three indexes on
the same MG-County-like data, and the shape test asserts that all
indexes imply the identical link set and comparable output sizes.
"""

from __future__ import annotations

import pytest

from repro.core.csj import csj
from repro.core.results import CollectSink, CountingSink
from repro.index.bulk import bulk_load
from repro.index.mtree import MTree
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree
from repro.io.writer import width_for

EPS = 0.05
INDEXES = ["rstar", "rtree", "mtree"]


def _build(name, points):
    if name == "mtree":
        return MTree(points, max_entries=64)
    cls = RStarTree if name == "rstar" else RTree
    return bulk_load(points, tree_class=cls, max_entries=64)


@pytest.mark.parametrize("index", INDEXES)
def test_exp4_build(benchmark, run_once, mg_points, index):
    tree = run_once(_build, index, mg_points)
    tree.validate()
    benchmark.extra_info.update(index=index, nodes=tree.node_count())


@pytest.mark.parametrize("index", INDEXES)
@pytest.mark.parametrize("g", [0, 10], ids=["ncsj", "csj10"])
def test_exp4_join(benchmark, run_once, mg_points, index, g):
    tree = _build(index, mg_points)
    sink = CountingSink(id_width=width_for(len(mg_points)))
    result = run_once(csj, tree, EPS, g, sink=sink)
    benchmark.extra_info.update(
        index=index, g=g, output_bytes=result.output_bytes,
        distance_computations=result.stats.distance_computations,
    )


def test_exp4_shape_all_indexes_agree(benchmark, run_once, mg_points):
    """Same implied link set from every index, and output sizes within a
    small factor of each other (the paper found no significant
    difference; ball bounds are looser than rectangles, so we allow 2x)."""

    def sweep():
        out = {}
        for index in INDEXES:
            tree = _build(index, mg_points)
            sink = CollectSink(id_width=width_for(len(mg_points)))
            result = csj(tree, EPS, g=10, sink=sink)
            out[index] = (result.expanded_links(), result.output_bytes)
        return out

    out = run_once(sweep)
    links = [v[0] for v in out.values()]
    assert all(l == links[0] for l in links[1:])
    sizes = [v[1] for v in out.values()]
    assert max(sizes) <= min(sizes) * 2.0
    benchmark.extra_info.update(sizes={k: v[1] for k, v in out.items()})
