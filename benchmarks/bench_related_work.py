"""Related-work comparison (paper Section II-C, quantified).

The paper rejects "similarity join + clustering post-processing" as a
substitute for the compact join.  These benches run the rejected pipeline
— k-means, k-medoids, single-linkage and BIRCH over the join's ground
truth — and measure what the paper predicts:

* every clustering baseline either implies non-qualifying pairs
  ("Cluster Shape" failure / Theorem 2) or drops qualifying links
  (Theorem 1), while CSJ(10) does neither;
* single-linkage post-processing consumes the exploded link list, i.e.
  costs what the compact join avoids ("Runtime" failure).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.birch import BirchTree
from repro.baselines.hierarchical import single_linkage_from_links
from repro.baselines.kmeans import kmeans, kmedoids
from repro.baselines.postprocess import cluster_violations, evaluate_postprocessing
from repro.core.bruteforce import brute_force_links
from repro.experiments.runner import scaled

EPS = 0.03
N = scaled(1_500)


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(5)
    centers = rng.random((8, 2))
    points = np.clip(
        centers[rng.integers(0, 8, N)] + rng.normal(scale=0.012, size=(N, 2)), 0, 1
    )
    return points, brute_force_links(points, EPS)


def test_related_kmeans(benchmark, run_once, workload):
    points, truth = workload
    labels, _ = run_once(kmeans, points, 60, None, 50, 0)
    violating, missing = cluster_violations(points, labels, EPS, truth)
    benchmark.extra_info.update(violating=violating, missing=missing)
    assert violating + missing > 0  # Section II-C "Cluster Shape"


def test_related_kmedoids(benchmark, run_once, workload):
    points, truth = workload
    labels, _ = run_once(kmedoids, points, 40)
    violating, missing = cluster_violations(points, labels, EPS, truth)
    benchmark.extra_info.update(violating=violating, missing=missing)
    assert violating + missing > 0


def test_related_single_linkage(benchmark, run_once, workload):
    points, truth = workload
    labels = run_once(single_linkage_from_links, truth, len(points))
    violating, missing = cluster_violations(points, labels, EPS, truth)
    benchmark.extra_info.update(
        violating=violating, missing=missing, links_consumed=len(truth)
    )
    # Connected components never cross a non-link... but chains exceed eps.
    assert missing == 0
    assert violating > 0


def test_related_birch(benchmark, run_once, workload):
    points, truth = workload

    def fit():
        return BirchTree(points.shape[1], threshold=EPS / 2).fit(points).labels()

    labels = run_once(fit)
    violating, missing = cluster_violations(points, labels, EPS, truth)
    benchmark.extra_info.update(violating=violating, missing=missing)
    assert violating + missing > 0


def test_related_shape_summary(benchmark, run_once, workload):
    """The full Section II-C table: only the compact join is exact."""
    points, _ = workload
    rows = run_once(evaluate_postprocessing, points, EPS)
    by_method = {row["method"]: row for row in rows}
    assert by_method["csj(10)"]["violating_pairs"] == 0
    assert by_method["csj(10)"]["missing_links"] == 0
    imperfect = [
        m
        for m in ("kmeans", "kmedoids", "single-linkage", "birch")
        if by_method[m]["violating_pairs"] + by_method[m]["missing_links"] > 0
    ]
    assert len(imperfect) == 4
    benchmark.extra_info.update(
        table={row["method"]: dict(row) for row in rows}
    )
