"""Ablation A4: intrinsic dimensionality versus the output explosion.

The paper's Conclusion proposes analysing the methods "as a function of
the intrinsic ('fractal') dimensionality of the input data set".  This
bench does that analysis: for datasets of equal size but different
correlation dimension D2 (a 1-D line, the Sierpinski triangle with
D2 = log3/log2 ~ 1.585, and the uniform square with D2 = 2), it measures

* the estimated D2 (``repro.stats.fractal``),
* the SSJ output at a fixed range (theory: ~ n^2 * eps^D2 — lower D2
  means *more* pairs at small eps, i.e. earlier explosion), and
* the CSJ(10) compaction ratio.

Shape assertion: the pair count at fixed eps decreases as D2 increases,
exactly the paper's intuition that locally dense (low-dimensional) data
explodes first.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.csj import csj
from repro.core.results import CountingSink
from repro.datasets import sierpinski_triangle, uniform_points
from repro.experiments.runner import scaled
from repro.index.bulk import bulk_load
from repro.io.writer import width_for
from repro.stats.fractal import correlation_dimension

N = scaled(6_000)
EPS = 2.0**-6


def _line(n: int) -> np.ndarray:
    rng = np.random.default_rng(0)
    return np.stack([rng.random(n), np.zeros(n)], axis=1)


DATASETS = {
    "line-d1": _line,
    "sierpinski-d1.58": lambda n: sierpinski_triangle(n, seed=0),
    "uniform-d2": lambda n: uniform_points(n, seed=0),
}


@pytest.mark.parametrize("name", list(DATASETS))
def test_ablation_fractal_dimension_estimate(benchmark, run_once, name):
    points = DATASETS[name](N)
    estimate = run_once(
        correlation_dimension, points, 2.0**-8, 2.0**-4, 6
    )
    benchmark.extra_info.update(dataset=name, d2=estimate.dimension)


@pytest.mark.parametrize("name", list(DATASETS))
def test_ablation_fractal_join(benchmark, run_once, name):
    points = DATASETS[name](N)
    tree = bulk_load(points, max_entries=64)
    sink = CountingSink(id_width=width_for(N))
    result = run_once(csj, tree, EPS, 10, sink=sink)
    benchmark.extra_info.update(
        dataset=name,
        output_bytes=result.output_bytes,
        implied_pairs=None,
        early_stops=result.stats.early_stops,
    )


def test_ablation_fractal_shape(benchmark, run_once):
    """Lower intrinsic dimension -> more pairs at a fixed small range ->
    stronger compaction payoff."""
    from repro.core.bruteforce import count_links

    def sweep():
        out = {}
        for name, generator in DATASETS.items():
            points = generator(N)
            d2 = correlation_dimension(points, 2.0**-8, 2.0**-4, 6).dimension
            pairs = count_links(points, EPS)
            tree = bulk_load(points, max_entries=64)
            width = width_for(N)
            csj_bytes = csj(
                tree, EPS, g=10, sink=CountingSink(id_width=width)
            ).output_bytes
            ssj_bytes = pairs * 2 * (width + 1)
            out[name] = (d2, pairs, ssj_bytes, csj_bytes)
        return out

    out = run_once(sweep)
    d2s = [v[0] for v in out.values()]
    pairs = [v[1] for v in out.values()]
    # Dimensions are ordered line < sierpinski < uniform ...
    assert d2s[0] < d2s[1] < d2s[2]
    # ... and the pair count at fixed eps is anti-ordered.
    assert pairs[0] > pairs[1] > pairs[2]
    # Compaction is strongest where the explosion is worst.
    ratios = [v[2] / max(v[3], 1) for v in out.values()]
    assert ratios[0] > ratios[2]
    benchmark.extra_info.update(
        results={k: {"d2": v[0], "pairs": v[1]} for k, v in out.items()}
    )
