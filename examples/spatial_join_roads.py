"""Compact spatial join between two datasets (paper Section IV-D).

A Geographical Information Systems scenario: join road-network points
against facility locations ("which facilities are within eps of which
road points?").  Both datasets are dense in the same urban regions, which
is precisely when the paper predicts the dual-tree early stop pays off —
the two indexes place small nodes in the same places.

The example runs the standard and the compact spatial join, shows the
output-size gap, and proves the group-pair output expands to the exact
same cross-link set.

Usage::

    python examples/spatial_join_roads.py
"""

import numpy as np

from repro import build_index, compact_spatial_join, spatial_join
from repro.core.bruteforce import brute_force_cross_links
from repro.datasets import pacific_nw


def make_facilities(roads: np.ndarray, n: int = 4_000, seed: int = 9) -> np.ndarray:
    """Facilities cluster where the roads are (shops follow traffic)."""
    rng = np.random.default_rng(seed)
    anchors = roads[rng.integers(0, len(roads), n)]
    return np.clip(anchors + rng.normal(scale=0.004, size=(n, 2)), 0, 1)


def main() -> None:
    roads = pacific_nw(20_000, seed=2)
    facilities = make_facilities(roads)
    eps = 0.01
    print(f"roads: {len(roads)} points, facilities: {len(facilities)}, "
          f"query range {eps}")

    tree_roads = build_index(roads)
    tree_facilities = build_index(facilities)

    standard = spatial_join(tree_roads, tree_facilities, eps)
    compact = compact_spatial_join(tree_roads, tree_facilities, eps, g=10)

    print(f"\nstandard spatial join: {standard.stats.links_emitted:,d} links, "
          f"{standard.output_bytes:,d} bytes")
    print(f"compact spatial join:  {compact.stats.groups_emitted:,d} group "
          f"pairs + {compact.stats.links_emitted:,d} links, "
          f"{compact.output_bytes:,d} bytes "
          f"({compact.output_bytes / max(standard.output_bytes, 1):.1%} of standard)")

    # Losslessness: both outputs imply the exact same cross pairs.
    truth = brute_force_cross_links(roads, facilities, eps)
    assert standard.expanded_cross_links() == truth
    assert compact.expanded_cross_links() == truth
    print(f"\nboth outputs expand to the same {len(truth):,d} cross links "
          "(verified against brute force)")

    # A taste of downstream use: facilities reachable from one road point.
    probe = 0
    near = sorted(j for i, j in truth if i == probe)
    print(f"facilities within {eps} of road point {probe}: {near[:10]}"
          + (" ..." if len(near) > 10 else ""))


if __name__ == "__main__":
    main()
