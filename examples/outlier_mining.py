"""Outlier mining on compact join output (paper Sections I and IV-D).

"We would expect outliers to be separate from large groups of data, so
the focus should be on the small groups returned by the compact
similarity join."  This example plays the paper's astrophysics card: a
simulated galaxy catalogue contains a handful of *unusual pairs* —
objects that sit close to exactly one companion but far from every
cluster.  Those are interesting targets (think interacting galaxy pairs),
and the compact join surfaces them as size-2 groups without ever
materialising the exploded link set.

Usage::

    python examples/outlier_mining.py
"""

import numpy as np

from repro import similarity_join
from repro.core.outliers import find_outliers, group_size_profile, rank_by_isolation
from repro.datasets import gaussian_clusters


def make_catalogue(seed: int = 3):
    """A clustered catalogue plus injected anomalies.

    Returns (points, ids of isolated singles, ids of unusual pairs).
    """
    rng = np.random.default_rng(seed)
    crowd = gaussian_clusters(6_000, seed=seed, n_clusters=15, std=0.01)

    # Unusual pairs: two objects within range of each other, far from all.
    pair_anchors = np.array([[0.05, 0.95], [0.95, 0.05], [0.5, 0.02]])
    pairs = []
    for anchor in pair_anchors:
        offset = rng.normal(scale=0.002, size=2)
        pairs.extend([anchor, anchor + offset])
    pairs = np.array(pairs)

    # Lone objects: in range of nothing at all.
    singles = np.array([[0.02, 0.02], [0.98, 0.98]])

    points = np.vstack([crowd, pairs, singles])
    n_crowd = len(crowd)
    pair_ids = list(range(n_crowd, n_crowd + len(pairs)))
    single_ids = list(range(n_crowd + len(pairs), len(points)))
    return points, single_ids, pair_ids


def main() -> None:
    points, single_ids, pair_ids = make_catalogue()
    eps = 0.02
    print(f"catalogue: {len(points)} objects, query range {eps}")

    result = similarity_join(points, eps, algorithm="csj", g=10)
    print(f"compact join: {result.stats.groups_emitted} groups + "
          f"{result.stats.links_emitted} links "
          f"({result.output_bytes:,d} bytes; the standard join would imply "
          f"{result.implied_link_count():,d} links)")

    # The compact output is "a type of pre-sort" for outlier analysis:
    # the interesting objects are the ones appearing only in tiny groups.
    profile = group_size_profile(result, len(points))
    candidates = find_outliers(result, len(points), max_group_size=2)
    print(f"\nobjects whose largest group has <= 2 members: {len(candidates)}")

    found_pairs = [i for i in pair_ids if profile[i] == 2]
    found_singles = [i for i in single_ids if profile[i] == 0]
    print(f"injected unusual pairs recovered:  {len(found_pairs)}/{len(pair_ids)}")
    print(f"injected lone objects recovered:   {len(found_singles)}/{len(single_ids)}")
    assert len(found_pairs) == len(pair_ids)
    assert len(found_singles) == len(single_ids)

    print("\nmost isolated objects (top 10):")
    ranking = rank_by_isolation(result, len(points))
    for i in ranking[:10]:
        kind = ("injected single" if i in single_ids
                else "injected pair member" if i in pair_ids
                else "catalogue object")
        print(f"  id {int(i):5d}  largest-group={int(profile[i]):3d}  ({kind})")


if __name__ == "__main__":
    main()
