"""The paper's NVO scenario: store join results compactly, serve later.

Section I motivates compact output with the National Virtual Observatory:
a federated astronomy query's partial results must be *stored* for days
until all services respond, so smaller results mean more users served.

This example simulates that pipeline:

1. an "observatory service" runs a similarity join over a sky-survey-like
   point set (galaxy positions cluster along filaments) and stores the
   result to disk — once with SSJ, once with CSJ(10);
2. days later, an "astronomer session" loads the stored files and answers
   pair queries and neighbourhood lookups from them, without recomputing
   the join — and gets identical answers from both files.

Usage::

    python examples/nvo_storage.py
"""

import os
import tempfile

import numpy as np

from repro import TextSink, build_index, csj, ssj
from repro.datasets import gaussian_clusters
from repro.io.writer import read_output, width_for


def make_sky_survey(n: int = 8_000, seed: int = 42) -> np.ndarray:
    """Galaxy positions: clusters strung along filaments."""
    rng = np.random.default_rng(seed)
    # Filament backbones: a few random great-circle-ish arcs.
    t = rng.random(n // 2)
    filaments = np.stack(
        [t, 0.5 + 0.3 * np.sin(2 * np.pi * t * 1.5)], axis=1
    ) + rng.normal(scale=0.01, size=(n // 2, 2))
    clusters = gaussian_clusters(n - n // 2, seed=seed + 1, n_clusters=12, std=0.006)
    return np.clip(np.vstack([filaments, clusters]), 0, 1)


def observatory_store(points: np.ndarray, eps: float, directory: str) -> dict:
    """Run the join both ways and store the result files."""
    tree = build_index(points)
    width = width_for(len(points))
    paths = {}
    for name, runner in (("ssj", lambda s: ssj(tree, eps, sink=s)),
                         ("csj", lambda s: csj(tree, eps, g=10, sink=s))):
        path = os.path.join(directory, f"survey_result_{name}.txt")
        with TextSink(path, id_width=width) as sink:
            runner(sink)
        paths[name] = path
    return paths


class StoredJoinResult:
    """An astronomer-side view over a stored join file.

    Answers "are galaxies i and j within eps?" and "who neighbours i?"
    directly from the stored lines — no recomputation, no expansion of
    the full link set into memory.
    """

    def __init__(self, path: str):
        links, groups, _ = read_output(path)
        self._pairs = {(min(i, j), max(i, j)) for i, j in links}
        self._groups_of: dict[int, set[int]] = {}
        self._groups = groups
        for g_idx, ids in enumerate(groups):
            for i in ids:
                self._groups_of.setdefault(i, set()).add(g_idx)

    def within_range(self, i: int, j: int) -> bool:
        if (min(i, j), max(i, j)) in self._pairs:
            return True
        shared = self._groups_of.get(i, set()) & self._groups_of.get(j, set())
        return bool(shared)

    def neighbours(self, i: int) -> set[int]:
        out = {b if a == i else a for a, b in self._pairs if i in (a, b)}
        for g_idx in self._groups_of.get(i, ()):
            out.update(self._groups[g_idx])
        out.discard(i)
        return out


def main() -> None:
    eps = 0.015
    points = make_sky_survey()
    print(f"sky survey: {len(points)} galaxies, query range {eps}")

    with tempfile.TemporaryDirectory(prefix="nvo_") as directory:
        paths = observatory_store(points, eps, directory)
        size_ssj = os.path.getsize(paths["ssj"])
        size_csj = os.path.getsize(paths["csj"])
        print(f"stored SSJ result:     {size_ssj:12,d} bytes")
        print(f"stored CSJ(10) result: {size_csj:12,d} bytes "
              f"({size_csj / size_ssj:.1%} of SSJ)")

        # --- days later: the astronomer's session -----------------------
        full = StoredJoinResult(paths["ssj"])
        compact = StoredJoinResult(paths["csj"])

        rng = np.random.default_rng(0)
        checked = agreements = 0
        for _ in range(2_000):
            i, j = rng.integers(0, len(points), 2)
            if i == j:
                continue
            checked += 1
            agreements += full.within_range(i, j) == compact.within_range(i, j)
        print(f"pair queries answered identically: {agreements}/{checked}")
        assert agreements == checked

        probe = int(rng.integers(0, len(points)))
        n_full = full.neighbours(probe)
        n_compact = compact.neighbours(probe)
        print(f"neighbourhood of galaxy {probe}: "
              f"{len(n_compact)} neighbours (both stores agree: "
              f"{n_full == n_compact})")
        assert n_full == n_compact


if __name__ == "__main__":
    main()
