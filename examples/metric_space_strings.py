"""Compact similarity joins in a general metric space (paper Section VII).

"The algorithms are equally applicable to metric space, and the gains
carry over" — this example demonstrates that claim on data with *no
coordinates at all*: strings under Levenshtein edit distance.  A noisy
product-name catalogue (think record de-duplication) contains clusters of
near-duplicate entries; the similarity join "which names are within edit
distance 2?" explodes inside each cluster, and the metric-space compact
join reports each cluster as one ball-bounded group instead.

Usage::

    python examples/metric_space_strings.py
"""

import numpy as np

from repro.core.metricspace import (
    brute_force_object_links,
    metric_similarity_join,
)


def levenshtein(a: str, b: str) -> float:
    """Classic O(|a| |b|) edit distance."""
    if len(a) < len(b):
        a, b = b, a
    prev = list(range(len(b) + 1))
    for i, ca in enumerate(a, 1):
        cur = [i]
        for j, cb in enumerate(b, 1):
            cur.append(min(prev[j] + 1, cur[-1] + 1, prev[j - 1] + (ca != cb)))
        prev = cur
    return float(prev[-1])


def make_catalogue(seed: int = 11) -> list[str]:
    """Product names with clusters of typo'd near-duplicates."""
    rng = np.random.default_rng(seed)
    canonical = [
        "espresso machine deluxe",
        "mechanical keyboard",
        "trail running shoes",
        "noise cancelling headphones",
        "stainless water bottle",
        "ergonomic office chair",
    ]
    alphabet = "abcdefghijklmnopqrstuvwxyz "
    names: list[str] = []
    for name in canonical:
        names.append(name)
        for _ in range(20):  # twenty noisy variants each
            chars = list(name)
            for _ in range(int(rng.integers(1, 3))):
                op = rng.integers(0, 3)
                pos = int(rng.integers(0, len(chars)))
                if op == 0:  # substitute
                    chars[pos] = alphabet[int(rng.integers(0, len(alphabet)))]
                elif op == 1 and len(chars) > 3:  # delete
                    del chars[pos]
                else:  # insert
                    chars.insert(pos, alphabet[int(rng.integers(0, len(alphabet)))])
            names.append("".join(chars))
    # A few entries unrelated to everything.
    names.extend(["xylophone", "quasar telescope mount"])
    return names


def main() -> None:
    names = make_catalogue()
    eps = 4.0  # within edit distance < 4 counts as "the same product"
    print(f"catalogue: {len(names)} product names, edit-distance range {eps}")

    result = metric_similarity_join(
        names, eps, levenshtein, g=10, max_entries=8, name="levenshtein"
    )
    truth = brute_force_object_links(names, eps, levenshtein)

    print(f"qualifying pairs (ground truth): {len(truth):,d}")
    print(f"compact output: {result.stats.groups_emitted} groups + "
          f"{result.stats.links_emitted} residual links = "
          f"{result.output_bytes:,d} bytes "
          f"(pair-per-line output would be {len(truth) * 8:,d} bytes)")
    assert result.expanded_links() == truth
    print("losslessness verified against the brute-force edit-distance join")

    print("\nlargest duplicate groups:")
    for ids in sorted(result.groups, key=len, reverse=True)[:3]:
        sample = [names[i] for i in ids[:3]]
        print(f"  {len(ids):3d} names, e.g. {sample}")


if __name__ == "__main__":
    main()
