"""Quickstart: compact similarity joins in five minutes.

Runs the paper's Figure 1 example, then a realistic clustered dataset,
comparing the standard join (SSJ) against the compact joins (N-CSJ and
CSJ(10)) on output size and verifying losslessness.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    build_index,
    check_equivalence,
    csj,
    ncsj,
    similarity_join,
    ssj,
)
from repro.datasets import gaussian_clusters


def figure_1_walkthrough() -> None:
    """The paper's Figure 1: 8 links compacted to 3 lines, losslessly."""
    print("=" * 64)
    print("Figure 1 walk-through")
    print("=" * 64)
    points = np.array(
        [
            [0.10, 0.12],  # 1 \
            [0.13, 0.10],  # 2  } a dense 4-clique
            [0.11, 0.15],  # 3  }
            [0.14, 0.14],  # 4 /   ... 4 also links to:
            [0.18, 0.16],  # 5
            [0.60, 0.60],  # 6 \  an isolated pair
            [0.63, 0.62],  # 7 /
        ]
    )
    eps = 0.07
    standard = similarity_join(points, eps, algorithm="ssj", max_entries=4)
    compact = similarity_join(points, eps, algorithm="csj", g=10, max_entries=4)

    print(f"standard join: {len(standard.links)} links, "
          f"{standard.output_bytes} bytes")
    for link in sorted(standard.links):
        print(f"  link  {link}")
    lines = compact.stats.groups_emitted + compact.stats.links_emitted
    print(f"compact join:  {lines} output lines, {compact.output_bytes} bytes")
    for group in compact.groups:
        print(f"  group {group}")
    for link in sorted(compact.links):
        print(f"  link  {link}")
    saving = 1 - compact.output_bytes / standard.output_bytes
    lossless = compact.expanded_links() == standard.expanded_links()
    print(f"space saving: {saving:.0%}   lossless: {lossless}")


def clustered_comparison() -> None:
    """SSJ vs N-CSJ vs CSJ(10) on an output-explosion-prone dataset."""
    print()
    print("=" * 64)
    print("Clustered data: 5,000 points in 20 tight clusters, eps = 0.02")
    print("=" * 64)
    points = gaussian_clusters(5_000, seed=7, n_clusters=20, std=0.008)
    eps = 0.02
    tree = build_index(points)  # build once, join many times

    results = {
        "SSJ": ssj(tree, eps),
        "N-CSJ": ncsj(tree, eps),
        "CSJ(10)": csj(tree, eps, g=10),
    }
    print(f"{'algorithm':10s} {'links':>9s} {'groups':>8s} "
          f"{'bytes':>12s} {'vs SSJ':>8s}")
    base = results["SSJ"].output_bytes
    for name, result in results.items():
        ratio = result.output_bytes / base
        print(f"{name:10s} {result.stats.links_emitted:9d} "
              f"{result.stats.groups_emitted:8d} "
              f"{result.output_bytes:12d} {ratio:8.1%}")

    # Theorems 1 and 2, verified against an O(n^2) ground truth.
    report = check_equivalence(points, eps, results["CSJ(10)"])
    print(f"\nlossless check vs brute force: {report!r}")
    report.raise_if_failed()


if __name__ == "__main__":
    figure_1_walkthrough()
    clustered_comparison()
