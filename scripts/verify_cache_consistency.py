#!/usr/bin/env python
"""Cache-consistency gate: caching must never change a single byte.

Drives the serving layer through a repeat-heavy workload interleaved
with dataset churn (point inserts/deletes through the incremental
maintenance layer) twice — once with the ε-keyed result cache enabled,
once without — and verifies the caching contract:

* **byte-identical serving** — every admitted answer from the cached
  service equals the uncached service's answer *and* an offline rerun:
  same links, groups and byte count, for every dataset state;
* **hits skip the descent** — the cached service ends the workload with
  strictly fewer distance computations than the uncached one, and its
  ``repro_cache_hits_total`` matches the expected repeat count;
* **hit-rate floor** — hits / (hits + misses) must reach ``--min-hit-rate``
  (the workload repeats each unique request, so a healthy cache hits on
  every repeat);
* **churn invalidates honestly** — after updates change the dataset
  fingerprint, the stale state is never served as fresh: the first
  request against the new state is a miss, and the incrementally
  maintained join it is checked against stays expansion-equivalent to
  brute force;
* **budgets hold** — cache occupancy respects the byte budget
  throughout, and an invalidated entry downgrades to a stale-marked
  brownout answer rather than a fresh hit.

Exit 0 when every check passes, 1 otherwise.  ``--json`` writes the
full report for CI artifact upload.

Usage::

    PYTHONPATH=src python scripts/verify_cache_consistency.py
        [--n 400] [--seed 0] [--repeats 4] [--churn 40]
        [--min-hit-rate 0.6] [--json report.json]
"""

import argparse
import json
import sys

import numpy as np

from repro.api import maintained_join, similarity_join
from repro.core.bruteforce import brute_force_links
from repro.obs.metrics import get_registry, reset_registry
from repro.service import JoinRequest, JoinService, ServiceConfig


def check(report, name, ok, detail=""):
    report["checks"].append({"name": name, "ok": bool(ok), "detail": detail})
    print(f"  {'ok  ' if ok else 'FAIL'} {name}" + (f"  ({detail})" if detail else ""))
    return bool(ok)


def result_signature(result):
    """The byte-identity projection of a join result."""
    return (
        sorted(result.links),
        sorted(tuple(ids) for ids in result.groups),
        result.output_bytes,
    )


def build_workload(args):
    """Dataset states (via churn) and the request sequence over them.

    Returns ``(states, sequence)``: each state is a point array, each
    sequence item ``(state_index, eps, g)``.  Every unique combination
    appears ``--repeats`` times so a healthy cache hits on all repeats.
    """
    rng = np.random.default_rng(args.seed)
    pts = rng.random((args.n, 2))

    # Churn the dataset through the maintenance layer to produce the
    # second state; verify the maintained join against brute force on
    # the way (the cache key's fingerprint must track these updates).
    maintained = maintained_join(pts, eps=args.eps, g=10)
    for step in range(args.churn):
        if step % 2 == 0:
            live = maintained.live_ids()
            maintained.delete(live[int(rng.integers(len(live)))])
        else:
            maintained.insert(rng.random(2))
    live = maintained.live_ids()
    churned = np.ascontiguousarray(
        maintained.tree.points[np.asarray(live, dtype=np.intp)]
    )

    expected = {
        tuple(sorted((live.index(i), live.index(j))))
        for i, j in maintained.expanded_links()
    }
    churn_ok = expected == brute_force_links(churned, args.eps)

    states = [pts, churned]
    combos = [
        (0, args.eps, 10),
        (0, args.eps * 2, 10),
        (0, args.eps, 0),
        (1, args.eps, 10),
        (1, args.eps * 2, 10),
    ]
    sequence = [combo for combo in combos for _ in range(args.repeats)]
    return states, combos, sequence, churn_ok


def run_service(states, sequence, cache_bytes):
    """Serve the whole sequence; returns (answers, metrics snapshot, cache)."""
    reset_registry()
    service = JoinService(
        ServiceConfig(queue_depth=8, cache_bytes=cache_bytes)
    )
    answers = []
    try:
        for state_idx, eps, g in sequence:
            outcome = service.submit(
                JoinRequest(points=states[state_idx], eps=eps, g=g)
            ).wait(60.0)
            answers.append(outcome)
        cache = service.cache
        bytes_used = cache.bytes_used if cache is not None else 0
        max_bytes = cache.max_bytes if cache is not None else 0
    finally:
        service.close()
    return answers, get_registry().snapshot(), bytes_used, max_bytes


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=400)
    parser.add_argument("--eps", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=4)
    parser.add_argument("--churn", type=int, default=40)
    parser.add_argument("--min-hit-rate", type=float, default=0.6)
    parser.add_argument("--cache-bytes", type=int, default=1 << 20)
    parser.add_argument("--json", dest="json_path", default=None)
    args = parser.parse_args()

    report = {"args": vars(args).copy(), "checks": []}
    ok = True

    print("cache-consistency gate")
    states, combos, sequence, churn_ok = build_workload(args)
    ok &= check(
        report,
        "churned maintained join is expansion-equivalent to brute force",
        churn_ok,
        f"{args.churn} updates",
    )

    # Offline ground truth, one cold run per unique request.
    truth = {
        (idx, eps, g): result_signature(
            similarity_join(states[idx], eps, algorithm="csj", g=g)
        )
        for idx, eps, g in combos
    }

    cached, cached_snap, bytes_used, max_bytes = run_service(
        states, sequence, cache_bytes=args.cache_bytes
    )
    uncached, uncached_snap, _, _ = run_service(states, sequence, cache_bytes=0)

    all_admitted = all(o.status == "admitted" for o in cached + uncached)
    ok &= check(report, "every request admitted", all_admitted)

    identical = 0
    for (idx_eps_g, a, b) in zip(sequence, cached, uncached):
        sig_a = result_signature(a.result)
        sig_b = result_signature(b.result)
        if sig_a == sig_b == truth[idx_eps_g]:
            identical += 1
    ok &= check(
        report,
        "cache-on answers byte-identical to cache-off and offline",
        identical == len(sequence),
        f"{identical}/{len(sequence)} requests",
    )

    hits = cached_snap.get("repro_cache_hits_total", 0)
    misses = cached_snap.get("repro_cache_misses_total", 0)
    expected_hits = len(sequence) - len(combos)
    ok &= check(
        report,
        "every repeat hits the cache",
        hits == expected_hits and misses == len(combos),
        f"hits={hits} misses={misses} expected={expected_hits}/{len(combos)}",
    )
    rate = hits / max(1, hits + misses)
    report["hit_rate"] = rate
    ok &= check(
        report,
        f"hit rate >= {args.min_hit_rate}",
        rate >= args.min_hit_rate,
        f"{rate:.3f}",
    )

    descents_on = cached_snap.get("repro_join_distance_computations_total", 0)
    descents_off = uncached_snap.get("repro_join_distance_computations_total", 0)
    ok &= check(
        report,
        "cache hits skip the tree descent",
        0 < descents_on < descents_off,
        f"distance computations {descents_on} vs {descents_off}",
    )
    ok &= check(
        report,
        "uncached service never counts cache traffic",
        uncached_snap.get("repro_cache_hits_total", 0) == 0
        and uncached_snap.get("repro_cache_misses_total", 0) == 0,
    )
    ok &= check(
        report,
        "cache occupancy within byte budget",
        0 < bytes_used <= max_bytes,
        f"{bytes_used}/{max_bytes} bytes",
    )

    # Invalidation: the stale entry must stop exact-hitting and may only
    # come back stale-marked through the brownout ladder.
    reset_registry()
    service = JoinService(ServiceConfig(queue_depth=8, cache_bytes=args.cache_bytes))
    try:
        fresh = service.submit(
            JoinRequest(points=states[0], eps=args.eps, g=10)
        ).wait(60.0)
        service.cache.invalidate()
        stale = service.submit(
            JoinRequest(points=states[0], eps=args.eps, g=10, deadline_seconds=1e-9)
        ).wait(60.0)
    finally:
        service.close()
    ok &= check(
        report,
        "invalidated entry serves only as stale-marked brownout answer",
        fresh.status == "admitted"
        and stale.status == "degraded"
        and stale.result.stale
        and not stale.result.estimated
        and result_signature(stale.result) == result_signature(fresh.result),
        f"fresh={fresh.status} stale={stale.status}",
    )

    report["ok"] = bool(ok)
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json_path}")
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
