#!/usr/bin/env python
"""Fault-injection demos: crash a join, recover it, verify exactness.

Three scenarios, selected with ``--scenario``:

``sink`` (default)
    The original demo: a checkpointed serial join whose sink fails on a
    seeded schedule — every crash is survived by resuming from the
    journal.

``worker``
    A parallel join whose worker processes are SIGKILLed on chosen
    tasks; the supervisor respawns them and retries, and the output is
    still byte-identical to the serial run.

``pool``
    The hardest case: a checkpointed *parallel* join is SIGKILLed as a
    whole process group mid-run (supervisor and workers all die at
    once), then resumed with a *different* worker count — and the
    recovered file is byte-identical to the uninterrupted reference.

``disk``
    The disk fills mid-join (an injected ``ENOSPC`` at the sink).  The
    retry wrapper classifies the errno and fails *fast* with
    :class:`~repro.errors.DiskFullError` (exit code 8) instead of
    burning its retry budget on an unfixable error — leaving the
    checkpoint journal resumable.  "Space is freed", the run resumes,
    and the output is byte-identical.

Every scenario ends with the same verification pass: byte-identical
output and an expanded link set equal to the brute-force join
(Theorems 1 and 2 across a crash).

Usage::

    PYTHONPATH=src python scripts/chaos_demo.py
        [--scenario sink|worker|pool|disk] [--seed 7] [--n 2000]
"""

import argparse
import filecmp
import os
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.api import similarity_join
from repro.core.results import TextSink
from repro.core.verify import brute_force_links
from repro.io.writer import width_for
from repro.resilience.chaos import FailurePlan, FlakySink, FlakyWorker
from repro.resilience.checkpoint import CheckpointedJoin


def _reference_run(pts, eps, path):
    sink = TextSink(path, id_width=width_for(len(pts)))
    similarity_join(pts, eps, algorithm="csj", g=10, sink=sink)
    sink.close()
    print(f"reference run  : {os.path.getsize(path)} bytes -> {path}")


def _verify(pts, eps, reference, recovered, result):
    identical = filecmp.cmp(reference, recovered, shallow=False)
    exact = brute_force_links(pts, eps)
    lossless = result.expanded_links() == exact
    print(f"byte-identical : {identical}")
    print(f"links lossless : {lossless} ({len(exact)} pairs vs brute force)")
    if identical and lossless:
        print("PASS: recovery is exact")
        return 0
    print("FAIL: recovered output diverges")
    return 1


def _scenario_sink(args, pts, reference, recovered):
    """Seeded sink failures in a serial checkpointed run."""
    crashes = 0
    while True:
        plan = FailurePlan(seed=args.seed + crashes, rate=args.rate)
        job = CheckpointedJoin(
            pts, args.eps, recovered, algorithm="csj", g=10, cadence=64,
            sink_wrapper=lambda inner: FlakySink(inner, plan),
        )
        try:
            result = job.run(resume=crashes > 0)
            break
        except OSError as exc:
            crashes += 1
            print(f"  crash #{crashes:<2d}     : {exc} -- resuming")
            if crashes >= 200:
                print("chaos run      : FAILED (no forward progress)")
                return 1
    print(f"chaos run      : survived {crashes} injected crash(es)")
    return _verify(pts, args.eps, reference, recovered, result)


def _scenario_worker(args, pts, reference, recovered):
    """SIGKILL individual workers mid-task; the supervisor recovers."""
    from repro.parallel import parallel_join

    fault = FlakyWorker(kill_at=(1, 3), seed=args.seed, max_failures=2)
    sink = TextSink(recovered, id_width=width_for(len(pts)))
    result = parallel_join(
        pts, args.eps, algorithm="csj", g=10, workers=2, sink=sink,
        fault=fault,
    )
    sink.close()
    print("chaos run      : workers SIGKILLed on tasks 1 and 3; "
          "pool respawned and retried")
    return _verify(pts, args.eps, reference, recovered, result)


def _scenario_pool(args, pts, reference, recovered):
    """SIGKILL the whole pool mid-run; resume with fewer workers."""
    journal = recovered + ".journal"
    code = (
        "import numpy as np\n"
        "from repro.resilience.checkpoint import CheckpointedJoin\n"
        f"pts = np.random.default_rng({args.seed}).random(({args.n}, 2))\n"
        f"CheckpointedJoin(pts, {args.eps}, {recovered!r}, algorithm='csj',"
        " g=10, cadence=4, workers=4).run()\n"
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", code],
        env=dict(os.environ),
        preexec_fn=os.setsid,  # own process group: one SIGKILL nukes all
    )
    # Wait for the first durable checkpoint record, then kill everything.
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            break
        if os.path.exists(journal):
            with open(journal) as f:
                if sum(1 for _ in f) >= 2:  # header + at least one ckpt
                    break
        time.sleep(0.002)
    if proc.poll() is None:
        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
        proc.wait()
        print("chaos run      : pool of 4 workers SIGKILLed mid-join "
              "(supervisor and workers died together)")
    else:
        print("chaos run      : pool finished before the kill landed "
              "(resume below is a no-op)")
    result = CheckpointedJoin(
        pts, args.eps, recovered, algorithm="csj", g=10, cadence=4, workers=2,
    ).run(resume=True)
    print("resume         : journal replayed, finished with 2 workers")
    return _verify(pts, args.eps, reference, recovered, result)


def _scenario_disk(args, pts, reference, recovered):
    """ENOSPC mid-join: fail fast with exit code 8, resume after 'cleanup'."""
    import errno

    from repro.errors import DiskFullError
    from repro.resilience.sinks import RetryingSink

    plan = FailurePlan(
        seed=args.seed, fail_at=(40,), errno=errno.ENOSPC, max_failures=1
    )

    def wrapper(inner):
        return RetryingSink(
            FlakySink(inner, plan), max_retries=4, sleep=lambda _s: None
        )

    job_kwargs = dict(algorithm="csj", g=10, cadence=16, sink_wrapper=wrapper)
    try:
        CheckpointedJoin(pts, args.eps, recovered, **job_kwargs).run()
        print("chaos run      : FAILED (the injected ENOSPC never fired)")
        return 1
    except DiskFullError as exc:
        print(f"disk full      : {exc}")
        print(f"exit code      : {exc.exit_code} (typed; errno="
              f"{errno.errorcode.get(exc.errno, exc.errno)}; "
              "0 retries burned)")
    print("cleanup        : space freed; resuming from the journal")
    result = CheckpointedJoin(pts, args.eps, recovered, **job_kwargs).run(
        resume=True
    )
    return _verify(pts, args.eps, reference, recovered, result)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="sink",
                        choices=["sink", "worker", "pool", "disk"],
                        help="which failure mode to inject")
    parser.add_argument("--seed", type=int, default=7, help="chaos seed")
    parser.add_argument("--n", type=int, default=2000, help="points")
    parser.add_argument("--eps", type=float, default=0.03, help="query range")
    parser.add_argument("--rate", type=float, default=0.003,
                        help="per-write failure probability (sink scenario)")
    args = parser.parse_args()

    pts = np.random.default_rng(args.seed).random((args.n, 2))
    workdir = tempfile.mkdtemp(prefix="chaos_demo_")
    reference = os.path.join(workdir, "reference.txt")
    recovered = os.path.join(workdir, "recovered.txt")

    print(f"scenario       : {args.scenario}")
    print(f"dataset        : {args.n} uniform points, eps={args.eps:g}")
    _reference_run(pts, args.eps, reference)

    runner = {
        "sink": _scenario_sink,
        "worker": _scenario_worker,
        "pool": _scenario_pool,
        "disk": _scenario_disk,
    }[args.scenario]
    return runner(args, pts, reference, recovered)


if __name__ == "__main__":
    sys.exit(main())
