#!/usr/bin/env python
"""Fault-injection demo: crash a checkpointed join, resume it, verify.

Runs the compact similarity join three times over the same data:

1. an uninterrupted reference run writing the paper's text output;
2. a checkpointed run whose sink fails on a seeded schedule — every
   crash is survived by resuming from the journal;
3. a verification pass proving the recovered file is byte-identical to
   the reference and that its expanded link set equals the brute-force
   join (Theorems 1 and 2 across a crash).

Usage::

    PYTHONPATH=src python scripts/chaos_demo.py [--seed 7] [--n 2000]
"""

import argparse
import filecmp
import os
import sys
import tempfile

import numpy as np

from repro.api import similarity_join
from repro.core.results import TextSink
from repro.core.verify import brute_force_links
from repro.io.writer import width_for
from repro.resilience.chaos import FailurePlan, FlakySink
from repro.resilience.checkpoint import CheckpointedJoin


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7, help="chaos seed")
    parser.add_argument("--n", type=int, default=2000, help="points")
    parser.add_argument("--eps", type=float, default=0.03, help="query range")
    parser.add_argument("--rate", type=float, default=0.003,
                        help="per-write failure probability")
    args = parser.parse_args()

    pts = np.random.default_rng(args.seed).random((args.n, 2))
    workdir = tempfile.mkdtemp(prefix="chaos_demo_")
    reference = os.path.join(workdir, "reference.txt")
    recovered = os.path.join(workdir, "recovered.txt")

    print(f"dataset        : {args.n} uniform points, eps={args.eps:g}")

    # 1 -- uninterrupted reference run
    sink = TextSink(reference, id_width=width_for(args.n))
    similarity_join(pts, args.eps, algorithm="csj", g=10, sink=sink)
    sink.close()
    print(f"reference run  : {os.path.getsize(reference)} bytes "
          f"-> {reference}")

    # 2 -- chaos run: seeded sink failures, resume after every crash
    crashes = 0
    while True:
        plan = FailurePlan(seed=args.seed + crashes, rate=args.rate)
        job = CheckpointedJoin(
            pts, args.eps, recovered, algorithm="csj", g=10, cadence=64,
            sink_wrapper=lambda inner: FlakySink(inner, plan),
        )
        try:
            result = job.run(resume=crashes > 0)
            break
        except OSError as exc:
            crashes += 1
            print(f"  crash #{crashes:<2d}     : {exc} -- resuming")
            if crashes >= 200:
                print("chaos run      : FAILED (no forward progress)")
                return 1
    print(f"chaos run      : survived {crashes} injected crash(es)")

    # 3 -- verify losslessness across all those crashes
    identical = filecmp.cmp(reference, recovered, shallow=False)
    exact = brute_force_links(pts, args.eps)
    lossless = result.expanded_links() == exact
    print(f"byte-identical : {identical}")
    print(f"links lossless : {lossless} "
          f"({len(exact)} pairs vs brute force)")
    if identical and lossless:
        print("PASS: recovery is exact")
        return 0
    print("FAIL: recovered output diverges")
    return 1


if __name__ == "__main__":
    sys.exit(main())
