#!/usr/bin/env python
"""Fault-injection demos: crash a join, recover it, verify exactness.

Three scenarios, selected with ``--scenario``:

``sink`` (default)
    The original demo: a checkpointed serial join whose sink fails on a
    seeded schedule — every crash is survived by resuming from the
    journal.

``worker``
    A parallel join whose worker processes are SIGKILLed on chosen
    tasks; the supervisor respawns them and retries, and the output is
    still byte-identical to the serial run.

``pool``
    The hardest case: a checkpointed *parallel* join is SIGKILLed as a
    whole process group mid-run (supervisor and workers all die at
    once), then resumed with a *different* worker count — and the
    recovered file is byte-identical to the uninterrupted reference.

``disk``
    The disk fills mid-join (an injected ``ENOSPC`` at the sink).  The
    retry wrapper classifies the errno and fails *fast* with
    :class:`~repro.errors.DiskFullError` (exit code 8) instead of
    burning its retry budget on an unfixable error — leaving the
    checkpoint journal resumable.  "Space is freed", the run resumes,
    and the output is byte-identical.

``overload``
    A different failure axis: a seeded request storm at 4x the serving
    layer's capacity.  The bounded queue sheds typed
    (:class:`~repro.errors.AdmissionRejectedError`, exit code 9),
    pressure degrades requests to estimator answers marked
    ``degraded=True``, an injected pool failure trips the circuit
    breaker (:class:`~repro.errors.CircuitOpenError`, exit code 10),
    and a post-cooldown probe heals it.

Every recovery scenario ends with the same verification pass:
byte-identical output and an expanded link set equal to the brute-force
join (Theorems 1 and 2 across a crash).  The overload scenario instead
verifies the serving contract: one typed outcome per request, bounded
queue, healed breaker.

Usage::

    PYTHONPATH=src python scripts/chaos_demo.py
        [--scenario sink|worker|pool|disk|overload] [--seed 7] [--n 2000]
"""

import argparse
import filecmp
import os
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.api import similarity_join
from repro.core.results import TextSink
from repro.core.verify import brute_force_links
from repro.io.writer import width_for
from repro.resilience.chaos import FailurePlan, FlakySink, FlakyWorker
from repro.resilience.checkpoint import CheckpointedJoin


def _reference_run(pts, eps, path):
    sink = TextSink(path, id_width=width_for(len(pts)))
    similarity_join(pts, eps, algorithm="csj", g=10, sink=sink)
    sink.close()
    print(f"reference run  : {os.path.getsize(path)} bytes -> {path}")


def _verify(pts, eps, reference, recovered, result):
    identical = filecmp.cmp(reference, recovered, shallow=False)
    exact = brute_force_links(pts, eps)
    lossless = result.expanded_links() == exact
    print(f"byte-identical : {identical}")
    print(f"links lossless : {lossless} ({len(exact)} pairs vs brute force)")
    if identical and lossless:
        print("PASS: recovery is exact")
        return 0
    print("FAIL: recovered output diverges")
    return 1


def _scenario_sink(args, pts, reference, recovered):
    """Seeded sink failures in a serial checkpointed run."""
    crashes = 0
    while True:
        plan = FailurePlan(seed=args.seed + crashes, rate=args.rate)
        job = CheckpointedJoin(
            pts, args.eps, recovered, algorithm="csj", g=10, cadence=64,
            sink_wrapper=lambda inner: FlakySink(inner, plan),
        )
        try:
            result = job.run(resume=crashes > 0)
            break
        except OSError as exc:
            crashes += 1
            print(f"  crash #{crashes:<2d}     : {exc} -- resuming")
            if crashes >= 200:
                print("chaos run      : FAILED (no forward progress)")
                return 1
    print(f"chaos run      : survived {crashes} injected crash(es)")
    return _verify(pts, args.eps, reference, recovered, result)


def _scenario_worker(args, pts, reference, recovered):
    """SIGKILL individual workers mid-task; the supervisor recovers."""
    from repro.parallel import parallel_join

    fault = FlakyWorker(kill_at=(1, 3), seed=args.seed, max_failures=2)
    sink = TextSink(recovered, id_width=width_for(len(pts)))
    result = parallel_join(
        pts, args.eps, algorithm="csj", g=10, workers=2, sink=sink,
        fault=fault,
    )
    sink.close()
    print("chaos run      : workers SIGKILLed on tasks 1 and 3; "
          "pool respawned and retried")
    return _verify(pts, args.eps, reference, recovered, result)


def _scenario_pool(args, pts, reference, recovered):
    """SIGKILL the whole pool mid-run; resume with fewer workers."""
    journal = recovered + ".journal"
    code = (
        "import numpy as np\n"
        "from repro.resilience.checkpoint import CheckpointedJoin\n"
        f"pts = np.random.default_rng({args.seed}).random(({args.n}, 2))\n"
        f"CheckpointedJoin(pts, {args.eps}, {recovered!r}, algorithm='csj',"
        " g=10, cadence=4, workers=4).run()\n"
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", code],
        env=dict(os.environ),
        preexec_fn=os.setsid,  # own process group: one SIGKILL nukes all
    )
    # Wait for the first durable checkpoint record, then kill everything.
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            break
        if os.path.exists(journal):
            with open(journal) as f:
                if sum(1 for _ in f) >= 2:  # header + at least one ckpt
                    break
        time.sleep(0.002)
    if proc.poll() is None:
        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
        proc.wait()
        print("chaos run      : pool of 4 workers SIGKILLed mid-join "
              "(supervisor and workers died together)")
    else:
        print("chaos run      : pool finished before the kill landed "
              "(resume below is a no-op)")
    result = CheckpointedJoin(
        pts, args.eps, recovered, algorithm="csj", g=10, cadence=4, workers=2,
    ).run(resume=True)
    print("resume         : journal replayed, finished with 2 workers")
    return _verify(pts, args.eps, reference, recovered, result)


def _scenario_disk(args, pts, reference, recovered):
    """ENOSPC mid-join: fail fast with exit code 8, resume after 'cleanup'."""
    import errno

    from repro.errors import DiskFullError
    from repro.resilience.sinks import RetryingSink

    plan = FailurePlan(
        seed=args.seed, fail_at=(40,), errno=errno.ENOSPC, max_failures=1
    )

    def wrapper(inner):
        return RetryingSink(
            FlakySink(inner, plan), max_retries=4, sleep=lambda _s: None
        )

    job_kwargs = dict(algorithm="csj", g=10, cadence=16, sink_wrapper=wrapper)
    try:
        CheckpointedJoin(pts, args.eps, recovered, **job_kwargs).run()
        print("chaos run      : FAILED (the injected ENOSPC never fired)")
        return 1
    except DiskFullError as exc:
        print(f"disk full      : {exc}")
        print(f"exit code      : {exc.exit_code} (typed; errno="
              f"{errno.errorcode.get(exc.errno, exc.errno)}; "
              "0 retries burned)")
    print("cleanup        : space freed; resuming from the journal")
    result = CheckpointedJoin(pts, args.eps, recovered, **job_kwargs).run(
        resume=True
    )
    return _verify(pts, args.eps, reference, recovered, result)


def _scenario_overload(args, pts, reference, recovered):
    """Request storm at 4x capacity: shed typed (exit code 9), degrade
    marked, breaker opens on injected failures (exit code 10), heals."""
    from repro.errors import AdmissionRejectedError, CircuitOpenError
    from repro.resilience.chaos import OverloadInjector
    from repro.service import JoinRequest, JoinService, ServiceConfig

    chaos = OverloadInjector(args.seed, slow_every=3, slow_seconds=0.03,
                             fail_at=(0,), failure="pool")
    config = ServiceConfig(queue_depth=3, default_deadline=5.0,
                           breaker_threshold=1, breaker_cooldown_base=0.02,
                           breaker_cooldown_max=0.1, seed=args.seed)
    base = pts[:600]
    service = JoinService(config, chaos=chaos)
    total = 0
    try:
        # Phase 1: a storm at 4x capacity -- bounded queue sheds, typed.
        # Request 0 carries the chaos pool-failure mark; it is held back
        # for phase 3 so the breaker trip is isolated from the storm.
        full = chaos.storm(base, args.eps * 2, requests=16,
                           deadline_seconds=5.0)
        storm = full[1:]
        outcomes = service.serve(storm)
        total += len(storm)
        print(f"storm          : {len(storm)} requests vs queue bound "
              f"{config.queue_depth} + 1 executor (4x capacity)")
        for outcome in outcomes:
            extra = ""
            if outcome.status == "shed":
                extra = (f" (AdmissionRejectedError, exit code "
                         f"{AdmissionRejectedError.exit_code}, "
                         f"Retry-After {outcome.retry_after:.2f}s)")
            elif outcome.status == "degraded":
                extra = " (estimator answer, degraded=True)"
            print(f"  {outcome.request_id:<12s}: {outcome.status}{extra}")
        print(f"peak queue     : {service.peak_queue}/{config.queue_depth}")

        # Phase 2: an impossible deadline -- degrade, never fail.
        hopeless = service.submit(
            JoinRequest(points=base, eps=args.eps * 2, deadline_seconds=1e-6,
                        request_id="hopeless")
        ).wait(60.0)
        total += 1
        print(f"tight deadline : {hopeless.request_id} -> {hopeless.status} "
              f"(estimator answer, degraded=True, "
              f"~{hopeless.result.stats.links_emitted} links predicted)")

        # Phase 3: the chaos-marked request fails the pool -- the
        # breaker opens, the next request fails fast, a probe heals it.
        tripped = service.submit(full[0]).wait(60.0)
        total += 1
        print(f"pool failure   : {tripped.request_id} -> {tripped.status} "
              f"(dependency down; circuit {service.pool_breaker.state})")
        fast = None
        try:
            service.submit(JoinRequest(points=base, eps=args.eps * 2,
                                       request_id="while-open"))
        except CircuitOpenError as exc:
            fast = exc
            total += 1
        print(f"while open     : while-open -> breaker_open "
              f"(CircuitOpenError, exit code {CircuitOpenError.exit_code}, "
              f"Retry-After {fast.retry_after:.2f}s)" if fast else
              "while open     : MISSING fast failure")
        time.sleep(0.3)  # let the cooldown expire
        probe = service.submit(
            JoinRequest(points=base, eps=args.eps * 2, request_id="probe")
        ).wait(60.0)
        total += 1
        print(f"breaker probe  : {probe.status} "
              f"(circuit {service.pool_breaker.state})")
        counts = service.counts()
    finally:
        service.close()
    print(f"outcomes       : {counts}")
    one_each = sum(counts.values()) == total
    bounded = service.peak_queue <= config.queue_depth
    ladder_ok = (counts["shed"] > 0 and counts["degraded"] >= 2
                 and counts["breaker_open"] == 1 and counts["failed"] == 0)
    healed = probe.status == "admitted" and fast is not None
    if one_each and bounded and ladder_ok and healed:
        print("PASS: bounded queue, typed outcomes, breaker healed")
        return 0
    print("FAIL: overload contract violated")
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="sink",
                        choices=["sink", "worker", "pool", "disk", "overload"],
                        help="which failure mode to inject")
    parser.add_argument("--seed", type=int, default=7, help="chaos seed")
    parser.add_argument("--n", type=int, default=2000, help="points")
    parser.add_argument("--eps", type=float, default=0.03, help="query range")
    parser.add_argument("--rate", type=float, default=0.003,
                        help="per-write failure probability (sink scenario)")
    args = parser.parse_args()

    pts = np.random.default_rng(args.seed).random((args.n, 2))
    workdir = tempfile.mkdtemp(prefix="chaos_demo_")
    reference = os.path.join(workdir, "reference.txt")
    recovered = os.path.join(workdir, "recovered.txt")

    print(f"scenario       : {args.scenario}")
    print(f"dataset        : {args.n} uniform points, eps={args.eps:g}")
    if args.scenario != "overload":
        # The overload scenario verifies serving outcomes, not recovery
        # of one long run; it needs no offline reference file.
        _reference_run(pts, args.eps, reference)

    runner = {
        "sink": _scenario_sink,
        "worker": _scenario_worker,
        "pool": _scenario_pool,
        "disk": _scenario_disk,
        "overload": _scenario_overload,
    }[args.scenario]
    return runner(args, pts, reference, recovered)


if __name__ == "__main__":
    sys.exit(main())
