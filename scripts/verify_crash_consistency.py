#!/usr/bin/env python
"""Crash-consistency gate: explore every post-crash disk state, verify recovery.

For each cell of a (algorithm × sink-protocol) matrix this script runs a
small join under the interposing filesystem
(:class:`~repro.resilience.vfs.TraceFS`), records the complete durable
write-op trace, reconstructs every legal post-crash disk state the trace
admits (op prefixes × {full, durable, torn} — see
:mod:`repro.resilience.crashsim`), and runs the component's recovery
path on each state:

* ``checkpoint`` — :class:`CheckpointedJoin` resume must reproduce the
  uninterrupted run's output byte-for-byte from every state (falling
  back to a typed-and-detected fresh restart when the crash predates a
  resumable journal);
* ``atomic`` — :class:`AtomicTextSink`'s destination must hold the old
  content or the complete new output in every state, never a torn
  hybrid.

An index-persistence workload (atomic :func:`save_index` /
:func:`load_index` round trip) rides along.  The run fails — exit 1 —
if any state recovers wrongly, or if fewer than ``--min-states``
distinct disk states were explored in total (a regression in trace
coverage is also a bug).

Usage::

    PYTHONPATH=src python scripts/verify_crash_consistency.py
        [--n 48] [--eps 0.15] [--max-states-per-cell 80]
        [--min-states 200] [--workers 0] [--json report.json]
"""

import argparse
import json
import sys

import numpy as np

from repro.resilience.crashsim import (
    verify_atomic_sink,
    verify_checkpointed_join,
    verify_index_save,
)

ALGORITHMS = ("ssj", "csj", "egrid")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=48, help="points per run")
    parser.add_argument("--eps", type=float, default=0.15, help="query range")
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")
    parser.add_argument("--cadence", type=int, default=2,
                        help="checkpoint cadence (small = many barriers)")
    parser.add_argument("--max-states-per-cell", type=int, default=80,
                        help="cap on states verified per matrix cell")
    parser.add_argument("--min-states", type=int, default=200,
                        help="fail if fewer distinct states explored in total")
    parser.add_argument("--workers", type=int, default=0,
                        help="also run one checkpointed cell with this many "
                             "workers (0 = serial only)")
    parser.add_argument("--json", default=None,
                        help="write the report as JSON to this path")
    args = parser.parse_args()

    pts = np.random.default_rng(args.seed).random((args.n, 2))
    reports = []

    import tempfile

    def run(label, fn, **kwargs):
        with tempfile.TemporaryDirectory(prefix="crashgate_") as workdir:
            report = fn(workdir=workdir, max_states=args.max_states_per_cell,
                        **kwargs)
        reports.append(report)
        status = "ok" if report.ok else "FAIL"
        print(f"{label:<28s} ops={report.ops:<5d} "
              f"states={report.states_verified:<4d} "
              f"resume={report.recovered_resume:<4d} "
              f"restart={report.recovered_restart:<3d} {status}")
        for failure in report.failures:
            print(f"    {failure}")

    print(f"dataset: {args.n} uniform points (seed {args.seed}), "
          f"eps={args.eps:g}\n")
    for algorithm in ALGORITHMS:
        run(f"checkpoint/{algorithm}", verify_checkpointed_join,
            points=pts, eps=args.eps, algorithm=algorithm,
            cadence=args.cadence)
        run(f"atomic-sink/{algorithm}", verify_atomic_sink,
            points=pts, eps=args.eps, algorithm=algorithm)
    if args.workers > 1:
        run(f"checkpoint/csj@w{args.workers}", verify_checkpointed_join,
            points=pts, eps=args.eps, algorithm="csj",
            cadence=args.cadence, workers=args.workers)
    run("index-save/rstar", verify_index_save, points=pts)

    total_states = sum(r.states_verified for r in reports)
    total_failures = sum(len(r.failures) for r in reports)
    verdict = "PASS" if (
        total_failures == 0 and total_states >= args.min_states
    ) else "FAIL"
    print(f"\ntotal: {total_states} distinct post-crash disk states across "
          f"{len(reports)} workloads, {total_failures} recovery failure(s)")
    if total_states < args.min_states:
        print(f"coverage regression: explored {total_states} states, "
              f"gate requires >= {args.min_states}")
    print(verdict)

    if args.json:
        payload = {
            "n": args.n,
            "eps": args.eps,
            "seed": args.seed,
            "min_states": args.min_states,
            "total_states": total_states,
            "total_failures": total_failures,
            "verdict": verdict,
            "workloads": [r.as_dict() for r in reports],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")

    return 0 if verdict == "PASS" else 1


if __name__ == "__main__":
    sys.exit(main())
