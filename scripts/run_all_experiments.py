"""Run every paper experiment and save the tables to results/.

This is the script behind EXPERIMENTS.md: it executes the drivers in
repro.experiments at the configured scale and writes one plain-text table
per artifact.

Usage::

    python scripts/run_all_experiments.py [results_dir]

Scale with REPRO_SCALE (default 1.0 — minutes on a laptop).
"""

from __future__ import annotations

import os
import sys
import time

from repro.experiments import ExperimentConfig, ablations, exp4, fig5, fig6, fig7, fig8
from repro.experiments.tables import format_rows, format_table


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "results"
    os.makedirs(out_dir, exist_ok=True)
    config = ExperimentConfig(iterations=1)

    jobs = [
        ("fig5_mg_county", lambda: fig5.run_dataset("mg_county", config=config)),
        ("fig5_lb_county", lambda: fig5.run_dataset("lb_county", config=config)),
        ("fig5_sierpinski3d", lambda: fig5.run_dataset("sierpinski3d", config=config)),
        ("fig5_pacific_nw", lambda: fig5.run_dataset("pacific_nw", config=config)),
        ("fig6_window_size", lambda: fig6.run(config=config)),
        ("fig7_scalability", lambda: fig7.run(config=config)),
        ("fig8_time_division", lambda: fig8.run(config=config)),
        ("exp4_tree_structures", lambda: exp4.run(config=config)),
        ("ablation_bulk", lambda: ablations.run_bulk(config=config)),
        ("ablation_capacity", lambda: ablations.run_capacity(config=config)),
        ("ablation_egrid", lambda: ablations.run_egrid(config=config)),
        ("ablation_fractal", lambda: ablations.run_fractal(config=config)),
        ("ablation_postprocess", lambda: ablations.run_postprocess(config=config)),
    ]
    for name, job in jobs:
        start = time.perf_counter()
        print(f"[{name}] running ...", flush=True)
        rows = job()
        elapsed = time.perf_counter() - start
        if name.startswith("fig8") or name.startswith("exp4") or name.startswith("ablation"):
            table = format_table(rows, title=name)
        else:
            table = format_rows(rows, title=name)
        path = os.path.join(out_dir, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(table + "\n")
        print(f"[{name}] done in {elapsed:.1f}s -> {path}", flush=True)


if __name__ == "__main__":
    main()
