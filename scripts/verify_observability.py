#!/usr/bin/env python
"""CI gate for the observability layer.

Runs a small join through the real CLI entry point with every
observability flag enabled -- serial and with ``--workers 2`` -- then
fails loudly if any artifact is missing, empty, or unparseable:

* every stderr line must be a JSON object (``--log-json`` purity),
* exactly one ``run summary`` event per run,
* the trace file must parse and contain at least one span,
* the metrics snapshot must parse and its ``repro_join_*`` counters
  must equal the counters reported in the run summary,
* deterministic counters must agree between worker counts,
* stdout must stay empty.

Usage: ``PYTHONPATH=src python scripts/verify_observability.py [--n 400]``
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

CHECK_FIELDS = (
    "links_emitted",
    "groups_emitted",
    "bytes_written",
    "early_stops",
    "distance_computations",
)


def fail(message: str) -> None:
    print(f"verify_observability: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def make_dataset(path: str, n: int) -> None:
    import numpy as np

    np.savetxt(path, np.random.default_rng(42).random((n, 2)))


def run_join(pts: str, workdir: str, workers: int) -> dict:
    """Run one instrumented join; return its parsed artifacts."""
    tag = f"w{workers}"
    out = os.path.join(workdir, f"{tag}.out.txt")
    trace = os.path.join(workdir, f"{tag}.trace.jsonl")
    metrics = os.path.join(workdir, f"{tag}.metrics.json")
    argv = [
        sys.executable, "-m", "repro.cli", "join",
        "--input", pts, "--eps", "0.1", "--algorithm", "csj",
        "--output", out, "--log-json", "--trace", trace,
        "--metrics-out", metrics,
    ]
    if workers > 1:
        argv += ["--workers", str(workers)]
    proc = subprocess.run(argv, capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"{tag}: exit code {proc.returncode}\n{proc.stderr}")
    if proc.stdout:
        fail(f"{tag}: stdout not empty under --log-json: {proc.stdout!r}")

    log_records = []
    for lineno, line in enumerate(proc.stderr.splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            fail(f"{tag}: stderr line {lineno} is not JSON: {line!r}")
        if not isinstance(record, dict):
            fail(f"{tag}: stderr line {lineno} is not an object")
        log_records.append(record)
    if not log_records:
        fail(f"{tag}: no log records on stderr")

    summaries = [r for r in log_records if r.get("event") == "run summary"]
    if len(summaries) != 1:
        fail(f"{tag}: expected 1 'run summary' event, got {len(summaries)}")

    if not os.path.exists(trace):
        fail(f"{tag}: trace file missing")
    trace_records = []
    with open(trace, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if not line.strip():
                continue
            try:
                span = json.loads(line)
            except json.JSONDecodeError:
                fail(f"{tag}: trace line {lineno} is not JSON")
            missing = {"name", "path", "ts", "dur", "depth"} - span.keys()
            if missing:
                fail(f"{tag}: trace line {lineno} missing keys {missing}")
            trace_records.append(span)
    if not trace_records:
        fail(f"{tag}: trace file is empty")

    try:
        with open(metrics, "r", encoding="utf-8") as fh:
            snapshot = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{tag}: metrics snapshot unreadable: {exc}")
    if not snapshot:
        fail(f"{tag}: metrics snapshot is empty")

    summary = summaries[0]
    for field in CHECK_FIELDS:
        metric = snapshot.get(f"repro_join_{field}_total")
        reported = summary.get(field)
        if metric != reported:
            fail(
                f"{tag}: metric repro_join_{field}_total={metric} "
                f"!= run summary {field}={reported}"
            )

    return {
        "tag": tag,
        "output": open(out, "rb").read(),
        "summary": summary,
        "snapshot": snapshot,
        "trace": trace_records,
        "trace_path": trace,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=400,
                        help="dataset size (default 400)")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as workdir:
        pts = os.path.join(workdir, "pts.txt")
        make_dataset(pts, args.n)

        serial = run_join(pts, workdir, workers=1)
        parallel = run_join(pts, workdir, workers=2)

        if serial["output"] != parallel["output"]:
            fail("output bytes differ between --workers 1 and 2")
        for field in CHECK_FIELDS:
            a = serial["snapshot"][f"repro_join_{field}_total"]
            b = parallel["snapshot"][f"repro_join_{field}_total"]
            if a != b:
                fail(f"counter {field} differs: serial={a} parallel={b}")
        if parallel["snapshot"].get("repro_pool_spawns_total", 0) < 2:
            fail("parallel run did not report pool spawns")
        if not any(r["name"] == "descend" for r in serial["trace"]):
            fail("serial trace has no 'descend' span")

        # The trace summariser must accept both artifacts.
        for run in (serial, parallel):
            proc = subprocess.run(
                [sys.executable,
                 os.path.join(os.path.dirname(__file__), "trace_report.py"),
                 run["trace_path"]],
                capture_output=True, text=True,
            )
            if proc.returncode != 0:
                fail(f"trace_report failed on {run['tag']}: {proc.stderr}")

    links = serial["summary"]["links_emitted"]
    groups = serial["summary"]["groups_emitted"]
    print(
        "verify_observability: OK "
        f"(links={links} groups={groups}, serial == --workers 2, "
        "all artifacts parseable)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
