#!/usr/bin/env python
"""Overload gate: storm the serving layer, audit every promise it makes.

Drives :class:`~repro.service.JoinService` with a seeded request storm
sized at a multiple of its admission capacity (queue bound × executors),
with deterministic chaos injection (slow dependencies browning the
service out, plus injected pool failures tripping the circuit breaker),
and verifies the serving contract:

* **exactly one typed outcome per request** — the outcome partition
  (admitted / degraded / shed / breaker_open / failed) sums to the
  request count, nothing lands in ``failed``, and every
  ``repro_service_*_total`` counter matches the audit trail;
* **admitted answers are byte-identical** — every request the service
  answered exactly is rerun offline (the storm is seed-reproducible)
  and must produce the same links, group pairs and byte count;
* **degraded answers are marked** — ``degraded=True`` and
  ``estimated=True``, with the estimator's predicted counters;
* **bounded queue** — the waiting queue's high-water mark never
  exceeds the configured bound;
* **bounded memory** — RSS growth across consecutive storm waves stays
  under a threshold (an unbounded queue or leaked per-request state
  shows up here);
* **breaker round trip** — injected pool failures open the circuit,
  requests then fail fast (typed, counted), and a post-cooldown probe
  closes it again.

Exit 0 when every check passes, 1 otherwise.  ``--json`` writes the
full report for CI artifact upload.

Usage::

    PYTHONPATH=src python scripts/verify_overload.py
        [--n 600] [--eps 0.05] [--seed 0] [--workers 1]
        [--queue-depth 3] [--storm-factor 4] [--waves 3]
        [--json report.json]
"""

import argparse
import json
import resource
import sys
import time

import numpy as np

from repro.api import similarity_join
from repro.errors import CircuitOpenError
from repro.obs.metrics import get_registry, reset_registry
from repro.resilience.chaos import OverloadInjector
from repro.service import OUTCOMES, JoinRequest, JoinService, ServiceConfig


def check(report, name, ok, detail=""):
    report["checks"].append({"name": name, "ok": bool(ok), "detail": detail})
    print(f"  {'ok  ' if ok else 'FAIL'} {name}" + (f"  ({detail})" if detail else ""))
    return bool(ok)


def run_storm_wave(args, wave, report):
    """One storm at ``storm-factor`` × capacity; returns True if clean."""
    reset_registry()
    pts = np.random.default_rng(args.seed + wave).random((args.n, 2))
    chaos = OverloadInjector(
        seed=args.seed + wave, slow_every=3, slow_seconds=args.slow_ms / 1000.0
    )
    config = ServiceConfig(
        queue_depth=args.queue_depth,
        executors=args.executors,
        workers=args.workers,
        default_deadline=args.deadline_ms / 1000.0,
        seed=args.seed,
    )
    capacity = config.queue_depth + config.executors
    n_requests = capacity * args.storm_factor
    service = JoinService(config, chaos=chaos)
    try:
        requests = chaos.storm(
            pts, args.eps, requests=n_requests,
            deadline_seconds=args.deadline_ms / 1000.0,
        )
        outcomes = service.serve(requests)
        peak = service.peak_queue
        counts = service.counts()
    finally:
        service.close()

    ok = True
    wave_label = f"wave {wave}"
    print(f"{wave_label}: {n_requests} requests at {args.storm_factor}x capacity "
          f"-> {counts}")
    report["waves"].append({"wave": wave, "requests": n_requests,
                            "counts": counts, "peak_queue": peak})

    # One typed outcome per request, in order, none of them "failed".
    ok &= check(report, f"{wave_label}: one outcome per request",
                len(outcomes) == n_requests
                and [o.request_id for o in outcomes]
                == [r.request_id for r in requests])
    ok &= check(report, f"{wave_label}: all outcomes typed",
                all(o.status in OUTCOMES for o in outcomes))
    ok &= check(report, f"{wave_label}: nothing failed",
                counts["failed"] == 0, f"failed={counts['failed']}")
    ok &= check(report, f"{wave_label}: partition sums",
                sum(counts.values()) == n_requests)

    # Counters match the audit trail exactly.
    snap = get_registry().snapshot()
    counter_ok = all(
        snap.get(f"repro_service_{status}_total", 0) == n
        for status, n in counts.items()
    )
    ok &= check(report, f"{wave_label}: metrics match audit trail", counter_ok)

    # The waiting queue respected its bound.
    ok &= check(report, f"{wave_label}: queue bounded",
                peak <= config.queue_depth,
                f"peak={peak} bound={config.queue_depth}")

    # Storm pressure actually exercised the ladder.
    ok &= check(report, f"{wave_label}: storm shed something",
                counts["shed"] > 0, f"shed={counts['shed']}")
    ok &= check(report, f"{wave_label}: storm admitted something",
                counts["admitted"] + counts["degraded"] > 0)

    # Admitted answers byte-identical to offline reruns of the same
    # seeded requests; degraded answers carry their quality mark.
    by_id = {r.request_id: r for r in requests}
    mismatches = 0
    admitted_checked = 0
    for outcome in outcomes:
        if outcome.status == "admitted":
            request = by_id[outcome.request_id]
            offline = similarity_join(
                request.points, request.eps,
                algorithm=request.algorithm, g=request.g,
            )
            admitted_checked += 1
            if (outcome.result.links != offline.links
                    or outcome.result.group_pairs != offline.group_pairs
                    or outcome.result.stats.bytes_written
                    != offline.stats.bytes_written):
                mismatches += 1
        elif outcome.status == "degraded":
            if not (outcome.result is not None
                    and outcome.result.degraded
                    and outcome.result.estimated):
                mismatches += 1
    ok &= check(report, f"{wave_label}: admitted byte-identical offline",
                mismatches == 0,
                f"checked={admitted_checked} mismatches={mismatches}")
    return ok


def run_degrade_wave(args, report):
    """Tight deadlines under stalls: requests must degrade, not fail."""
    reset_registry()
    pts = np.random.default_rng(args.seed + 99).random((args.n, 2))
    chaos = OverloadInjector(
        seed=args.seed + 99, slow_every=2, slow_seconds=0.05
    )
    config = ServiceConfig(
        queue_depth=args.queue_depth,
        executors=1,
        workers=args.workers,
        default_deadline=0.04,  # thinner than the injected stall
        seed=args.seed,
    )
    service = JoinService(config, chaos=chaos)
    try:
        requests = chaos.storm(
            pts, args.eps, requests=args.queue_depth + 1,
            deadline_seconds=0.04,
        )
        outcomes = service.serve(requests)
        counts = service.counts()
    finally:
        service.close()
    ok = True
    print(f"degrade wave -> {counts}")
    report["waves"].append({"wave": "degrade", "counts": counts})
    ok &= check(report, "degrade wave: nothing failed", counts["failed"] == 0)
    ok &= check(report, "degrade wave: deadline pressure degraded requests",
                counts["degraded"] > 0, f"degraded={counts['degraded']}")
    marks_ok = all(
        o.result is not None and o.result.degraded and o.result.estimated
        and o.result.stats.links_emitted >= 0
        for o in outcomes if o.status == "degraded"
    )
    ok &= check(report, "degrade wave: degraded answers marked", marks_ok)
    return ok


def run_breaker_round_trip(args, report):
    """Injected pool failures must open, shed typed, then heal."""
    reset_registry()
    pts = np.random.default_rng(args.seed).random((args.n, 2))
    chaos = OverloadInjector(seed=args.seed, fail_at=(0, 1), failure="pool")
    config = ServiceConfig(
        queue_depth=args.queue_depth,
        executors=1,
        workers=args.workers,
        breaker_threshold=2,
        breaker_cooldown_base=0.02,
        breaker_cooldown_max=0.1,
        seed=args.seed,
    )
    service = JoinService(config, chaos=chaos)
    ok = True
    try:
        requests = chaos.storm(pts, args.eps, requests=2)
        outcomes = service.serve(requests)
        ok &= check(report, "breaker: failing dependency degrades requests",
                    all(o.status == "degraded" for o in outcomes))
        ok &= check(report, "breaker: circuit opened at threshold",
                    service.pool_breaker.state == "open")
        fast_failed = False
        try:
            service.submit(JoinRequest(points=pts, eps=args.eps,
                                       request_id="while-open"))
        except CircuitOpenError as exc:
            fast_failed = exc.exit_code == 10
        ok &= check(report, "breaker: open circuit fails fast, typed",
                    fast_failed)
        ok &= check(report, "breaker: breaker_open counted",
                    service.counts()["breaker_open"] == 1)
        time.sleep(0.4)  # past the jittered cooldown
        probe = service.submit(
            JoinRequest(points=pts, eps=args.eps, request_id="probe")
        ).wait(60.0)
        ok &= check(report, "breaker: post-cooldown probe admitted",
                    probe.status == "admitted")
        ok &= check(report, "breaker: circuit closed by probe",
                    service.pool_breaker.state == "closed")
    finally:
        service.close()
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=600, help="points per dataset")
    parser.add_argument("--eps", type=float, default=0.05, help="query range")
    parser.add_argument("--seed", type=int, default=0, help="storm seed")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes per request (1 = serial)")
    parser.add_argument("--executors", type=int, default=1,
                        help="executor threads draining the queue")
    parser.add_argument("--queue-depth", type=int, default=3,
                        help="admission queue bound")
    parser.add_argument("--storm-factor", type=int, default=4,
                        help="storm size as a multiple of capacity")
    parser.add_argument("--waves", type=int, default=3,
                        help="consecutive storm waves (RSS must stay flat)")
    parser.add_argument("--deadline-ms", type=float, default=10_000.0,
                        help="per-request deadline")
    parser.add_argument("--slow-ms", type=float, default=30.0,
                        help="injected dependency stall")
    parser.add_argument("--rss-limit-mb", type=float, default=200.0,
                        help="max allowed RSS growth across waves")
    parser.add_argument("--json", default=None,
                        help="write the report as JSON to this path")
    args = parser.parse_args()

    report = {"config": vars(args).copy(), "checks": [], "waves": []}
    ok = True

    # Warm-up wave absorbs allocator/import noise, then measure growth.
    rss_before = None
    for wave in range(args.waves):
        ok &= run_storm_wave(args, wave, report)
        rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
        if wave == 0:
            rss_before = rss_mb
    rss_growth = rss_mb - rss_before
    report["rss_growth_mb"] = rss_growth
    ok &= check(report, "rss bounded across waves",
                rss_growth <= args.rss_limit_mb,
                f"growth={rss_growth:.1f}MB limit={args.rss_limit_mb:.0f}MB")

    ok &= run_degrade_wave(args, report)
    ok &= run_breaker_round_trip(args, report)

    report["ok"] = bool(ok)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")
    print("overload gate:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
