#!/usr/bin/env python
"""Flame-style summary of a trace file produced with ``repro join --trace``.

Each trace line is a completed span ``{"name", "path", "ts", "dur",
"depth", ...}`` where ``path`` is the ``;``-joined ancestor chain (e.g.
``descend;emit``).  This tool aggregates spans by path and prints an
indented tree with call counts, total time, and *self* time (total minus
the time spent in child spans), so hot phases stand out at a glance:

    $ python scripts/trace_report.py run.trace.jsonl
    path                               count     total      self   %total
    descend                                1   41.2ms     2.1ms    95.3%
      emit                                12   39.1ms    39.1ms    90.4%

Zero dependencies beyond the standard library.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, TextIO


@dataclass
class PathStats:
    """Aggregated spans sharing one ancestor path."""

    path: str
    count: int = 0
    total: float = 0.0
    child_time: float = 0.0
    events: int = 0
    attrs: Dict[str, float] = field(default_factory=dict)

    @property
    def self_time(self) -> float:
        return max(0.0, self.total - self.child_time)

    @property
    def depth(self) -> int:
        return self.path.count(";")

    @property
    def name(self) -> str:
        return self.path.rsplit(";", 1)[-1]


def load_spans(stream: Iterable[str]) -> List[dict]:
    """Parse a trace JSONL stream, raising on any malformed line."""
    spans = []
    for lineno, line in enumerate(stream, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"trace line {lineno} is not JSON: {exc}")
        for key in ("name", "path", "ts", "dur", "depth"):
            if key not in record:
                raise SystemExit(
                    f"trace line {lineno} missing key {key!r}"
                )
        spans.append(record)
    return spans


def aggregate(spans: List[dict]) -> Dict[str, PathStats]:
    """Fold spans into per-path statistics with self-time attribution."""
    table: Dict[str, PathStats] = {}
    for record in spans:
        path = record["path"]
        stats = table.setdefault(path, PathStats(path))
        if record.get("event"):
            stats.events += 1
            continue
        stats.count += 1
        stats.total += record["dur"]
        # Numeric attributes (merged counts, point counts...) are summed
        # so e.g. total merged tasks per phase show up in the report.
        for key, value in record.items():
            if key in ("name", "path", "ts", "dur", "depth", "event"):
                continue
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                stats.attrs[key] = stats.attrs.get(key, 0) + value
    # Charge every path's total to its parent as child time.
    for path, stats in table.items():
        if ";" not in path:
            continue
        parent = table.get(path.rsplit(";", 1)[0])
        if parent is not None:
            parent.child_time += stats.total
    return table


def _fmt_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def render(table: Dict[str, PathStats], out: TextIO, top: int = 0) -> None:
    wall = sum(s.total for s in table.values() if s.depth == 0)
    rows = sorted(table.values(), key=lambda s: s.path)
    if top:
        keep = {
            s.path
            for s in sorted(table.values(), key=lambda s: -s.total)[:top]
        }
        # Keep ancestors so the tree stays printable.
        for path in list(keep):
            parts = path.split(";")
            for i in range(1, len(parts)):
                keep.add(";".join(parts[:i]))
        rows = [s for s in rows if s.path in keep]

    header = f"{'path':<40} {'count':>7} {'total':>9} {'self':>9} {'%total':>7}"
    print(header, file=out)
    print("-" * len(header), file=out)
    for stats in rows:
        label = "  " * stats.depth + stats.name
        share = (stats.total / wall * 100.0) if wall else 0.0
        extras = ""
        if stats.events:
            extras += f"  events={stats.events}"
        for key, value in sorted(stats.attrs.items()):
            if key in ("eps", "g"):
                continue
            extras += f"  {key}={value:g}"
        print(
            f"{label:<40} {stats.count:>7} {_fmt_time(stats.total):>9} "
            f"{_fmt_time(stats.self_time):>9} {share:>6.1f}%{extras}",
            file=out,
        )
    if wall:
        print(f"\nwall (sum of root spans): {_fmt_time(wall)}", file=out)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Summarise a repro trace file as a flame-style tree."
    )
    parser.add_argument("trace", help="trace JSONL file (or - for stdin)")
    parser.add_argument(
        "--top", type=int, default=0,
        help="show only the N most expensive paths (plus ancestors)",
    )
    args = parser.parse_args(argv)

    if args.trace == "-":
        spans = load_spans(sys.stdin)
    else:
        with open(args.trace, "r", encoding="utf-8") as fh:
            spans = load_spans(fh)
    if not spans:
        raise SystemExit("trace file contains no spans")
    render(aggregate(spans), sys.stdout, top=args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
