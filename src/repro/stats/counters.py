"""Counters and timers used to instrument the join algorithms.

The paper measures four quantities per run (Section VI):

* wall-clock runtime, split into *computation* and *disk write* time
  (Experiment 3, Figure 8),
* output size in bytes of the resulting text file,
* the number of disk page / cache accesses (reported as "no significant
  difference" between algorithms in Experiment 3),
* scalability of the first two with the number of data points.

Wall-clock timing of pure-Python code is noisy and machine dependent, so in
addition to the paper's measurements :class:`JoinStats` tracks
machine-independent work proxies: the number of point-to-point distance
computations, node-pair visits, and MBR checks.  Benchmarks report both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields


@dataclass
class JoinStats:
    """Aggregated measurements for a single join execution.

    Every integer field is a monotonically increasing counter; the two
    ``*_time`` fields accumulate seconds.  Instances support ``+`` so that
    per-phase statistics can be combined.
    """

    #: Point-to-point distance evaluations (the dominant CPU cost).
    distance_computations: int = 0
    #: Node/node-pair visits during the tree descent.
    nodes_visited: int = 0
    node_pairs_visited: int = 0
    #: MBR diagonal / min-distance / max-distance evaluations.
    mbr_checks: int = 0
    #: Early-stopping events: a whole subtree (or subtree pair) emitted as
    #: one group because its bounding-shape diameter was below the range.
    early_stops: int = 0
    #: Links written individually to the output.
    links_emitted: int = 0
    #: Groups written to the output.
    groups_emitted: int = 0
    #: Total number of point memberships over all emitted groups.
    group_members_emitted: int = 0
    #: CSJ(g) merge machinery: attempts to fit a link into a recent group.
    merge_attempts: int = 0
    merge_successes: int = 0
    #: Bytes written to the (possibly simulated) output file.
    bytes_written: int = 0
    #: Simulated disk page accesses (see :mod:`repro.io.pagesim`).
    page_reads: int = 0
    page_writes: int = 0
    cache_hits: int = 0
    #: Seconds spent computing (everything except output writing).
    compute_time: float = 0.0
    #: Seconds spent writing output.
    write_time: float = 0.0

    def __add__(self, other: "JoinStats") -> "JoinStats":
        if not isinstance(other, JoinStats):
            return NotImplemented
        merged = JoinStats()
        for f in fields(self):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged

    @property
    def total_time(self) -> float:
        """Wall-clock total: computation plus output writing."""
        return self.compute_time + self.write_time

    @property
    def pairs_reported(self) -> int:
        """Number of links implied by the output.

        Each group of *k* members implies ``k * (k - 1) / 2`` links; this
        property is therefore only meaningful when accumulated alongside
        :attr:`group_members_emitted` by the sinks, and is provided for the
        common case of individually emitted links.
        """
        return self.links_emitted

    def as_dict(self) -> dict[str, float]:
        """All counters plus the derived values as a plain dictionary.

        The derived :attr:`total_time` and :attr:`pairs_reported`
        properties are included explicitly — exported metrics and tables
        must not silently lose the paper's headline runtime number.
        """
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["total_time"] = self.total_time
        data["pairs_reported"] = self.pairs_reported
        return data

    def reset(self) -> None:
        """Zero every counter in place, preserving each declared type.

        Uses the field *defaults* (``0`` for counters, ``0.0`` for the
        time accumulators) rather than inspecting ``f.type``: under
        ``from __future__ import annotations`` the field types are
        strings, so a ``f.type is int`` test silently resets int
        counters to ``0.0`` and they accumulate as floats thereafter.
        """
        for f in fields(self):
            setattr(self, f.name, f.default)


@dataclass
class Timer:
    """Context manager accumulating elapsed wall-clock seconds.

    Re-entrant: nested ``with`` blocks on the same timer count the
    outermost interval exactly once instead of clobbering the start
    mark and double-counting the inner region.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)
    _depth: int = field(default=0, repr=False)

    def __enter__(self) -> "Timer":
        if self._depth == 0:
            self._start = time.perf_counter()
        self._depth += 1
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._depth -= 1
        if self._depth == 0:
            self.elapsed += time.perf_counter() - self._start

    def reset(self) -> None:
        self.elapsed = 0.0
        self._depth = 0
        self._start = 0.0
