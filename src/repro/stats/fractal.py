"""Intrinsic ("fractal") dimensionality estimation — the paper's future work.

The Conclusion proposes analysing response time "as a function of the
intrinsic ('fractal') dimensionality of the input data set".  This module
provides the standard tool for that analysis, the **correlation
dimension** D2: the pair-count function

    C(r) = #{pairs with distance < r} ~ r^D2

is evaluated on a log-spaced radius grid (each count via the dual-tree
counter in :mod:`repro.core.bruteforce`, so no pair set is materialised)
and D2 is the slope of log C against log r over the scaling region.

D2 predicts the output-explosion onset: the expected SSJ output at range
eps scales like ``n^2 * eps^D2``, so low-dimensional data (roads: D2 ~ 1,
counties: 1 < D2 < 2, Sierpinski3D: D2 = log 4 / log 2 = 2) explodes at
much smaller ranges than its embedding dimension suggests.  The ablation
bench ``bench_ablation_fractal.py`` exercises that prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.bruteforce import count_links
from repro.geometry.metrics import Metric

__all__ = ["correlation_integral", "correlation_dimension", "FractalEstimate"]


def correlation_integral(
    points: np.ndarray,
    radii: Sequence[float],
    metric: Optional[Metric] = None,
) -> np.ndarray:
    """Pair counts C(r) for each radius (strict ``< r``, unnormalised)."""
    pts = np.asarray(points, dtype=float)
    return np.array([count_links(pts, float(r), metric) for r in radii], dtype=float)


@dataclass
class FractalEstimate:
    """A correlation-dimension fit."""

    #: The fitted correlation dimension D2.
    dimension: float
    #: Radii used for the fit (the scaling region actually kept).
    radii: np.ndarray
    #: Pair counts at those radii.
    counts: np.ndarray
    #: Per-interval local slopes (diagnostics for scaling-region choice).
    local_slopes: np.ndarray

    def predicted_pairs(self, eps: float, reference_index: int = 0) -> float:
        """Extrapolate C(eps) from the fit, anchored at one measured radius."""
        r0 = float(self.radii[reference_index])
        c0 = float(self.counts[reference_index])
        return c0 * (eps / r0) ** self.dimension


def correlation_dimension(
    points: np.ndarray,
    r_min: float = 2.0**-9,
    r_max: float = 2.0**-3,
    n_radii: int = 7,
    metric: Optional[Metric] = None,
) -> FractalEstimate:
    """Estimate D2 by least squares on the log-log pair-count curve.

    Radii with zero pair count (below the data's minimum separation) are
    dropped automatically; at least two non-empty radii are required.

    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> line = np.stack([rng.random(4000), np.zeros(4000)], axis=1)
    >>> round(correlation_dimension(line).dimension, 1)
    1.0
    """
    if not 0 < r_min < r_max:
        raise ValueError(f"need 0 < r_min < r_max, got {r_min}, {r_max}")
    if n_radii < 2:
        raise ValueError(f"need at least 2 radii, got {n_radii}")
    radii = np.exp(np.linspace(np.log(r_min), np.log(r_max), n_radii))
    counts = correlation_integral(points, radii, metric)
    keep = counts > 0
    if keep.sum() < 2:
        raise ValueError(
            "too few non-empty radii to fit a dimension; increase r_max "
            "or the dataset size"
        )
    radii, counts = radii[keep], counts[keep]
    log_r, log_c = np.log(radii), np.log(counts)
    slope, _ = np.polyfit(log_r, log_c, 1)
    local = np.diff(log_c) / np.diff(log_r)
    return FractalEstimate(
        dimension=float(slope), radii=radii, counts=counts, local_slopes=local
    )
