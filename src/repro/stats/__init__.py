"""Instrumentation and analysis: counters, timers, fractal dimension."""

from repro.stats.counters import JoinStats, Timer
from repro.stats.fractal import (
    FractalEstimate,
    correlation_dimension,
    correlation_integral,
)

__all__ = [
    "JoinStats",
    "Timer",
    "FractalEstimate",
    "correlation_dimension",
    "correlation_integral",
]
