"""Command-line interface: ``python -m repro`` or the ``csj`` script.

Subcommands
-----------

``join``
    Run a similarity join over a generated dataset or a whitespace-
    separated coordinate file and write the compact output.

``experiment``
    Reproduce one of the paper's figures (``fig5``, ``fig6``, ``fig7``,
    ``fig8``, ``exp4``) or an ablation (``bulk``, ``capacity``,
    ``egrid``); prints a plain-text table of rows.

``serve``
    Drive a seeded request storm through the overload-resilient
    :class:`~repro.service.JoinService` (bounded admission queue,
    per-request deadlines, circuit breakers, brownout ladder) and print
    one outcome per request.

``update``
    Materialize a compact join and maintain it *incrementally* under a
    seeded insert/delete churn workload (no recomputation), optionally
    verifying expansion-equivalence against brute force.

``demo``
    The Figure 1 walk-through: seven points, eight links, three groups.

Examples::

    csj join --dataset mg_county -n 5000 --eps 0.05 --algorithm csj -g 10
    csj serve --dataset uniform -n 2000 --eps 0.04 --requests 32 \
        --queue-depth 8 --deadline-ms 500 --cache --repeats 2
    csj update --dataset uniform -n 2000 --eps 0.05 --updates 500 --verify
    csj experiment fig6
    csj demo
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Optional, Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="csj",
        description="Compact Similarity Joins (ICDE 2008) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    join = sub.add_parser("join", help="run a similarity join")
    source = join.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", help="generated dataset name")
    source.add_argument("--input", help="coordinate text file (one point per line)")
    join.add_argument("-n", type=int, default=10_000, help="points to generate")
    join.add_argument("--seed", type=int, default=0)
    join.add_argument("--eps", type=float, required=True, help="query range")
    join.add_argument(
        "--algorithm",
        default="csj",
        choices=["ssj", "ncsj", "csj", "egrid", "egrid-csj", "pbsm", "pbsm-csj"],
    )
    join.add_argument("-g", type=int, default=10, help="CSJ merge window")
    join.add_argument("--index", default="rstar", choices=["rtree", "rstar", "mtree"])
    join.add_argument("--metric", default="euclidean")
    join.add_argument(
        "--engine",
        default="vectorized",
        choices=["vectorized", "scalar", "paranoid"],
        help="pruning engine for tree algorithms: the batched-kernel "
        "frontier engine (default), the per-pair recursive one, or "
        "'paranoid' — run both and fail on any byte or counter divergence",
    )
    join.add_argument("--output", help="write the result file here")
    join.add_argument(
        "--verify", action="store_true", help="check losslessness vs brute force"
    )
    join.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="journal progress to PATH for crash-safe, resumable execution "
        "(requires --output)",
    )
    join.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted checkpointed run instead of starting over",
    )
    join.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="abort cleanly once this much wall-clock time has elapsed",
    )
    join.add_argument(
        "--max-bytes",
        type=int,
        metavar="N",
        help="abort cleanly once the output exceeds N bytes "
        "(SSJ falls back to the analytic estimate instead)",
    )
    join.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="execute across a supervised pool of N worker processes "
        "(heartbeats, retry, straggler re-dispatch); output is "
        "byte-identical to the serial run.  Omit, 0 or 1 stays serial",
    )
    join.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock limit in the worker pool; a task that "
        "exceeds it is killed and retried on a fresh worker",
    )
    join.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON-lines logs on stderr (one object per "
        "line: timestamp, level, event, run context)",
    )
    join.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warning", "error"],
        metavar="LEVEL",
        help="enable plain (or, with --log-json, structured) logging at "
        "LEVEL: debug, info, warning or error",
    )
    join.add_argument(
        "--trace",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="record phase-level trace spans as JSON lines to PATH "
        "(default: OUTPUT.trace.jsonl next to --output, else "
        "csj.trace.jsonl); summarise with scripts/trace_report.py",
    )
    join.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="export the run's metrics snapshot to PATH on completion "
        "(Prometheus text if PATH ends in .prom/.txt, JSON otherwise)",
    )
    join.add_argument(
        "--progress",
        type=float,
        default=None,
        metavar="SECONDS",
        help="log a progress heartbeat (links/groups/bytes so far) every "
        "SECONDS while the join runs",
    )
    join.add_argument(
        "--data-plane",
        default="auto",
        choices=["auto", "shm", "pickle"],
        help="how parallel workers obtain the dataset: one zero-copy "
        "shared-memory mapping (shm), a pickled copy per worker "
        "(pickle), or shm where available (auto, default); output "
        "bytes are identical either way",
    )
    join.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="partition the dataset into K spatial shards with ε-margin "
        "boundary replication and join each shard independently; output "
        "bytes are identical for every K (and to the unsharded run of "
        "the same pipeline).  Omit stays unsharded",
    )
    join.add_argument(
        "--partitioner",
        default="grid",
        choices=["grid", "hilbert"],
        help="shard planner for --shards: a balanced spatial grid or "
        "Hilbert-curve range partitioning",
    )

    serve = sub.add_parser(
        "serve",
        help="serve a seeded request storm through the overload-resilient "
        "JoinService (admission control, deadlines, breakers, brownout)",
    )
    serve_source = serve.add_mutually_exclusive_group(required=True)
    serve_source.add_argument("--dataset", help="generated dataset name")
    serve_source.add_argument(
        "--input", help="coordinate text file (one point per line)"
    )
    serve.add_argument("-n", type=int, default=2000, help="points to generate")
    serve.add_argument(
        "--seed", type=int, default=0,
        help="seed for the dataset AND the request storm",
    )
    serve.add_argument("--eps", type=float, required=True, help="query range")
    serve.add_argument(
        "--algorithm",
        default="csj",
        choices=["ssj", "ncsj", "csj", "egrid", "egrid-csj", "pbsm", "pbsm-csj"],
    )
    serve.add_argument("-g", type=int, default=10, help="CSJ merge window")
    serve.add_argument(
        "--requests", type=int, default=32,
        help="storm size (requests submitted back to back)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=8,
        help="admission queue bound; beyond it requests are shed with a "
        "Retry-After hint (typed AdmissionRejectedError, exit 9)",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline in milliseconds, measured from "
        "submission (queue wait spends it) and propagated end-to-end; "
        "over-budget requests degrade to the analytic estimator answer",
    )
    serve.add_argument(
        "--executors", type=int, default=1,
        help="concurrent executor threads draining the queue",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per request (1 = serial execution)",
    )
    serve.add_argument(
        "--engine", default="vectorized", choices=["vectorized", "scalar"],
    )
    serve.add_argument(
        "--cache", action="store_true",
        help="enable the ε-keyed result cache: repeat requests over the "
        "same dataset/parameters are served from memory (byte-identical, "
        "no tree descent), and under brownout a slightly-stale cached "
        "result is served before degrading to the estimator",
    )
    serve.add_argument(
        "--cache-bytes", type=int, default=64 * 1024 * 1024, metavar="B",
        help="result-cache byte budget (LRU eviction past it); only "
        "meaningful together with --cache",
    )
    serve.add_argument(
        "--repeats", type=int, default=1, metavar="R",
        help="serve the storm sequence R times in a row; every storm "
        "request is unique, so repeats are what exercise --cache hits",
    )
    serve.add_argument(
        "--slow-every", type=int, default=0, metavar="K",
        help="chaos: stall every K-th storm request before execution "
        "(deterministic slow-dependency brownout)",
    )
    serve.add_argument(
        "--slow-ms", type=float, default=50.0, metavar="MS",
        help="chaos: stall duration for --slow-every",
    )
    serve.add_argument(
        "--fail-at", type=int, nargs="*", default=(), metavar="I",
        help="chaos: inject a worker-pool failure on these storm request "
        "indices (feeds the pool circuit breaker)",
    )
    serve.add_argument(
        "--json", action="store_true",
        help="print outcomes as JSON lines on stdout (summary object last)",
    )
    serve.add_argument(
        "--strict", action="store_true",
        help="exit with the typed code of the worst non-admitted outcome: "
        "10 if any request failed on an open circuit, else 9 if any was "
        "shed, else 0",
    )
    serve.add_argument(
        "--data-plane",
        default="auto",
        choices=["auto", "shm", "pickle"],
        help="data plane for parallel requests (see `csj join --data-plane`)",
    )
    serve.add_argument(
        "--preload", action="store_true",
        help="register the dataset before the storm: publish it (and its "
        "packed index) to shared memory once and reuse the warm state "
        "across every request",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="serve every request through K-way sharded execution "
        "(ε-margin boundary replication; bytes identical to unsharded)",
    )
    serve.add_argument(
        "--partitioner",
        default="grid",
        choices=["grid", "hilbert"],
        help="shard planner for --shards",
    )

    update = sub.add_parser(
        "update",
        help="materialize a compact join and maintain it incrementally "
        "under a seeded insert/delete churn workload (repro.dynamic)",
    )
    update_source = update.add_mutually_exclusive_group(required=True)
    update_source.add_argument("--dataset", help="generated dataset name")
    update_source.add_argument(
        "--input", help="coordinate text file (one point per line)"
    )
    update.add_argument("-n", type=int, default=2000, help="points to generate")
    update.add_argument(
        "--seed", type=int, default=0,
        help="seed for the dataset AND the churn workload",
    )
    update.add_argument("--eps", type=float, required=True, help="query range")
    update.add_argument("-g", type=int, default=10, help="CSJ merge window")
    update.add_argument(
        "--index", default="rstar", choices=["rtree", "rstar", "mtree"]
    )
    update.add_argument("--metric", default="euclidean")
    update.add_argument(
        "--updates", type=int, default=200, metavar="K",
        help="churn length: K interleaved point inserts/deletes",
    )
    update.add_argument(
        "--delete-fraction", type=float, default=0.5, metavar="F",
        help="probability in [0, 1] that a churn step deletes (vs inserts)",
    )
    update.add_argument(
        "--verify", action="store_true",
        help="after the churn, check expansion-equivalence of the "
        "maintained result against a brute-force join over the live "
        "points (nonzero exit on mismatch)",
    )
    update.add_argument(
        "--json", action="store_true",
        help="print the summary as one JSON object on stdout",
    )

    experiment = sub.add_parser("experiment", help="reproduce a paper artifact")
    experiment.add_argument(
        "name",
        choices=[
            "fig5", "fig6", "fig7", "fig8", "exp4",
            "bulk", "capacity", "egrid", "fractal", "postprocess",
        ],
    )
    experiment.add_argument(
        "--dataset", help="restrict fig5 to one dataset", default=None
    )
    experiment.add_argument("-n", type=int, default=None, help="override dataset size")
    experiment.add_argument("--iterations", type=int, default=1)

    cluster = sub.add_parser(
        "cluster",
        help="density-connectivity clusters from a compact join "
        "(Section IV-D downstream processing)",
    )
    cluster.add_argument("--dataset", required=True, help="generated dataset name")
    cluster.add_argument("-n", type=int, default=10_000)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--eps", type=float, required=True)
    cluster.add_argument("-g", type=int, default=10)
    cluster.add_argument(
        "--top", type=int, default=10, help="largest clusters to print"
    )

    sub.add_parser("demo", help="the paper's Figure 1 walk-through")
    return parser


def _load_points(args: argparse.Namespace) -> np.ndarray:
    if args.input:
        return np.loadtxt(args.input, dtype=float, ndmin=2)
    from repro.datasets import load_dataset

    return load_dataset(args.dataset, args.n, seed=args.seed)


def _write_metrics(path: str, registry) -> None:
    """Export the registry: Prometheus text by extension, else JSON."""
    if path.endswith((".prom", ".txt")):
        text = registry.to_prometheus()
    else:
        text = registry.to_json(indent=2) + "\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def _cmd_join(args: argparse.Namespace) -> int:
    import uuid

    from repro.api import similarity_join
    from repro.core.results import CollectSink, TextSink
    from repro.core.verify import check_equivalence
    from repro.errors import ReproError
    from repro.io.writer import width_for
    from repro.obs.logging import (
        configure_logging,
        get_logger,
        log_mode,
        reset_logging,
        run_context,
    )
    from repro.obs.metrics import get_registry, reset_registry
    from repro.obs.progress import ProgressHeartbeat
    from repro.obs.tracing import configure_tracing, disable_tracing
    from repro.resilience.budget import Budget
    from repro.stats.counters import JoinStats

    if args.resume and not args.checkpoint:
        raise SystemExit("csj join: --resume requires --checkpoint")
    if args.checkpoint and not args.output:
        raise SystemExit("csj join: --checkpoint requires --output")
    if args.engine == "paranoid" and (args.output or args.checkpoint):
        raise SystemExit(
            "csj join: --engine paranoid runs both engines against "
            "in-memory sinks; it is incompatible with --output/--checkpoint"
        )
    if args.engine == "paranoid" and args.shards is not None:
        raise SystemExit(
            "csj join: --engine paranoid is engine cross-checking; "
            "sharded output is engine-invariant already, drop --shards"
        )

    # Observability wiring.  Logging goes to stderr so stdout stays clean
    # for piped consumers; --progress implies a visible logger.
    configured_logging = False
    if args.log_json or args.log_level is not None:
        configure_logging(level=args.log_level or "info", json_lines=args.log_json)
        configured_logging = True
    elif args.progress is not None:
        configure_logging(level="info", json_lines=False)
        configured_logging = True
    logger = get_logger("cli")

    trace_path = None
    if args.trace is not None:
        trace_path = args.trace or (
            f"{args.output}.trace.jsonl" if args.output else "csj.trace.jsonl"
        )
        configure_tracing(trace_path)
    if args.metrics_out:
        reset_registry()  # this run's counters only, not leftover state

    budget = None
    if args.deadline is not None or args.max_bytes is not None:
        budget = Budget(
            deadline_seconds=args.deadline, max_output_bytes=args.max_bytes
        )

    points = _load_points(args)
    run_id = uuid.uuid4().hex[:12]
    heartbeat = None
    try:
        with run_context(run=run_id, algorithm=args.algorithm, eps=args.eps):
            logger.info(
                "join starting",
                extra={
                    "points": len(points),
                    "dim": int(points.shape[1]),
                    "workers": args.workers,
                    "index": args.index,
                    "g": args.g,
                },
            )
            if args.checkpoint:
                from repro.resilience.checkpoint import CheckpointedJoin

                live_stats = JoinStats()
                job = CheckpointedJoin(
                    points,
                    args.eps,
                    args.output,
                    algorithm=args.algorithm,
                    g=args.g,
                    index=args.index,
                    metric=args.metric,
                    journal_path=args.checkpoint,
                    budget=budget,
                    workers=args.workers,
                    task_timeout=args.task_timeout,
                    stats=live_stats,
                    engine=args.engine,
                    data_plane=args.data_plane,
                    shards=args.shards,
                    partitioner=args.partitioner,
                )
                if args.progress is not None:
                    heartbeat = ProgressHeartbeat(
                        live_stats, interval=args.progress
                    ).start()
                result = job.run(resume=args.resume)
            elif args.engine == "paranoid":
                from repro.core.verify import cross_check_engines

                result = cross_check_engines(
                    points,
                    args.eps,
                    algorithm=args.algorithm,
                    g=args.g,
                    index=args.index,
                    metric=args.metric,
                    budget=budget,
                    workers=args.workers,
                    task_timeout=args.task_timeout,
                )
            else:
                if args.output:
                    sink = TextSink(args.output, id_width=width_for(len(points)))
                else:
                    sink = CollectSink(id_width=width_for(len(points)))
                if args.progress is not None:
                    heartbeat = ProgressHeartbeat(
                        sink.stats, interval=args.progress
                    ).start()
                result = similarity_join(
                    points,
                    args.eps,
                    algorithm=args.algorithm,
                    g=args.g,
                    index=args.index,
                    metric=args.metric,
                    sink=sink,
                    budget=budget,
                    workers=args.workers,
                    task_timeout=args.task_timeout,
                    engine=args.engine,
                    data_plane=args.data_plane,
                    shards=args.shards,
                    partitioner=args.partitioner,
                )
                if args.output:
                    sink.close()
            if heartbeat is not None:
                heartbeat.stop()
                heartbeat = None

            stats = result.stats
            if args.metrics_out:
                registry = get_registry()
                registry.record_join_stats(stats)
                if budget is not None:
                    registry.record_budget(budget)
                _write_metrics(args.metrics_out, registry)

            summary = {
                "algorithm": result.algorithm,
                "points": len(points),
                "dim": int(points.shape[1]),
                "links_emitted": stats.links_emitted,
                "groups_emitted": stats.groups_emitted,
                "bytes_written": stats.bytes_written,
                "early_stops": stats.early_stops,
                "distance_computations": stats.distance_computations,
                "total_time_seconds": round(stats.total_time, 6),
                "compute_seconds": round(stats.compute_time, 6),
                "write_seconds": round(stats.write_time, 6),
                "estimated": bool(getattr(result, "estimated", False)),
            }
            shard_report = getattr(result, "shard_report", None)
            if shard_report is not None:
                summary["shards"] = shard_report["shards"]
                summary["shard_halo_points"] = shard_report["halo_points"]
                summary["shard_skew_ratio"] = shard_report["skew_ratio"]
            if args.output:
                summary["output_file"] = args.output
            if args.checkpoint:
                summary["checkpoint"] = args.checkpoint
            if trace_path:
                summary["trace_file"] = trace_path
            if args.metrics_out:
                summary["metrics_file"] = args.metrics_out
            if log_mode() == "json":
                # JSON-lines mode: the summary is one structured event so
                # every stderr line stays machine-parseable.
                logger.info("run summary", extra=summary)
            else:
                err = sys.stderr
                print(f"algorithm      : {result.algorithm}", file=err)
                print(f"points         : {len(points)} x {points.shape[1]}", file=err)
                print(f"query range    : {args.eps:g}", file=err)
                print(f"links emitted  : {stats.links_emitted}", file=err)
                print(f"groups emitted : {stats.groups_emitted}", file=err)
                print(f"output bytes   : {stats.bytes_written}", file=err)
                print(f"early stops    : {stats.early_stops}", file=err)
                print(f"distance comps : {stats.distance_computations}", file=err)
                print(
                    f"total time     : {stats.total_time:.3f}s "
                    f"(compute {stats.compute_time:.3f}s "
                    f"+ write {stats.write_time:.3f}s)",
                    file=err,
                )
                if summary["estimated"]:
                    print(
                        "NOTE: output exceeded the byte budget; figures above "
                        "are the paper's analytic estimate, no exact output "
                        "was written",
                        file=err,
                    )
                if shard_report is not None:
                    print(
                        f"shards         : {shard_report['shards']} "
                        f"({shard_report['partitioner']}, "
                        f"halo {shard_report['halo_points']} points, "
                        f"skew {shard_report['skew_ratio']:.3f})",
                        file=err,
                    )
                if args.output:
                    print(f"output file    : {args.output}", file=err)
                if args.checkpoint:
                    print(f"checkpoint     : {args.checkpoint}", file=err)
                if trace_path:
                    print(f"trace file     : {trace_path}", file=err)
                if args.metrics_out:
                    print(f"metrics file   : {args.metrics_out}", file=err)
            if args.verify:
                report = check_equivalence(
                    points, args.eps, result, metric=args.metric
                )
                if log_mode() == "json":
                    logger.info(
                        "verification", extra={"ok": report.ok, "report": repr(report)}
                    )
                else:
                    print(f"verification   : {report!r}", file=sys.stderr)
                if not report.ok:
                    return 1
            return 0
    except ReproError as exc:
        # In JSON mode the error must be a parseable record too; mark the
        # exception so main() does not add a second, plain-text line.
        if log_mode() == "json":
            logger.error(
                f"csj: error: {exc}", extra={"exit_code": exc.exit_code}
            )
            exc.cli_logged = True
        raise
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        disable_tracing()
        if configured_logging:
            reset_logging()  # never leak our handler into in-process callers


def _cmd_serve(args: argparse.Namespace) -> int:
    import json as _json

    from repro.api import open_service
    from repro.obs.metrics import get_registry, reset_registry
    from repro.resilience.chaos import OverloadInjector

    reset_registry()
    points = _load_points(args)
    chaos = OverloadInjector(
        seed=args.seed,
        slow_every=args.slow_every,
        slow_seconds=args.slow_ms / 1000.0,
        fail_at=args.fail_at,
    )
    service = open_service(
        queue_depth=args.queue_depth,
        deadline_ms=args.deadline_ms,
        executors=args.executors,
        workers=args.workers,
        engine=args.engine,
        seed=args.seed,
        cache_bytes=args.cache_bytes if args.cache else 0,
        data_plane=args.data_plane,
        shards=args.shards,
        partitioner=args.partitioner,
    )
    service.chaos = chaos
    if args.preload:
        # One shared segment + one packed index for the whole storm;
        # requests match the registered array by identity.
        points = service.register_dataset(
            points, shards=args.shards, partitioner=args.partitioner
        ).points
    if args.repeats < 1:
        from repro.errors import ValidationError

        raise ValidationError(f"--repeats must be >= 1, got {args.repeats}")
    base = chaos.storm(
        points,
        args.eps,
        requests=args.requests,
        algorithm=args.algorithm,
        g=args.g,
    )
    # Each repeat is its own wave: the point of a repeat is a cache hit,
    # not extra admission pressure, so waves are served back to back
    # rather than flooding the bounded queue with one giant batch.
    waves = [base] + [
        [
            dataclasses.replace(req, request_id=f"{req.request_id}-r{rep}")
            for req in base
        ]
        for rep in range(1, args.repeats)
    ]
    try:
        outcomes = []
        for wave in waves:
            outcomes.extend(service.serve(wave))
    finally:
        service.close()

    counts = service.counts()
    for outcome in outcomes:
        stats = outcome.result.stats if outcome.result is not None else None
        record = {
            "request": outcome.request_id,
            "status": outcome.status,
            "degraded": outcome.degraded,
            "links": stats.links_emitted if stats else None,
            "bytes": stats.bytes_written if stats else None,
            "retry_after": outcome.retry_after,
        }
        if args.json:
            print(_json.dumps(record))
        else:
            extra = ""
            if outcome.retry_after is not None:
                extra = f" retry_after={outcome.retry_after:.3f}s"
            print(
                f"{record['request']:<14} {record['status']:<12} "
                f"links={record['links']}{extra}"
            )
    snapshot = get_registry().snapshot()
    summary = {
        "requests": len(outcomes),
        "counts": counts,
        "peak_queue": service.peak_queue,
        "queue_depth": args.queue_depth,
        "metrics": {
            k: v
            for k, v in snapshot.items()
            if k.startswith(("repro_service", "repro_cache"))
        },
    }
    if args.json:
        print(_json.dumps(summary))
    else:
        print(
            f"served {summary['requests']} requests: {counts['admitted']} exact, "
            f"{counts['degraded']} degraded, {counts['shed']} shed, "
            f"{counts['breaker_open']} breaker-open, {counts['failed']} failed "
            f"(peak queue {service.peak_queue}/{args.queue_depth})",
            file=sys.stderr,
        )
    if args.strict:
        if counts["breaker_open"]:
            return 10
        if counts["shed"]:
            return 9
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    import json as _json

    from repro.api import maintained_join
    from repro.core.bruteforce import brute_force_links
    from repro.errors import ValidationError

    if not 0.0 <= args.delete_fraction <= 1.0:
        raise ValidationError(
            f"--delete-fraction must be in [0, 1], got {args.delete_fraction}"
        )
    points = _load_points(args)
    maintained = maintained_join(
        points, args.eps, g=args.g, index=args.index, metric=args.metric
    )
    rng = np.random.default_rng(args.seed + 1)
    lo, hi = points.min(axis=0), points.max(axis=0)
    for _ in range(args.updates):
        if rng.random() < args.delete_fraction and maintained.size > 2:
            live = maintained.live_ids()
            maintained.delete(int(live[rng.integers(len(live))]))
        else:
            maintained.insert(lo + rng.random(points.shape[1]) * (hi - lo))
    compacted = None
    verified = None
    if args.verify:
        # Before compaction so maintained ids still match the point rows.
        live = maintained.live_ids()
        sub = maintained.tree.points[np.asarray(live, dtype=np.intp)]
        expected = {
            (live[i], live[j])
            for i, j in brute_force_links(sub, args.eps, metric=args.metric)
        }
        verified = maintained.expanded_links() == expected
    if maintained.need_compact():
        compacted = len(maintained.compact())
    result = maintained.result()
    summary = {
        "points": maintained.size,
        "updates": dict(maintained.counts),
        "groups": result.stats.groups_emitted,
        "links": result.stats.links_emitted,
        "output_bytes": result.stats.bytes_written,
        "implied_links": result.implied_link_count(),
        "compacted_to": compacted,
        "verified": verified,
    }
    if args.json:
        print(_json.dumps(summary))
    else:
        counts = maintained.counts
        print(
            f"maintained join over {summary['points']} live points after "
            f"{counts['inserts']} inserts ({counts['absorbed']} absorbed, "
            f"{counts['residual']} residual links) and "
            f"{counts['deletes']} deletes: {summary['groups']} groups, "
            f"{summary['links']} links, {summary['output_bytes']} bytes "
            f"({summary['implied_links']} implied pairs)"
        )
        if verified is not None:
            print(f"expansion-equivalence vs brute force: "
                  f"{'OK' if verified else 'MISMATCH'}")
    if verified is False:
        print("csj: error: maintained result diverged from brute force",
              file=sys.stderr)
        return 1
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentConfig, ablations, tables
    from repro.experiments import exp4, fig5, fig6, fig7, fig8

    config = ExperimentConfig(iterations=args.iterations)
    if args.name == "fig5":
        names = [args.dataset] if args.dataset else None
        rows = fig5.run(datasets=names, config=config)
    elif args.name == "fig6":
        rows = fig6.run(n=args.n, config=config)
    elif args.name == "fig7":
        rows = fig7.run(config=config)
    elif args.name == "fig8":
        rows = fig8.run(n=args.n, config=config)
    elif args.name == "exp4":
        rows = exp4.run(n=args.n, config=config)
    elif args.name == "bulk":
        rows = ablations.run_bulk(n=args.n, config=config)
    elif args.name == "capacity":
        rows = ablations.run_capacity(n=args.n, config=config)
    elif args.name == "fractal":
        rows = ablations.run_fractal(n=args.n, config=config)
    elif args.name == "postprocess":
        rows = ablations.run_postprocess(n=args.n, config=config)
    else:
        rows = ablations.run_egrid(n=args.n, config=config)
    print(tables.format_table(rows, title=f"Experiment {args.name}"))
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro.api import similarity_join

    # Seven points shaped like the paper's Figure 1: a four-point dense
    # cluster, a nearby pair-bridging point, and an isolated pair.
    points = np.array(
        [
            [0.10, 0.12],  # 1
            [0.13, 0.10],  # 2
            [0.11, 0.15],  # 3
            [0.14, 0.14],  # 4
            [0.18, 0.16],  # 5
            [0.60, 0.60],  # 6
            [0.63, 0.62],  # 7
        ]
    )
    eps = 0.07
    standard = similarity_join(points, eps, algorithm="ssj", max_entries=4)
    compact = similarity_join(points, eps, algorithm="csj", g=10, max_entries=4)
    print("Figure 1 walk-through (7 points, query range", eps, ")")
    print(f"standard join : {sorted(standard.links)}")
    print(f"  -> {standard.stats.links_emitted} links, "
          f"{standard.output_bytes} bytes")
    print(f"compact join  : groups={compact.groups} links={sorted(compact.links)}")
    print(f"  -> {compact.stats.groups_emitted} groups + "
          f"{compact.stats.links_emitted} links, {compact.output_bytes} bytes")
    saved = 1 - compact.output_bytes / standard.output_bytes
    print(f"space savings : {saved:.0%}, losslessly "
          f"(expansions equal: {compact.expanded_links() == standard.expanded_links()})")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.api import similarity_join
    from repro.core.clusters import component_sizes, connected_components
    from repro.datasets import load_dataset

    points = load_dataset(args.dataset, args.n, seed=args.seed)
    result = similarity_join(points, args.eps, algorithm="csj", g=args.g)
    labels = connected_components(result, len(points))
    sizes = component_sizes(labels)
    nontrivial = sizes[sizes > 1]
    print(f"points          : {len(points)}")
    print(f"compact output  : {result.stats.groups_emitted} groups + "
          f"{result.stats.links_emitted} links ({result.output_bytes} bytes)")
    print(f"clusters        : {len(nontrivial)} with >= 2 members, "
          f"{int((sizes == 1).sum())} singletons")
    print(f"largest clusters: "
          f"{sorted(nontrivial.tolist(), reverse=True)[: args.top]}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Failures map to distinct nonzero exit codes (the registry in
    :mod:`repro.errors` is the source of truth): invalid input 2, budget
    exceeded 3, sink I/O 4, corrupt checkpoint/index file 5, poison task
    6, worker pool failure 7, disk full / read-only storage 8, admission
    rejected / request shed 9, circuit breaker open 10, any other error
    1 — with a one-line message on stderr instead of a traceback.
    """
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    try:
        if args.command == "join":
            return _cmd_join(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "update":
            return _cmd_update(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "cluster":
            return _cmd_cluster(args)
        return _cmd_demo(args)
    except ReproError as exc:
        if not getattr(exc, "cli_logged", False):
            print(f"csj: error: {exc}", file=sys.stderr)
        return exc.exit_code
    except OSError as exc:
        from repro.errors import DiskFullError, is_disk_full

        print(f"csj: error: {exc}", file=sys.stderr)
        # A raw ENOSPC/EROFS that reached the CLI uncaught still maps to
        # the typed disk-full exit code, not the generic 1.
        return DiskFullError.exit_code if is_disk_full(exc) else 1


if __name__ == "__main__":
    sys.exit(main())
