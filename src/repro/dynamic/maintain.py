"""Incremental maintenance of a materialized compact join.

:class:`MaintainedJoin` materializes one compact self-join — CSJ(g)
groups plus residual links — and keeps it consistent under point
updates without re-running the join:

* **insert** — one ε-range probe against the live index classifies the
  new point.  If some existing group's MBR, extended to cover the
  point, keeps its diagonal strictly below ε, the point is *absorbed*:
  every group member is then provably within ε of it (the diagonal
  bounds all pairwise distances inside the box), so group expansion
  covers those pairs for free.  Neighbors outside the absorbing group
  become residual links.
* **delete** — the point leaves the index, its residual links are
  dropped, and each group containing it shrinks in place (the
  survivors were mutually qualifying before, and removing a member
  cannot break that); degenerate groups dissolve.

**Correctness contract (expansion-equivalence).**  After any sequence
of updates, ``result().expanded_links()`` equals the expanded links of
a from-scratch join over the current live points.  Insert adds exactly
the probe's qualifying pairs (absorbed members via the group, the rest
as links); delete removes exactly the pairs involving the departed
point.  Both directions are property-tested against brute force in
``tests/test_dynamic.py``.

The maintained state is *a* valid compact representation, not
necessarily the byte-identical output CSJ(g) would produce from
scratch — the merge window's history-dependence makes that impossible
to preserve under updates (and irrelevant: the paper's Theorems 1 and 2
speak about the expansion, which is preserved exactly).
"""

from __future__ import annotations

import hashlib
from math import sqrt
from typing import Iterable, Optional, Union

import numpy as np

from repro.core.csj import csj as _csj
from repro.core.results import CollectSink, JoinResult, normalized_link
from repro.errors import InvalidInputError, validate_eps, validate_points
from repro.geometry.metrics import get_metric
from repro.index import SpatialIndex, get_index_class
from repro.io.writer import width_for
from repro.obs.logging import get_logger

__all__ = ["DynGroup", "MaintainedJoin", "dataset_fingerprint"]

logger = get_logger("dynamic")


def dataset_fingerprint(points: np.ndarray, live_ids: Iterable[int]) -> str:
    """Content hash of a dataset state: live ids plus their coordinates.

    Two states with the same fingerprint hold the same points under the
    same ids, so any join over them is interchangeable — this is the
    dataset component of the result-cache key.
    """
    ids = np.asarray(sorted(int(i) for i in live_ids), dtype=np.int64)
    digest = hashlib.sha256()
    digest.update(ids.tobytes())
    digest.update(np.ascontiguousarray(points[ids], dtype=float).tobytes())
    return digest.hexdigest()


class DynGroup:
    """A maintained group: member ids plus its bounding corners."""

    __slots__ = ("ids", "lo", "hi")

    def __init__(self, ids: set[int], lo: list[float], hi: list[float]):
        self.ids = ids
        self.lo = lo
        self.hi = hi

    def __len__(self) -> int:
        return len(self.ids)

    def __repr__(self) -> str:
        return f"DynGroup(size={len(self.ids)}, lo={self.lo}, hi={self.hi})"


class MaintainedJoin:
    """A compact self-join kept consistent under point updates.

    Parameters mirror :func:`repro.api.similarity_join`'s compact path:
    ``eps`` is the query range, ``g`` the merge-window length used for
    the initial materialization, ``index`` the backing tree (it must
    support ``insert``/``delete``; all three bundled trees do).

    The instance owns its index and point store.  Point ids are stable
    across updates — :meth:`insert` returns the id it assigned (reusing
    tombstoned slots), and ids only move when the caller explicitly
    invokes :meth:`compact`, which returns the remapping.
    """

    def __init__(
        self,
        points: np.ndarray,
        eps: float,
        g: int = 10,
        metric: object = None,
        index: Union[str, SpatialIndex] = "rstar",
        max_entries: int = 64,
        engine: str = "vectorized",
    ):
        points = validate_points(points)
        self.eps = validate_eps(eps)
        if g < 0:
            raise InvalidInputError(f"window size g must be >= 0, got {g}")
        self.g = int(g)
        self.metric = get_metric(metric)
        self.engine = engine
        if isinstance(index, SpatialIndex):
            self.tree = index
        else:
            self.tree = get_index_class(index)(
                points, metric=self.metric, max_entries=max_entries
            )
        self._euclidean = self.metric.name == "euclidean"
        #: gid -> DynGroup; gids are never reused.
        self._groups: dict[int, DynGroup] = {}
        self._next_gid = 0
        #: pid -> gids of the groups containing it.
        self._pid_groups: dict[int, set[int]] = {}
        #: Residual links as canonical (min, max) pairs.
        self._links: set[tuple[int, int]] = set()
        #: pid -> ids it is residually linked to.
        self._pid_links: dict[int, set[int]] = {}
        #: Update counters (feed the service metrics).
        self.counts = {"inserts": 0, "deletes": 0, "absorbed": 0, "residual": 0}
        self._materialize()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _materialize(self) -> None:
        """From-scratch CSJ(g) run seeding the maintained state."""
        sink = CollectSink(id_width=width_for(len(self.tree.points)))
        result = _csj(self.tree, self.eps, self.g, sink, engine=self.engine)
        self._seed(result)

    @classmethod
    def from_result(
        cls,
        points: np.ndarray,
        result: JoinResult,
        metric: object = None,
        index: Union[str, SpatialIndex] = "rstar",
        max_entries: int = 64,
        engine: str = "vectorized",
    ) -> "MaintainedJoin":
        """Adopt an already-computed compact join instead of recomputing.

        ``result`` must be a *compact self-join* result over exactly
        ``points`` (links + groups; group pairs are a spatial-join
        artifact and rejected).  The index is still built — updates need
        it — but the O(n log n + output) join phase is skipped.
        """
        if result.group_pairs:
            raise InvalidInputError(
                "from_result needs a self-join result; group pairs imply "
                "a two-dataset spatial join"
            )
        self = cls.__new__(cls)
        points = validate_points(points)
        self.eps = validate_eps(result.eps)
        self.g = int(result.g) if result.g is not None else 10
        self.metric = get_metric(metric)
        self.engine = engine
        if isinstance(index, SpatialIndex):
            self.tree = index
        else:
            self.tree = get_index_class(index)(
                points, metric=self.metric, max_entries=max_entries
            )
        self._euclidean = self.metric.name == "euclidean"
        self._groups = {}
        self._next_gid = 0
        self._pid_groups = {}
        self._links = set()
        self._pid_links = {}
        self.counts = {"inserts": 0, "deletes": 0, "absorbed": 0, "residual": 0}
        self._seed(result)
        return self

    def _seed(self, result: JoinResult) -> None:
        pts = self.tree.points
        for ids in result.groups:
            members = set(int(i) for i in ids)
            coords = pts[np.asarray(sorted(members), dtype=np.intp)]
            self._new_group(
                members, coords.min(axis=0).tolist(), coords.max(axis=0).tolist()
            )
        for i, j in result.links:
            i, j = int(i), int(j)
            # Links already implied by a shared group would double-count
            # on later deletes; the maintained state keeps them disjoint.
            shared = self._pid_groups.get(i, set()) & self._pid_groups.get(j, set())
            if not shared:
                self._add_link(i, j)

    # ------------------------------------------------------------------
    # State primitives
    # ------------------------------------------------------------------
    def _new_group(self, ids: set[int], lo: list[float], hi: list[float]) -> int:
        gid = self._next_gid
        self._next_gid += 1
        self._groups[gid] = DynGroup(ids, lo, hi)
        for pid in ids:
            self._pid_groups.setdefault(pid, set()).add(gid)
        return gid

    def _drop_group(self, gid: int) -> None:
        group = self._groups.pop(gid)
        for pid in group.ids:
            members = self._pid_groups.get(pid)
            if members is not None:
                members.discard(gid)
                if not members:
                    del self._pid_groups[pid]

    def _add_link(self, i: int, j: int) -> None:
        self._links.add(normalized_link(i, j))
        self._pid_links.setdefault(i, set()).add(j)
        self._pid_links.setdefault(j, set()).add(i)

    def _drop_links_of(self, pid: int) -> None:
        for other in self._pid_links.pop(pid, set()):
            self._links.discard(normalized_link(pid, other))
            peers = self._pid_links.get(other)
            if peers is not None:
                peers.discard(pid)
                if not peers:
                    del self._pid_links[other]

    def _diagonal_ok(self, lo: list[float], hi: list[float]) -> bool:
        """Strict diagonal-below-ε test, bit-identical to the merge window.

        Matches :class:`repro.core.groups.GroupBuffer`: Euclidean takes
        ``sqrt`` of the scalar squared sum (comparing squares against
        ``eps**2`` can flip strictness on exact-distance ties), other
        metrics go through ``metric.norm_seq``.
        """
        spans = [h - l for l, h in zip(lo, hi)]
        if self._euclidean:
            return sqrt(sum(s * s for s in spans)) < self.eps
        return self.metric.norm_seq(spans) < self.eps

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, coords: np.ndarray, pid: Optional[int] = None) -> int:
        """Add one point; returns its id.

        A single ε-range probe classifies the point: absorbed into the
        first (lowest-gid) group whose extended MBR keeps its diagonal
        below ε, with the remaining qualifying neighbors as residual
        links; or, with no absorbing group, all neighbors become links.
        """
        coords = np.asarray(coords, dtype=float).ravel()
        pid = self.tree.add_point(coords, pid=pid)
        point = self.tree.points[pid]
        neighbors = set(
            int(n) for n in self.tree.range_query(point, self.eps) if int(n) != pid
        )
        self.counts["inserts"] += 1
        absorbed: Optional[DynGroup] = None
        candidate_gids = sorted(
            {gid for n in neighbors for gid in self._pid_groups.get(n, ())}
        )
        for gid in candidate_gids:
            group = self._groups[gid]
            lo = [min(l, c) for l, c in zip(group.lo, point.tolist())]
            hi = [max(h, c) for h, c in zip(group.hi, point.tolist())]
            if self._diagonal_ok(lo, hi):
                group.ids.add(pid)
                group.lo, group.hi = lo, hi
                self._pid_groups.setdefault(pid, set()).add(gid)
                absorbed = group
                self.counts["absorbed"] += 1
                break
        residual = neighbors - absorbed.ids if absorbed is not None else neighbors
        for other in residual:
            self._add_link(pid, other)
        self.counts["residual"] += len(residual)
        return pid

    def delete(self, pid: int) -> bool:
        """Remove one point; returns whether it was present."""
        if not self.tree.delete(pid):
            return False
        self.counts["deletes"] += 1
        self._drop_links_of(pid)
        for gid in list(self._pid_groups.pop(pid, set())):
            group = self._groups[gid]
            group.ids.discard(pid)
            if len(group.ids) < 2:
                self._drop_group(gid)
            else:
                # Tighten: survivors were mutually qualifying before, so
                # the shrunk box's diagonal stays below ε; tightening only
                # improves later absorption.
                coords = self.tree.points[
                    np.asarray(sorted(group.ids), dtype=np.intp)
                ]
                group.lo = coords.min(axis=0).tolist()
                group.hi = coords.max(axis=0).tolist()
        return True

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------
    def need_compact(self) -> bool:
        """Whether delete tombstones warrant a :meth:`compact`."""
        return self.tree.need_compact()

    def compact(self) -> dict[int, int]:
        """Physically drop tombstoned rows; returns the id remapping.

        Every maintained id — group members, links — is rewritten with
        the mapping the index reports, so the join state stays
        consistent.  Callers holding ids must apply the same mapping.
        """
        mapping = self.tree.compact()
        self._links = {
            (mapping[i], mapping[j]) for i, j in self._links
        }
        self._pid_links = {
            mapping[pid]: {mapping[o] for o in others}
            for pid, others in self._pid_links.items()
        }
        self._pid_groups = {
            mapping[pid]: gids for pid, gids in self._pid_groups.items()
        }
        for group in self._groups.values():
            group.ids = {mapping[i] for i in group.ids}
        return mapping

    # ------------------------------------------------------------------
    # Introspection / output
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of live points."""
        return len(self.tree.points) - len(self.tree._deleted)

    def live_ids(self) -> list[int]:
        """Sorted ids of the live points."""
        deleted = self.tree._deleted
        return [i for i in range(len(self.tree.points)) if i not in deleted]

    def fingerprint(self) -> str:
        """Content hash of the current dataset state (cache key part)."""
        return dataset_fingerprint(self.tree.points, self.live_ids())

    def result(self) -> JoinResult:
        """The maintained join as a deterministic :class:`JoinResult`.

        Groups first (two-member groups written as plain links, exactly
        like the merge window's write-out), then residual links, each in
        sorted order — so two equal states always produce byte-identical
        output.
        """
        sink = CollectSink(id_width=width_for(len(self.tree.points)))
        two_member: list[tuple[int, int]] = []
        bigger: list[tuple[int, ...]] = []
        for group in self._groups.values():
            ids = tuple(sorted(group.ids))
            if len(ids) == 2:
                two_member.append((ids[0], ids[1]))
            else:
                bigger.append(ids)
        for ids in sorted(bigger):
            sink.write_group(ids)
        for i, j in sorted(set(two_member) | self._links):
            sink.write_link(i, j)
        label = f"csj({self.g})+dynamic" if self.g else "ncsj+dynamic"
        return JoinResult.from_sink(
            sink,
            eps=self.eps,
            algorithm=label,
            g=self.g,
            index_name=self.tree.name,
        )

    def expanded_links(self) -> set[tuple[int, int]]:
        """All links the maintained state implies (for equivalence checks)."""
        expanded = set(self._links)
        for group in self._groups.values():
            ids = sorted(group.ids)
            for a in range(len(ids)):
                for b in range(a + 1, len(ids)):
                    expanded.add((ids[a], ids[b]))
        return expanded

    def validate(self) -> None:
        """Internal consistency checks (index + join-state invariants)."""
        self.tree.validate()
        deleted = self.tree._deleted
        for gid, group in self._groups.items():
            if len(group.ids) < 2:
                raise AssertionError(f"group {gid} degenerate: {group.ids}")
            if not self._diagonal_ok(group.lo, group.hi):
                raise AssertionError(f"group {gid} diagonal >= eps")
            for pid in group.ids:
                if pid in deleted:
                    raise AssertionError(f"group {gid} holds deleted id {pid}")
                if gid not in self._pid_groups.get(pid, set()):
                    raise AssertionError(f"group map misses {pid} -> {gid}")
        for i, j in self._links:
            if i in deleted or j in deleted:
                raise AssertionError(f"link ({i}, {j}) touches a deleted id")

    def __repr__(self) -> str:
        return (
            f"MaintainedJoin(eps={self.eps:g}, g={self.g}, points={self.size}, "
            f"groups={len(self._groups)}, links={len(self._links)})"
        )
