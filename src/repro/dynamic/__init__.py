"""Incremental maintenance of a materialized compact join.

The paper's compact representation makes the join *result* small enough
to keep resident; this package keeps such a result — groups plus
residual links — consistent under point insertions and deletions
without recomputing the join (in the spirit of dynamic enumeration of
similarity joins).  See :class:`repro.dynamic.maintain.MaintainedJoin`.
"""

from repro.dynamic.maintain import DynGroup, MaintainedJoin

__all__ = ["DynGroup", "MaintainedJoin"]
