"""Typed exception hierarchy and input validation.

Every failure the library raises deliberately derives from
:class:`ReproError`, so callers (and the CLI) can catch one base class and
map each failure kind to a meaningful exit code instead of letting a deep
``IndexError`` or an unpickling traceback leak out.  Each subclass also
keeps compatibility with the builtin exception callers historically
caught: :class:`InvalidInputError` is a ``ValueError``,
:class:`BudgetExceededError` a ``RuntimeError``, and :class:`SinkIOError`
an ``OSError``.

:func:`validate_points` and :func:`validate_eps` enforce the input
contract (2-D finite float array, positive finite range) at the public
API boundary — the tree and grid internals may assume clean input.
"""

from __future__ import annotations

import errno as _errno
import math
from typing import Optional

import numpy as np

__all__ = [
    "ReproError",
    "InvalidInputError",
    "ValidationError",
    "BudgetExceededError",
    "SinkIOError",
    "DiskFullError",
    "CheckpointCorruptError",
    "PoisonTaskError",
    "WorkerPoolError",
    "AdmissionRejectedError",
    "CircuitOpenError",
    "EXIT_CODES",
    "exit_code_registry",
    "FATAL_STORAGE_ERRNOS",
    "errno_name",
    "is_disk_full",
    "validate_points",
    "validate_eps",
]


class ReproError(Exception):
    """Base class for all deliberate library failures.

    ``exit_code`` is the process exit status the CLI maps the failure to.
    """

    exit_code = 1


class InvalidInputError(ReproError, ValueError):
    """The caller's input violates the API contract.

    Raised for empty or non-2-D point arrays, NaN/inf coordinates,
    non-numeric dtypes, and non-positive query ranges.
    """

    exit_code = 2


class ValidationError(InvalidInputError):
    """An internal consistency precondition does not hold for the call.

    A narrower :class:`InvalidInputError` (same exit code) raised when
    structured data reaching a library routine — replayed task events, a
    maintained-join update — references machinery the caller did not
    provide, e.g. a group event replayed without a group window.
    """


class BudgetExceededError(ReproError, RuntimeError):
    """A resource budget was breached during a join run.

    ``kind`` names the breached dimension (``"deadline"``,
    ``"output_bytes"`` or ``"groups"``); ``limit`` and ``actual`` quantify
    it.  When the run produced durable partial output before stopping, the
    raiser attaches it as :attr:`partial` (a
    :class:`~repro.core.results.JoinResult` holding a valid prefix of the
    full output — Theorem 2 still holds for every emitted link and group).
    """

    def __init__(self, kind: str, limit: float, actual: float, message: Optional[str] = None):
        self.kind = kind
        self.limit = limit
        self.actual = actual
        #: Partial result (valid output prefix), attached by the algorithm.
        self.partial = None
        super().__init__(
            message or f"{kind} budget exceeded: {actual:g} > limit {limit:g}"
        )

    exit_code = 3


class SinkIOError(ReproError, OSError):
    """Writing join output failed and retries (if any) were exhausted."""

    exit_code = 4


#: Errnos no retry can fix: the storage itself is out of space or
#: read-only.  Retrying burns the backoff budget for nothing; callers
#: fail fast with :class:`DiskFullError` instead.
FATAL_STORAGE_ERRNOS = frozenset(
    code
    for code in (
        _errno.ENOSPC,
        _errno.EROFS,
        getattr(_errno, "EDQUOT", None),
    )
    if code is not None
)


def errno_name(code: Optional[int]) -> str:
    """The symbolic name of an errno (``"enospc"``), or ``"unknown"``."""
    if code is None:
        return "unknown"
    return _errno.errorcode.get(int(code), f"errno_{int(code)}").lower()


def is_disk_full(exc: BaseException) -> bool:
    """Whether an ``OSError`` signals exhausted/read-only storage."""
    return (
        isinstance(exc, OSError)
        and getattr(exc, "errno", None) in FATAL_STORAGE_ERRNOS
    )


class DiskFullError(SinkIOError):
    """Durable storage is exhausted (``ENOSPC``/``EDQUOT``) or read-only.

    Raised *without* burning the retry budget — no backoff schedule fixes
    a full disk.  A checkpointed run that hits it leaves the journal and
    the output's durable prefix intact, so after space is freed the run
    resumes from the last checkpoint.  As a :class:`SinkIOError`
    subclass it stays catchable by existing ``SinkIOError`` handlers
    while mapping to its own CLI exit code.
    """

    exit_code = 8

    @classmethod
    def wrap(cls, exc: OSError, context: str) -> "DiskFullError":
        wrapped = cls(f"{context}: {exc}")
        wrapped.errno = getattr(exc, "errno", None)
        return wrapped


class CheckpointCorruptError(ReproError):
    """A persisted artifact (index file or join journal) failed to load.

    ``path`` is the offending file.  Raised instead of whatever low-level
    exception the truncated or corrupt bytes produced.
    """

    def __init__(self, path: str, reason: str = "corrupt or truncated file"):
        self.path = str(path)
        self.reason = reason
        super().__init__(f"{self.path}: {reason}")

    exit_code = 5


class PoisonTaskError(ReproError):
    """One work unit repeatedly killed or failed its worker and was quarantined.

    ``task_id`` identifies the offending unit in the canonical task
    sequence; ``attempts`` counts how many executions were tried before
    quarantine; ``last_error`` describes the final failure (``None`` when
    the worker died without reporting).  When the rest of the join
    completed, the scheduler attaches everything else as :attr:`partial`
    (a :class:`~repro.core.results.JoinResult`).
    """

    exit_code = 6

    def __init__(
        self,
        task_id: int,
        attempts: int,
        last_error: Optional[str] = None,
        message: Optional[str] = None,
    ):
        self.task_id = int(task_id)
        self.attempts = int(attempts)
        self.last_error = last_error
        #: Partial result from the non-poisoned tasks, attached by the scheduler.
        self.partial = None
        detail = f": {last_error}" if last_error else ""
        super().__init__(
            message
            or f"task {task_id} quarantined after {attempts} failed attempts{detail}"
        )


class WorkerPoolError(ReproError):
    """The parallel worker pool itself failed (not one specific task).

    Raised when workers cannot be (re)spawned or the pool loses all
    workers for reasons unrelated to any single work unit.
    """

    exit_code = 7


class AdmissionRejectedError(ReproError):
    """The serving layer shed a request before admitting it.

    Raised by :class:`~repro.service.JoinService` when the bounded
    admission queue is full (backpressure) — the request was never
    started, so retrying after :attr:`retry_after` seconds is always
    safe.  ``queue_depth`` is the configured bound that was hit.
    """

    exit_code = 9

    def __init__(
        self,
        queue_depth: int,
        retry_after: float = 0.0,
        message: Optional[str] = None,
    ):
        self.queue_depth = int(queue_depth)
        #: Suggested wait before resubmitting, in seconds (``Retry-After``).
        self.retry_after = float(retry_after)
        #: The serving layer's ``RequestOutcome`` for this rejection,
        #: attached by ``JoinService.submit`` so batch callers get the
        #: exact outcome object without scanning the audit trail.
        self.outcome = None
        super().__init__(
            message
            or (
                f"admission queue full (depth {queue_depth}); "
                f"retry after {self.retry_after:.3f}s"
            )
        )


class CircuitOpenError(ReproError):
    """A circuit breaker is open and the guarded component was not called.

    ``component`` names the guarded dependency (``"worker-pool"``,
    ``"sink"``); :attr:`retry_after` is the remaining cooldown before the
    breaker will admit a half-open probe.  Failing fast here protects a
    struggling dependency from a retry storm.
    """

    exit_code = 10

    def __init__(
        self,
        component: str,
        retry_after: float = 0.0,
        message: Optional[str] = None,
    ):
        self.component = str(component)
        #: Remaining cooldown before a half-open probe, in seconds.
        self.retry_after = float(retry_after)
        #: The serving layer's ``RequestOutcome`` for this rejection,
        #: attached by ``JoinService.submit`` (``None`` when raised
        #: outside the serving layer, e.g. by the scheduler's gate).
        self.outcome = None
        super().__init__(
            message
            or (
                f"circuit breaker for {component!r} is open; "
                f"retry after {self.retry_after:.3f}s"
            )
        )


#: The single source of truth for process exit codes.  The CLI, the chaos
#: demo, and the DESIGN.md failure table must all agree with this mapping
#: (``tests/test_errors.py`` enforces it).  Exit code 0 is success and 1
#: is the catch-all ``ReproError``; codes 2-10 identify specific typed
#: failures.
EXIT_CODES: dict[int, type] = {
    1: ReproError,
    2: InvalidInputError,
    3: BudgetExceededError,
    4: SinkIOError,
    5: CheckpointCorruptError,
    6: PoisonTaskError,
    7: WorkerPoolError,
    8: DiskFullError,
    9: AdmissionRejectedError,
    10: CircuitOpenError,
}


def exit_code_registry() -> dict[int, type]:
    """A copy of the exit-code registry, validated for consistency.

    Every entry's class attribute must match its registry key — a
    mismatch means someone edited one side without the other.
    """
    for code, cls in EXIT_CODES.items():
        if cls.exit_code != code:
            raise AssertionError(
                f"exit-code registry mismatch: {cls.__name__}.exit_code "
                f"is {cls.exit_code}, registry says {code}"
            )
    return dict(EXIT_CODES)


def validate_points(points: object, name: str = "points") -> np.ndarray:
    """Validate and normalise a point array at the API boundary.

    Returns the input as a float64 ``(n, d)`` array.  Raises
    :class:`InvalidInputError` for non-numeric dtypes, wrong rank, empty
    arrays, and non-finite coordinates.
    """
    try:
        arr = np.asarray(points, dtype=float)
    except (TypeError, ValueError) as exc:
        raise InvalidInputError(f"{name} must be numeric: {exc}") from None
    if arr.ndim != 2:
        raise InvalidInputError(
            f"{name} must be a 2-D (n, d) array, got shape {arr.shape}"
        )
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise InvalidInputError(f"{name} must be non-empty, got shape {arr.shape}")
    if not np.isfinite(arr).all():
        bad = int(np.flatnonzero(~np.isfinite(arr).all(axis=1))[0])
        raise InvalidInputError(
            f"{name} contains NaN or infinite coordinates (first bad row: {bad})"
        )
    return arr


def validate_eps(eps: float, name: str = "eps") -> float:
    """Validate a query range: a positive, finite number."""
    try:
        value = float(eps)
    except (TypeError, ValueError) as exc:
        raise InvalidInputError(f"{name} must be a number: {exc}") from None
    if not math.isfinite(value) or value <= 0:
        raise InvalidInputError(f"{name} must be positive and finite, got {eps!r}")
    return value
