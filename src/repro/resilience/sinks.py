"""Crash-safe output sinks.

Three sinks with increasing guarantees:

* :class:`DurableTextSink` — a :class:`~repro.core.results.TextSink` that
  can append to an existing file and force written bytes to stable
  storage on demand; the building block of checkpointed execution.
* :class:`AtomicTextSink` — all-or-nothing publication.  Output is
  written to a temporary sibling file and moved into place with the
  classic write → flush → fsync → rename sequence only on a clean close;
  a crash (or an exception propagating through the ``with`` block) leaves
  the destination untouched.
* :class:`RetryingSink` — wraps any sink and absorbs *transient*
  ``OSError`` s with bounded exponential backoff, raising
  :class:`~repro.errors.SinkIOError` only after the retry budget is
  exhausted.  Errnos are classified first: failures no retry can fix
  (``ENOSPC``/``EDQUOT``/``EROFS``) fail fast with
  :class:`~repro.errors.DiskFullError` instead of burning the budget.

All durable file operations (open, fsync, rename, parent-directory
fsync) go through the seam in :mod:`repro.io.durable`, so the
crash-consistency harness can record and fault-inject every one.

Accounting note: the wrappers delegate to the inner sink's public
methods, so bytes, counters and write timing are charged exactly once, on
the inner sink's shared :class:`~repro.stats.counters.JoinStats`.
"""

from __future__ import annotations

import os
import random
import time
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.core.results import JoinSink, TextSink
from repro.errors import DiskFullError, SinkIOError, errno_name, is_disk_full
from repro.io.durable import best_effort_fsync_dir
from repro.io.writer import FixedWidthWriter
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.stats.counters import JoinStats

if TYPE_CHECKING:
    from repro.resilience.budget import Budget

__all__ = ["AtomicTextSink", "DurableTextSink", "RetryingSink"]

logger = get_logger("resilience.sinks")


class DurableTextSink(TextSink):
    """A text sink with append support and explicit durability control."""

    def __init__(
        self,
        path: str,
        stats: Optional[JoinStats] = None,
        id_width: int = 8,
        append: bool = False,
    ):
        JoinSink.__init__(self, stats, id_width)
        self.path = os.fspath(path)
        self._writer = FixedWidthWriter(
            self.path, width=id_width, mode="a" if append else "w"
        )

    def sync(self) -> None:
        """Flush and fsync: everything written so far survives a crash."""
        self._writer.sync()

    def tell(self) -> int:
        """Current byte offset in the output file."""
        return self._writer.tell()


class AtomicTextSink(TextSink):
    """All-or-nothing text output: temp file, fsync, then rename.

    The destination path either holds the complete join output or is
    untouched — never a torn prefix.  Used as a context manager, an
    exception aborts the write and removes the temporary file; a clean
    exit publishes.  :attr:`committed` records which happened.
    """

    def __init__(self, path: str, stats: Optional[JoinStats] = None, id_width: int = 8):
        self._tmp_path = os.fspath(path) + ".part"
        self.committed = False
        self._closed = False
        super().__init__(self._tmp_path, stats, id_width)
        # After the super() call: TextSink recorded the temp file as the
        # destination; the published path is what callers should see.
        self.path = os.fspath(path)

    def close(self) -> None:
        """Publish atomically: flush → fsync → rename over the target."""
        if self._closed:
            return
        self._closed = True
        fs = self._writer.fs
        self._writer.sync()
        self._writer.close()
        fs.replace(self._tmp_path, self.path)
        # Make the rename itself durable; a platform that cannot fsync
        # directories downgrades to best effort — with a structured
        # warning and a metric, never silently.
        best_effort_fsync_dir(os.path.dirname(os.path.abspath(self.path)), fs)
        self.committed = True

    def abort(self) -> None:
        """Discard the temporary file; the destination stays untouched."""
        if self._closed:
            return
        self._closed = True
        fs = self._writer.fs
        self._writer.close()
        try:
            fs.unlink(self._tmp_path)
        except FileNotFoundError:
            pass

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


class RetryingSink(JoinSink):
    """Bounded-backoff retries around a flaky inner sink.

    Each write is attempted up to ``1 + max_retries`` times; transient
    ``OSError`` s (``EIO``, ``EAGAIN``, ...) are swallowed and retried
    after a backoff pause, and when the budget is exhausted the last
    error is wrapped in :class:`~repro.errors.SinkIOError`.  Errnos that
    retrying cannot fix — ``ENOSPC``, ``EDQUOT``, ``EROFS`` — fail fast
    with :class:`~repro.errors.DiskFullError` on the first attempt.
    Every observed errno is exported as a labelled
    ``repro_sink_errno_total`` counter.

    With ``jitter`` (the default) pauses follow *decorrelated jitter*:
    each is drawn uniformly from ``[base_delay, 3 * previous_pause]``,
    capped at ``max_delay``.  Synchronized retry storms from many
    writers decorrelate while the expected pause still grows
    geometrically.  The draw uses a private ``random.Random(seed)`` —
    backoff timing never touches global randomness or join output.
    With ``jitter=False`` the pause is the deterministic
    ``base_delay * 2**k`` (capped), which tests pin down exactly.

    Two clocks bound the *total* time spent retrying, so retries can
    never outlive the run's deadline: ``max_elapsed`` caps the seconds a
    single ``_attempt`` may accumulate sleeping, and ``budget`` (a
    :class:`~repro.resilience.budget.Budget` with a deadline) trims every
    pause to the deadline's remaining seconds — once nothing remains,
    the sink gives up immediately instead of sleeping through it.  The
    budget's *composed* deadline applies: an absolute request deadline
    armed with :meth:`~repro.resilience.budget.Budget.arm_deadline`
    binds even when the relative clock was restarted, so a late retry
    can never sleep past the request deadline.

    ``sleep`` is injectable so tests (and the chaos harness) run at full
    speed.  Retrying re-invokes the inner sink's public method, which is
    exact when the failed attempt wrote nothing (the inner sink updates
    its accounting only after a successful store); a torn partial line
    from a genuine mid-write crash is the checkpoint journal's job to
    truncate, not this wrapper's.
    """

    def __init__(
        self,
        inner: JoinSink,
        max_retries: int = 4,
        base_delay: float = 0.01,
        max_delay: float = 1.0,
        sleep: Callable[[float], None] = time.sleep,
        jitter: bool = True,
        seed: int = 0,
        max_elapsed: Optional[float] = None,
        budget: Optional["Budget"] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if max_elapsed is not None and max_elapsed < 0:
            raise ValueError(f"max_elapsed must be >= 0, got {max_elapsed}")
        super().__init__(inner.stats, inner.id_width)
        self.inner = inner
        self.max_retries = max_retries
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter = jitter
        self.max_elapsed = max_elapsed
        self.budget = budget
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._clock = clock
        #: Transient failures absorbed so far.
        self.retries = 0

    def _time_left(self, started: float) -> Optional[float]:
        """Seconds of retry headroom remaining, or ``None`` if unbounded."""
        left: Optional[float] = None
        if self.max_elapsed is not None:
            left = self.max_elapsed - (self._clock() - started)
        if self.budget is not None:
            remaining = self.budget.remaining_seconds()
            if remaining is not None:
                left = remaining if left is None else min(left, remaining)
        return left

    def _attempt(self, fn: Callable, *args: object) -> None:
        delay = self.base_delay
        started = self._clock()
        for attempt in range(self.max_retries + 1):
            try:
                fn(*args)
                return
            except SinkIOError:
                raise  # already final: do not re-wrap or re-retry
            except OSError as exc:
                get_registry().counter(
                    "repro_sink_errno_total",
                    "Sink write OSErrors by errno",
                    labels={"errno": errno_name(getattr(exc, "errno", None))},
                ).inc()
                if is_disk_full(exc):
                    # No backoff schedule fixes a full or read-only disk:
                    # fail fast, leaving the checkpoint journal (and the
                    # output's durable prefix) intact for a later resume.
                    raise DiskFullError.wrap(
                        exc, "durable storage exhausted; sink write failed"
                    ) from exc
                if attempt == self.max_retries:
                    raise SinkIOError(
                        f"sink write failed after {attempt + 1} attempts: {exc}"
                    ) from exc
                if self.jitter:
                    pause = min(
                        self.max_delay,
                        self._rng.uniform(self.base_delay, max(delay, self.base_delay) * 3),
                    )
                    delay = pause
                else:
                    pause = min(delay, self.max_delay)
                    delay *= 2
                left = self._time_left(started)
                if left is not None:
                    if left <= 0:
                        raise SinkIOError(
                            f"sink write failed after {attempt + 1} attempts "
                            f"and the retry time budget is exhausted: {exc}"
                        ) from exc
                    pause = min(pause, left)
                self.retries += 1
                get_registry().counter(
                    "repro_sink_retries_total",
                    "Transient sink write failures absorbed by retry",
                ).inc()
                logger.warning(
                    "sink write failed, retrying",
                    extra={
                        "attempt": attempt + 1,
                        "pause_seconds": round(pause, 4),
                        "error": f"{type(exc).__name__}: {exc}",
                    },
                )
                self._sleep(pause)

    # -- delegation: accounting happens once, in the inner sink ------------
    def write_link(self, i: int, j: int) -> None:
        self._attempt(self.inner.write_link, i, j)

    def write_link_raw(self, i: int, j: int) -> None:
        self._attempt(self.inner.write_link_raw, i, j)

    def write_links(self, ids_i: Sequence[int], ids_j: Sequence[int]) -> None:
        self._attempt(self.inner.write_links, ids_i, ids_j)

    def write_group(self, ids: Sequence[int]) -> None:
        self._attempt(self.inner.write_group, ids)

    def write_group_pair(self, ids_a: Sequence[int], ids_b: Sequence[int]) -> None:
        self._attempt(self.inner.write_group_pair, ids_a, ids_b)

    def close(self) -> None:
        self._attempt(self.inner.close)
