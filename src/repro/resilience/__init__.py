"""Fault tolerance for long-running joins.

The paper's own measurement protocol had to survive failure — SSJ crashes
on dense configurations and the authors plot estimates instead (Section
VI).  This package turns that ad-hoc fallback into first-class machinery:

* :mod:`repro.resilience.budget` — cooperative resource guards
  (wall-clock deadline, output-byte cap, group cap) threaded through every
  join algorithm, with graceful degradation where a fallback exists;
* :mod:`repro.resilience.sinks` — crash-safe output: atomic
  write-fsync-rename publication and bounded-backoff retries around
  transient I/O errors;
* :mod:`repro.resilience.checkpoint` — :class:`CheckpointedJoin`, a
  resumable driver that journals join progress (work-unit cursor, durable
  sink offset, counters, in-flight group window) and restarts a killed
  run without losing or duplicating a single link;
* :mod:`repro.resilience.chaos` — deterministic fault injection
  (:class:`FlakySink`, :class:`FlakyIndex`, :class:`FlakyWorker`, and
  :class:`OverloadInjector` for serving-layer request storms) so tests
  can prove recovery end-to-end instead of hoping;
* :mod:`repro.resilience.vfs` — :class:`TraceFS`, an interposing
  filesystem recording the full durable-operation trace (writes,
  fsyncs, renames) and injecting disk faults (``ENOSPC``, torn writes)
  at the syscall boundary;
* :mod:`repro.resilience.crashsim` — the crash-state explorer: from a
  recorded trace, reconstruct *every* legal post-crash disk state and
  verify recovery is byte-identical on each one.
"""

from repro.resilience.budget import Budget
from repro.resilience.chaos import (
    FailurePlan,
    FlakyIndex,
    FlakySink,
    FlakyWorker,
    OverloadInjector,
)
from repro.resilience.checkpoint import CheckpointedJoin, read_journal
from repro.resilience.crashsim import (
    CrashReport,
    CrashState,
    enumerate_crash_states,
    verify_atomic_sink,
    verify_checkpointed_join,
    verify_index_save,
)
from repro.resilience.sinks import AtomicTextSink, DurableTextSink, RetryingSink
from repro.resilience.vfs import Op, TraceFS

__all__ = [
    "AtomicTextSink",
    "Budget",
    "CheckpointedJoin",
    "CrashReport",
    "CrashState",
    "DurableTextSink",
    "FailurePlan",
    "FlakyIndex",
    "FlakySink",
    "FlakyWorker",
    "Op",
    "OverloadInjector",
    "RetryingSink",
    "TraceFS",
    "enumerate_crash_states",
    "read_journal",
    "verify_atomic_sink",
    "verify_checkpointed_join",
    "verify_index_save",
]
