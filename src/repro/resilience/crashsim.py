"""Systematic crash-state enumeration and recovery verification.

ALICE-style checking (Pillai et al., OSDI '14) of the durability
contracts this library claims: record the full write-op trace of a
workload through :class:`~repro.resilience.vfs.TraceFS`, reconstruct
**every legal post-crash disk state** the trace admits, then run the
component's recovery path on each state and assert the final output is
byte-identical — or that corruption is surfaced as a typed error, never
silent garbage.

Crash-state model
-----------------

A crash may happen between any two operations.  For the crash point
after trace prefix ``ops[:k]`` the explorer materialises up to three
disk images:

``full``
    Every applied operation reached the disk (the kernel flushed
    everything just in time).

``durable``
    Only *guaranteed* effects survive: each file holds the content of
    its last ``fsync`` (a file created but never fsynced survives as
    the classic zero-length artifact); a ``replace`` becomes durable
    only once the destination's parent directory — or the renamed file
    itself, ext4-style — is fsynced, otherwise the old destination
    survives and the source file remains.

``torn``
    Like ``full``, but the final operation — when it is an un-fsynced
    write — hit the platter partially: only a prefix (half, block
    style) of its payload is present.

Simplifying assumptions, stated explicitly: file creation and
``open("w")`` truncation are treated as immediately durable (ordered
metadata journaling), ``unlink`` likewise; write reordering *within*
one file between fsync barriers is subsumed by the prefix+torn states
because all writers here are append-only.  These assumptions only
*remove* states; every state the explorer does produce is legal under
POSIX, so a recovery failure on any of them is a real bug.

Verifiers
---------

:func:`verify_checkpointed_join` — the checkpoint journal + durable
sink protocol: every state must resume (or, when the journal itself is
not yet durable, restart after a typed :class:`CheckpointCorruptError`)
to the byte-identical reference output.

:func:`verify_atomic_sink` — :class:`AtomicTextSink` publication: in
every state the destination holds the previous content (or is absent)
or the complete new output — never a torn hybrid.

:func:`verify_index_save` — atomic :func:`~repro.index.persist.save_index`:
every state leaves the index path loadable, equal to the old or the new
tree.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.errors import CheckpointCorruptError
from repro.io.durable import SandboxFS, scoped_fs
from repro.resilience.vfs import Op, TraceFS

__all__ = [
    "CrashState",
    "CrashReport",
    "enumerate_crash_states",
    "materialize",
    "reconstruct",
    "verify_atomic_sink",
    "verify_checkpointed_join",
    "verify_index_save",
]


# ---------------------------------------------------------------------------
# Disk-image reconstruction
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CrashState:
    """One legal post-crash disk image: logical path → file bytes."""

    files: dict[str, bytes]
    op_index: int  # ops[:op_index] were issued before the crash
    variant: str   # "full" | "durable" | "torn"

    def key(self) -> tuple:
        """Content identity — distinct keys are distinct disk images."""
        return tuple(sorted(self.files.items()))

    def __repr__(self) -> str:
        sizes = {os.path.basename(p): len(b) for p, b in sorted(self.files.items())}
        return f"CrashState(op={self.op_index}, {self.variant}, files={sizes})"


@dataclass
class _PendingRename:
    src: str
    dst: str
    content: Optional[bytes]  # src's durable content at rename time


class _DiskSim:
    """Replays a trace, tracking applied and guaranteed-durable images."""

    def __init__(self, base: Optional[dict] = None):
        self.current: dict[str, bytearray] = {
            p: bytearray(b) for p, b in (base or {}).items()
        }
        self.synced: dict[str, bytes] = dict(base or {})
        self.pending: list[_PendingRename] = []

    def apply(self, op: Op, data_override: Optional[bytes] = None) -> None:
        if op.injected and op.kind != "write":
            return  # a faulted metadata op had no effect
        if op.kind == "open":
            if op.mode == "w":
                self.current[op.path] = bytearray()
                self.synced[op.path] = b""
            else:  # append: create if missing
                self.current.setdefault(op.path, bytearray())
                self.synced.setdefault(op.path, b"")
        elif op.kind == "write":
            data = op.data if data_override is None else data_override
            if not data:
                return
            buf = self.current.setdefault(op.path, bytearray())
            end = op.offset + len(data)
            if len(buf) < end:
                buf.extend(b"\0" * (end - len(buf)))
            buf[op.offset:end] = data
        elif op.kind == "fsync":
            self.synced[op.path] = bytes(self.current.get(op.path, b""))
            # ext4-style: fsync of a renamed file persists the rename too.
            for pend in [p for p in self.pending if p.dst == op.path]:
                self.synced.pop(pend.src, None)
                self.pending.remove(pend)
        elif op.kind == "fsync_dir":
            for pend in [
                p for p in self.pending if os.path.dirname(p.dst) == op.path
            ]:
                self.synced[pend.dst] = (
                    pend.content if pend.content is not None else b""
                )
                self.synced.pop(pend.src, None)
                self.pending.remove(pend)
        elif op.kind == "replace":
            # Until the rename is durable, the durable view keeps the
            # entry under the *old* name and the old dst content.
            self.pending.append(
                _PendingRename(op.path, op.dst, self.synced.get(op.path))
            )
            self.current[op.dst] = self.current.pop(op.path, bytearray())
        elif op.kind == "truncate":
            buf = self.current.setdefault(op.path, bytearray())
            del buf[op.size:]
        elif op.kind == "unlink":
            self.current.pop(op.path, None)
            self.synced.pop(op.path, None)
            self.pending = [p for p in self.pending if p.dst != op.path]

    def full_state(self) -> dict[str, bytes]:
        return {p: bytes(b) for p, b in self.current.items()}

    def durable_state(self) -> dict[str, bytes]:
        # Pending (un-persisted) renames: dst keeps its old durable
        # content (already in `synced`), src survives (also in `synced`).
        return dict(self.synced)


def _replay(
    ops: Sequence[Op], upto: int, base: Optional[dict], torn_last: bool
) -> Optional[_DiskSim]:
    sim = _DiskSim(base)
    for i in range(upto):
        op = ops[i]
        if torn_last and i == upto - 1:
            if op.kind != "write" or op.injected or len(op.data) < 2:
                return None  # no distinct torn image at this crash point
            sim.apply(op, data_override=op.data[: len(op.data) // 2])
        else:
            sim.apply(op)
    return sim


def reconstruct(
    ops: Sequence[Op],
    upto: int,
    variant: str = "full",
    base: Optional[dict] = None,
) -> Optional[dict]:
    """The disk image for one crash point: ``ops[:upto]`` under ``variant``.

    Returns logical path → bytes, or ``None`` when the variant does not
    apply (a ``torn`` request whose final op is not a tearable write).
    """
    sim = _replay(ops, upto, base, torn_last=(variant == "torn"))
    if sim is None:
        return None
    return sim.durable_state() if variant == "durable" else sim.full_state()


def enumerate_crash_states(
    ops: Sequence[Op],
    base: Optional[dict] = None,
    crash_points: Optional[Iterable[int]] = None,
    variants: Sequence[str] = ("full", "durable", "torn"),
) -> list[CrashState]:
    """All distinct post-crash disk images the trace admits.

    ``base`` holds pre-existing durable files (logical path → bytes).
    ``crash_points`` restricts which prefixes ``ops[:k]`` are explored
    (default: every ``k`` in ``0..len(ops)``).  States identical in
    content are deduplicated; the earliest (op_index, variant) wins.
    """
    points = (
        sorted(set(int(k) for k in crash_points))
        if crash_points is not None
        else range(len(ops) + 1)
    )
    states: list[CrashState] = []
    seen: set[tuple] = set()
    for k in points:
        if not 0 <= k <= len(ops):
            raise ValueError(f"crash point {k} outside trace of {len(ops)} ops")
        for variant in variants:
            if variant == "torn":
                sim = _replay(ops, k, base, torn_last=True)
                if sim is None:
                    continue
                files = sim.full_state()
            else:
                sim = _replay(ops, k, base, torn_last=False)
                files = (
                    sim.full_state() if variant == "full" else sim.durable_state()
                )
            state = CrashState(files=files, op_index=k, variant=variant)
            if state.key() not in seen:
                seen.add(state.key())
                states.append(state)
    return states


def materialize(state: CrashState, sandbox: SandboxFS) -> None:
    """Write a crash state's files into a sandbox for recovery to run in."""
    for path, data in state.files.items():
        with sandbox.open(path, "wb") as handle:
            handle.write(data)


# ---------------------------------------------------------------------------
# Recovery verification
# ---------------------------------------------------------------------------

@dataclass
class CrashReport:
    """Outcome of verifying one workload across its crash states."""

    workload: str
    ops: int = 0
    states_total: int = 0
    states_verified: int = 0
    recovered_resume: int = 0
    recovered_restart: int = 0
    corrupt_detected: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.states_verified > 0 and not self.failures

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "ops": self.ops,
            "states_total": self.states_total,
            "states_verified": self.states_verified,
            "recovered_resume": self.recovered_resume,
            "recovered_restart": self.recovered_restart,
            "corrupt_detected": self.corrupt_detected,
            "failures": self.failures,
            "ok": self.ok,
        }

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"FAIL({len(self.failures)})"
        return (
            f"CrashReport({self.workload}: {self.states_verified}/"
            f"{self.states_total} states, resume={self.recovered_resume}, "
            f"restart={self.recovered_restart}, {status})"
        )


def _sample(states: list, max_states: Optional[int]) -> list:
    """Evenly thin a state list to ``max_states`` (keeping first/last)."""
    if max_states is None or len(states) <= max_states:
        return states
    idx = np.linspace(0, len(states) - 1, max_states).astype(int)
    return [states[i] for i in sorted(set(int(i) for i in idx))]


def verify_checkpointed_join(
    points: np.ndarray,
    eps: float,
    workdir: str,
    algorithm: str = "csj",
    g: int = 10,
    cadence: int = 4,
    workers: Optional[int] = None,
    max_states: Optional[int] = None,
    engine: str = "vectorized",
    progress: Optional[Callable[[int, int], None]] = None,
) -> CrashReport:
    """Crash-verify the checkpoint journal + durable sink protocol.

    Runs a checkpointed join to completion under :class:`TraceFS`,
    enumerates every post-crash disk state of the (output, journal)
    pair, and for each state attempts ``resume=True`` — falling back to
    a fresh run when the state is detected as unresumable via a typed
    :class:`CheckpointCorruptError` (e.g. the crash predates the first
    durable journal record).  Every state must end with output bytes
    identical to an uninterrupted run's.
    """
    from repro.resilience.checkpoint import CheckpointedJoin

    workdir = os.path.abspath(workdir)
    out = os.path.join(workdir, "out.txt")
    journal = out + ".journal"
    report = CrashReport(workload=f"checkpoint/{algorithm}")

    def job() -> "CheckpointedJoin":
        return CheckpointedJoin(
            points, eps, out, algorithm=algorithm, g=g, cadence=cadence,
            journal_path=journal, workers=workers, engine=engine,
        )

    # Reference: an uninterrupted traced run; its sandbox output is the
    # byte-exact target every recovered state must reproduce.
    trace = TraceFS(root=os.path.join(workdir, "trace"))
    with scoped_fs(trace):
        job().run()
    with open(trace.delegate.map(out), "rb") as handle:
        reference = handle.read()
    report.ops = len(trace.ops)

    states = _sample(enumerate_crash_states(trace.ops), max_states)
    report.states_total = len(states)

    for i, state in enumerate(states):
        if progress is not None:
            progress(i, len(states))
        sandbox = SandboxFS(os.path.join(workdir, f"state{i:04d}"))
        materialize(state, sandbox)
        try:
            with scoped_fs(sandbox):
                try:
                    job().run(resume=True)
                    report.recovered_resume += 1
                except CheckpointCorruptError:
                    # The crash predates a resumable journal — detected,
                    # typed, and recoverable by starting over.
                    report.corrupt_detected += 1
                    job().run(resume=False)
                    report.recovered_restart += 1
            with open(sandbox.map(out), "rb") as handle:
                recovered = handle.read()
            if recovered != reference:
                report.failures.append(
                    f"{state!r}: recovered output differs "
                    f"({len(recovered)} vs {len(reference)} bytes)"
                )
        except Exception as exc:  # noqa: BLE001 - report, don't mask, the state
            report.failures.append(f"{state!r}: {type(exc).__name__}: {exc}")
        report.states_verified += 1
    return report


def verify_atomic_sink(
    points: np.ndarray,
    eps: float,
    workdir: str,
    algorithm: str = "csj",
    g: int = 10,
    previous: Optional[bytes] = b"previous good output\n",
    max_states: Optional[int] = None,
) -> CrashReport:
    """Crash-verify :class:`AtomicTextSink`'s all-or-nothing publication.

    In every enumerated state the destination must hold exactly the
    ``previous`` content (or be absent when there was none) or the
    complete new output — a torn hybrid in any state is a failure.
    """
    from repro.api import similarity_join
    from repro.resilience.sinks import AtomicTextSink

    workdir = os.path.abspath(workdir)
    dst = os.path.join(workdir, "out.txt")
    report = CrashReport(workload=f"atomic-sink/{algorithm}")

    trace = TraceFS(root=os.path.join(workdir, "trace"))
    base = {dst: previous} if previous is not None else None
    if previous is not None:
        with trace.delegate.open(dst, "wb") as handle:
            handle.write(previous)
    with scoped_fs(trace):
        with AtomicTextSink(dst, id_width=4) as sink:
            similarity_join(points, eps, algorithm=algorithm, g=g, sink=sink)
    with open(trace.delegate.map(dst), "rb") as handle:
        reference = handle.read()
    report.ops = len(trace.ops)

    legal = {reference}
    if previous is not None:
        legal.add(previous)

    states = _sample(
        enumerate_crash_states(trace.ops, base=base), max_states
    )
    report.states_total = len(states)
    for state in states:
        content = state.files.get(dst)
        if content is None:
            if previous is not None:
                report.failures.append(
                    f"{state!r}: previously published output vanished"
                )
        elif content not in legal:
            report.failures.append(
                f"{state!r}: destination holds a torn hybrid "
                f"({len(content)} bytes)"
            )
        report.states_verified += 1
    report.recovered_resume = report.states_verified - len(report.failures)
    return report


def verify_index_save(
    points: np.ndarray,
    workdir: str,
    index: str = "rstar",
    max_states: Optional[int] = None,
) -> CrashReport:
    """Crash-verify atomic index persistence.

    Saves a tree over half the points, then — traced — re-saves a tree
    over all of them to the same path.  Every crash state must leave the
    path holding byte-exactly the old or the new index, and
    :func:`load_index` must succeed on it.
    """
    from repro.index.bulk import bulk_load
    from repro.index.persist import load_index, save_index

    workdir = os.path.abspath(workdir)
    path = os.path.join(workdir, "tree.npz")
    report = CrashReport(workload=f"index-save/{index}")

    old_tree = bulk_load(points[: max(4, len(points) // 2)], tree_class=index)
    new_tree = bulk_load(points, tree_class=index)

    trace = TraceFS(root=os.path.join(workdir, "trace"))
    with scoped_fs(trace):
        save_index(old_tree, path)
        with trace.delegate.open(path, "rb") as handle:
            base = {path: handle.read()}
        trace.ops.clear()
        trace._next_index = 0
        save_index(new_tree, path)
    with trace.delegate.open(path, "rb") as handle:
        reference = handle.read()
    report.ops = len(trace.ops)

    states = _sample(
        enumerate_crash_states(trace.ops, base=base), max_states
    )
    report.states_total = len(states)
    for i, state in enumerate(states):
        content = state.files.get(path)
        if content is None:
            report.failures.append(f"{state!r}: index file vanished")
            report.states_verified += 1
            continue
        if content not in (base[path], reference):
            report.failures.append(
                f"{state!r}: index file is a torn hybrid ({len(content)} bytes)"
            )
            report.states_verified += 1
            continue
        sandbox = SandboxFS(os.path.join(workdir, f"istate{i:04d}"))
        materialize(state, sandbox)
        try:
            with scoped_fs(sandbox):
                loaded = load_index(path)
                loaded.validate()
            report.recovered_resume += 1
        except CheckpointCorruptError:
            report.failures.append(
                f"{state!r}: an old-or-new index image failed to load"
            )
        except Exception as exc:  # noqa: BLE001
            report.failures.append(f"{state!r}: {type(exc).__name__}: {exc}")
        report.states_verified += 1
    return report
