"""Cooperative resource guards for join runs.

A :class:`Budget` bounds a join along up to three dimensions — wall-clock
deadline, output bytes, emitted groups — and is checked *cooperatively*:
the algorithms call :meth:`Budget.check` once per tree node, node pair,
grid cell or partition.  The check is deliberately cheap (an attribute
test and a modulo on the fast path) so an unlimited budget costs nothing
measurable; the clock is only read every ``check_every`` calls.

On breach the guard raises
:class:`~repro.errors.BudgetExceededError`.  Callers with a fallback
degrade gracefully instead of propagating — SSJ over its byte cap
switches to the analytic estimator (the paper's crash protocol,
Section VI) — while callers without one flush what they have so the
partial output stays valid, attach it to the exception, and re-raise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import BudgetExceededError
from repro.stats.counters import JoinStats

__all__ = ["Budget"]


@dataclass
class Budget:
    """Resource limits for one join run.

    Any limit left ``None`` is unenforced; a default-constructed budget
    never trips.  Counter limits (bytes, groups) are plain integer
    comparisons and are evaluated on *every* :meth:`check` call — a small
    tree with huge leaves must not slip past the cap between sparse
    checks.  Only the deadline clock read is amortised: it happens every
    ``check_every``-th call.

    >>> b = Budget(max_output_bytes=10_000)
    >>> b.start()
    >>> b.check(JoinStats())  # far under budget: no-op
    """

    #: Wall-clock limit in seconds, measured from :meth:`start`.
    deadline_seconds: Optional[float] = None
    #: Cap on ``stats.bytes_written``.
    max_output_bytes: Optional[int] = None
    #: Cap on ``stats.groups_emitted``.
    max_groups: Optional[int] = None
    #: Read the deadline clock every this many :meth:`check` calls.
    check_every: int = 64
    #: Absolute request deadline as a ``time.monotonic()`` timestamp.
    #: Unlike :attr:`deadline_seconds` it is *not* reset by :meth:`start`,
    #: so it survives retries, kill-and-resume cycles and pickling to
    #: worker processes on the same host (CLOCK_MONOTONIC is system-wide
    #: on Linux).  Set it with :meth:`arm_deadline`.
    deadline_at: Optional[float] = None

    _started_at: Optional[float] = field(default=None, repr=False, compare=False)
    _calls: int = field(default=0, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {self.check_every}")

    @property
    def active(self) -> bool:
        """Whether any limit is set."""
        return (
            self.deadline_seconds is not None
            or self.deadline_at is not None
            or self.max_output_bytes is not None
            or self.max_groups is not None
        )

    def start(self) -> "Budget":
        """Start (or restart) the deadline clock; returns ``self``.

        Only the *relative* deadline clock restarts; an armed absolute
        :attr:`deadline_at` keeps binding across restarts.
        """
        self._started_at = time.monotonic()
        self._calls = 0
        return self

    def arm_deadline(self, seconds: Optional[float] = None) -> "Budget":
        """Pin the deadline to an absolute point ``seconds`` from now.

        With no argument, uses :attr:`deadline_seconds`.  After arming,
        the deadline is measured from *this* moment — queue wait, retries
        and resumed runs all consume the same allowance — and
        :meth:`start` cannot extend it.  Returns ``self``.
        """
        span = self.deadline_seconds if seconds is None else float(seconds)
        if span is not None:
            self.deadline_at = time.monotonic() + span
            if self.deadline_seconds is None:
                self.deadline_seconds = span
        return self

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 if never started)."""
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def remaining_seconds(self) -> Optional[float]:
        """Seconds left before the deadline, or ``None`` if unlimited.

        Composes the relative and absolute deadlines: the tighter bound
        wins.  Reading it starts the relative clock if needed, so an
        unstarted budget cannot report a full allowance forever.
        """
        remaining: Optional[float] = None
        if self.deadline_seconds is not None:
            if self._started_at is None:
                self.start()
            remaining = self.deadline_seconds - self.elapsed()
        if self.deadline_at is not None:
            absolute = self.deadline_at - time.monotonic()
            remaining = absolute if remaining is None else min(remaining, absolute)
        return remaining

    def cap_timeout(self, timeout: Optional[float]) -> Optional[float]:
        """Cap a per-task timeout at the remaining deadline slack.

        This is how a request deadline propagates into
        :class:`~repro.parallel.supervisor.SupervisorConfig` task
        timeouts and :class:`~repro.resilience.sinks.RetryingSink` sleep
        caps: no subordinate wait may outlive the request.  Returns
        ``timeout`` unchanged when no deadline is set; never returns a
        negative value.
        """
        remaining = self.remaining_seconds()
        if remaining is None:
            return timeout
        remaining = max(0.0, remaining)
        if timeout is None:
            return remaining
        return min(float(timeout), remaining)

    def check(self, stats: JoinStats) -> None:
        """Cooperative checkpoint: cheap on the fast path, raises on breach.

        Counters are compared every call; the wall clock is only read on
        the first call and every ``check_every``-th call after it.
        """
        if (
            self.max_output_bytes is not None
            and stats.bytes_written > self.max_output_bytes
        ):
            raise BudgetExceededError(
                "output_bytes", self.max_output_bytes, stats.bytes_written
            )
        if self.max_groups is not None and stats.groups_emitted > self.max_groups:
            raise BudgetExceededError("groups", self.max_groups, stats.groups_emitted)
        if self.deadline_seconds is not None or self.deadline_at is not None:
            calls = self._calls
            self._calls = calls + 1
            if calls % self.check_every == 0:
                self._check_deadline()

    def enforce(self, stats: JoinStats) -> None:
        """Evaluate every limit now, regardless of the clock cadence."""
        if (
            self.max_output_bytes is not None
            and stats.bytes_written > self.max_output_bytes
        ):
            raise BudgetExceededError(
                "output_bytes", self.max_output_bytes, stats.bytes_written
            )
        if self.max_groups is not None and stats.groups_emitted > self.max_groups:
            raise BudgetExceededError("groups", self.max_groups, stats.groups_emitted)
        if self.deadline_seconds is not None or self.deadline_at is not None:
            self._check_deadline()

    def _check_deadline(self) -> None:
        if self._started_at is None:
            self.start()
        if self.deadline_at is not None:
            now = time.monotonic()
            if now > self.deadline_at:
                limit = (
                    self.deadline_seconds
                    if self.deadline_seconds is not None
                    else 0.0
                )
                raise BudgetExceededError(
                    "deadline", limit, limit + (now - self.deadline_at)
                )
        if self.deadline_seconds is not None:
            elapsed = self.elapsed()
            if elapsed > self.deadline_seconds:
                raise BudgetExceededError("deadline", self.deadline_seconds, elapsed)
