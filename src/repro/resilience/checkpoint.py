"""Checkpointed, resumable join execution.

The join algorithms are recursive, but their *output-producing work* is a
deterministic, flat sequence of work units: leaf self-joins, leaf cross
pairs, and (for the compact variants) early-stopped subtree groups, in
the exact order the recursion of Figure 3 visits them.
:class:`CheckpointedJoin` exploits that: it enumerates the work-unit
sequence up front (a cheap pruned traversal — no distance computations),
executes it unit by unit through the ordinary runners, and every
``cadence`` units writes a *checkpoint* to a journal file:

``(cursor, durable sink offset, counters, in-flight group window)``

with the output file fsynced first, so the recorded offset is on stable
storage before the record that cites it.  After a crash, ``resume=True``
replays nothing and loses nothing: the journal's last valid record gives
the cursor; the output file is truncated to the durable offset (cutting
any torn tail the crash left); counters and the CSJ group window are
restored; execution continues at the cursor.  Because the work-unit
sequence, the group-window state and the fixed-width output format are
all deterministic, a killed-and-resumed run produces a byte-identical
output file to an uninterrupted one — the test suite proves this against
brute force under injected faults.

Journal format: one record per line, ``crc32-hex SPACE compact-json``.
A torn final line (the classic crash artifact) simply fails its CRC and
is ignored; anything structurally wrong raises
:class:`~repro.errors.CheckpointCorruptError`.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import fields as dataclass_fields
from typing import Callable, Optional, Union

import numpy as np

from repro.core.egrid import _positive_neighbour_offsets, grid_cells
from repro.core.groups import Group, GroupBuffer
from repro.core.results import JoinResult
from repro.errors import (
    BudgetExceededError,
    CheckpointCorruptError,
    DiskFullError,
    InvalidInputError,
    PoisonTaskError,
    is_disk_full,
    validate_eps,
    validate_points,
)
from repro.geometry.metrics import get_metric
from repro.io.durable import get_fs
from repro.io.writer import width_for
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.obs.tracing import span as trace_span
from repro.resilience.budget import Budget
from repro.resilience.sinks import DurableTextSink
from repro.stats.counters import JoinStats

__all__ = ["CheckpointedJoin", "read_journal"]

logger = get_logger("resilience.checkpoint")

JOURNAL_VERSION = 1


# ---------------------------------------------------------------------------
# Journal records
# ---------------------------------------------------------------------------

def _encode_record(record: dict) -> str:
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True)
    crc = zlib.crc32(payload.encode("ascii")) & 0xFFFFFFFF
    return f"{crc:08x} {payload}\n"


def _decode_record(line: str) -> Optional[dict]:
    line = line.rstrip("\n")
    if len(line) < 10 or line[8] != " ":
        return None
    payload = line[9:]
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    if zlib.crc32(payload.encode("ascii", "replace")) & 0xFFFFFFFF != crc:
        return None
    try:
        record = json.loads(payload)
    except json.JSONDecodeError:
        return None
    return record if isinstance(record, dict) else None


def read_journal(path: str) -> tuple[dict, Optional[dict]]:
    """Read a checkpoint journal; returns ``(header, last_checkpoint)``.

    A CRC-invalid line ends the durable prefix (everything after a torn
    record is ignored — it was never acknowledged).  A missing file or a
    missing/invalid header raises
    :class:`~repro.errors.CheckpointCorruptError`.
    """
    fs = get_fs()
    if not fs.exists(path):
        raise CheckpointCorruptError(path, "journal not found (nothing to resume)")
    header: Optional[dict] = None
    last: Optional[dict] = None
    # Binary read + lossy decode: garbled bytes must fail a record's CRC,
    # never escape as a UnicodeDecodeError.
    with fs.open(path, "rb") as handle:
        for lineno, raw in enumerate(handle):
            record = _decode_record(raw.decode("ascii", "replace"))
            if record is None:
                if lineno == 0:
                    raise CheckpointCorruptError(path, "journal header is corrupt")
                break
            if lineno == 0:
                if record.get("type") != "header":
                    raise CheckpointCorruptError(path, "first record is not a header")
                if record.get("version") != JOURNAL_VERSION:
                    raise CheckpointCorruptError(
                        path, f"unsupported journal version {record.get('version')!r}"
                    )
                header = record
            elif record.get("type") == "ckpt":
                last = record
    if header is None:
        raise CheckpointCorruptError(path, "journal is empty")
    return header, last


# ---------------------------------------------------------------------------
# Work-unit enumeration (mirrors the runners' traversal order exactly)
# ---------------------------------------------------------------------------

def _enumerate_tree_tasks(tree, eps: float, compact: bool) -> list[tuple]:
    """The deterministic leaf/group work-unit sequence of the tree join.

    Mirrors ``_SSJRunner`` (``compact=False``) / ``_CSJRunner``
    (``compact=True``) — same pruning, same early stops, same order — but
    yields the units instead of executing them.  Traversal counters are
    *not* charged here; checkpointed runs account leaf-level work only.
    """
    metric = tree.metric
    tasks: list[tuple] = []

    def visit(node) -> None:
        if compact and node.diameter(metric) < eps:
            tasks.append(("group", node))
            return
        if node.is_leaf:
            tasks.append(("self", node))
            return
        children = node.children
        for child in children:
            visit(child)
        for a in range(len(children)):
            for b in range(a + 1, len(children)):
                if children[a].min_dist(children[b], metric) < eps:
                    visit_pair(children[a], children[b])

    def visit_pair(n1, n2) -> None:
        if compact and n1.union_diameter(n2, metric) < eps:
            tasks.append(("pgroup", n1, n2))
            return
        if n1.is_leaf and n2.is_leaf:
            tasks.append(("cross", n1, n2))
            return
        if n1.is_leaf:
            for child in n2.children:
                if n1.min_dist(child, metric) < eps:
                    visit_pair(n1, child)
            return
        if n2.is_leaf:
            for child in n1.children:
                if child.min_dist(n2, metric) < eps:
                    visit_pair(child, n2)
            return
        for c1 in n1.children:
            for c2 in n2.children:
                if c1.min_dist(c2, metric) < eps:
                    visit_pair(c1, c2)

    if tree.root is not None and tree.size > 1:
        visit(tree.root)
    return tasks


def _enumerate_egrid_tasks(pts: np.ndarray, eps: float) -> list[tuple]:
    """Cell work units in :func:`repro.core.egrid.egrid_join` order."""
    cells = grid_cells(pts, eps)
    offsets = _positive_neighbour_offsets(pts.shape[1])
    tasks: list[tuple] = []
    for key, ids in cells.items():
        tasks.append(("self", ids))
        for offset in offsets:
            neighbour = tuple(k + o for k, o in zip(key, offset))
            other = cells.get(neighbour)
            if other is not None:
                tasks.append(("cross", ids, other))
    return tasks


# ---------------------------------------------------------------------------
# Group-window (de)serialization for resumable CSJ
# ---------------------------------------------------------------------------

def _serialize_window(buffer: GroupBuffer) -> list[list]:
    return [
        [sorted(int(i) for i in group.ids), list(group.lo), list(group.hi)]
        for group in buffer._window
    ]


def _restore_window(buffer: GroupBuffer, state: list) -> None:
    buffer._window.clear()
    for ids, lo, hi in state:
        buffer._window.append(
            Group(set(int(i) for i in ids), [float(x) for x in lo], [float(x) for x in hi])
        )


_ALGORITHMS = {
    # name -> (family, compact)
    "ssj": ("tree", False),
    "ncsj": ("tree", True),
    "csj": ("tree", True),
    "egrid": ("egrid", False),
    "egrid-csj": ("egrid", True),
    "pbsm": ("pbsm", False),
    "pbsm-csj": ("pbsm", True),
}


class CheckpointedJoin:
    """Resumable similarity self-join with a durable progress journal.

    Parameters mirror :func:`repro.api.similarity_join` where they
    overlap.  ``output_path`` receives the paper's fixed-width text
    output; ``journal_path`` (default ``output_path + ".journal"``) holds
    the checkpoint records; ``cadence`` is the number of work units
    between checkpoints (``0`` = only the final one).  ``budget`` bounds
    the run cooperatively — a breach is checkpointed first, so a
    deadline-bounded run is also a resumable one.  ``sink_wrapper`` wraps
    the output sink (fault injection, retries) without affecting the
    journal's durability accounting.

    >>> import numpy as np, tempfile, os
    >>> pts = np.random.default_rng(0).random((200, 2))
    >>> d = tempfile.mkdtemp()
    >>> job = CheckpointedJoin(pts, 0.05, algorithm="csj",
    ...                        output_path=os.path.join(d, "out.txt"))
    >>> result = job.run()
    >>> result.stats.bytes_written == os.path.getsize(os.path.join(d, "out.txt"))
    True
    """

    def __init__(
        self,
        points: np.ndarray,
        eps: float,
        output_path: str,
        algorithm: str = "csj",
        g: int = 10,
        index: str = "rstar",
        metric: object = None,
        max_entries: int = 64,
        bulk: Optional[str] = "str",
        journal_path: Optional[str] = None,
        cadence: int = 256,
        budget: Optional[Budget] = None,
        sink_wrapper: Optional[Callable] = None,
        partitions_per_axis: Optional[int] = None,
        workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
        fault: object = None,
        supervisor_config: object = None,
        stats: Optional[JoinStats] = None,
        engine: str = "vectorized",
        data_plane: str = "auto",
        shards: Optional[int] = None,
        partitioner: str = "grid",
    ):
        self.points = validate_points(points)
        self.eps = validate_eps(eps)
        algorithm = algorithm.lower()
        if algorithm not in _ALGORITHMS:
            raise InvalidInputError(
                f"unknown or non-checkpointable algorithm {algorithm!r}; "
                f"supported: {tuple(_ALGORITHMS)}"
            )
        if g < 0:
            raise InvalidInputError(f"window size g must be >= 0, got {g}")
        self.algorithm = algorithm
        self.g = 0 if algorithm == "ncsj" else int(g)
        self.index = index
        self.metric = metric
        self.max_entries = max_entries
        self.bulk = bulk
        self.output_path = os.fspath(output_path)
        self.journal_path = (
            os.fspath(journal_path) if journal_path else self.output_path + ".journal"
        )
        self.cadence = max(0, int(cadence))
        self.budget = budget
        self.sink_wrapper = sink_wrapper
        self.partitions_per_axis = partitions_per_axis
        if workers is not None and workers < 0:
            raise InvalidInputError(f"workers must be >= 0, got {workers}")
        # Execution-only knobs: deliberately absent from the fingerprint,
        # so a run checkpointed at one worker count (or engine) resumes
        # at any other.
        self.workers = workers
        self.task_timeout = task_timeout
        self.fault = fault
        self.supervisor_config = supervisor_config
        from repro.core.frontier import resolve_engine

        self.engine = resolve_engine(engine)
        # Like workers/engine: how workers obtain the dataset never
        # affects the task sequence, so a run checkpointed on one data
        # plane resumes on any other.
        self.data_plane = data_plane
        # Externally supplied stats are *observed* (progress heartbeats,
        # metrics) — the run still owns all mutation; pass a fresh one.
        self.stats = stats
        if shards is not None:
            from repro.shard.planner import PARTITIONERS

            shards = int(shards)
            if shards < 1:
                raise InvalidInputError(f"shards must be >= 1, got {shards}")
            if partitioner not in PARTITIONERS:
                raise InvalidInputError(
                    f"unknown partitioner {partitioner!r}; known: {PARTITIONERS}"
                )
        self.shards = shards
        self.partitioner = partitioner

    # -- identity ----------------------------------------------------------
    def fingerprint(self) -> dict:
        """Configuration identity stored in (and checked against) the journal.

        Covers exactly what determines the canonical task sequence and
        the output bytes: data, range, algorithm, index/partitioning
        configuration, metric.  Execution knobs — worker count, task
        timeout, dispatch order, fault injection — are deliberately
        excluded: a run checkpointed at ``workers=4`` must resume at
        ``workers=1`` (or vice versa) with a byte-identical tail.
        """
        family, compact = _ALGORITHMS[self.algorithm]
        fp = {
            "n": int(self.points.shape[0]),
            "dim": int(self.points.shape[1]),
            "points_crc": zlib.crc32(np.ascontiguousarray(self.points).tobytes())
            & 0xFFFFFFFF,
            "eps": repr(self.eps),
            "algorithm": self.algorithm,
            "g": self.g if compact else None,
            "metric": get_metric(self.metric).name,
        }
        if self.shards is not None:
            # A sharded run journals the canonical *replay* stream, whose
            # bytes depend only on the qualifying-pair set and the window
            # — never on the plan.  Shard count, partitioner, index and
            # index tuning are therefore execution knobs here, excluded
            # like ``workers``: a run checkpointed at one K resumes at
            # any other K (or partitioner, or index) byte-identically.
            fp["sharded"] = True
            return fp
        fp["index"] = self.index if family == "tree" else family
        fp["max_entries"] = int(self.max_entries) if family == "tree" else None
        fp["bulk"] = self.bulk if family == "tree" else None
        if family == "pbsm":
            fp["partitions_per_axis"] = self.partitions_per_axis
        return fp

    # -- the run -----------------------------------------------------------
    def run(self, resume: bool = False) -> JoinResult:
        """Execute (or resume) the join; returns the finished result.

        With ``resume=True`` the journal must exist and match this
        configuration; the output file is truncated to the last durable
        offset and execution continues from the recorded cursor.
        """
        if self.shards is not None:
            return self._run_sharded(resume)
        family, compact = _ALGORITHMS[self.algorithm]
        pts = self.points
        width = width_for(len(pts))
        stats = self.stats if self.stats is not None else JoinStats()
        journal, cursor, window_state = self._open_journal(resume, stats)

        inner = DurableTextSink(
            self.output_path, stats=stats, id_width=width, append=resume
        )
        sink = self.sink_wrapper(inner) if self.sink_wrapper is not None else inner

        from repro.parallel.shm import SharedDataset, resolve_data_plane
        from repro.parallel.tasks import JoinSpec

        # The shared-memory plane only matters when a pool will run;
        # serial (resumable) execution keeps the in-process array.
        shared: Optional[SharedDataset] = None
        plane = "pickle"
        if self.workers is not None and self.workers > 1:
            plane = resolve_data_plane(self.data_plane)
            if plane == "shm":
                shared = SharedDataset(
                    pts, metric=self.metric, data_plane=self.data_plane
                )
                plane = shared.plane
        spec = JoinSpec(
            points=pts if shared is None else shared.points,
            eps=self.eps,
            algorithm=self.algorithm,
            g=self.g,
            index=self.index,
            max_entries=self.max_entries,
            bulk=self.bulk,
            metric=self.metric,
            partitions_per_axis=self.partitions_per_axis,
            engine=self.engine,
            data_plane=plane,
            dataset_ref=shared.ref if shared is not None else None,
        )
        if shared is not None:
            spec._shared = shared
        state = spec.build_state()
        tasks = state.tasks
        buffer: Optional[GroupBuffer] = state.make_buffer(sink, stats)
        index_name = state.index_name

        if cursor > len(tasks):
            raise CheckpointCorruptError(
                self.journal_path,
                f"cursor {cursor} beyond the {len(tasks)} work units of this run",
            )
        if window_state is not None and buffer is not None:
            _restore_window(buffer, window_state)

        budget = self.budget
        if budget is not None:
            budget.start()
        write_time_before = stats.write_time
        start = time.perf_counter()
        idx = cursor
        scheduler = None
        emitted_mark = stats.links_emitted + stats.groups_emitted

        def maybe_checkpoint(done: int) -> None:
            # Checkpoint every ``cadence`` work units — or sooner when
            # coarse tasks (large leaves) have emitted that much output
            # since the last record, so the durable horizon tracks output
            # volume, not just task count.
            nonlocal emitted_mark
            emitted = stats.links_emitted + stats.groups_emitted
            if (
                self.cadence
                and done < len(tasks)
                and (
                    done % self.cadence == 0
                    or emitted - emitted_mark >= self.cadence
                )
            ):
                self._checkpoint(journal, inner, done, stats, buffer)
                emitted_mark = emitted

        try:
            try:
                if self.workers is not None and self.workers > 1:
                    from repro.parallel.scheduler import WorkScheduler

                    scheduler = WorkScheduler(
                        state,
                        sink,
                        self._pool_config(),
                        stats=stats,
                        buffer=buffer,
                        budget=budget,
                        fault=self.fault,
                        start_cursor=cursor,
                        # The journal cursor is the contiguous merged
                        # prefix; a quarantined task must halt the merge,
                        # not punch a hole in it.
                        skip_poisoned=False,
                    )
                    try:
                        scheduler.run(on_task_merged=maybe_checkpoint)
                    except PoisonTaskError as exc:
                        self._checkpoint(journal, inner, scheduler.merged, stats, buffer)
                        self._finalize_timing(stats, start, write_time_before)
                        exc.partial = JoinResult.from_sink(
                            inner, eps=self.eps, algorithm=self._label(),
                            g=self.g if compact else None, index_name=index_name,
                        )
                        raise
                else:
                    for idx in range(cursor, len(tasks)):
                        if budget is not None:
                            budget.check(stats)
                        events, counters = state.execute(idx)
                        state.apply(events, counters, sink, buffer, stats)
                        maybe_checkpoint(idx + 1)
                if buffer is not None:
                    buffer.flush()
                self._checkpoint(journal, inner, len(tasks), stats, buffer, final=True)
            except BudgetExceededError as exc:
                # The breach fired before the cursor task was merged:
                # checkpoint the durable prefix so the run can resume
                # later, then surface the partial result on the exception.
                safe = scheduler.merged if scheduler is not None else idx
                self._checkpoint(journal, inner, safe, stats, buffer)
                self._finalize_timing(stats, start, write_time_before)
                exc.partial = JoinResult.from_sink(
                    inner, eps=self.eps, algorithm=self._label(),
                    g=self.g if compact else None, index_name=index_name,
                )
                raise
            except OSError as exc:
                # A bare disk-full from the sink (no retry wrapper in
                # between) gets the same typed treatment as everywhere
                # else.  No checkpoint here: the failed task's output may
                # be partial, and recording it as durable would duplicate
                # lines on resume — the last cadence checkpoint is the
                # resume point.
                if is_disk_full(exc) and not isinstance(exc, DiskFullError):
                    raise DiskFullError.wrap(
                        exc, "durable storage exhausted; join output write failed"
                    ) from exc
                raise
        finally:
            sink.close()
            journal.close()
            if shared is not None:
                shared.close()

        self._finalize_timing(stats, start, write_time_before)
        return JoinResult.from_sink(
            inner,
            eps=self.eps,
            algorithm=self._label(),
            g=self.g if compact else None,
            index_name=index_name,
        )

    # -- sharded execution -------------------------------------------------
    def _run_sharded(self, resume: bool) -> JoinResult:
        """Checkpointed sharded join: journal the canonical replay stream.

        Phase 1 (per-shard discovery) writes no output and is recomputed
        in full — idempotently — on every resume; the journal cursor
        counts *replayed links*, so each checkpoint is taken against a
        stream that is identical for every shard count.  That is what
        lets a run killed at ``shards=K`` resume at ``shards=K'`` with a
        byte-identical tail (the fingerprint deliberately omits the
        plan; see :meth:`fingerprint`).
        """
        from repro.core.results import CollectSink
        from repro.parallel.shm import SharedDataset, resolve_data_plane
        from repro.parallel.tasks import JoinSpec
        from repro.shard.driver import (
            _work_report,
            replay_links,
            run_phase1,
            sorted_owned_links,
        )

        family, compact = _ALGORITHMS[self.algorithm]
        pts = self.points
        width = width_for(len(pts))
        stats = self.stats if self.stats is not None else JoinStats()
        journal, cursor, window_state = self._open_journal(resume, stats)

        inner = DurableTextSink(
            self.output_path, stats=stats, id_width=width, append=resume
        )
        sink = self.sink_wrapper(inner) if self.sink_wrapper is not None else inner

        shared: Optional[SharedDataset] = None
        plane = "pickle"
        parallel = self.workers is not None and self.workers > 1
        if parallel:
            plane = resolve_data_plane(self.data_plane)
            if plane == "shm":
                shared = SharedDataset(
                    pts, metric=self.metric, data_plane=self.data_plane
                )
                plane = shared.plane
        spec = JoinSpec(
            points=pts if shared is None else shared.points,
            eps=self.eps,
            algorithm=self.algorithm,
            g=self.g,
            index=self.index,
            max_entries=self.max_entries,
            bulk=self.bulk,
            metric=self.metric,
            partitions_per_axis=self.partitions_per_axis,
            engine=self.engine,
            data_plane=plane,
            dataset_ref=shared.ref if shared is not None else None,
            shards=self.shards,
            partitioner=self.partitioner,
        )
        if shared is not None:
            spec._shared = shared
        state = spec.build_state()
        plan = state.plan
        get_registry().record_shard_plan(
            shards=plan.k,
            points=plan.points,
            halo_points=plan.halo_points,
            tasks=len(state.tasks),
            skew_ratio=plan.skew_ratio,
        )
        report = plan.report()
        report["tasks"] = len(state.tasks)
        index_name = state.index_name

        budget = self.budget
        if budget is not None:
            budget.start()
        write_time_before = stats.write_time
        start = time.perf_counter()

        def result_from_sink() -> JoinResult:
            result = JoinResult.from_sink(
                inner,
                eps=self.eps,
                algorithm=self._label(),
                g=self.g if compact else None,
                index_name=index_name,
            )
            result.shard_report = report
            return result

        window: Optional[GroupBuffer] = None
        phase_sink = CollectSink(id_width=width)
        phase_stats = phase_sink.stats
        replayed = cursor
        try:
            try:
                run_phase1(
                    state,
                    phase_sink,
                    phase_stats,
                    budget=budget,
                    workers=self.workers if parallel else None,
                    task_timeout=self.task_timeout,
                    config=self._pool_config() if parallel else None,
                    fault=self.fault,
                )
                report["work"] = _work_report(phase_stats)

                pairs = sorted_owned_links(phase_sink.links)
                if cursor > len(pairs):
                    raise CheckpointCorruptError(
                        self.journal_path,
                        f"cursor {cursor} beyond the {len(pairs)} replay "
                        "units of this run",
                    )
                if compact:
                    window = GroupBuffer(
                        self.g,
                        self.eps,
                        sink,
                        metric=get_metric(self.metric),
                        stats=stats,
                        dim=pts.shape[1],
                    )
                    if window_state is not None:
                        _restore_window(window, window_state)

                emitted_mark = stats.links_emitted + stats.groups_emitted

                def on_link_replayed(done: int) -> None:
                    nonlocal replayed, emitted_mark
                    replayed = done
                    emitted = stats.links_emitted + stats.groups_emitted
                    if (
                        self.cadence
                        and done < len(pairs)
                        and (
                            done % self.cadence == 0
                            or emitted - emitted_mark >= self.cadence
                        )
                    ):
                        self._checkpoint(journal, inner, done, stats, window)
                        emitted_mark = emitted

                replay_links(
                    pairs,
                    sink,
                    window,
                    pts,
                    budget=budget,
                    stats=stats,
                    start_cursor=cursor,
                    on_link_replayed=on_link_replayed,
                )
                if window is not None:
                    window.flush()
                self._checkpoint(
                    journal, inner, len(pairs), stats, window, final=True
                )
            except (BudgetExceededError, PoisonTaskError) as exc:
                # Phase-1 breaches checkpoint at the resume cursor (no
                # output was produced there); replay breaches at the last
                # fully replayed link.  Either way the run stays
                # resumable — at any future shard count.
                report.setdefault("work", _work_report(phase_stats))
                self._checkpoint(journal, inner, replayed, stats, window)
                self._finalize_timing(stats, start, write_time_before)
                exc.partial = result_from_sink()
                raise
            except OSError as exc:
                if is_disk_full(exc) and not isinstance(exc, DiskFullError):
                    raise DiskFullError.wrap(
                        exc, "durable storage exhausted; join output write failed"
                    ) from exc
                raise
        finally:
            sink.close()
            journal.close()
            if shared is not None:
                shared.close()

        self._finalize_timing(stats, start, write_time_before)
        return result_from_sink()

    # -- helpers -----------------------------------------------------------
    def _open_journal(
        self, resume: bool, stats: JoinStats
    ) -> tuple[object, int, Optional[list]]:
        """Open the journal and return ``(handle, cursor, window_state)``.

        Fresh runs write (and fsync) the fingerprint header; resumed runs
        validate it, restore ``stats`` from the last checkpoint and
        truncate the output file to the durable offset.
        """
        if resume:
            header, ckpt = read_journal(self.journal_path)
            if header.get("fingerprint") != self.fingerprint():
                raise CheckpointCorruptError(
                    self.journal_path,
                    "journal does not match this run's configuration "
                    "(different data, range, algorithm or index)",
                )
            cursor = 0
            offset = 0
            window_state: Optional[list] = None
            if ckpt is not None:
                cursor = int(ckpt["cursor"])
                offset = int(ckpt["offset"])
                saved = ckpt.get("stats", {})
                for f in dataclass_fields(JoinStats):
                    if f.name in saved:
                        setattr(stats, f.name, saved[f.name])
                window_state = ckpt.get("window")
            self._truncate_output(offset)
            journal = get_fs().open(self.journal_path, "a", encoding="ascii")
            get_registry().counter(
                "repro_checkpoint_resumes_total", "Runs resumed from a journal"
            ).inc()
            logger.info(
                "resuming from checkpoint",
                extra={"cursor": cursor, "offset": offset},
            )
            return journal, cursor, window_state
        fs = get_fs()
        journal = fs.open(self.journal_path, "w", encoding="ascii")
        try:
            journal.write(
                _encode_record(
                    {
                        "type": "header",
                        "version": JOURNAL_VERSION,
                        "fingerprint": self.fingerprint(),
                    }
                )
            )
            fs.fsync(journal)
        except OSError as exc:
            journal.close()
            if is_disk_full(exc):
                raise DiskFullError.wrap(
                    exc, "durable storage exhausted; journal header write failed"
                ) from exc
            raise
        return journal, 0, None

    def _label(self) -> str:
        if self.algorithm == "csj":
            return f"csj({self.g})" if self.g else "ncsj"
        if self.algorithm == "egrid-csj":
            return f"egrid-csj({self.g})" if self.g else "egrid-ncsj"
        if self.algorithm == "pbsm-csj":
            return f"pbsm-csj({self.g})" if self.g else "pbsm-ncsj"
        return self.algorithm

    def _pool_config(self):
        """The supervisor configuration for parallel execution."""
        if self.supervisor_config is not None:
            return self.supervisor_config
        from repro.parallel.supervisor import SupervisorConfig

        return SupervisorConfig(
            workers=int(self.workers), task_timeout=self.task_timeout
        )

    @staticmethod
    def _finalize_timing(stats: JoinStats, start: float, write_time_before: float) -> None:
        elapsed = time.perf_counter() - start
        stats.compute_time += elapsed - (stats.write_time - write_time_before)

    def _checkpoint(
        self,
        journal,
        inner: DurableTextSink,
        cursor: int,
        stats: JoinStats,
        buffer: Optional[GroupBuffer],
        final: bool = False,
    ) -> None:
        # Order matters: the output bytes must be durable *before* the
        # journal record that declares them so.
        with trace_span("checkpoint", cursor=int(cursor), final=final):
            try:
                inner.sync()
                record = {
                    "type": "ckpt",
                    "cursor": int(cursor),
                    "offset": int(inner.tell()),
                    "stats": stats.as_dict(),
                }
                if buffer is not None and buffer.g > 0:
                    record["window"] = _serialize_window(buffer)
                if final:
                    record["done"] = True
                journal.write(_encode_record(record))
                get_fs().fsync(journal)
            except OSError as exc:
                if is_disk_full(exc):
                    # The journal's durable prefix (earlier records) is
                    # untouched; the run stays resumable once space frees.
                    raise DiskFullError.wrap(
                        exc, "durable storage exhausted; checkpoint write failed"
                    ) from exc
                raise
        get_registry().counter(
            "repro_checkpoint_records_total", "Checkpoint records journaled"
        ).inc()
        logger.debug(
            "checkpoint written",
            extra={"cursor": int(cursor), "offset": record["offset"], "final": final},
        )

    def _truncate_output(self, offset: int) -> None:
        fs = get_fs()
        if not fs.exists(self.output_path):
            if offset:
                raise CheckpointCorruptError(
                    self.output_path,
                    f"output file missing but journal records {offset} durable bytes",
                )
            return
        size = fs.getsize(self.output_path)
        if size < offset:
            raise CheckpointCorruptError(
                self.output_path,
                f"output file shorter than the durable offset ({size} < {offset})",
            )
        fs.truncate(self.output_path, offset)
