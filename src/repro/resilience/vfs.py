"""An interposing filesystem: full write-op traces plus disk faults.

:class:`TraceFS` implements the durable-operation seam
(:class:`repro.io.durable.FileSystem`) by *recording* every mutating
operation — writes with their byte offsets and payloads, fsyncs,
renames, parent-directory fsyncs, truncates, unlinks — while passing
them through to a sandbox directory.  Install it around any workload
with :func:`repro.io.durable.scoped_fs` and the complete durability
behaviour of that workload comes out as a list of :class:`Op` records,
ready for the crash-state explorer
(:mod:`repro.resilience.crashsim`) to enumerate every legal post-crash
disk image from.

It is also the disk-fault injector at the syscall boundary:

* ``fail_at={op_index: errno}`` raises ``OSError(errno)`` *instead of*
  performing the scheduled operation — ``ENOSPC`` for a full disk,
  ``EIO`` for a dying one — so the retry/fail-fast classification in
  :class:`~repro.resilience.sinks.RetryingSink` is testable against
  real errno semantics;
* ``torn_at={op_index}`` performs only a *prefix* of the scheduled
  write (half the payload, block-style) and then raises ``EIO`` — the
  torn-write artifact a power loss leaves mid-line.

Injected operations are recorded with their *actual* effect (the
written prefix, or nothing), so a trace of a faulted run still replays
to exactly the bytes the sandbox holds.

Op indices count mutating operations only (reads pass through
unrecorded), and every recorded path is the *logical* path the
workload used — the sandbox mapping stays invisible to both the
workload and the explorer.
"""

from __future__ import annotations

import errno as _errno
import os
from dataclasses import dataclass, field
from typing import IO, Callable, Iterable, Mapping, Optional

from repro.errors import errno_name
from repro.io.durable import FileSystem, OsFileSystem, SandboxFS

__all__ = ["Op", "TraceFS"]


@dataclass(frozen=True)
class Op:
    """One recorded durable-seam operation.

    ``kind`` is one of ``open`` (write-mode open: ``mode`` tells whether
    it truncated), ``write`` (with ``offset`` and the ``data`` that
    actually reached the file), ``fsync``, ``fsync_dir``, ``replace``
    (``path`` → ``dst``), ``truncate`` and ``unlink``.  ``injected``
    names the fault when the operation was failed by the plan — its
    recorded effect is what really happened (a torn prefix, or
    nothing).
    """

    index: int
    kind: str
    path: str
    dst: Optional[str] = None
    offset: Optional[int] = None
    data: bytes = b""
    size: Optional[int] = None
    mode: Optional[str] = None
    injected: Optional[str] = None

    def __repr__(self) -> str:  # compact: payloads elided
        extra = ""
        if self.kind == "write":
            extra = f", offset={self.offset}, len={len(self.data)}"
        if self.dst is not None:
            extra += f", dst={self.dst!r}"
        if self.injected:
            extra += f", injected={self.injected}"
        return f"Op({self.index}, {self.kind}, {self.path!r}{extra})"


class _TraceHandle:
    """Binary write handle: records each write's offset and payload."""

    def __init__(self, fs: "TraceFS", path: str, real: IO):
        self._fs = fs
        self._path = path
        self._real = real

    def write(self, data) -> int:
        data = bytes(data)
        return self._fs._on_write(
            self._path, self._real.tell(), data, self._real.write
        )

    def writelines(self, lines) -> None:
        for line in lines:
            self.write(line)

    def __enter__(self) -> "_TraceHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        self._real.close()

    def __getattr__(self, attr: str):
        return getattr(self._real, attr)


class _TraceTextHandle(_TraceHandle):
    """Text write handle over a binary file, with exact byte offsets.

    Text-mode ``tell()`` returns opaque cookies, so the underlying file
    is opened in binary and the byte position is tracked here — the
    offsets in the trace are true byte offsets.
    """

    def __init__(self, fs: "TraceFS", path: str, real: IO, encoding: str):
        super().__init__(fs, path, real)
        self._encoding = encoding
        self._pos = real.tell()

    def write(self, data: str) -> int:
        payload = data.encode(self._encoding)
        written = self._fs._on_write(
            self._path, self._pos, payload, self._real.write
        )
        self._pos += written
        return len(data)

    def tell(self) -> int:
        return self._pos

    def seek(self, *args: object):
        raise OSError("traced text handles are append/sequential only")


class TraceFS(FileSystem):
    """The recording, fault-injecting durable filesystem (see module doc).

    ``root``: sandbox directory all operations are redirected into
    (via :class:`~repro.io.durable.SandboxFS`); ``None`` passes paths
    through unmapped.  ``fail_at`` maps op index → errno to raise;
    ``torn_at`` is a set of write-op indices to tear.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        fail_at: Optional[Mapping[int, int]] = None,
        torn_at: Iterable[int] = (),
    ):
        self.delegate: FileSystem = SandboxFS(root) if root else OsFileSystem()
        self.fail_at = {int(k): int(v) for k, v in (fail_at or {}).items()}
        self.torn_at = frozenset(int(i) for i in torn_at)
        #: The recorded operation trace, in execution order.
        self.ops: list[Op] = []
        self._next_index = 0

    # -- recording machinery ----------------------------------------------
    @staticmethod
    def _logical(path: str) -> str:
        return os.path.abspath(os.fspath(path))

    def _take_index(self) -> int:
        index = self._next_index
        self._next_index += 1
        return index

    def _on_write(
        self, path: str, offset: int, data: bytes, sink: Callable[[bytes], int]
    ) -> int:
        index = self._take_index()
        fault = self.fail_at.get(index)
        if index in self.torn_at:
            prefix = data[: len(data) // 2]
            if prefix:
                sink(prefix)
            self.ops.append(
                Op(index, "write", path, offset=offset, data=prefix, injected="torn")
            )
            code = fault if fault is not None else _errno.EIO
            raise OSError(code, f"injected torn write (op {index})")
        if fault is not None:
            self.ops.append(
                Op(
                    index, "write", path, offset=offset, data=b"",
                    injected=errno_name(fault),
                )
            )
            raise OSError(fault, f"injected {errno_name(fault)} (op {index})")
        sink(data)
        self.ops.append(Op(index, "write", path, offset=offset, data=data))
        return len(data)

    def _on_meta(
        self,
        kind: str,
        path: str,
        action: Callable[[], None],
        dst: Optional[str] = None,
        size: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> None:
        index = self._take_index()
        fault = self.fail_at.get(index)
        if fault is not None:
            self.ops.append(
                Op(
                    index, kind, path, dst=dst, size=size, mode=mode,
                    injected=errno_name(fault),
                )
            )
            raise OSError(fault, f"injected {errno_name(fault)} (op {index})")
        action()
        self.ops.append(Op(index, kind, path, dst=dst, size=size, mode=mode))

    # -- FileSystem interface ---------------------------------------------
    def open(
        self, path: str, mode: str = "r", encoding: Optional[str] = None
    ) -> IO:
        logical = self._logical(path)
        if "r" in mode and "+" not in mode:
            return self.delegate.open(logical, mode, encoding=encoding)
        if "+" in mode:
            raise OSError(f"TraceFS does not support update mode {mode!r}")
        binary = "b" in mode
        real_mode = mode if binary else mode.replace("t", "") + "b"
        holder: dict = {}

        def do_open() -> None:
            holder["real"] = self.delegate.open(logical, real_mode)

        self._on_meta("open", logical, do_open, mode=mode.replace("b", "") or "w")
        real = holder["real"]
        if binary:
            return _TraceHandle(self, logical, real)
        return _TraceTextHandle(self, logical, real, encoding or "utf-8")

    def fsync(self, handle: IO) -> None:
        if not isinstance(handle, _TraceHandle):
            # In-memory targets (StringIO) have no durability to record.
            OsFileSystem().fsync(handle)
            return
        real = handle._real

        def do_fsync() -> None:
            real.flush()
            os.fsync(real.fileno())

        self._on_meta("fsync", handle._path, do_fsync)

    def fsync_dir(self, path: str) -> None:
        logical = self._logical(path)
        self._on_meta(
            "fsync_dir", logical, lambda: self.delegate.fsync_dir(logical)
        )

    def replace(self, src: str, dst: str) -> None:
        src, dst = self._logical(src), self._logical(dst)
        self._on_meta(
            "replace", src, lambda: self.delegate.replace(src, dst), dst=dst
        )

    def truncate(self, path: str, size: int) -> None:
        logical = self._logical(path)
        self._on_meta(
            "truncate",
            logical,
            lambda: self.delegate.truncate(logical, size),
            size=int(size),
        )

    def unlink(self, path: str) -> None:
        logical = self._logical(path)
        self._on_meta("unlink", logical, lambda: self.delegate.unlink(logical))

    def exists(self, path: str) -> bool:
        return self.delegate.exists(self._logical(path))

    def getsize(self, path: str) -> int:
        return self.delegate.getsize(self._logical(path))
