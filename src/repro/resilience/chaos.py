"""Deterministic fault injection for recovery testing.

Real fault tolerance claims need failures on demand.  This module raises
them *deterministically*: every injected failure comes from a seeded
:class:`FailurePlan`, so a test that proves "run, crash at op 137,
resume, byte-identical output" reproduces exactly under the same seed.

* :class:`FlakySink` wraps any sink and raises ``OSError`` before
  selected write operations — the write never happens, mimicking a full
  disk or yanked volume at the syscall boundary.
* :class:`FlakyIndex` wraps a tree and raises ``OSError`` on selected
  node accesses, mimicking a failed page read while the join descends
  the index.
* :class:`FlakyWorker` injects *worker-level* faults into the parallel
  executor: SIGKILL of the worker's own process, a hang, or an in-task
  exception, keyed on the **task id** so a re-dispatched task misbehaves
  identically no matter which worker picks it up or in what order.

Both wrappers delegate everything else untouched, so a plan with no
scheduled failures is an identity wrapper (tests assert this too).
"""

from __future__ import annotations

import os
import random
import signal
import time
from typing import Iterable, Optional, Sequence

from repro.core.results import JoinSink
from repro.index.base import IndexNode, SpatialIndex

__all__ = [
    "FailurePlan",
    "FlakySink",
    "FlakyIndex",
    "FlakyWorker",
    "OverloadInjector",
]


class FailurePlan:
    """A seeded schedule deciding which operation indices fail.

    An operation fails when its index is in ``fail_at``, or with
    probability ``rate`` drawn from a ``random.Random(seed)`` stream —
    the same seed always yields the same failure sequence.  At most
    ``max_failures`` failures are injected (unlimited when ``None``);
    afterwards the plan is exhausted and everything succeeds, which lets
    a retry loop demonstrably recover.

    ``errno`` puts a specific error number on every injected ``OSError``
    (e.g. ``errno.ENOSPC`` for a full disk), so wrappers that *classify*
    errnos — retry transient ones, fail fast on fatal ones — can be
    driven down either path deterministically.  ``None`` (the default)
    raises the historical errno-less ``OSError``, which classifiers must
    treat as transient.
    """

    def __init__(
        self,
        seed: int = 0,
        rate: float = 0.0,
        fail_at: Iterable[int] = (),
        max_failures: Optional[int] = None,
        errno: Optional[int] = None,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self._rng = random.Random(seed)
        self.rate = rate
        self.fail_at = frozenset(int(i) for i in fail_at)
        self.max_failures = max_failures
        self.errno = errno
        #: Operations observed and failures injected so far.
        self.ops = 0
        self.failures = 0

    def tick(self, what: str = "operation") -> None:
        """Account one operation; raise ``OSError`` if it is scheduled to fail."""
        op = self.ops
        self.ops += 1
        # Draw unconditionally so the random stream position depends only
        # on the op index, not on earlier outcomes.
        roll = self._rng.random() if self.rate > 0.0 else 1.0
        if self.max_failures is not None and self.failures >= self.max_failures:
            return
        if op in self.fail_at or roll < self.rate:
            self.failures += 1
            message = f"injected {what} failure (op {op}, seed plan)"
            if self.errno is not None:
                raise OSError(self.errno, message)
            raise OSError(message)


class FlakyWorker:
    """Deterministic worker-process fault injection, keyed on task id.

    Unlike :class:`FailurePlan` (which counts a *stream* of operations),
    the decision here depends only on ``(seed, task_id)``: a task that is
    retried or speculatively re-dispatched to another worker fails in
    exactly the same way — the property the poison-quarantine tests rely
    on.  Fault modes:

    * ``kill_at`` — the worker SIGKILLs its own process before executing
      the task (a hard crash: no exception, no cleanup);
    * ``hang_at`` — the worker sleeps ``hang_seconds`` before executing
      (exercises the per-task timeout / heartbeat path);
    * ``error_at`` — the task raises ``OSError`` (an ordinary in-task
      failure, retried in-band without killing the worker);
    * ``kill_rate`` — additionally, each task id crashes the worker with
      this probability under a draw seeded by ``(seed, task_id)`` alone.

    ``max_failures`` bounds the total *kill* injections.  Because killed
    workers are respawned, the count must survive process death: the
    supervisor binds a shared counter via :meth:`bind_shared_budget`
    (a ``multiprocessing.Value``) that all worker incarnations decrement.
    """

    def __init__(
        self,
        kill_at: Iterable[int] = (),
        hang_at: Iterable[int] = (),
        error_at: Iterable[int] = (),
        seed: int = 0,
        kill_rate: float = 0.0,
        hang_seconds: float = 3600.0,
        max_failures: Optional[int] = None,
    ):
        if not 0.0 <= kill_rate <= 1.0:
            raise ValueError(f"kill_rate must be in [0, 1], got {kill_rate}")
        self.kill_at = frozenset(int(i) for i in kill_at)
        self.hang_at = frozenset(int(i) for i in hang_at)
        self.error_at = frozenset(int(i) for i in error_at)
        self.seed = int(seed)
        self.kill_rate = kill_rate
        self.hang_seconds = float(hang_seconds)
        self.max_failures = max_failures
        #: Shared kill budget bound by the supervisor (``None`` = local).
        self._shared_budget = None
        self._local_failures = 0

    @property
    def active(self) -> bool:
        """Whether any fault is configured."""
        return bool(
            self.kill_at or self.hang_at or self.error_at or self.kill_rate > 0.0
        )

    def bind_shared_budget(self, counter) -> None:
        """Attach a cross-process remaining-kill counter (``mp.Value``)."""
        self._shared_budget = counter

    def _take_kill_token(self) -> bool:
        """Consume one kill from the budget; ``False`` when exhausted."""
        if self._shared_budget is not None:
            with self._shared_budget.get_lock():
                if self._shared_budget.value == 0:
                    return False
                if self._shared_budget.value > 0:
                    self._shared_budget.value -= 1
            return True
        if self.max_failures is not None and self._local_failures >= self.max_failures:
            return False
        self._local_failures += 1
        return True

    def _wants_kill(self, task_id: int) -> bool:
        if task_id in self.kill_at:
            return True
        if self.kill_rate > 0.0:
            draw = random.Random((self.seed << 32) ^ task_id).random()
            return draw < self.kill_rate
        return False

    def maybe_fail(self, task_id: int) -> None:
        """Inject this task's scheduled fault, if any (called in the worker)."""
        task_id = int(task_id)
        if self._wants_kill(task_id) and self._take_kill_token():
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - process dies
        if task_id in self.hang_at and self._take_kill_token():
            time.sleep(self.hang_seconds)
        if task_id in self.error_at:
            raise OSError(f"injected worker failure on task {task_id} (seed plan)")


class FlakySink(JoinSink):
    """A sink whose writes fail on a deterministic schedule.

    The failure is raised *before* delegating, so a failed operation
    stores nothing and charges nothing — exactly the semantics a retry
    wrapper or a resumed checkpoint run needs to recover losslessly.
    """

    def __init__(self, inner: JoinSink, plan: Optional[FailurePlan] = None, **plan_kwargs):
        super().__init__(inner.stats, inner.id_width)
        self.inner = inner
        self.plan = plan if plan is not None else FailurePlan(**plan_kwargs)

    def write_link(self, i: int, j: int) -> None:
        self.plan.tick("sink write")
        self.inner.write_link(i, j)

    def write_link_raw(self, i: int, j: int) -> None:
        self.plan.tick("sink write")
        self.inner.write_link_raw(i, j)

    def write_links(self, ids_i: Sequence[int], ids_j: Sequence[int]) -> None:
        self.plan.tick("sink write")
        self.inner.write_links(ids_i, ids_j)

    def write_group(self, ids: Sequence[int]) -> None:
        self.plan.tick("sink write")
        self.inner.write_group(ids)

    def write_group_pair(self, ids_a: Sequence[int], ids_b: Sequence[int]) -> None:
        self.plan.tick("sink write")
        self.inner.write_group_pair(ids_a, ids_b)

    def close(self) -> None:
        # Closing never fails: recovery tests need to release the file.
        self.inner.close()


class _FlakyNode:
    """Node proxy that ticks the failure plan on child/entry access."""

    __slots__ = ("_node", "_plan")

    def __init__(self, node: IndexNode, plan: FailurePlan):
        self._node = node
        self._plan = plan

    @property
    def children(self):
        self._plan.tick("index page read")
        return [_FlakyNode(child, self._plan) for child in self._node.children]

    @property
    def entry_ids(self):
        self._plan.tick("index page read")
        return self._node.entry_ids

    def __getattr__(self, attr: str):
        return getattr(self._node, attr)

    def __repr__(self) -> str:
        return f"FlakyNode({self._node!r})"


class FlakyIndex:
    """A spatial index whose node accesses fail on a deterministic schedule.

    Wraps a built tree; descending through :attr:`root` yields proxy
    nodes that raise ``OSError`` when the plan schedules a failure on a
    ``children`` / ``entry_ids`` access — a simulated failed page read.
    All other attributes (``points``, ``metric``, ``size``, queries)
    delegate to the wrapped tree.
    """

    name = "flaky"

    def __init__(self, tree: SpatialIndex, plan: Optional[FailurePlan] = None, **plan_kwargs):
        self._tree = tree
        self.plan = plan if plan is not None else FailurePlan(**plan_kwargs)

    @property
    def root(self):
        if self._tree.root is None:
            return None
        return _FlakyNode(self._tree.root, self.plan)

    def __getattr__(self, attr: str):
        return getattr(self._tree, attr)

    def __repr__(self) -> str:
        return f"FlakyIndex({self._tree!r}, failures={self.plan.failures})"


class OverloadInjector:
    """Seeded request storms and dependency brownouts for the serving layer.

    Two roles, both deterministic under one seed:

    * :meth:`storm` builds a request storm — typically sized at a
      multiple of the service's admission capacity — over seeded slices
      of one base dataset, so every storm request is reproducible
      offline (the overload gate reruns each admitted request solo and
      compares bytes).
    * :meth:`before_execute` is the injection hook the
      :class:`~repro.service.JoinService` calls as each request starts
      executing: selected requests stall (a slow dependency browning the
      service out) or raise a pool/sink failure (tripping the matching
      circuit breaker).  Decisions are fixed per request id when the
      storm is built — re-executions misbehave identically.
    """

    def __init__(
        self,
        seed: int = 0,
        slow_every: int = 0,
        slow_seconds: float = 0.05,
        fail_at: Iterable[int] = (),
        failure: str = "pool",
        sleep=time.sleep,
    ):
        if failure not in ("pool", "sink"):
            raise ValueError(f"failure must be 'pool' or 'sink', got {failure!r}")
        self.seed = int(seed)
        self.slow_every = int(slow_every)
        self.slow_seconds = float(slow_seconds)
        self.fail_at = frozenset(int(i) for i in fail_at)
        self.failure = failure
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._decisions: dict[str, tuple[str, float]] = {}
        #: Injected events, for test assertions: (request_id, kind).
        self.injected: list[tuple[str, str]] = []

    def storm(
        self,
        points,
        eps: float,
        requests: int = 32,
        algorithm: str = "csj",
        g: int = 10,
        deadline_seconds: Optional[float] = None,
        max_output_bytes: Optional[int] = None,
        min_fraction: float = 0.4,
    ) -> list:
        """Build ``requests`` seeded join requests over slices of ``points``.

        Each request joins a contiguous slice (at least ``min_fraction``
        of the base set) at a jittered query range, so sizes and costs
        vary the way real traffic does while staying byte-reproducible:
        request ``i`` of seed ``s`` is always the same join.
        """
        from repro.service import JoinRequest  # deferred: no import cycle

        n = len(points)
        lo = max(2, int(n * min_fraction))
        out = []
        for i in range(int(requests)):
            size = self._rng.randint(lo, n)
            start = self._rng.randint(0, n - size)
            request_id = f"storm-{self.seed}-{i}"
            out.append(
                JoinRequest(
                    points=points[start : start + size],
                    eps=eps * self._rng.uniform(0.8, 1.2),
                    algorithm=algorithm,
                    g=g,
                    deadline_seconds=deadline_seconds,
                    max_output_bytes=max_output_bytes,
                    request_id=request_id,
                )
            )
            if i in self.fail_at:
                self._decisions[request_id] = ("fail", 0.0)
            elif self.slow_every and i % self.slow_every == self.slow_every - 1:
                self._decisions[request_id] = ("slow", self.slow_seconds)
        return out

    def before_execute(self, request_id: Optional[str]) -> None:
        """Injection hook: stall or fail this request, per the plan."""
        decision = self._decisions.get(request_id or "")
        if decision is None:
            return
        kind, value = decision
        if kind == "slow":
            self.injected.append((request_id, "slow"))
            self._sleep(value)
            return
        self.injected.append((request_id, f"fail-{self.failure}"))
        if self.failure == "pool":
            from repro.errors import WorkerPoolError

            raise WorkerPoolError(
                f"injected worker-pool failure (chaos, request {request_id})"
            )
        from repro.errors import SinkIOError

        raise SinkIOError(
            f"injected sink failure (chaos, request {request_id})"
        )
