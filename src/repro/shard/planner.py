"""Spatial shard planning with ε-margin boundary replication.

A *shard plan* splits a dataset into ``K`` spatial shards.  Every point
has exactly one **home** shard (the grid cell or Hilbert run that owns
it); each shard's working set is its core points plus a **halo**: every
foreign point within ``eps`` of the shard's core bounding rectangle.
The halo makes each per-shard join *locally exact* — the ε-margin
replication of McCauley & Silvestri's adaptive MapReduce similarity
joins:

    For any qualifying pair ``(i, j)`` with ``dist(i, j) < eps``, let
    ``s = home(min(i, j))``.  The min-id point is core in ``s``, so it
    lies inside ``s``'s core MBR; the partner is within ``eps`` of it,
    hence within ``eps`` of the MBR, hence in ``s``'s halo (or core).
    Both endpoints are therefore in shard ``s``'s working set, and the
    shard's local join finds the pair.

That same rule is the **canonical owner rule** used to emit cross-shard
pairs exactly once with no deduplication pass: a pair found inside a
shard is *kept* iff the home shard of its min-id endpoint is that shard
— the reference-point idiom PBSM already uses for tile overlap, lifted
to shards.  The halo test uses the inclusive ``<= eps`` margin: the
join predicate is strict (``dist < eps``), so the inclusive margin is a
safe superset and immune to any rounding slack in the clamp-then-norm
box distance.

Two partitioners are provided (both deterministic, so every process —
parent, workers, a resumed run — re-derives the identical plan):

* ``"grid"`` — the bounding box is cut into a ``K``-cell axis grid
  (side counts are an integer factorisation of ``K``); a point's home is
  the cell containing it.
* ``"hilbert"`` — points are ordered along the Hilbert curve
  (:func:`repro.geometry.curves.hilbert_sort`) and the order is cut into
  ``K`` near-equal contiguous runs; spatially coherent like the grid but
  balanced by construction under skew.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import InvalidInputError, validate_eps, validate_points
from repro.geometry.curves import hilbert_sort
from repro.geometry.mbr import MBR
from repro.geometry.metrics import Metric, get_metric

__all__ = ["PARTITIONERS", "ShardPlan", "ShardPlanner", "grid_shape"]

#: Supported partitioner names.
PARTITIONERS = ("grid", "hilbert")


def grid_shape(k: int, dim: int) -> tuple[int, ...]:
    """Factor ``k`` into ``dim`` per-axis cell counts with product ``k``.

    Greedy: each prime factor of ``k`` (largest first) multiplies the
    currently smallest axis, keeping the factors as balanced as an exact
    integer factorisation allows (``8, 2 -> (4, 2)``; ``3, 2 -> (3, 1)``).
    """
    shape = [1] * dim
    for p in _prime_factors(k):
        shape[shape.index(min(shape))] *= p
    return tuple(sorted(shape, reverse=True))


def _prime_factors(k: int) -> list[int]:
    factors: list[int] = []
    d = 2
    while d * d <= k:
        while k % d == 0:
            factors.append(d)
            k //= d
        d += 1
    if k > 1:
        factors.append(k)
    return sorted(factors, reverse=True)


@dataclass
class ShardPlan:
    """The materialised assignment: homes, working sets and load stats."""

    #: Number of shards (some may be empty).
    k: int
    #: Partitioner that produced the plan.
    partitioner: str
    #: Query range the halo was computed for.
    eps: float
    #: ``home[i]`` is the home shard of point ``i``.
    home: np.ndarray
    #: Per shard, the sorted global ids of its working set (core + halo).
    members: list = field(default_factory=list)
    #: Per shard, the number of core points (``home == s``).
    core_counts: np.ndarray = None
    #: Per shard, the number of replicated halo points.
    halo_counts: np.ndarray = None

    @property
    def points(self) -> int:
        """Total core memberships — always the dataset size."""
        return int(self.core_counts.sum())

    @property
    def halo_points(self) -> int:
        """Total replicated memberships across all halos."""
        return int(self.halo_counts.sum())

    @property
    def skew_ratio(self) -> float:
        """Max over mean working-set size — 1.0 is perfectly balanced."""
        sizes = self.core_counts + self.halo_counts
        total = int(sizes.sum())
        if total == 0 or self.k == 0:
            return 1.0
        return float(sizes.max() / (total / self.k))

    def report(self) -> dict:
        """Flat summary for metrics, benchmarks and ``JoinResult``."""
        return {
            "shards": self.k,
            "partitioner": self.partitioner,
            "points": self.points,
            "halo_points": self.halo_points,
            "skew_ratio": self.skew_ratio,
            "core_counts": [int(c) for c in self.core_counts],
            "halo_counts": [int(c) for c in self.halo_counts],
        }


class ShardPlanner:
    """Plans K-way spatial shards with an ε-margin halo.

    >>> import numpy as np
    >>> pts = np.random.default_rng(0).random((100, 2))
    >>> plan = ShardPlanner(4).plan(pts, 0.05)
    >>> plan.points, plan.k
    (100, 4)
    """

    def __init__(self, shards: int, partitioner: str = "grid", bits: int = 16):
        if int(shards) != shards or shards < 1:
            raise InvalidInputError(f"shards must be an integer >= 1, got {shards}")
        partitioner = str(partitioner).lower()
        if partitioner not in PARTITIONERS:
            raise InvalidInputError(
                f"unknown partitioner {partitioner!r}; known: {PARTITIONERS}"
            )
        self.shards = int(shards)
        self.partitioner = partitioner
        self.bits = int(bits)

    def plan(
        self, points: np.ndarray, eps: float, metric: Optional[Metric] = None
    ) -> ShardPlan:
        """Assign homes and compute each shard's ε-margin working set."""
        points = validate_points(points)
        eps = validate_eps(eps)
        metric = get_metric(metric)
        n = len(points)
        k = self.shards
        if self.partitioner == "hilbert":
            home = self._hilbert_homes(points, k)
        else:
            home = self._grid_homes(points, k)

        members: list[np.ndarray] = []
        core_counts = np.zeros(k, dtype=np.int64)
        halo_counts = np.zeros(k, dtype=np.int64)
        for s in range(k):
            core = home == s
            n_core = int(core.sum())
            core_counts[s] = n_core
            if n_core == 0:
                # An empty shard has no core MBR, hence no halo and no
                # work; it stays in the plan so shard ids are stable.
                members.append(np.empty(0, dtype=np.int64))
                continue
            box = MBR.of_points(points[core])
            near = box.min_dist_points(points, metric) <= eps
            mask = core | near
            ids = np.flatnonzero(mask).astype(np.int64)
            members.append(ids)
            halo_counts[s] = len(ids) - n_core
        return ShardPlan(
            k=k,
            partitioner=self.partitioner,
            eps=eps,
            home=home,
            members=members,
            core_counts=core_counts,
            halo_counts=halo_counts,
        )

    # ------------------------------------------------------------------
    # Home assignment
    # ------------------------------------------------------------------
    @staticmethod
    def _grid_homes(points: np.ndarray, k: int) -> np.ndarray:
        dim = points.shape[1]
        shape = grid_shape(k, dim)
        lo = points.min(axis=0)
        span = points.max(axis=0) - lo
        span[span == 0.0] = 1.0
        cells = np.empty((len(points), dim), dtype=np.int64)
        for axis in range(dim):
            idx = np.floor((points[:, axis] - lo[axis]) / span[axis] * shape[axis])
            cells[:, axis] = np.clip(idx.astype(np.int64), 0, shape[axis] - 1)
        return np.ravel_multi_index(cells.T, shape).astype(np.int64)

    def _hilbert_homes(self, points: np.ndarray, k: int) -> np.ndarray:
        n, dim = points.shape
        bits = min(self.bits, max(1, 63 // max(dim, 1)))
        order = hilbert_sort(points, bits=bits)
        home = np.empty(n, dtype=np.int64)
        bounds = [round(s * n / k) for s in range(k + 1)]
        for s in range(k):
            home[order[bounds[s]:bounds[s + 1]]] = s
        return home
