"""The sharded join driver: per-shard discovery + canonical replay.

:func:`sharded_join` runs a similarity self-join as a two-phase
pipeline over a :class:`~repro.shard.planner.ShardPlan`:

**Phase 1 — discovery.**  Each shard builds its own index over its
working set (core + ε-margin halo) and runs its canonical task
sequence; the owner rule reduces every task's events to the globally
owned qualifying links (see :mod:`repro.shard.state`).  Tasks run
serially or through the existing parallel supervisor — shm or pickle
plane — exactly like an unsharded parallel join; links are collected,
never written.

**Phase 2 — canonical replay.**  The owned links (each global pair
appears exactly once, by the owner rule — there is no dedup pass) are
sorted by ``(i, j)`` and replayed through the standard emission path:
straight to the sink for plain joins, through a single CSJ(``g``) merge
window for compact ones.

The replay stream depends only on the *set* of qualifying pairs, which
is exact for any plan.  Output bytes and all output-side counters are
therefore **invariant across shard count, partitioner, worker count,
data plane, index and engine** — the shard-parity battery proves
byte-identity over that whole matrix.  Work counters (distance
computations, MBR checks, early stops) are inherently K-dependent —
halo points are probed in more than one shard — and are reported
separately on ``JoinResult.shard_report["work"]`` plus the
``repro_shard_*`` metrics; the canonical ``repro_join_*`` counters stay
identical in every cell.

Budget semantics: deadlines bind end-to-end through both phases; the
byte/group caps are enforced conservatively against the phase-1
collection volume and exactly during replay.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.groups import GroupBuffer
from repro.core.results import CollectSink, JoinResult, JoinSink
from repro.errors import BudgetExceededError, PoisonTaskError
from repro.geometry.metrics import get_metric
from repro.io.writer import width_for
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.resilience.budget import Budget
from repro.stats.counters import JoinStats

__all__ = ["ShardedJoin", "sharded_join", "sorted_owned_links", "REPLAY_CHECK_EVERY"]

logger = get_logger("shard.driver")

#: Budget-check cadence (replayed links) during phase 2.
REPLAY_CHECK_EVERY = 256


def sorted_owned_links(links) -> np.ndarray:
    """Canonicalise collected owned links: an ``(m, 2)`` array sorted by
    ``(i, j)``.  The owner rule guarantees uniqueness, so sorting alone
    fixes the replay order — no dedup pass."""
    if not len(links):
        return np.empty((0, 2), dtype=np.int64)
    arr = np.asarray(links, dtype=np.int64).reshape(-1, 2)
    order = np.lexsort((arr[:, 1], arr[:, 0]))
    return arr[order]


def sharded_join(
    points: np.ndarray,
    eps: float,
    algorithm: str = "csj",
    g: int = 10,
    shards: int = 1,
    partitioner: str = "grid",
    index: str = "rstar",
    metric: object = None,
    sink: Optional[JoinSink] = None,
    max_entries: int = 64,
    bulk: Optional[str] = "str",
    budget: Optional[Budget] = None,
    workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    config: object = None,
    fault: object = None,
    engine: str = "vectorized",
    data_plane: str = "auto",
    shared: object = None,
) -> JoinResult:
    """Similarity self-join over ``shards`` spatial shards.

    Parameters mirror :func:`repro.api.similarity_join`; additionally
    ``shards``/``partitioner`` select the plan, ``workers`` > 1 runs
    phase 1 through the parallel supervisor (``config``/``fault`` as in
    :func:`repro.parallel.parallel_join`), and ``shared`` reuses a
    pre-published :class:`~repro.parallel.shm.SharedDataset`.

    Guarantee: output bytes and canonical output counters are identical
    for every ``(shards, partitioner, workers, data_plane, index,
    engine)`` choice, and the implied pair set equals the unsharded
    join's.
    """
    from repro.parallel.tasks import JoinSpec

    deadline_at = None
    parallel = workers is not None and workers > 1
    if budget is not None:
        remaining = budget.remaining_seconds()
        if budget.deadline_at is not None:
            deadline_at = budget.deadline_at
        elif remaining is not None:
            deadline_at = time.monotonic() + remaining
        if parallel:
            capped = budget.cap_timeout(task_timeout)
            if capped is not None and capped <= 0:
                capped = 1e-3
            task_timeout = capped

    owned_dataset = None
    plane = "pickle"
    if parallel:
        from repro.parallel.shm import SharedDataset, resolve_data_plane

        plane = resolve_data_plane(data_plane)
        if shared is None and plane == "shm":
            owned_dataset = shared = SharedDataset(
                points, metric=metric, data_plane=data_plane
            )
    if shared is not None:
        points = shared.points
        plane = shared.plane

    try:
        spec = JoinSpec(
            points=points,
            eps=eps,
            algorithm=algorithm,
            g=g,
            index=index,
            max_entries=max_entries,
            bulk=bulk,
            metric=metric,
            engine=engine,
            deadline_at=deadline_at,
            data_plane=plane,
            dataset_ref=shared.ref if shared is not None else None,
            shards=shards,
            partitioner=partitioner,
        )
        if shared is not None:
            spec._shared = shared
        state = spec.build_state()
        plan = state.plan
        get_registry().record_shard_plan(
            shards=plan.k,
            points=plan.points,
            halo_points=plan.halo_points,
            tasks=len(state.tasks),
            skew_ratio=plan.skew_ratio,
        )

        if sink is None:
            sink = CollectSink(id_width=width_for(len(spec.points)))
        stats = sink.stats
        buffer = state.make_buffer(sink, stats)  # always None: replay windows
        metric_obj = get_metric(metric)
        pts = spec.points
        dim = pts.shape[1]
        compact = spec.compact
        report = plan.report()
        report["tasks"] = len(state.tasks)
        write_time_before = stats.write_time
        start = time.perf_counter()

        def finish(window: Optional[GroupBuffer]) -> JoinResult:
            if window is not None:
                window.flush()
            elapsed = time.perf_counter() - start
            stats.compute_time += elapsed - (stats.write_time - write_time_before)
            result = JoinResult.from_sink(
                sink,
                eps=spec.eps,
                algorithm=spec.label(),
                g=spec.g if compact else None,
                index_name=state.index_name,
            )
            result.shard_report = report
            return result

        # ------------------------------------------------------------------
        # Phase 1: per-shard discovery -> owned links (no output writes)
        # ------------------------------------------------------------------
        phase_sink = CollectSink(id_width=width_for(len(spec.points)))
        phase_stats = phase_sink.stats
        try:
            run_phase1(
                state,
                phase_sink,
                phase_stats,
                budget=budget,
                workers=workers if parallel else None,
                task_timeout=task_timeout,
                config=config,
                fault=fault,
            )
        except (BudgetExceededError, PoisonTaskError) as exc:
            report["work"] = _work_report(phase_stats)
            exc.partial = finish(None)
            raise
        report["work"] = _work_report(phase_stats)

        # ------------------------------------------------------------------
        # Phase 2: canonical replay (all output happens here)
        # ------------------------------------------------------------------
        pairs = sorted_owned_links(phase_sink.links)
        window = None
        if compact:
            window = GroupBuffer(
                spec.g, spec.eps, sink, metric=metric_obj, stats=stats, dim=dim
            )
        try:
            replay_links(pairs, sink, window, pts, budget=budget, stats=stats)
        except BudgetExceededError as exc:
            exc.partial = finish(window)
            raise
        logger.debug(
            "sharded join finished",
            extra={
                "shards": plan.k,
                "partitioner": plan.partitioner,
                "owned_links": int(len(pairs)),
                "halo_points": plan.halo_points,
            },
        )
        return finish(window)
    finally:
        if owned_dataset is not None:
            owned_dataset.close()


def run_phase1(
    state,
    phase_sink: JoinSink,
    phase_stats: JoinStats,
    budget: Optional[Budget] = None,
    workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    config: object = None,
    fault: object = None,
    start_cursor: int = 0,
) -> None:
    """Execute every shard task, collecting owned links into ``phase_sink``.

    With ``workers`` > 1 the tasks run through the existing supervised
    pool (heartbeats, retries, respawn, speculation — identical failure
    policy to an unsharded parallel join); otherwise a serial loop.
    """
    if workers is not None and workers > 1:
        from repro.parallel.scheduler import WorkScheduler
        from repro.parallel.supervisor import SupervisorConfig

        if config is None:
            config = SupervisorConfig(workers=workers, task_timeout=task_timeout)
        WorkScheduler(
            state,
            phase_sink,
            config,
            stats=phase_stats,
            buffer=None,
            budget=budget,
            fault=fault,
            start_cursor=start_cursor,
            skip_poisoned=True,
        ).run()
        return
    if budget is not None:
        budget.start()
    for task_id in range(start_cursor, len(state.tasks)):
        if budget is not None:
            budget.check(phase_stats)
        events, counters = state.execute(task_id)
        state.apply(events, counters, phase_sink, None, phase_stats)


def replay_links(
    pairs: np.ndarray,
    sink: JoinSink,
    window: Optional[GroupBuffer],
    points: np.ndarray,
    budget: Optional[Budget] = None,
    stats: Optional[JoinStats] = None,
    start_cursor: int = 0,
    on_link_replayed=None,
) -> None:
    """Replay canonical ``(i, j)`` pairs through the emission path.

    Plain joins batch straight to the sink; compact joins route every
    pair through the single CSJ(g) ``window`` with the endpoints'
    coordinates.  ``on_link_replayed(cursor)`` fires after each unit —
    the checkpoint hook for resumable sharded runs.
    """
    stats = stats if stats is not None else sink.stats
    if budget is not None:
        budget.start()
    n = len(pairs)
    if window is None and on_link_replayed is None:
        for lo in range(start_cursor, n, REPLAY_CHECK_EVERY):
            hi = min(lo + REPLAY_CHECK_EVERY, n)
            if budget is not None:
                budget.check(stats)
            chunk = pairs[lo:hi]
            sink.write_links(chunk[:, 0], chunk[:, 1])
        return
    if window is None:
        # Checkpointed: one write per unit so the journal cursor always
        # equals the number of links durably written (batching would let
        # the recorded offset run ahead of the cursor and duplicate
        # links on resume).
        for idx in range(start_cursor, n):
            if budget is not None and idx % REPLAY_CHECK_EVERY == 0:
                budget.check(stats)
            sink.write_link(int(pairs[idx, 0]), int(pairs[idx, 1]))
            on_link_replayed(idx + 1)
        return
    add_link = window.add_link
    for idx in range(start_cursor, n):
        if budget is not None and idx % REPLAY_CHECK_EVERY == 0:
            budget.check(stats)
        i = int(pairs[idx, 0])
        j = int(pairs[idx, 1])
        add_link(i, j, points[i], points[j])
        if on_link_replayed is not None:
            on_link_replayed(idx + 1)


def _work_report(phase_stats: JoinStats) -> dict:
    """The K-dependent phase-1 work charges (halo overhead accounting)."""
    return {
        "distance_computations": int(phase_stats.distance_computations),
        "mbr_checks": int(phase_stats.mbr_checks),
        "early_stops": int(phase_stats.early_stops),
    }


class ShardedJoin:
    """Reusable driver object: one configuration, many ``run()`` calls.

    Thin object form of :func:`sharded_join` for callers that prepare a
    sharded join once and execute it repeatedly (services, benchmarks):

    >>> import numpy as np
    >>> pts = np.random.default_rng(0).random((200, 2))
    >>> job = ShardedJoin(pts, 0.05, shards=4, partitioner="grid")
    >>> result = job.run()
    >>> result.shard_report["shards"]
    4
    """

    def __init__(self, points: np.ndarray, eps: float, **kwargs):
        self.points = points
        self.eps = eps
        self.kwargs = dict(kwargs)

    def run(self, **overrides) -> JoinResult:
        """Execute the sharded join; ``overrides`` patch the stored
        configuration for this call only (e.g. ``workers=4``)."""
        merged = dict(self.kwargs)
        merged.update(overrides)
        return sharded_join(self.points, self.eps, **merged)
