"""Sharded join execution with ε-margin boundary replication.

Public surface:

* :class:`~repro.shard.planner.ShardPlanner` /
  :class:`~repro.shard.planner.ShardPlan` — K-way spatial partitioning
  (grid or Hilbert-curve) with an ε-margin halo that makes every
  per-shard join locally exact;
* :class:`~repro.shard.state.ShardTaskState` — the canonical shard-task
  sequence, executable through the existing parallel supervisor;
* :func:`~repro.shard.driver.sharded_join` /
  :class:`~repro.shard.driver.ShardedJoin` — the two-phase driver whose
  output is byte-identical across shard count, partitioner, worker
  count, data plane, index and engine.

See DESIGN.md's "Sharding" section for the owner rule, the halo
invariant and the fingerprint contract.
"""

from repro.shard.driver import ShardedJoin, sharded_join
from repro.shard.planner import PARTITIONERS, ShardPlan, ShardPlanner
from repro.shard.state import ShardTaskState

__all__ = [
    "PARTITIONERS",
    "ShardPlan",
    "ShardPlanner",
    "ShardTaskState",
    "ShardedJoin",
    "sharded_join",
]
