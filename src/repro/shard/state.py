"""Per-process materialisation of a sharded join's canonical task list.

:class:`ShardTaskState` is the sharded counterpart of
:class:`repro.parallel.tasks.TaskState` and plugs into the same
machinery: the :class:`~repro.parallel.scheduler.WorkScheduler` and the
worker loop only need ``tasks``, ``spec``, ``execute`` and ``apply``,
so shard tasks flow through the existing supervisor (shm or pickle
plane) unchanged.

Construction builds **one index per shard**: each shard's working set
(core + ε-margin halo, see :mod:`repro.shard.planner`) gets its own sub
:class:`~repro.parallel.tasks.JoinSpec` with the requested algorithm
and index, and the global task list is the concatenation of the
sub-states' canonical task lists in shard order.  Everything is
deterministic, so every process derives the identical sequence.

:meth:`execute` runs one shard-local task and converts its events into
**owned global links**: local ids are mapped through the shard's member
table, any ``group`` event is expanded to its implied pairs (exact — a
group's diameter is strictly below ``eps``), and the canonical owner
rule keeps a pair iff the home shard of its min-id endpoint is this
shard.  Discovery uses the plain variant of the requested algorithm
(see :data:`DISCOVERY_VARIANT`) so the owned stream carries each pair
exactly once.  The result is a plain ``("links", ...)`` event stream,
so the parent replays it with the inherited :meth:`TaskState.apply` —
no merge window in phase 1; compact grouping happens in the driver's
canonical replay (:mod:`repro.shard.driver`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.metrics import get_metric, triu_pair_indices
from repro.parallel.tasks import JoinSpec, TaskState
from repro.shard.planner import ShardPlanner

__all__ = ["DISCOVERY_VARIANT", "ShardTaskState"]

#: Phase-1 discovery runs the *plain* variant of the requested
#: algorithm.  Compact discovery events over-imply: an early-stopped
#: node-pair (or cell-union) group implies every pair in the union,
#: including intra-node pairs the nodes' own events already covered.
#: The merge window absorbs those repeats in classic execution, but the
#: sharded replay stream must carry each qualifying pair exactly once —
#: the owner rule is the only de-duplication mechanism, by design — so
#: discovery stays non-compact and the compact structure is built
#: entirely by the driver's canonical CSJ(g) replay window.
DISCOVERY_VARIANT = {
    "csj": "ssj",
    "ncsj": "ssj",
    "egrid-csj": "egrid",
    "pbsm-csj": "pbsm",
}


class ShardTaskState:
    """One process's view of a sharded join: plan, sub-states, tasks."""

    #: Compatibility with ``TaskState`` plumbing (warm cache, packed-ref
    #: restoration): shard states never use the packed fast path at the
    #: outer level — each *sub*-state packs its own shard index.
    task_mode = "shard"
    packed = None
    tree = None

    def __init__(self, spec):
        self.spec = spec
        self.points = spec.points
        self.metric = get_metric(spec.metric)
        self.eps = spec.eps
        self.compact = spec.compact
        self.g = spec.g if spec.compact else 0
        self.plan = ShardPlanner(spec.shards, spec.partitioner).plan(
            spec.points, spec.eps, self.metric
        )
        #: shard id -> built sub-state (only shards with >= 2 members).
        self.substates: dict[int, TaskState] = {}
        #: Canonical task list: ``("shard", shard_id, local_task_id)``.
        self.tasks: list[tuple] = []
        index_name = None
        for s, ids in enumerate(self.plan.members):
            if len(ids) < 2:
                continue
            sub = JoinSpec(
                points=self.points[ids],
                eps=self.eps,
                algorithm=DISCOVERY_VARIANT.get(spec.algorithm, spec.algorithm),
                g=spec.g,
                index=spec.index,
                max_entries=spec.max_entries,
                bulk=spec.bulk,
                metric=spec.metric,
                partitions_per_axis=spec.partitions_per_axis,
                engine=spec.engine,
            ).build_state()
            self.substates[s] = sub
            self.tasks.extend(("shard", s, t) for t in range(len(sub.tasks)))
            index_name = sub.index_name
        if index_name is None:
            from repro.index import get_index_class

            if spec.family == "tree":
                index_name = get_index_class(spec.index).name
            else:
                index_name = spec.family
        self.index_name = index_name

    def __len__(self) -> int:
        return len(self.tasks)

    def rebind(self, spec) -> "ShardTaskState":
        """Warm-cache clone bound to ``spec`` (see ``TaskState.rebind``)."""
        if spec is self.spec:
            return self
        clone = object.__new__(ShardTaskState)
        clone.__dict__ = self.__dict__.copy()
        clone.spec = spec
        return clone

    # ------------------------------------------------------------------
    # Pure execution (any process)
    # ------------------------------------------------------------------
    def execute(self, task_id: int) -> tuple[list, tuple[int, int, int]]:
        """Run one shard task; returns owned global links plus counters.

        Pure like ``TaskState.execute``: no sink, no window, no stats —
        safe to retry or speculate.  The returned counters are the
        shard-local work charges (distance computations, MBR checks,
        early stops); they are *work* accounting, K-dependent by nature
        (halo points are probed in more than one shard), and the driver
        routes them into the shard report, not the canonical output
        counters.
        """
        _, s, local = self.tasks[task_id]
        events, counters = self.substates[s].execute(local)
        members = self.plan.members[s]
        home = self.plan.home
        out_i: list[np.ndarray] = []
        out_j: list[np.ndarray] = []
        for event in events:
            kind = event[0]
            if kind == "links" or kind == "linkseq":
                li = np.asarray(event[1], dtype=np.int64)
                lj = np.asarray(event[2], dtype=np.int64)
            elif kind == "group":
                ids = np.asarray(sorted(event[1]), dtype=np.int64)
                rows, cols = triu_pair_indices(len(ids))
                li, lj = ids[rows], ids[cols]
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown shard sub-event kind {kind!r}")
            if len(li) == 0:
                continue
            gi = members[li]
            gj = members[lj]
            lo = np.minimum(gi, gj)
            hi = np.maximum(gi, gj)
            owned = home[lo] == s
            if owned.any():
                out_i.append(lo[owned])
                out_j.append(hi[owned])
        if not out_i:
            return [], counters
        return (
            [("links", np.concatenate(out_i), np.concatenate(out_j))],
            counters,
        )

    # ------------------------------------------------------------------
    # Replay plumbing (parent)
    # ------------------------------------------------------------------
    def make_buffer(self, sink, stats) -> Optional[object]:
        """Phase 1 never windows: links are collected, sorted, and only
        then routed through the CSJ(g) window by the driver's canonical
        replay — that is what makes the output invariant across K."""
        return None

    # ``apply`` replays plain link events and charges work counters —
    # identical needs to the unsharded state, so adopt it verbatim.
    apply = staticmethod(TaskState.apply)
