"""ε-keyed result cache for the serving layer.

The paper's compact representation makes join *results* cheap enough to
retain: :class:`ResultCache` keeps completed
:class:`~repro.core.results.JoinResult` objects keyed by
``(dataset fingerprint, metric, eps, g, algorithm)``.  A request whose
dataset state and parameters match a cached entry is served without any
tree descent — byte-identical to the cold run, since the stored result
*is* the cold run's output.

Two freshness levels exist:

* **exact hit** — fingerprint and parameters match: served as
  ``admitted``, indistinguishable from recomputing.
* **stale hit** — the dataset moved on (updates changed the
  fingerprint) but a result for the same parameters survives.  Under
  overload the service may serve it marked ``stale=True`` — a
  recently-true answer beats the analytic estimator on the brownout
  ladder.

Eviction is LRU under two budgets (entry count and result bytes);
:meth:`ResultCache.invalidate` downgrades entries to stale rather than
dropping them, so brownout retains its fallback.  All four outcome
kinds are counted through ``repro_cache_{hits,misses,evictions,
patched}_total`` (see :meth:`repro.obs.metrics.MetricsRegistry.cache_event`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import replace
from typing import Optional

import numpy as np

from repro.core.results import JoinResult
from repro.dynamic.maintain import dataset_fingerprint
from repro.geometry.metrics import get_metric
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry

__all__ = ["CacheKey", "ResultCache"]

logger = get_logger("service.cache")

#: ``(fingerprint, metric, eps, g, algorithm)`` — the full cache key.
CacheKey = tuple[str, str, float, int, str]


def _params(key: CacheKey) -> tuple[str, float, int, str]:
    """The dataset-independent suffix of a key (metric, eps, g, algo)."""
    return key[1:]


class _Entry:
    __slots__ = ("result", "nbytes", "stale")

    def __init__(self, result: JoinResult, nbytes: int):
        self.result = result
        self.nbytes = nbytes
        self.stale = False


class ResultCache:
    """LRU + byte-budget cache of completed join results.

    Thread-safe; the serving layer calls it from every executor thread.
    ``max_bytes`` bounds the summed output sizes of retained results
    (the paper's space metric, ``stats.bytes_written``), ``max_entries``
    the entry count.
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024, max_entries: int = 128):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_bytes = int(max_bytes)
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self._bytes = 0
        #: params -> most recently stored key with those params; lets the
        #: brownout path find a stale result after the dataset moved on.
        self._latest: dict[tuple[str, float, int, str], CacheKey] = {}

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    @staticmethod
    def key_for(
        points: np.ndarray,
        eps: float,
        g: int,
        algorithm: str = "csj",
        metric: object = None,
        fingerprint: Optional[str] = None,
    ) -> CacheKey:
        """Build the cache key for a dataset + parameter combination.

        Pass ``fingerprint`` when the caller already knows it (e.g. a
        :class:`~repro.dynamic.MaintainedJoin` tracks its own) to skip
        re-hashing the points.
        """
        if fingerprint is None:
            points = np.asarray(points, dtype=float)
            fingerprint = dataset_fingerprint(points, range(len(points)))
        return (
            fingerprint,
            get_metric(metric).name,
            float(eps),
            int(g),
            str(algorithm).lower(),
        )

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[JoinResult]:
        """Exact lookup: fresh entry for this key, or None (a miss).

        Returns a shallow copy so callers cannot mutate the cached
        result's flags; the payload lists are shared (results are
        treated as immutable once complete).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.stale:
                get_registry().cache_event("miss")
                return None
            self._entries.move_to_end(key)
            get_registry().cache_event("hit")
            return replace(entry.result)

    def get_stale(
        self, eps: float, g: int, algorithm: str = "csj", metric: object = None
    ) -> Optional[JoinResult]:
        """Best-effort lookup ignoring the dataset fingerprint.

        The brownout path: any retained result with matching parameters
        — fresh or stale — returned with ``stale=True`` so the caller
        can mark the serving honestly.  Does not count as a hit or miss
        (the exact lookup already did).
        """
        params = (get_metric(metric).name, float(eps), int(g), str(algorithm).lower())
        with self._lock:
            key = self._latest.get(params)
            if key is None:
                return None
            entry = self._entries.get(key)
            if entry is None:
                return None
            return replace(entry.result, stale=True)

    def put(self, key: CacheKey, result: JoinResult) -> None:
        """Store a completed exact result, evicting LRU past the budgets.

        Degraded or estimated results are never cached — they are not
        reusable answers, and caching them would launder an estimate
        into an ``admitted`` outcome later.
        """
        if result.degraded or result.estimated:
            return
        nbytes = max(1, int(result.stats.bytes_written))
        if nbytes > self.max_bytes:
            logger.info(
                "result larger than the whole cache budget; not cached",
                extra={"bytes": nbytes, "budget": self.max_bytes},
            )
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = _Entry(result, nbytes)
            self._bytes += nbytes
            self._latest[_params(key)] = key
            self._evict_locked()

    def patched(self, key: CacheKey, result: JoinResult) -> None:
        """Store a result produced by incremental patching.

        Same storage semantics as :meth:`put`, but counted separately —
        ``repro_cache_patched_total`` measures how often the dynamic
        layer refreshed an entry without a from-scratch join.
        """
        self.put(key, result)
        get_registry().cache_event("patched")

    def invalidate(self, fingerprint: Optional[str] = None) -> int:
        """Downgrade entries to stale; returns how many were downgraded.

        ``fingerprint=None`` invalidates everything (the dataset is
        gone or wholly replaced); otherwise only entries for that
        dataset state.  Stale entries stop satisfying :meth:`get` but
        remain available to :meth:`get_stale` until evicted.
        """
        count = 0
        with self._lock:
            for key, entry in self._entries.items():
                if fingerprint is not None and key[0] != fingerprint:
                    continue
                if not entry.stale:
                    entry.stale = True
                    count += 1
        return count

    def _evict_locked(self) -> None:
        while self._entries and (
            self._bytes > self.max_bytes or len(self._entries) > self.max_entries
        ):
            key, entry = self._entries.popitem(last=False)
            self._bytes -= entry.nbytes
            if self._latest.get(_params(key)) == key:
                del self._latest[_params(key)]
            get_registry().cache_event("eviction")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> dict[str, int]:
        """Current occupancy (event totals live in the metrics registry)."""
        with self._lock:
            stale = sum(1 for e in self._entries.values() if e.stale)
            return {
                "entries": len(self._entries),
                "stale_entries": stale,
                "bytes_used": self._bytes,
                "max_bytes": self.max_bytes,
                "max_entries": self.max_entries,
            }
