"""Overload-resilient join serving.

The serving layer wraps the join library with the mechanisms a system
under real traffic needs: bounded admission with backpressure, absolute
per-request deadlines that propagate to every subordinate wait, circuit
breakers around the worker pool and sinks, and a brownout ladder that
degrades to the paper's analytic estimator before it sheds.  See
:mod:`repro.service.service` for the full contract and DESIGN.md
("Admission control & brownout ladder") for the state diagram.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.cache import CacheKey, ResultCache
from repro.service.service import (
    OUTCOMES,
    JoinRequest,
    JoinService,
    RequestOutcome,
    ServiceConfig,
)

__all__ = [
    "CacheKey",
    "CircuitBreaker",
    "JoinRequest",
    "JoinService",
    "RequestOutcome",
    "ResultCache",
    "ServiceConfig",
    "OUTCOMES",
]
