"""A generic circuit breaker: closed → open → half-open → closed.

The breaker protects a dependency (the worker pool, a durable sink) from
retry storms.  While *closed* every call passes and consecutive failures
are counted; at ``failure_threshold`` the circuit *opens* and calls fail
fast with :class:`~repro.errors.CircuitOpenError` for a cooldown period.
When the cooldown expires the circuit goes *half-open*: a bounded number
of probe calls are admitted — one success closes the circuit, one
failure re-opens it with a longer cooldown.

Cooldowns follow *decorrelated jitter* (the same schedule as
:class:`~repro.resilience.sinks.RetryingSink` backoff and the
scheduler's task retries): each is drawn uniformly from
``[cooldown_base, 3 * previous]``, capped at ``cooldown_max``.  Many
breakers opened by one incident therefore probe at decorrelated times
instead of hammering the dependency in lockstep.  The draw uses a
private ``random.Random(seed)`` — breaker timing never touches global
randomness, so seeded runs stay reproducible.

Thread-safe: the service's executor threads and the admission path share
one breaker per dependency.  ``clock`` is injectable so tests drive the
state machine without sleeping.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional

from repro.errors import CircuitOpenError
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry

__all__ = ["CircuitBreaker"]

logger = get_logger("service.breaker")


class CircuitBreaker:
    """Failure-counting circuit with decorrelated-jitter probe cooldowns.

    The object is duck-type compatible with the hooks
    :class:`~repro.parallel.scheduler.WorkScheduler` accepts: it exposes
    ``allow()``, ``record_success()``, ``record_failure()``,
    ``retry_after()`` and ``state``.

    >>> br = CircuitBreaker("demo", failure_threshold=1, cooldown_base=0.0)
    >>> br.record_failure(); br.state
    'open'
    """

    def __init__(
        self,
        name: str = "breaker",
        failure_threshold: int = 3,
        cooldown_base: float = 0.25,
        cooldown_max: float = 30.0,
        half_open_probes: int = 1,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.name = str(name)
        self.failure_threshold = int(failure_threshold)
        self.cooldown_base = float(cooldown_base)
        self.cooldown_max = float(cooldown_max)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._cooldown = self.cooldown_base
        self._reopen_at: Optional[float] = None
        self._probes_left = 0
        #: Lifetime transition count, mostly for tests and reports.
        self.transitions = 0

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` (non-consuming)."""
        with self._lock:
            return self._state

    def allow(self, consume: bool = True) -> bool:
        """Whether a call may proceed now.

        In the half-open state each ``True`` consumes one probe slot, so
        at most ``half_open_probes`` callers hit the dependency while
        its health is still in question.  ``consume=False`` is a pure
        health check — it refuses an open circuit (and still drives the
        open → half-open transition once the cooldown expires) but never
        burns a probe slot; use it when the caller already holds the
        probe for this piece of work (the scheduler's entry gate under
        the serving layer).
        """
        with self._lock:
            return self._admit(consume)[0]

    def acquire(self) -> tuple[bool, bool]:
        """Like :meth:`allow`, but also reports probe consumption.

        Returns ``(allowed, consumed_probe)``.  A caller that receives
        ``consumed_probe=True`` owns a half-open probe slot and must
        resolve it on *every* terminal path: :meth:`record_success` or
        :meth:`record_failure` when the guarded dependency was actually
        exercised, :meth:`release_probe` otherwise.  Leaking the slot
        would wedge the circuit half-open with no probes left — nothing
        could ever close it again.
        """
        with self._lock:
            return self._admit(True)

    def release_probe(self) -> None:
        """Return an unused half-open probe slot without a health signal.

        For callers that consumed a probe via :meth:`acquire` but ended
        up not exercising the guarded dependency (the request degraded,
        failed validation, or was shed at shutdown).  A no-op unless the
        circuit is still half-open — after ``record_success`` /
        ``record_failure`` moved it on, the slot accounting was already
        reset by the transition.
        """
        with self._lock:
            if self._state == "half_open":
                self._probes_left = min(
                    self.half_open_probes, self._probes_left + 1
                )

    def record_success(self) -> None:
        """A guarded call succeeded: close the circuit, reset the budget."""
        with self._lock:
            self._failures = 0
            if self._state != "closed":
                self._transition("closed")
            self._cooldown = self.cooldown_base
            self._reopen_at = None

    def record_failure(self) -> None:
        """A guarded call failed: count it; open at the threshold."""
        with self._lock:
            self._failures += 1
            if self._state == "half_open":
                # The probe failed: re-open with a longer cooldown.
                self._open()
            elif self._state == "closed" and self._failures >= self.failure_threshold:
                self._open()

    def retry_after(self) -> float:
        """Suggested wait in seconds before retrying (0 when closed).

        While *open* this is the remaining cooldown before the next
        half-open probe window.  While *half-open with every probe slot
        taken* it is roughly one cooldown — the probes' verdict is still
        pending, so shed clients must not be told to hammer the
        dependency again immediately.
        """
        with self._lock:
            if self._state == "open" and self._reopen_at is not None:
                return max(0.0, self._reopen_at - self._clock())
            if self._state == "half_open" and self._probes_left <= 0:
                return self._cooldown
            return 0.0

    def call(self, fn: Callable, *args: object, **kwargs: object):
        """Run ``fn`` through the breaker.

        Raises :class:`~repro.errors.CircuitOpenError` without calling
        ``fn`` when the circuit is open; otherwise records the outcome.
        Exceptions from ``fn`` count as failures and propagate.
        """
        if not self.allow():
            raise CircuitOpenError(self.name, retry_after=self.retry_after())
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    # ------------------------------------------------------------------
    # Internals (lock held)
    # ------------------------------------------------------------------
    def _admit(self, consume: bool) -> tuple[bool, bool]:
        if self._state == "closed":
            return True, False
        if self._state == "open":
            if (
                self._reopen_at is not None
                and self._clock() >= self._reopen_at
            ):
                self._transition("half_open")
                self._probes_left = self.half_open_probes
            else:
                return False, False
        # half-open: admit while probe slots remain
        if not consume:
            return True, False
        if self._probes_left > 0:
            self._probes_left -= 1
            return True, True
        return False, False

    def _open(self) -> None:
        # Decorrelated jitter: cooldown ~ U(base, 3 * previous), capped.
        self._cooldown = min(
            self.cooldown_max,
            self._rng.uniform(
                self.cooldown_base, max(self._cooldown, self.cooldown_base) * 3
            ),
        )
        self._reopen_at = self._clock() + self._cooldown
        self._transition("open")

    def _transition(self, state: str) -> None:
        previous, self._state = self._state, state
        self.transitions += 1
        get_registry().breaker_state(self.name, state)
        logger.warning(
            "circuit breaker transition",
            extra={
                "breaker": self.name,
                "from": previous,
                "to": state,
                "failures": self._failures,
                "cooldown_seconds": round(self._cooldown, 4),
            },
        )
