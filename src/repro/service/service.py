"""Overload-survivable join serving.

:class:`JoinService` turns the library into a serving layer that stays
predictable when requests arrive faster than it can drain them.  Four
mechanisms compose:

* **Bounded admission** — at most ``queue_depth`` requests wait; beyond
  that, :meth:`JoinService.submit` raises
  :class:`~repro.errors.AdmissionRejectedError` (backpressure with a
  ``Retry-After`` hint) instead of queueing unboundedly.  Memory and
  latency stay bounded by construction.
* **End-to-end deadlines** — a request's deadline is armed as an
  *absolute* timestamp at admission (queue wait spends it) and
  propagates down: it becomes the run's
  :class:`~repro.resilience.budget.Budget`, caps the supervisor's
  per-task timeouts, is pickled into the
  :class:`~repro.parallel.tasks.JoinSpec` so workers refuse expired
  tasks, and trims :class:`~repro.resilience.sinks.RetryingSink` backoff
  sleeps.  Expiry cancels in-flight work cooperatively.
* **Circuit breakers** — one :class:`~repro.service.breaker.CircuitBreaker`
  guards the worker pool, another the durable sink.  An open circuit
  fails requests fast with :class:`~repro.errors.CircuitOpenError`
  instead of feeding a struggling dependency.
* **Brownout ladder** — under queue pressure the service degrades in
  steps rather than falling over: first it drops execution niceties
  (straggler speculation and the vectorized engine's packing work —
  never the output bytes, which are engine-independent); past
  ``degrade_threshold`` occupancy, and for any admitted request that
  runs over its deadline or byte budget, it serves the paper's analytic
  estimator answer marked ``degraded=True``; only a full queue sheds.

Every request ends in **exactly one** typed outcome — ``admitted``
(served exactly, byte-identical to an offline run), ``degraded``,
``shed`` or ``breaker_open`` — and each increments the matching
``repro_service_*_total`` counter; ``scripts/verify_overload.py`` audits
that partition under a seeded request storm.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.core.results import JoinResult
from repro.errors import (
    AdmissionRejectedError,
    BudgetExceededError,
    CircuitOpenError,
    ReproError,
    SinkIOError,
    WorkerPoolError,
    validate_eps,
    validate_points,
)
from repro.io.writer import width_for
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.parallel import parallel_join
from repro.parallel.tasks import FAMILIES
from repro.resilience.budget import Budget
from repro.service.breaker import CircuitBreaker
from repro.service.cache import ResultCache
from repro.stats.counters import JoinStats

__all__ = ["JoinRequest", "RequestOutcome", "ServiceConfig", "JoinService"]

logger = get_logger("service")

#: Terminal request states; each request lands in exactly one.
OUTCOMES = ("admitted", "degraded", "shed", "breaker_open", "failed")


@dataclass
class JoinRequest:
    """One join request as the serving layer sees it."""

    points: np.ndarray
    eps: float
    algorithm: str = "csj"
    g: int = 10
    metric: object = None
    #: Per-request deadline in seconds, measured from *submission* —
    #: queue wait consumes it.  ``None`` falls back to the service
    #: default; both ``None`` means no deadline.
    deadline_seconds: Optional[float] = None
    #: Per-request output byte cap (over it -> degraded estimator answer).
    max_output_bytes: Optional[int] = None
    request_id: Optional[str] = None

    def __post_init__(self) -> None:
        self.points = validate_points(self.points)
        self.eps = validate_eps(self.eps)


@dataclass
class RequestOutcome:
    """The single typed outcome of one request."""

    request_id: str
    #: One of :data:`OUTCOMES`.
    status: str
    result: Optional[JoinResult] = None
    error: Optional[BaseException] = None
    #: ``Retry-After`` hint in seconds (shed / breaker-open outcomes).
    retry_after: Optional[float] = None
    #: Deadline slack observed when execution started (None = no deadline).
    deadline_slack: Optional[float] = None
    #: Queue occupancy [0, 1] observed at admission.
    occupancy: float = 0.0

    @property
    def degraded(self) -> bool:
        return self.status == "degraded"


class _Ticket:
    """Caller-side handle for an async submission."""

    __slots__ = ("_done", "outcome")

    def __init__(self) -> None:
        self._done = threading.Event()
        self.outcome: Optional[RequestOutcome] = None

    def _resolve(self, outcome: RequestOutcome) -> None:
        self.outcome = outcome
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> RequestOutcome:
        if not self._done.wait(timeout):
            raise TimeoutError("request still in flight")
        assert self.outcome is not None
        return self.outcome


@dataclass
class ServiceConfig:
    """Tunables of the serving layer."""

    #: Admission queue bound (waiting requests; executing ones excluded).
    queue_depth: int = 8
    #: Concurrent executor threads draining the queue.
    executors: int = 1
    #: Default per-request deadline (seconds); ``None`` = no deadline.
    default_deadline: Optional[float] = None
    #: Worker processes per request (1 = serial in the executor thread).
    workers: int = 1
    #: Per-task timeout for parallel requests (capped at deadline slack).
    task_timeout: Optional[float] = None
    #: Engine under normal load, and under level-1 brownout.  Both
    #: produce identical bytes; the brownout engine skips the vectorized
    #: packing work to shed CPU and allocation pressure.
    engine: str = "vectorized"
    brownout_engine: str = "scalar"
    #: Queue occupancy in [0, 1] where level-1 brownout starts.
    brownout_threshold: float = 0.5
    #: Queue occupancy in [0, 1] where requests get estimator answers.
    degrade_threshold: float = 0.75
    #: Result-cache byte budget; 0 disables caching entirely.
    cache_bytes: int = 0
    #: Result-cache entry bound (only meaningful with ``cache_bytes > 0``).
    cache_entries: int = 128
    #: Under brownout, serve a slightly-stale cached result (marked
    #: ``stale=True``) before falling back to the analytic estimator.
    serve_stale: bool = True
    #: Consecutive pool/sink failures before the circuit opens.
    breaker_threshold: int = 3
    #: Decorrelated-jitter cooldown bounds for breaker probes (seconds).
    breaker_cooldown_base: float = 0.25
    breaker_cooldown_max: float = 30.0
    #: Seed for breaker cooldown jitter (timing only, never output).
    seed: int = 0
    #: Data plane for parallel requests: ``"shm"`` maps one shared copy
    #: of the dataset into every worker, ``"pickle"`` ships it per
    #: worker, ``"auto"`` prefers shm where available.  Never affects
    #: output bytes.
    data_plane: str = "auto"
    #: Sharded execution for served joins: partition every request's
    #: dataset into this many ε-replicated spatial shards
    #: (:func:`repro.shard.sharded_join`).  ``None`` (default) serves
    #: unsharded.  Never affects output bytes — sharded serving is
    #: byte-identical to unsharded at any shard count.
    shards: Optional[int] = None
    #: Shard planner (``"grid"`` or ``"hilbert"``) when ``shards`` is set.
    partitioner: str = "grid"

    def __post_init__(self) -> None:
        if self.shards is not None:
            from repro.shard.planner import PARTITIONERS

            if self.shards < 1:
                raise ValueError(f"shards must be >= 1, got {self.shards}")
            if self.partitioner not in PARTITIONERS:
                raise ValueError(
                    f"unknown partitioner {self.partitioner!r}; "
                    f"known: {PARTITIONERS}"
                )
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.executors < 1:
            raise ValueError(f"executors must be >= 1, got {self.executors}")
        if not 0.0 <= self.brownout_threshold <= self.degrade_threshold <= 1.0:
            raise ValueError(
                "need 0 <= brownout_threshold <= degrade_threshold <= 1, got "
                f"{self.brownout_threshold} / {self.degrade_threshold}"
            )
        if self.cache_bytes < 0:
            raise ValueError(f"cache_bytes must be >= 0, got {self.cache_bytes}")
        if self.cache_entries < 1:
            raise ValueError(f"cache_entries must be >= 1, got {self.cache_entries}")


class JoinService:
    """Bounded-queue join serving with brownout and circuit breaking.

    Use as a context manager; :meth:`close` drains the executors.
    ``chaos`` (an :class:`~repro.resilience.chaos.OverloadInjector`)
    injects deterministic pre-execution stalls and dependency failures
    for overload testing.
    """

    def __init__(self, config: Optional[ServiceConfig] = None, chaos=None):
        self.config = config or ServiceConfig()
        self.chaos = chaos
        #: ε-keyed result cache; ``None`` when disabled (cache_bytes=0).
        self.cache: Optional[ResultCache] = (
            ResultCache(
                max_bytes=self.config.cache_bytes,
                max_entries=self.config.cache_entries,
            )
            if self.config.cache_bytes > 0
            else None
        )
        self.pool_breaker = CircuitBreaker(
            "worker-pool",
            failure_threshold=self.config.breaker_threshold,
            cooldown_base=self.config.breaker_cooldown_base,
            cooldown_max=self.config.breaker_cooldown_max,
            seed=self.config.seed,
        )
        self.sink_breaker = CircuitBreaker(
            "sink",
            failure_threshold=self.config.breaker_threshold,
            cooldown_base=self.config.breaker_cooldown_base,
            cooldown_max=self.config.breaker_cooldown_max,
            seed=self.config.seed + 1,
        )
        self._lock = threading.Lock()
        #: Entries are ``(request, ticket, budget, occupancy, probe)``;
        #: ``probe`` marks a half-open slot consumed at admission that
        #: must be resolved on every terminal path of the request.
        self._queue: deque[
            tuple[JoinRequest, _Ticket, Budget, float, bool]
        ] = deque()
        self._available = threading.Semaphore(0)
        self._closed = False
        self._seq = 0
        #: Completed outcomes in completion order (audit trail).
        self.outcomes: list[RequestOutcome] = []
        #: Datasets registered for cross-request reuse (identity-matched).
        self._registered: list = []
        #: High-water mark of the waiting queue (the gate asserts
        #: ``peak_queue <= config.queue_depth``).
        self.peak_queue = 0
        #: EWMA of recent service times, feeding Retry-After hints.
        self._ewma_service = 0.05
        self._threads = [
            threading.Thread(target=self._executor_loop, daemon=True, name=f"join-exec-{i}")
            for i in range(self.config.executors)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, request: JoinRequest) -> _Ticket:
        """Admit a request, or fail fast with a typed, countable outcome.

        Raises :class:`~repro.errors.AdmissionRejectedError` when the
        bounded queue is full (the request is also recorded as a
        ``shed`` outcome) and :class:`~repro.errors.CircuitOpenError`
        when the worker-pool circuit is open (a ``breaker_open``
        outcome).  Otherwise returns a ticket whose :meth:`_Ticket.wait`
        yields the request's single :class:`RequestOutcome`.
        """
        registry = get_registry()
        with self._lock:
            if self._closed:
                raise RuntimeError("JoinService is closed")
            if request.request_id is None:
                request.request_id = f"r{self._seq}"
            self._seq += 1
            queue_len = len(self._queue)
            occupancy = queue_len / self.config.queue_depth

            if queue_len >= self.config.queue_depth:
                retry = max(0.01, (queue_len + 1) * self._ewma_service)
                outcome = RequestOutcome(
                    request.request_id,
                    "shed",
                    error=AdmissionRejectedError(
                        self.config.queue_depth, retry_after=retry
                    ),
                    retry_after=retry,
                    occupancy=occupancy,
                )
                outcome.error.outcome = outcome
                self._record(outcome, registry)
                raise outcome.error

            # After the queue check so a shed request never burns a
            # half-open probe slot; ``acquire`` drives open -> half_open
            # once the cooldown expires and reports whether this request
            # now owns the probe slot it must later resolve.
            allowed, probe = self.pool_breaker.acquire()
            if not allowed:
                retry = self.pool_breaker.retry_after()
                outcome = RequestOutcome(
                    request.request_id,
                    "breaker_open",
                    error=CircuitOpenError("worker-pool", retry_after=retry),
                    retry_after=retry,
                    occupancy=occupancy,
                )
                outcome.error.outcome = outcome
                self._record(outcome, registry)
                raise outcome.error

            deadline = (
                request.deadline_seconds
                if request.deadline_seconds is not None
                else self.config.default_deadline
            )
            budget = Budget(
                max_output_bytes=request.max_output_bytes, check_every=16
            )
            if deadline is not None:
                # Absolute, armed at admission: queue wait spends it.
                budget.arm_deadline(deadline)
            ticket = _Ticket()
            self._queue.append((request, ticket, budget, occupancy, probe))
            self.peak_queue = max(self.peak_queue, len(self._queue))
            registry.service_pressure(
                len(self._queue), self.config.queue_depth, None
            )
        self._available.release()
        return ticket

    def serve(self, requests) -> list[RequestOutcome]:
        """Submit a batch, absorbing typed rejections into outcomes.

        Returns one outcome per request, in input order.
        """
        entries: list[Union[_Ticket, RequestOutcome]] = []
        for request in requests:
            try:
                entries.append(self.submit(request))
            except (AdmissionRejectedError, CircuitOpenError) as exc:
                # submit() recorded the typed outcome and attached it to
                # the exception — no audit-trail scan, so caller-supplied
                # duplicate request ids cannot alias outcomes.
                entries.append(exc.outcome)
        return [
            entry.wait() if isinstance(entry, _Ticket) else entry
            for entry in entries
        ]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _executor_loop(self) -> None:
        while True:
            self._available.acquire()
            with self._lock:
                if self._closed and not self._queue:
                    return
                if not self._queue:
                    continue
                request, ticket, budget, occupancy, probe = self._queue.popleft()
                queue_len = len(self._queue)
                pressure = queue_len / self.config.queue_depth
            started = time.perf_counter()
            try:
                outcome = self._execute(request, budget, occupancy, pressure)
            except BaseException as exc:  # noqa: BLE001 - ticket must resolve
                outcome = RequestOutcome(
                    request.request_id, "failed", error=exc, occupancy=occupancy
                )
            if probe:
                # This request owned the half-open probe slot.  If it
                # actually exercised the pool, record_success /
                # record_failure already moved the breaker out of
                # half-open and this release is a no-op; on every other
                # terminal path (degraded, budget breach, sink failure,
                # failed) the slot is returned so the circuit can never
                # wedge half-open with zero probes left.
                self.pool_breaker.release_probe()
            elapsed = time.perf_counter() - started
            with self._lock:
                self._ewma_service = 0.8 * self._ewma_service + 0.2 * elapsed
                self._record(outcome, get_registry())
            ticket._resolve(outcome)

    def _execute(
        self,
        request: JoinRequest,
        budget: Budget,
        occupancy: float,
        pressure: float,
    ) -> RequestOutcome:
        registry = get_registry()
        slack = budget.remaining_seconds()
        registry.service_pressure(
            int(pressure * self.config.queue_depth),
            self.config.queue_depth,
            slack,
        )
        # Cache fast path: an exact hit needs no tree descent and no
        # ladder — it is the cold run's bytes, served again.  Checked
        # before the pressure rungs because a hit *relieves* pressure.
        cache_key = None
        if self.cache is not None:
            cache_key = ResultCache.key_for(
                request.points,
                request.eps,
                request.g,
                request.algorithm,
                request.metric,
            )
            hit = self.cache.get(cache_key)
            if hit is not None:
                return RequestOutcome(
                    request.request_id,
                    "admitted",
                    result=hit,
                    deadline_slack=slack,
                    occupancy=occupancy,
                )
        # Ladder rung 3: an expired-or-hopeless deadline, or severe queue
        # pressure, goes straight to the estimator answer.
        if (slack is not None and slack <= 0) or (
            pressure >= self.config.degrade_threshold
        ):
            return self._degrade(request, occupancy, slack, JoinStats())

        # Ladder rung 2: under moderate pressure drop the niceties —
        # same bytes, cheaper execution.
        engine = self.config.engine
        workers = self.config.workers
        speculate = True
        if pressure >= self.config.brownout_threshold:
            engine = self.config.brownout_engine
            speculate = False

        try:
            if self.chaos is not None:
                self.chaos.before_execute(request.request_id)
            result = self._run_join(
                request, budget, engine, workers, speculate
            )
            # Serial runs have no scheduler hook; report pool health here
            # so a half-open circuit can close again.
            self.pool_breaker.record_success()
        except BudgetExceededError as exc:
            # Admitted but over budget (deadline or bytes): degrade.
            partial_stats = (
                exc.partial.stats if exc.partial is not None else JoinStats()
            )
            return self._degrade(request, occupancy, slack, partial_stats)
        except CircuitOpenError as exc:
            return RequestOutcome(
                request.request_id,
                "breaker_open",
                error=exc,
                retry_after=exc.retry_after,
                deadline_slack=slack,
                occupancy=occupancy,
            )
        except SinkIOError:
            # A failing sink browns the request out: the estimator answer
            # needs no durable output, and the breaker heals the sink.
            self.sink_breaker.record_failure()
            return self._degrade(request, occupancy, slack, JoinStats())
        except WorkerPoolError:
            # Same ladder for a failing pool — degraded beats dead.
            self.pool_breaker.record_failure()
            return self._degrade(request, occupancy, slack, JoinStats())
        except ReproError as exc:
            return RequestOutcome(
                request.request_id, "failed", error=exc,
                deadline_slack=slack, occupancy=occupancy,
            )
        if result.estimated:
            # The algorithm's own crash protocol fired (byte budget):
            # the answer is an estimate, so the outcome is degraded.
            result.degraded = True
            return RequestOutcome(
                request.request_id,
                "degraded",
                result=result,
                deadline_slack=slack,
                occupancy=occupancy,
            )
        # Only exact runs reach here: fold their counters into the
        # repro_join_* metrics (a later cache hit leaves them untouched,
        # which is how tests assert the descent was skipped) and retain
        # the result for future hits.
        registry.record_join_stats(result.stats)
        if self.cache is not None and cache_key is not None:
            self.cache.put(cache_key, result)
        return RequestOutcome(
            request.request_id,
            "admitted",
            result=result,
            deadline_slack=slack,
            occupancy=occupancy,
        )

    # ------------------------------------------------------------------
    # Dataset registration (cross-request warm state)
    # ------------------------------------------------------------------
    def register_dataset(
        self,
        points: np.ndarray,
        metric: object = None,
        index: str = "rstar",
        max_entries: int = 64,
        bulk: Optional[str] = "str",
        shards: Optional[int] = None,
        partitioner: str = "grid",
    ):
        """Pre-publish a dataset for zero-copy, warm-state serving.

        Builds the tree (and, when packable, publishes the packed-index
        arrays alongside the points into shared memory) *now*, so every
        subsequent request whose ``points`` is this same array reuses
        one segment and one packed index — across requests, executors,
        worker respawns and the brownout ladder.  Returns the owning
        :class:`~repro.parallel.shm.SharedDataset`; it is closed with
        the service.

        ``shards``/``partitioner`` attach a per-dataset sharding hint:
        requests over this dataset run through
        :func:`repro.shard.sharded_join` with that plan, overriding the
        service-wide :attr:`ServiceConfig.shards` default.  Output bytes
        are unchanged either way.
        """
        from repro.index.packed import pack_index
        from repro.parallel.shm import SharedDataset

        if shards is not None:
            from repro.shard.planner import PARTITIONERS

            if shards < 1:
                raise ValueError(f"shards must be >= 1, got {shards}")
            if partitioner not in PARTITIONERS:
                raise ValueError(
                    f"unknown partitioner {partitioner!r}; known: {PARTITIONERS}"
                )
        shared = SharedDataset(
            points, metric=metric, data_plane=self.config.data_plane
        )
        tree = shared.get_tree(
            index, max_entries=max_entries, bulk=bulk, metric=metric
        )
        packed = pack_index(tree)  # warms the memo even on the pickle plane
        if packed is not None and shared.ref is not None:
            shared.publish_packed(
                (index, max_entries, bulk, repr(metric)), packed
            )
        shared.shard_hint = (shards, partitioner) if shards is not None else None
        with self._lock:
            if self._closed:
                shared.close()
                raise RuntimeError("JoinService is closed")
            self._registered.append(shared)
        logger.info(
            "dataset registered",
            extra={
                "n": int(shared.points.shape[0]),
                "plane": shared.plane,
                "fingerprint": shared.fingerprint[:12],
            },
        )
        return shared

    def _find_registered(self, points: np.ndarray):
        """The registered dataset whose array *is* ``points``, if any."""
        with self._lock:
            for shared in self._registered:
                if shared.points is points:
                    return shared
        return None

    def _run_join(
        self,
        request: JoinRequest,
        budget: Budget,
        engine: str,
        workers: int,
        speculate: bool,
    ) -> JoinResult:
        from repro.api import similarity_join  # deferred: api imports service

        registered = self._find_registered(request.points)
        shards = self.config.shards
        partitioner = self.config.partitioner
        if registered is not None and getattr(registered, "shard_hint", None):
            shards, partitioner = registered.shard_hint
        if shards is not None:
            from repro.shard import sharded_join  # deferred: heavy machinery

            config = None
            if workers > 1:
                from repro.parallel.supervisor import SupervisorConfig

                task_timeout = budget.cap_timeout(self.config.task_timeout)
                if task_timeout is not None and task_timeout <= 0:
                    task_timeout = 1e-3
                config = SupervisorConfig(
                    workers=workers,
                    task_timeout=task_timeout,
                    speculate=speculate,
                )
            return sharded_join(
                request.points,
                request.eps,
                algorithm=request.algorithm,
                g=request.g,
                shards=shards,
                partitioner=partitioner,
                metric=request.metric,
                budget=budget,
                workers=workers if workers > 1 else None,
                config=config,
                engine=engine,
                data_plane=self.config.data_plane,
                shared=registered if workers > 1 else None,
            )
        if workers > 1:
            from repro.parallel.supervisor import SupervisorConfig

            task_timeout = budget.cap_timeout(self.config.task_timeout)
            if task_timeout is not None and task_timeout <= 0:
                task_timeout = 1e-3
            config = SupervisorConfig(
                workers=workers,
                task_timeout=task_timeout,
                speculate=speculate,
            )
            return parallel_join(
                request.points,
                request.eps,
                algorithm=request.algorithm,
                g=request.g,
                workers=workers,
                metric=request.metric,
                budget=budget,
                config=config,
                engine=engine,
                breaker=self.pool_breaker,
                data_plane=self.config.data_plane,
                shared=registered,
            )
        family = FAMILIES.get(str(request.algorithm).lower(), (None, None))[0]
        if registered is not None and family == "tree":
            # Serial fast path: the registered tree replaces the
            # per-request index build (same configuration, same bytes).
            return similarity_join(
                request.points,
                request.eps,
                algorithm=request.algorithm,
                g=request.g,
                index=registered.get_tree(metric=request.metric),
                metric=request.metric,
                budget=budget,
                engine=engine,
            )
        return similarity_join(
            request.points,
            request.eps,
            algorithm=request.algorithm,
            g=request.g,
            metric=request.metric,
            budget=budget,
            engine=engine,
        )

    def _degrade(
        self,
        request: JoinRequest,
        occupancy: float,
        slack: Optional[float],
        partial_stats: JoinStats,
    ) -> RequestOutcome:
        """Brown the request out: stale cached result, else the estimator.

        A retained cached result for the same parameters — even for an
        older dataset state — is a recently-true exact answer, which
        beats the analytic estimate; it slots in as the first fallback
        and is marked both ``stale`` and ``degraded``.
        """
        from repro.experiments.estimate import estimate_ssj  # deferred

        if self.cache is not None and self.config.serve_stale:
            stale = self.cache.get_stale(
                request.eps, request.g, request.algorithm, request.metric
            )
            if stale is not None:
                stale.degraded = True
                return RequestOutcome(
                    request.request_id,
                    "degraded",
                    result=stale,
                    deadline_slack=slack,
                    occupancy=occupancy,
                )

        id_width = width_for(len(request.points))
        estimate = estimate_ssj(
            request.points, request.eps, id_width, metric=request.metric
        )
        stats = JoinStats()
        stats.links_emitted = estimate.links
        stats.bytes_written = estimate.output_bytes
        # Keep honest measurements from any partial run before the breach.
        stats.compute_time = partial_stats.compute_time
        stats.write_time = partial_stats.write_time
        stats.distance_computations = partial_stats.distance_computations
        result = JoinResult(
            eps=request.eps,
            algorithm=request.algorithm,
            stats=stats,
            estimated=True,
            degraded=True,
        )
        return RequestOutcome(
            request.request_id,
            "degraded",
            result=result,
            deadline_slack=slack,
            occupancy=occupancy,
        )

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _record(self, outcome: RequestOutcome, registry) -> None:
        # Caller holds the lock (submit) or takes it (executor loop).
        self.outcomes.append(outcome)
        registry.service_outcome(outcome.status)
        logger.info(
            "request finished",
            extra={
                "request": outcome.request_id,
                "status": outcome.status,
                "occupancy": round(outcome.occupancy, 3),
                "retry_after": outcome.retry_after,
            },
        )

    def counts(self) -> dict[str, int]:
        """Terminal-outcome histogram of everything served so far."""
        out = {status: 0 for status in OUTCOMES}
        with self._lock:
            for outcome in self.outcomes:
                out[outcome.status] += 1
        return out

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop the service.  ``drain=False`` sheds everything queued."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if not drain:
                registry = get_registry()
                while self._queue:
                    request, ticket, _, occupancy, probe = self._queue.popleft()
                    if probe:
                        self.pool_breaker.release_probe()
                    outcome = RequestOutcome(
                        request.request_id,
                        "shed",
                        error=AdmissionRejectedError(
                            self.config.queue_depth, retry_after=0.0,
                            message="service shutting down",
                        ),
                        retry_after=0.0,
                        occupancy=occupancy,
                    )
                    self._record(outcome, registry)
                    ticket._resolve(outcome)
        # Wake every executor so it can observe the closed flag.
        for _ in self._threads:
            self._available.release()
        for t in self._threads:
            t.join(timeout=60.0)
        # Executors are quiet: safe to unlink the registered datasets'
        # shared-memory segments (part of the guaranteed-cleanup path).
        with self._lock:
            registered, self._registered = self._registered, []
        for shared in registered:
            shared.close()
        get_registry().service_pressure(0, self.config.queue_depth, None)

    def __enter__(self) -> "JoinService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # Valid algorithms for requests mirror the parallel families.
    ALGORITHMS = tuple(FAMILIES)
