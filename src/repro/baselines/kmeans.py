"""k-means and k-medoids clustering (paper Section II-B, refs [15-17]).

Means/medoid methods "choose k initial medoids, calculate the average
distance to them and then attempt to sample better means/medoids".  The
paper's objection (Section II-C, "Cluster Shape") is that such clusters
have arbitrary shapes and sizes, so two members of one cluster need *not*
be within the query range of each other — which
:func:`repro.baselines.postprocess.evaluate_postprocessing` demonstrates
quantitatively.

Implementations are deliberately standard: Lloyd's algorithm with
k-means++ seeding, and a PAM-style k-medoids with CLARANS-like sampled
swaps so it stays usable on join-sized inputs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.metrics import Metric, get_metric

__all__ = ["kmeans", "kmedoids", "kmeans_pp_seeds"]


def kmeans_pp_seeds(
    points: np.ndarray, k: int, rng: np.random.Generator, metric: Metric
) -> np.ndarray:
    """k-means++ seeding: D^2-weighted center sampling."""
    n = len(points)
    centers = [points[int(rng.integers(0, n))]]
    closest_sq = metric.point_to_points(centers[0], points) ** 2
    for _ in range(1, k):
        total = float(closest_sq.sum())
        if total == 0.0:  # fewer distinct points than k
            centers.append(points[int(rng.integers(0, n))])
            continue
        idx = int(rng.choice(n, p=closest_sq / total))
        centers.append(points[idx])
        closest_sq = np.minimum(
            closest_sq, metric.point_to_points(points[idx], points) ** 2
        )
    return np.array(centers)


def kmeans(
    points: np.ndarray,
    k: int,
    metric: object = None,
    max_iter: int = 50,
    seed: int = 0,
    tol: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's k-means; returns ``(labels, centers)``.

    >>> import numpy as np
    >>> pts = np.vstack([np.zeros((10, 2)), np.ones((10, 2))])
    >>> labels, centers = kmeans(pts, 2, seed=1)
    >>> len(set(labels[:10].tolist())) == 1 and len(set(labels.tolist())) == 2
    True
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if not 1 <= k <= len(pts):
        raise ValueError(f"k must be in [1, {len(pts)}], got {k}")
    if max_iter < 1:
        raise ValueError(f"max_iter must be positive, got {max_iter}")
    m = get_metric(metric)
    rng = np.random.default_rng(seed)
    centers = kmeans_pp_seeds(pts, k, rng, m)
    labels = np.zeros(len(pts), dtype=np.intp)
    for _ in range(max_iter):
        dists = m.pairwise(pts, centers)
        labels = np.argmin(dists, axis=1)
        new_centers = centers.copy()
        for j in range(k):
            members = pts[labels == j]
            if len(members):
                new_centers[j] = members.mean(axis=0)
        shift = float(np.abs(new_centers - centers).max())
        centers = new_centers
        if shift <= tol:
            break
    return labels, centers


def kmedoids(
    points: np.ndarray,
    k: int,
    metric: object = None,
    max_swaps: int = 200,
    sample_size: int = 32,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """CLARANS-style k-medoids; returns ``(labels, medoid_ids)``.

    Starting from random medoids, repeatedly samples a (medoid,
    non-medoid) swap and keeps it when the total assignment cost drops;
    stops after ``max_swaps`` consecutive non-improving samples.  Costs
    are evaluated on a sample of ``sample_size`` candidate swaps per
    round, the CLARANS trick that avoids PAM's O(k (n-k)^2) sweep.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    n = len(pts)
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    m = get_metric(metric)
    rng = np.random.default_rng(seed)
    medoids = rng.choice(n, size=k, replace=False)

    def cost_of(medoid_ids: np.ndarray) -> tuple[float, np.ndarray]:
        dists = m.pairwise(pts, pts[medoid_ids])
        labels = np.argmin(dists, axis=1)
        return float(dists[np.arange(n), labels].sum()), labels

    best_cost, labels = cost_of(medoids)
    stale = 0
    while stale < max_swaps:
        swaps_tried = 0
        improved = False
        while swaps_tried < sample_size:
            swaps_tried += 1
            medoid_pos = int(rng.integers(0, k))
            candidate = int(rng.integers(0, n))
            if candidate in medoids:
                continue
            trial = medoids.copy()
            trial[medoid_pos] = candidate
            trial_cost, trial_labels = cost_of(trial)
            if trial_cost < best_cost:
                medoids, best_cost, labels = trial, trial_cost, trial_labels
                improved = True
                break
        if improved:
            stale = 0
        else:
            stale += sample_size
    return labels, medoids
