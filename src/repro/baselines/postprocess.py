"""Measuring Section II-C: why clustering post-processing is insufficient.

The paper rejects "join first, cluster afterwards" on three grounds.
This module turns each claim into a measurement on a concrete dataset:

* **Cluster shape** — treat each cluster of k-means / k-medoids /
  single-linkage / BIRCH as a compact group and count *violating pairs*:
  cluster co-members farther apart than the query range.  A valid
  compact representation must have zero (the compact join provably
  does — Theorem 2).
* **Losslessness** — count qualifying pairs that *cross* clusters: links
  a cluster-based "compact output" would silently drop (Theorem 1
  violations).
* **Runtime** — clustering runs on top of the already-expensive join,
  whereas the compact join replaces it.

:func:`evaluate_postprocessing` runs all baselines on one dataset and
returns a row per method, including the compact join as reference.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.baselines.birch import BirchTree
from repro.baselines.hierarchical import single_linkage_from_links
from repro.baselines.kmeans import kmeans, kmedoids
from repro.core.bruteforce import brute_force_links
from repro.core.csj import csj
from repro.geometry.metrics import get_metric
from repro.index.bulk import bulk_load

__all__ = ["PostProcessReport", "cluster_violations", "evaluate_postprocessing"]


class PostProcessReport(dict):
    """One method's measurements (a dict with stable keys).

    Keys: ``method``, ``clusters``, ``violating_pairs`` (Theorem 2
    failures), ``missing_links`` (Theorem 1 failures), ``seconds``.
    """


def cluster_violations(
    points: np.ndarray,
    labels: np.ndarray,
    eps: float,
    ground_truth: set[tuple[int, int]],
    metric: object = None,
) -> tuple[int, int]:
    """(violating co-member pairs, qualifying pairs crossing clusters).

    The first number measures the "cluster shape" failure — pairs a
    group-per-cluster output would *wrongly imply*; the second measures
    the links it would *lose*.
    """
    m = get_metric(metric)
    labels = np.asarray(labels)
    violating = 0
    implied: set[tuple[int, int]] = set()
    for label in np.unique(labels):
        member_ids = np.nonzero(labels == label)[0]
        if len(member_ids) < 2:
            continue
        dists = m.self_pairwise(points[member_ids])
        rows, cols = np.nonzero(np.triu(np.ones_like(dists, dtype=bool), k=1))
        for r, c in zip(rows.tolist(), cols.tolist()):
            pair = (int(member_ids[r]), int(member_ids[c]))
            implied.add(pair)
            if dists[r, c] >= eps:
                violating += 1
    missing = sum(1 for pair in ground_truth if pair not in implied)
    return violating, missing


def evaluate_postprocessing(
    points: np.ndarray,
    eps: float,
    n_clusters: Optional[int] = None,
    seed: int = 0,
    methods: Sequence[str] = ("kmeans", "kmedoids", "single-linkage", "birch", "csj"),
) -> list[PostProcessReport]:
    """Run each baseline as a compact-output candidate and measure it.

    ``n_clusters`` defaults to the number of groups CSJ(10) produced, the
    fairest budget for the means/medoids methods.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    truth = brute_force_links(pts, eps)
    tree = bulk_load(pts, max_entries=32)

    start = time.perf_counter()
    compact = csj(tree, eps, g=10)
    csj_seconds = time.perf_counter() - start
    if n_clusters is None:
        n_clusters = max(1, compact.stats.groups_emitted + compact.stats.links_emitted)
        n_clusters = min(n_clusters, max(1, len(pts) // 2))

    rows: list[PostProcessReport] = []
    for method in methods:
        start = time.perf_counter()
        if method == "kmeans":
            labels, _ = kmeans(pts, n_clusters, seed=seed)
        elif method == "kmedoids":
            labels, _ = kmedoids(
                pts, min(n_clusters, 50), seed=seed, max_swaps=60, sample_size=16
            )
        elif method == "single-linkage":
            labels = single_linkage_from_links(truth, len(pts))
        elif method == "birch":
            labels = BirchTree(pts.shape[1], threshold=eps / 2).fit(pts).labels()
        elif method == "csj":
            report = PostProcessReport(
                method="csj(10)",
                clusters=compact.stats.groups_emitted,
                violating_pairs=0,  # Theorem 2; asserted by the test suite
                missing_links=0,  # Theorem 1
                seconds=csj_seconds,
            )
            rows.append(report)
            continue
        else:
            raise ValueError(f"unknown method {method!r}")
        seconds = time.perf_counter() - start
        violating, missing = cluster_violations(pts, labels, eps, truth)
        rows.append(
            PostProcessReport(
                method=method,
                clusters=int(len(np.unique(labels))),
                violating_pairs=violating,
                missing_links=missing,
                seconds=seconds,
            )
        )
    return rows
