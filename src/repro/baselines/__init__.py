"""Clustering baselines from the paper's Related Work (Section II-B).

The paper argues (Section II-C) that post-processing a similarity join
with a clustering algorithm cannot replace the compact join, for three
reasons — cluster shape, runtime, and RAM limits.  These are claims about
*other* systems, so those systems are built here and the claims measured:

* :mod:`repro.baselines.kmeans` — k-means and k-medoids (CLARANS-style
  sampling), the "cluster shape" failure: arbitrary-shape clusters do not
  guarantee that members mutually satisfy the query range;
* :mod:`repro.baselines.hierarchical` — single-linkage agglomerative
  clustering with a distance cut-off, the "runtime" failure: it needs the
  pairwise distances that exploded in the first place;
* :mod:`repro.baselines.birch` — the BIRCH CF-tree, the footnote's
  failure: the tree is built for one granularity and must be rebuilt per
  query range;
* :mod:`repro.baselines.postprocess` — runs each baseline as a join
  post-processor and measures exactly how it violates the compact-join
  requirements (missing links, spurious implied links, runtime).
"""

from repro.baselines.birch import BirchTree, CFNode, ClusteringFeature
from repro.baselines.hierarchical import single_linkage_components
from repro.baselines.kmeans import kmeans, kmedoids
from repro.baselines.postprocess import PostProcessReport, evaluate_postprocessing

__all__ = [
    "kmeans",
    "kmedoids",
    "single_linkage_components",
    "BirchTree",
    "CFNode",
    "ClusteringFeature",
    "evaluate_postprocessing",
    "PostProcessReport",
]
