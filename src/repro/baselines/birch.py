"""BIRCH clustering-feature tree (paper Section II-B, ref [19]).

BIRCH summarises data in one pass with a **CF-tree**: every node entry is
a clustering feature ``(N, LS, SS)`` — count, linear sum and sum of
squares — supporting constant-time centroid, radius and merge
computations.  A new point descends to the closest leaf entry and is
absorbed if the entry's radius stays below the *threshold* T; otherwise a
new entry (and possibly node splits) are created.

The paper's objection (Section II-C footnote): "The CF-tree would have to
be reconstructed each time to be optimal for each new query range" —
T is baked into the structure, unlike the compact join, whose index is
range-independent.  :mod:`repro.baselines.postprocess` also measures the
"cluster shape" failure: CF-entry members are radius-bounded around the
*centroid*, which does not guarantee pairwise distances below ε.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.metrics import Euclidean

__all__ = ["ClusteringFeature", "CFNode", "BirchTree"]


class ClusteringFeature:
    """The (N, LS, SS) summary of a point set."""

    __slots__ = ("n", "linear_sum", "square_sum")

    def __init__(self, n: int = 0, linear_sum=None, square_sum: float = 0.0):
        self.n = int(n)
        self.linear_sum = (
            None if linear_sum is None else np.asarray(linear_sum, dtype=float).copy()
        )
        self.square_sum = float(square_sum)

    @classmethod
    def of_point(cls, point: np.ndarray) -> "ClusteringFeature":
        """CF of a single point."""
        p = np.asarray(point, dtype=float)
        return cls(1, p, float(np.dot(p, p)))

    def merged(self, other: "ClusteringFeature") -> "ClusteringFeature":
        """New CF summarising both operands (operands untouched)."""
        if self.n == 0:
            return ClusteringFeature(other.n, other.linear_sum, other.square_sum)
        return ClusteringFeature(
            self.n + other.n,
            self.linear_sum + other.linear_sum,
            self.square_sum + other.square_sum,
        )

    def absorb(self, other: "ClusteringFeature") -> None:
        """Merge ``other`` into this CF in place."""
        if self.n == 0:
            self.linear_sum = other.linear_sum.copy()
            self.n = other.n
            self.square_sum = other.square_sum
            return
        self.n += other.n
        self.linear_sum += other.linear_sum
        self.square_sum += other.square_sum

    @property
    def centroid(self) -> np.ndarray:
        """Mean of the summarised points."""
        return self.linear_sum / self.n

    def radius(self) -> float:
        """RMS distance of members to the centroid (BIRCH's radius R)."""
        if self.n == 0:
            return 0.0
        mean_sq = self.square_sum / self.n
        centroid = self.centroid
        value = mean_sq - float(np.dot(centroid, centroid))
        return float(np.sqrt(max(0.0, value)))

    def __repr__(self) -> str:
        return f"CF(n={self.n}, centroid={None if self.n == 0 else self.centroid})"


class CFNode:
    """A CF-tree node: parallel lists of entries and children/members."""

    __slots__ = ("is_leaf", "entries", "children", "members")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.entries: list[ClusteringFeature] = []
        #: For internal nodes: one child per entry.
        self.children: list["CFNode"] = []
        #: For leaves: the point ids summarised by each entry.
        self.members: list[list[int]] = []


class BirchTree:
    """A single-pass CF-tree (phase 1 of BIRCH).

    Parameters
    ----------
    threshold:
        The radius threshold T: a leaf entry absorbs a point only while
        its CF radius stays below T.
    branching:
        Maximum entries per node.
    """

    def __init__(self, dim: int, threshold: float, branching: int = 8):
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if branching < 2:
            raise ValueError(f"branching must be >= 2, got {branching}")
        self.dim = int(dim)
        self.threshold = float(threshold)
        self.branching = int(branching)
        self.root = CFNode(is_leaf=True)
        self._metric = Euclidean()
        self.n_points = 0

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, point: np.ndarray, pid: int) -> None:
        """Insert one point, splitting and growing the root as needed."""
        cf = ClusteringFeature.of_point(point)
        split = self._insert_into(self.root, cf, pid)
        if split is not None:
            old_root = self.root
            new_root = CFNode(is_leaf=False)
            for part in (old_root, split):
                new_root.children.append(part)
                new_root.entries.append(self._node_cf(part))
            self.root = new_root
        self.n_points += 1

    def fit(self, points: np.ndarray) -> "BirchTree":
        """Single-pass build over ``points`` (ids are row numbers)."""
        for pid, point in enumerate(np.atleast_2d(np.asarray(points, dtype=float))):
            self.insert(point, pid)
        return self

    def _node_cf(self, node: CFNode) -> ClusteringFeature:
        total = ClusteringFeature()
        for entry in node.entries:
            total.absorb(entry)
        return total

    def _closest_entry(self, node: CFNode, cf: ClusteringFeature) -> int:
        centroids = np.array([entry.centroid for entry in node.entries])
        dists = self._metric.point_to_points(cf.centroid, centroids)
        return int(np.argmin(dists))

    def _insert_into(
        self, node: CFNode, cf: ClusteringFeature, pid: int
    ) -> Optional[CFNode]:
        """Recursive insert; returns a new sibling if ``node`` split."""
        if node.is_leaf:
            if node.entries:
                idx = self._closest_entry(node, cf)
                trial = node.entries[idx].merged(cf)
                if trial.radius() < self.threshold:
                    node.entries[idx] = trial
                    node.members[idx].append(pid)
                    return None
            node.entries.append(cf)
            node.members.append([pid])
            if len(node.entries) > self.branching:
                return self._split(node)
            return None
        idx = self._closest_entry(node, cf)
        split = self._insert_into(node.children[idx], cf, pid)
        node.entries[idx] = self._node_cf(node.children[idx])
        if split is not None:
            node.children.append(split)
            node.entries.append(self._node_cf(split))
            if len(node.children) > self.branching:
                return self._split(node)
        return None

    def _split(self, node: CFNode) -> CFNode:
        """Split by the farthest-centroid pair (the BIRCH heuristic)."""
        centroids = np.array([entry.centroid for entry in node.entries])
        dists = self._metric.self_pairwise(centroids)
        seed_a, seed_b = np.unravel_index(int(np.argmax(dists)), dists.shape)
        assign_a = dists[seed_a] <= dists[seed_b]
        assign_a[seed_a], assign_a[seed_b] = True, False
        sibling = CFNode(is_leaf=node.is_leaf)
        keep_entries, keep_children, keep_members = [], [], []
        for i, entry in enumerate(node.entries):
            target_entries = keep_entries if assign_a[i] else sibling.entries
            target_entries.append(entry)
            if node.is_leaf:
                (keep_members if assign_a[i] else sibling.members).append(
                    node.members[i]
                )
            else:
                (keep_children if assign_a[i] else sibling.children).append(
                    node.children[i]
                )
        node.entries = keep_entries
        if node.is_leaf:
            node.members = keep_members
        else:
            node.children = keep_children
        return sibling

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def leaf_clusters(self) -> list[list[int]]:
        """The CF-entry member lists — BIRCH's phase-1 micro-clusters."""
        out: list[list[int]] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.extend(node.members)
            else:
                stack.extend(node.children)
        return out

    def labels(self) -> np.ndarray:
        """Cluster label per point id (micro-cluster index)."""
        labels = np.full(self.n_points, -1, dtype=np.intp)
        for cluster_id, members in enumerate(self.leaf_clusters()):
            for pid in members:
                labels[pid] = cluster_id
        return labels
