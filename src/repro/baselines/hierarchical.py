"""Single-linkage hierarchical clustering with a distance cut-off.

Section II-B: "Hierarchical clustering algorithms ... join nearby points
into clusters based on a user defined clustering granularity".  With the
granularity set to the query range ε, single linkage merges every pair of
points closer than ε — i.e. its clusters are exactly the connected
components of the similarity-join link graph.

The paper's Section II-C objection is **runtime**: the natural input to
the algorithm is the join output itself, so post-processing with it costs
at least the exploded O(k²) link enumeration it was supposed to avoid —
and its clusters (chains!) violate the mutual-satisfaction requirement
anyway, as :mod:`repro.baselines.postprocess` measures.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.core.clusters import UnionFind
from repro.geometry.metrics import Metric, get_metric

__all__ = ["single_linkage_components", "single_linkage_from_links"]


def single_linkage_from_links(
    links: Iterable[tuple[int, int]], n_points: int
) -> np.ndarray:
    """Cluster labels from an explicit link list (the join's output).

    This is the realistic post-processing pipeline: the similarity join
    ran first and its links are merged.  Cost is Θ(#links) — quadratic in
    the explosion regime, the paper's very objection.
    """
    uf = UnionFind(n_points)
    for i, j in links:
        uf.union(int(i), int(j))
    roots = uf.labels()
    remap: dict[int, int] = {}
    labels = np.empty(n_points, dtype=np.intp)
    for idx, root in enumerate(roots):
        if root not in remap:
            remap[root] = len(remap)
        labels[idx] = remap[root]
    return labels


def single_linkage_components(
    points: np.ndarray,
    eps: float,
    metric: Optional[Metric] = None,
    block: int = 1024,
) -> np.ndarray:
    """Single-linkage clusters at cut-off ``eps`` directly from points.

    Blocked O(n²) distance evaluation feeding a union-find; returns the
    cluster label per point.  Provided for testing the link-based variant
    against an independent computation.
    """
    if eps <= 0:
        raise ValueError(f"query range must be positive, got {eps}")
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    m = get_metric(metric)
    n = len(pts)
    uf = UnionFind(n)
    for i0 in range(0, n, block):
        hi_i = min(i0 + block, n)
        for j0 in range(i0, n, block):
            hi_j = min(j0 + block, n)
            dists = m.pairwise(pts[i0:hi_i], pts[j0:hi_j])
            rows, cols = np.nonzero(dists < eps)
            for r, c in zip(rows.tolist(), cols.tolist()):
                if i0 + r < j0 + c:
                    uf.union(i0 + r, j0 + c)
    roots = uf.labels()
    remap: dict[int, int] = {}
    labels = np.empty(n, dtype=np.intp)
    for idx, root in enumerate(roots):
        if root not in remap:
            remap[root] = len(remap)
        labels[idx] = remap[root]
    return labels
