"""Batched geometry kernels over packed bounding-shape arrays.

The scalar join engines prune node pairs one at a time — a Python-level
``MBR.min_dist`` call per pair, each allocating fresh NumPy temporaries
for a handful of floats.  The vectorized frontier engine
(:mod:`repro.core.frontier`) instead prunes a whole fanout² candidate
block with a single kernel call over contiguous ``(lo, hi)`` corner
matrices (or ``(center, radius)`` arrays for ball-shaped nodes).

Every kernel here performs *exactly* the elementwise operations of its
scalar counterpart in :class:`repro.geometry.mbr.MBR` /
:class:`repro.geometry.ball.Ball`, in the same order, so results are
bit-identical to the scalar path for every Minkowski metric (L1, L2,
L∞ and fractional/whole p alike — the metric's ``norm_rows`` reduces the
coordinate axis identically in both paths).  That equivalence is what
lets the vectorized engine promise byte-identical output and identical
``JoinStats`` counters; the property-based test suite re-verifies it.

Surviving index pairs are always returned in *canonical order*: row-major
over the candidate block, with ``row < col`` for self-sets — the exact
order the scalar engines' nested ``for a / for b`` loops visit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.metrics import Metric, get_metric, triu_pair_indices

__all__ = [
    "triu_pair_indices",
    "diagonal",
    "min_dist_matrix",
    "max_dist_matrix",
    "union_diagonal_matrix",
    "min_dist_pairs",
    "union_diagonal_pairs",
    "self_pairs_within",
    "cross_pairs_within",
    "ball_diameter",
    "ball_min_dist_matrix",
    "ball_max_dist_matrix",
    "ball_union_diameter_matrix",
    "ball_union_diameter_pairs",
    "ball_self_pairs_within",
    "ball_cross_pairs_within",
]


# ---------------------------------------------------------------------------
# Rectangle kernels — batched twins of MBR.min_dist / max_dist /
# union_diagonal / diagonal
# ---------------------------------------------------------------------------

def diagonal(lo: np.ndarray, hi: np.ndarray, metric: Optional[Metric] = None) -> np.ndarray:
    """Metric diagonal of each box: batched ``MBR.diagonal``.

    ``lo`` / ``hi`` are ``(n, d)``; returns ``(n,)``.
    """
    return get_metric(metric).norm_rows(hi - lo)


def min_dist_matrix(
    lo1: np.ndarray,
    hi1: np.ndarray,
    lo2: np.ndarray,
    hi2: np.ndarray,
    metric: Optional[Metric] = None,
) -> np.ndarray:
    """``(n1, n2)`` matrix of box-to-box minimum distances.

    Batched ``MBR.min_dist``: per-axis gap ``max(0, lo1 - hi2, lo2 - hi1)``
    reduced by the metric norm.
    """
    gaps = np.maximum(
        0.0,
        np.maximum(
            lo1[:, None, :] - hi2[None, :, :], lo2[None, :, :] - hi1[:, None, :]
        ),
    )
    return get_metric(metric).norm_rows(gaps)


def max_dist_matrix(
    lo1: np.ndarray,
    hi1: np.ndarray,
    lo2: np.ndarray,
    hi2: np.ndarray,
    metric: Optional[Metric] = None,
) -> np.ndarray:
    """``(n1, n2)`` matrix of box-to-box maximum distances (``MBR.max_dist``)."""
    spans = np.maximum(
        np.abs(hi1[:, None, :] - lo2[None, :, :]),
        np.abs(hi2[None, :, :] - lo1[:, None, :]),
    )
    return get_metric(metric).norm_rows(spans)


def union_diagonal_matrix(
    lo1: np.ndarray,
    hi1: np.ndarray,
    lo2: np.ndarray,
    hi2: np.ndarray,
    metric: Optional[Metric] = None,
) -> np.ndarray:
    """``(n1, n2)`` matrix of union-box diagonals (``MBR.union_diagonal``).

    The quantity of the compact join's dual-node early stop (Figure 3,
    line 20): an upper bound on the distance between any two points drawn
    from the union of the two boxes.
    """
    span = np.maximum(hi1[:, None, :], hi2[None, :, :]) - np.minimum(
        lo1[:, None, :], lo2[None, :, :]
    )
    return get_metric(metric).norm_rows(span)


def min_dist_pairs(
    lo1: np.ndarray,
    hi1: np.ndarray,
    lo2: np.ndarray,
    hi2: np.ndarray,
    metric: Optional[Metric] = None,
) -> np.ndarray:
    """Row-wise minimum distances of aligned box pairs: ``(n, d) -> (n,)``."""
    gaps = np.maximum(0.0, np.maximum(lo1 - hi2, lo2 - hi1))
    return get_metric(metric).norm_rows(gaps)


def union_diagonal_pairs(
    lo1: np.ndarray,
    hi1: np.ndarray,
    lo2: np.ndarray,
    hi2: np.ndarray,
    metric: Optional[Metric] = None,
) -> np.ndarray:
    """Row-wise union-box diagonals of aligned box pairs."""
    span = np.maximum(hi1, hi2) - np.minimum(lo1, lo2)
    return get_metric(metric).norm_rows(span)


def self_pairs_within(
    lo: np.ndarray, hi: np.ndarray, eps: float, metric: Optional[Metric] = None
) -> tuple[np.ndarray, np.ndarray]:
    """Self-set prune: index pairs ``(a, b)``, ``a < b``, with
    ``min_dist(box_a, box_b) < eps``, in canonical row-major order.

    Works on the condensed upper triangle — no ``k × k`` matrix is ever
    materialised, mirroring the ``for a / for b in range(a+1, k)`` loop
    of the scalar engines.
    """
    k = len(lo)
    if k < 2:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    rows, cols = triu_pair_indices(k)
    dists = min_dist_pairs(lo[rows], hi[rows], lo[cols], hi[cols], metric)
    hit = np.flatnonzero(dists < eps)
    return rows[hit], cols[hit]


def cross_pairs_within(
    lo1: np.ndarray,
    hi1: np.ndarray,
    lo2: np.ndarray,
    hi2: np.ndarray,
    eps: float,
    metric: Optional[Metric] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Cross-set prune: pairs with ``min_dist < eps``, row-major order."""
    dists = min_dist_matrix(lo1, hi1, lo2, hi2, metric)
    rows, cols = np.nonzero(dists < eps)
    return rows, cols


# ---------------------------------------------------------------------------
# Ball kernels — batched twins of Ball / BallNode bounds (M-tree)
# ---------------------------------------------------------------------------

def ball_diameter(radii: np.ndarray) -> np.ndarray:
    """Batched ``Ball.diameter``: ``2 r`` per node."""
    return 2.0 * np.asarray(radii, dtype=float)


def _center_dist_matrix(
    c1: np.ndarray, c2: np.ndarray, metric: Optional[Metric] = None
) -> np.ndarray:
    return get_metric(metric).norm_rows(c1[:, None, :] - c2[None, :, :])


def ball_min_dist_matrix(
    c1: np.ndarray,
    r1: np.ndarray,
    c2: np.ndarray,
    r2: np.ndarray,
    metric: Optional[Metric] = None,
) -> np.ndarray:
    """``(n1, n2)`` ball-to-ball minimum distances: ``max(0, d - r1 - r2)``."""
    d = _center_dist_matrix(c1, c2, metric)
    return np.maximum(0.0, d - r1[:, None] - r2[None, :])


def ball_max_dist_matrix(
    c1: np.ndarray,
    r1: np.ndarray,
    c2: np.ndarray,
    r2: np.ndarray,
    metric: Optional[Metric] = None,
) -> np.ndarray:
    """``(n1, n2)`` ball-to-ball maximum distances: ``d + r1 + r2``."""
    d = _center_dist_matrix(c1, c2, metric)
    return d + r1[:, None] + r2[None, :]


def ball_union_diameter_matrix(
    c1: np.ndarray,
    r1: np.ndarray,
    c2: np.ndarray,
    r2: np.ndarray,
    metric: Optional[Metric] = None,
) -> np.ndarray:
    """``(n1, n2)`` union diameters: ``max(2 r1, 2 r2, d + r1 + r2)``."""
    d = _center_dist_matrix(c1, c2, metric)
    return np.maximum(
        np.maximum(2.0 * r1[:, None], 2.0 * r2[None, :]),
        d + r1[:, None] + r2[None, :],
    )


def ball_union_diameter_pairs(
    c1: np.ndarray,
    r1: np.ndarray,
    c2: np.ndarray,
    r2: np.ndarray,
    metric: Optional[Metric] = None,
) -> np.ndarray:
    """Row-wise union diameters of aligned ball pairs."""
    d = get_metric(metric).norm_rows(c1 - c2)
    return np.maximum(np.maximum(2.0 * r1, 2.0 * r2), d + r1 + r2)


def ball_self_pairs_within(
    centers: np.ndarray,
    radii: np.ndarray,
    eps: float,
    metric: Optional[Metric] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Self-set ball prune in canonical (row-major, ``a < b``) order."""
    k = len(centers)
    if k < 2:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    rows, cols = triu_pair_indices(k)
    d = get_metric(metric).norm_rows(centers[rows] - centers[cols])
    dists = np.maximum(0.0, d - radii[rows] - radii[cols])
    hit = np.flatnonzero(dists < eps)
    return rows[hit], cols[hit]


def ball_cross_pairs_within(
    c1: np.ndarray,
    r1: np.ndarray,
    c2: np.ndarray,
    r2: np.ndarray,
    eps: float,
    metric: Optional[Metric] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Cross-set ball prune in canonical row-major order."""
    dists = ball_min_dist_matrix(c1, r1, c2, r2, metric)
    rows, cols = np.nonzero(dists < eps)
    return rows, cols
