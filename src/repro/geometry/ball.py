"""Bounding balls, the covering shape used by the M-tree.

The compact join algorithms only require that each index node exposes an
upper bound on the pairwise distance of the points it covers and lower /
upper bounds on the distance between two nodes (Section IV of the paper).
For a ball of radius ``r`` around center ``c``:

* diameter upper bound: ``2 r``;
* minimum distance between two balls: ``max(0, d(c1, c2) - r1 - r2)``;
* maximum distance between two balls: ``d(c1, c2) + r1 + r2``;
* diameter upper bound for the union of two balls:
  ``max(2 r1, 2 r2, d(c1, c2) + r1 + r2)``.

These bounds are conservative rather than tight, which is safe: the early
stop fires less often but never incorrectly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.metrics import Metric, get_metric

__all__ = ["Ball"]


class Ball:
    """A metric ball with a center point and covering radius."""

    __slots__ = ("center", "radius")

    def __init__(self, center: np.ndarray, radius: float):
        self.center = np.asarray(center, dtype=float).copy()
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        self.radius = float(radius)

    @classmethod
    def of_points(cls, points: np.ndarray, metric: Optional[Metric] = None) -> "Ball":
        """Ball centered on the first point, covering all ``points``.

        The M-tree anchors each node's ball on a *routing object* (an actual
        data point), so we mirror that: the center is ``points[0]`` and the
        radius is its largest distance to the rest.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.size == 0:
            raise ValueError("cannot build a Ball of zero points")
        m = get_metric(metric)
        radius = float(np.max(m.point_to_points(pts[0], pts))) if len(pts) > 1 else 0.0
        return cls(pts[0], radius)

    @property
    def dim(self) -> int:
        return self.center.shape[0]

    def diameter(self) -> float:
        """Upper bound on pairwise distances of covered points."""
        return 2.0 * self.radius

    def contains_point(self, point: np.ndarray, metric: Optional[Metric] = None) -> bool:
        return get_metric(metric).distance(self.center, point) <= self.radius

    def min_dist(self, other: "Ball", metric: Optional[Metric] = None) -> float:
        d = get_metric(metric).distance(self.center, other.center)
        return max(0.0, d - self.radius - other.radius)

    def max_dist(self, other: "Ball", metric: Optional[Metric] = None) -> float:
        d = get_metric(metric).distance(self.center, other.center)
        return d + self.radius + other.radius

    def union_diameter(self, other: "Ball", metric: Optional[Metric] = None) -> float:
        """Upper bound on pairwise distances of points covered by either ball."""
        return max(self.diameter(), other.diameter(), self.max_dist(other, metric))

    def min_dist_point(self, point: np.ndarray, metric: Optional[Metric] = None) -> float:
        d = get_metric(metric).distance(self.center, point)
        return max(0.0, d - self.radius)

    def max_dist_point(self, point: np.ndarray, metric: Optional[Metric] = None) -> float:
        return get_metric(metric).distance(self.center, point) + self.radius

    def expanded_to(self, point: np.ndarray, metric: Optional[Metric] = None) -> "Ball":
        """New ball with the same center, also covering ``point``."""
        d = get_metric(metric).distance(self.center, point)
        return Ball(self.center, max(self.radius, d))

    def __repr__(self) -> str:
        return f"Ball(center={self.center.tolist()}, radius={self.radius:g})"
