"""Space-filling curves: Hilbert and Morton (Z-order) encodings.

These support two substrates from the paper:

* Hilbert-packed bulk loading of R-trees (the paper cites bulk-loading
  algorithms [22, 23, 24]; Hilbert packing is the classic sort-based one);
* the lexicographic grid ordering underlying the epsilon-grid-order join of
  Boehm et al. [2], which Section VII extends with the compact early stop.

The Hilbert encoding follows Skilling's "transpose" formulation and is
vectorised over point sets with NumPy; coordinates are first quantised to
``bits`` bits per dimension with :func:`quantize`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["quantize", "hilbert_index", "morton_index", "hilbert_sort", "morton_sort"]


def quantize(points: np.ndarray, bits: int = 16) -> np.ndarray:
    """Map points to integer grid coordinates in ``[0, 2**bits)``.

    Points are scaled by their own bounding box, so any input range works.
    Degenerate axes (constant coordinate) map to zero.
    """
    if not 1 <= bits <= 31:
        raise ValueError(f"bits must be in [1, 31], got {bits}")
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    lo = pts.min(axis=0)
    span = pts.max(axis=0) - lo
    span[span == 0.0] = 1.0
    scale = (1 << bits) - 1
    grid = np.floor((pts - lo) / span * scale + 0.5).astype(np.uint64)
    return np.minimum(grid, scale)


def morton_index(coords: np.ndarray, bits: int = 16) -> np.ndarray:
    """Morton (Z-order) key for each row of integer grid ``coords``.

    Bits of the *d* coordinates are interleaved most-significant first, so
    sorting by the returned key traverses the Z-order curve.
    """
    coords = np.atleast_2d(np.asarray(coords, dtype=np.uint64))
    n, d = coords.shape
    if bits * d > 63:
        raise ValueError(f"bits*dim = {bits * d} exceeds 63-bit keys")
    keys = np.zeros(n, dtype=np.uint64)
    for bit in range(bits - 1, -1, -1):
        for axis in range(d):
            keys = (keys << np.uint64(1)) | ((coords[:, axis] >> np.uint64(bit)) & np.uint64(1))
    return keys


def _axes_to_transpose(coords: np.ndarray, bits: int) -> np.ndarray:
    """Skilling's AxesToTranspose, vectorised over the first axis.

    Converts grid coordinates to the "transposed" form whose interleaved
    bits give the Hilbert index.
    """
    x = coords.astype(np.uint64).copy()
    n, d = x.shape
    m = np.uint64(1) << np.uint64(bits - 1)

    # Inverse undo excess work.
    q = m
    one = np.uint64(1)
    while q > one:
        p = q - one
        for i in range(d):
            sel = (x[:, i] & q) != 0
            # Invert low bits of axis 0 where the q-bit of axis i is set...
            x[sel, 0] ^= p
            # ...otherwise exchange the low bits of axes 0 and i.
            t = (x[~sel, 0] ^ x[~sel, i]) & p
            x[~sel, 0] ^= t
            x[~sel, i] ^= t
        q >>= one

    # Gray encode.
    for i in range(1, d):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(n, dtype=np.uint64)
    q = m
    while q > one:
        sel = (x[:, d - 1] & q) != 0
        t[sel] ^= q - one
        q >>= one
    for i in range(d):
        x[:, i] ^= t
    return x


def hilbert_index(coords: np.ndarray, bits: int = 16) -> np.ndarray:
    """Hilbert-curve key for each row of integer grid ``coords``.

    The result is a 63-bit-at-most unsigned key; sorting by it traverses
    the Hilbert curve, which keeps spatially close points close in the
    ordering (much better locality than Morton order near octant seams).
    """
    coords = np.atleast_2d(np.asarray(coords, dtype=np.uint64))
    d = coords.shape[1]
    if bits * d > 63:
        raise ValueError(f"bits*dim = {bits * d} exceeds 63-bit keys")
    transposed = _axes_to_transpose(coords, bits)
    # Interleave the transposed bits, axis-major within each bit position.
    keys = np.zeros(coords.shape[0], dtype=np.uint64)
    for bit in range(bits - 1, -1, -1):
        for axis in range(d):
            keys = (keys << np.uint64(1)) | ((transposed[:, axis] >> np.uint64(bit)) & np.uint64(1))
    return keys


def hilbert_sort(points: np.ndarray, bits: int = 16) -> np.ndarray:
    """Return the permutation that sorts ``points`` along the Hilbert curve."""
    return np.argsort(hilbert_index(quantize(points, bits), bits), kind="stable")


def morton_sort(points: np.ndarray, bits: int = 16) -> np.ndarray:
    """Return the permutation that sorts ``points`` along the Z-order curve."""
    return np.argsort(morton_index(quantize(points, bits), bits), kind="stable")
