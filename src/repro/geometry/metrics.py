"""Distance metrics for vector data.

The paper's algorithms require only that (a) point-to-point distances can be
computed and (b) bounding shapes admit cheap minimum/maximum distance
bounds.  Both hold for every Minkowski metric, so the whole library is
parameterised by a :class:`Metric`.

For Minkowski metrics the MBR arithmetic in :mod:`repro.geometry.mbr` is
exact: the diagonal of the minimum bounding rectangle of two points equals
their distance, which is the property the completeness proof (Theorem 1,
Case 2) relies on.

All bulk operations are vectorised with NumPy; leaf-level pairwise distance
matrices are the join algorithms' hot path.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

__all__ = [
    "Metric",
    "Minkowski",
    "Euclidean",
    "Manhattan",
    "Chebyshev",
    "get_metric",
    "triu_pair_indices",
]

# Upper-triangle index pairs are recomputed for every leaf the joins
# visit; leaves share a handful of sizes (bounded by the tree fanout), so
# a tiny cache turns that into one allocation per size.  Arrays in the
# cache are marked read-only to keep accidental in-place edits from
# poisoning later lookups.
_TRIU_CACHE: "dict[int, tuple[np.ndarray, np.ndarray]]" = {}
_TRIU_CACHE_MAX_K = 2048


def triu_pair_indices(k: int) -> "tuple[np.ndarray, np.ndarray]":
    """Row/column indices of the strict upper triangle of a ``k x k`` grid.

    Equivalent to ``np.triu_indices(k, k=1)`` but cached for the leaf
    sizes the joins see repeatedly.  The pairs enumerate ``(a, b)`` with
    ``a < b`` in row-major order — the exact visit order of the scalar
    engines' nested pair loops.
    """
    cached = _TRIU_CACHE.get(k)
    if cached is not None:
        return cached
    rows, cols = np.triu_indices(k, k=1)
    if k <= _TRIU_CACHE_MAX_K:
        rows.setflags(write=False)
        cols.setflags(write=False)
        _TRIU_CACHE[k] = (rows, cols)
    return rows, cols


class Metric:
    """Base class for distance metrics over ``R^d`` row vectors.

    Subclasses must implement :meth:`norm_rows`; every other operation is
    derived from it.  Metrics are stateless and hashable so they can be
    shared between trees, joins and tests.
    """

    #: Human-readable identifier, e.g. ``"euclidean"``.
    name: str = "abstract"

    def norm_rows(self, diffs: np.ndarray) -> np.ndarray:
        """Return the metric norm of each row of ``diffs``.

        ``diffs`` may have any shape whose final axis is the coordinate
        axis; the result drops that axis.
        """
        raise NotImplementedError

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        """Distance between two points (1-D arrays)."""
        return float(self.norm_rows(np.asarray(a, dtype=float) - np.asarray(b, dtype=float)))

    def norm(self, v: np.ndarray) -> float:
        """Metric norm of a single vector."""
        return float(self.norm_rows(np.asarray(v, dtype=float)))

    def norm_seq(self, values: "list[float]") -> float:
        """Metric norm of a plain Python sequence of coordinates.

        The joins' per-link hot path works on 2-3 element sequences, where
        NumPy dispatch overhead dominates; subclasses provide scalar
        implementations.  The default falls back to :meth:`norm_rows`.
        """
        return float(self.norm_rows(np.asarray(values, dtype=float)))

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full ``len(a) x len(b)`` distance matrix between two point sets."""
        a = np.atleast_2d(np.asarray(a, dtype=float))
        b = np.atleast_2d(np.asarray(b, dtype=float))
        return self.norm_rows(a[:, None, :] - b[None, :, :])

    def self_pairwise(self, a: np.ndarray) -> np.ndarray:
        """Symmetric distance matrix of a point set with itself."""
        return self.pairwise(a, a)

    def condensed_self(self, a: np.ndarray) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Condensed upper-triangle self-distances of a point set.

        Returns ``(rows, cols, dists)`` where ``(rows[i], cols[i])`` are
        the strict upper-triangle index pairs in row-major order and
        ``dists[i]`` their distance — the same values as
        ``self_pairwise(a)[rows, cols]`` without ever materialising the
        full ``k x k`` matrix (or its ``(k, k, d)`` difference tensor).
        Peak memory is ~2x smaller than the full-matrix path on dense
        leaves; the distances themselves are bit-identical because the
        elementwise subtraction and norm are unchanged.
        """
        a = np.atleast_2d(np.asarray(a, dtype=float))
        rows, cols = triu_pair_indices(len(a))
        diffs = a[rows]
        np.subtract(diffs, a[cols], out=diffs)
        return rows, cols, self.norm_rows(diffs)

    def point_to_points(self, p: np.ndarray, pts: np.ndarray) -> np.ndarray:
        """Distances from a single point to each row of ``pts``."""
        pts = np.atleast_2d(np.asarray(pts, dtype=float))
        return self.norm_rows(pts - np.asarray(p, dtype=float))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Metric) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class Minkowski(Metric):
    """The L_p metric for a finite order ``p >= 1``."""

    def __init__(self, p: float):
        if p < 1:
            raise ValueError(f"Minkowski order must be >= 1, got {p}")
        if math.isinf(p):
            raise ValueError("use Chebyshev() for the L-infinity metric")
        self.p = float(p)
        self.name = f"minkowski-{self.p:g}"

    def norm_rows(self, diffs: np.ndarray) -> np.ndarray:
        return np.sum(np.abs(diffs) ** self.p, axis=-1) ** (1.0 / self.p)

    def norm_seq(self, values: "list[float]") -> float:
        return sum(abs(v) ** self.p for v in values) ** (1.0 / self.p)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Minkowski(p={self.p:g})"


class Euclidean(Minkowski):
    """The L2 metric, with a faster specialised norm."""

    def __init__(self) -> None:
        super().__init__(2.0)
        self.name = "euclidean"

    def norm_rows(self, diffs: np.ndarray) -> np.ndarray:
        return np.sqrt(np.sum(diffs * diffs, axis=-1))

    def norm_seq(self, values: "list[float]") -> float:
        return math.sqrt(sum(v * v for v in values))


class Manhattan(Minkowski):
    """The L1 (city-block) metric."""

    def __init__(self) -> None:
        super().__init__(1.0)
        self.name = "manhattan"

    def norm_rows(self, diffs: np.ndarray) -> np.ndarray:
        return np.sum(np.abs(diffs), axis=-1)

    def norm_seq(self, values: "list[float]") -> float:
        return sum(abs(v) for v in values)


class Chebyshev(Metric):
    """The L-infinity (maximum-coordinate) metric."""

    name = "chebyshev"

    def norm_rows(self, diffs: np.ndarray) -> np.ndarray:
        return np.max(np.abs(diffs), axis=-1)

    def norm_seq(self, values: "list[float]") -> float:
        return max(abs(v) for v in values)


_ALIASES: dict[str, Metric] = {
    "euclidean": Euclidean(),
    "l2": Euclidean(),
    "manhattan": Manhattan(),
    "cityblock": Manhattan(),
    "l1": Manhattan(),
    "chebyshev": Chebyshev(),
    "linf": Chebyshev(),
    "l-inf": Chebyshev(),
}


def get_metric(spec: Union[str, float, Metric, None] = None) -> Metric:
    """Resolve a metric specification to a :class:`Metric` instance.

    Accepts an existing metric (returned as-is), a name such as
    ``"euclidean"`` / ``"l1"`` / ``"linf"``, a numeric Minkowski order, or
    ``None`` for the default Euclidean metric.

    >>> get_metric("l1").name
    'manhattan'
    >>> get_metric(3).name
    'minkowski-3'
    """
    if spec is None:
        return _ALIASES["euclidean"]
    if isinstance(spec, Metric):
        return spec
    if isinstance(spec, str):
        try:
            return _ALIASES[spec.lower()]
        except KeyError:
            raise ValueError(
                f"unknown metric {spec!r}; known: {sorted(_ALIASES)}"
            ) from None
    if isinstance(spec, (int, float)):
        if math.isinf(spec):
            return _ALIASES["chebyshev"]
        if spec == 2:
            return _ALIASES["euclidean"]
        if spec == 1:
            return _ALIASES["manhattan"]
        return Minkowski(float(spec))
    raise TypeError(f"cannot interpret {spec!r} as a metric")
