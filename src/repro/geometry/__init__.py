"""Geometric primitives: metrics, bounding rectangles, balls, curves.

Everything the index structures and join algorithms need is defined here,
with no dependency on any spatial library.  The two bounding shapes are

* :class:`~repro.geometry.mbr.MBR` — minimum bounding hyper-rectangles,
  used by the R-tree family and by the compact join's groups (Section V-A
  of the paper argues for hyper-rectangles over bounding circles), and
* :class:`~repro.geometry.ball.Ball` — bounding balls, used by the M-tree.
"""

from repro.geometry import kernels
from repro.geometry.ball import Ball
from repro.geometry.mbr import MBR
from repro.geometry.metrics import (
    Chebyshev,
    Euclidean,
    Manhattan,
    Metric,
    Minkowski,
    get_metric,
    triu_pair_indices,
)

__all__ = [
    "MBR",
    "Ball",
    "Metric",
    "Minkowski",
    "Euclidean",
    "Manhattan",
    "Chebyshev",
    "get_metric",
    "triu_pair_indices",
    "kernels",
]
