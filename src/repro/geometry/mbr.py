"""Minimum bounding hyper-rectangles (MBRs).

MBRs are the workhorse bounding shape of the library.  They serve two roles:

* the bounding shapes of R-tree / R*-tree nodes, and
* the group boundaries of the compact similarity join (Section V-A of the
  paper: membership checks, insertions and boundary updates must all be
  constant time, which hyper-rectangles provide).

The paper's group invariant is that the *maximal diagonal* of the
hyper-rectangle — the metric distance between its lower and upper corners —
stays strictly below the query range, which guarantees that all points
inside mutually satisfy the range.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.geometry.metrics import Metric, get_metric

__all__ = ["MBR"]


class MBR:
    """A d-dimensional axis-aligned minimum bounding rectangle.

    Stores the componentwise lower corner ``lo`` and upper corner ``hi`` as
    float arrays.  Instances are mutable only through the explicit
    ``extend_*`` methods; all other operations return new objects or
    scalars so that callers can reason about aliasing.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: np.ndarray, hi: np.ndarray):
        self.lo = np.asarray(lo, dtype=float).copy()
        self.hi = np.asarray(hi, dtype=float).copy()
        if self.lo.shape != self.hi.shape or self.lo.ndim != 1:
            raise ValueError("lo and hi must be 1-D arrays of equal length")
        if np.any(self.lo > self.hi):
            raise ValueError(f"inverted MBR: lo={self.lo}, hi={self.hi}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def of_points(cls, points: np.ndarray) -> "MBR":
        """Tightest MBR covering a non-empty ``(n, d)`` point array."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.size == 0:
            raise ValueError("cannot build an MBR of zero points")
        return cls(pts.min(axis=0), pts.max(axis=0))

    @classmethod
    def of_point(cls, point: np.ndarray) -> "MBR":
        """Degenerate MBR covering a single point."""
        p = np.asarray(point, dtype=float)
        return cls(p, p)

    @classmethod
    def of_mbrs(cls, mbrs: Iterable["MBR"]) -> "MBR":
        """Tightest MBR covering a non-empty iterable of MBRs."""
        los, his = cls.stack(mbrs)
        return cls(los.min(axis=0), his.max(axis=0))

    @classmethod
    def stack(cls, mbrs: Iterable["MBR"]) -> "tuple[np.ndarray, np.ndarray]":
        """Pack an iterable of MBRs into ``(n, d)`` lo / hi corner matrices.

        One preallocated array per corner, filled row by row — no
        intermediate list of per-rectangle arrays.  This is the packing
        primitive shared by :meth:`of_mbrs`, the bulk loaders and the
        packed-index builder.
        """
        mbrs = list(mbrs)
        if not mbrs:
            raise ValueError("cannot build an MBR of zero rectangles")
        los = np.empty((len(mbrs), mbrs[0].lo.shape[0]), dtype=float)
        his = np.empty_like(los)
        for i, m in enumerate(mbrs):
            los[i] = m.lo
            his[i] = m.hi
        return los, his

    def copy(self) -> "MBR":
        return MBR(self.lo, self.hi)

    # ------------------------------------------------------------------
    # Scalar properties
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self.lo.shape[0]

    @property
    def center(self) -> np.ndarray:
        return (self.lo + self.hi) / 2.0

    @property
    def extents(self) -> np.ndarray:
        """Side lengths along each axis."""
        return self.hi - self.lo

    def area(self) -> float:
        """Hyper-volume (the R-tree literature calls this *area*)."""
        return float(np.prod(self.hi - self.lo))

    def margin(self) -> float:
        """Sum of side lengths (the R*-tree split criterion)."""
        return float(np.sum(self.hi - self.lo))

    def diagonal(self, metric: Optional[Metric] = None) -> float:
        """Metric length of the main diagonal — the *maximum diameter*.

        This is the largest possible distance between any two points inside
        the rectangle, and the quantity the compact join compares against
        the query range (lines 2 and 20 of the paper's pseudo-code).
        """
        return get_metric(metric).norm(self.hi - self.lo)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: np.ndarray) -> bool:
        p = np.asarray(point, dtype=float)
        return bool(np.all(p >= self.lo) and np.all(p <= self.hi))

    def contains_mbr(self, other: "MBR") -> bool:
        return bool(np.all(other.lo >= self.lo) and np.all(other.hi <= self.hi))

    def intersects(self, other: "MBR") -> bool:
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def min_dist_point(self, point: np.ndarray, metric: Optional[Metric] = None) -> float:
        """Smallest metric distance from ``point`` to the rectangle (0 inside)."""
        p = np.asarray(point, dtype=float)
        gaps = np.maximum(0.0, np.maximum(self.lo - p, p - self.hi))
        return get_metric(metric).norm(gaps)

    def min_dist_points(
        self, points: np.ndarray, metric: Optional[Metric] = None
    ) -> np.ndarray:
        """Smallest metric distance from each row of ``points`` (0 inside).

        The vectorised batch form of :meth:`min_dist_point` — one clamp
        per axis and a single norm over the gap matrix.  For every
        Minkowski metric the per-axis gap is bounded by the per-axis
        difference to any interior point and the norm is monotone, so
        ``min_dist_points(pts)[i] <= metric.distance(pts[i], q)`` for any
        ``q`` inside the rectangle — the inequality the shard planner's
        ε-margin halo relies on.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        gaps = np.maximum(0.0, np.maximum(self.lo - pts, pts - self.hi))
        return get_metric(metric).norm_rows(gaps)

    def max_dist_point(self, point: np.ndarray, metric: Optional[Metric] = None) -> float:
        """Largest metric distance from ``point`` to anywhere in the rectangle."""
        p = np.asarray(point, dtype=float)
        gaps = np.maximum(np.abs(self.hi - p), np.abs(p - self.lo))
        return get_metric(metric).norm(gaps)

    def min_dist(self, other: "MBR", metric: Optional[Metric] = None) -> float:
        """Smallest metric distance between the two rectangles (0 if they meet)."""
        gaps = np.maximum(0.0, np.maximum(self.lo - other.hi, other.lo - self.hi))
        return get_metric(metric).norm(gaps)

    def max_dist(self, other: "MBR", metric: Optional[Metric] = None) -> float:
        """Largest metric distance between any point of each rectangle."""
        spans = np.maximum(np.abs(self.hi - other.lo), np.abs(other.hi - self.lo))
        return get_metric(metric).norm(spans)

    def union_diagonal(self, other: "MBR", metric: Optional[Metric] = None) -> float:
        """Diagonal of the union MBR — "maximum diameter of {n1, n2}".

        This bounds the distance between *any* two points drawn from the
        union of the two rectangles, including two points from the same
        rectangle, which is exactly the test of line 20 of the paper's
        pseudo-code for the dual-node early stop.
        """
        span = np.maximum(self.hi, other.hi) - np.minimum(self.lo, other.lo)
        return get_metric(metric).norm(span)

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    def union(self, other: "MBR") -> "MBR":
        """New MBR covering both rectangles."""
        return MBR(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def union_point(self, point: np.ndarray) -> "MBR":
        """New MBR additionally covering ``point``."""
        p = np.asarray(point, dtype=float)
        return MBR(np.minimum(self.lo, p), np.maximum(self.hi, p))

    def extend_mbr(self, other: "MBR") -> None:
        """Grow in place to cover ``other``."""
        np.minimum(self.lo, other.lo, out=self.lo)
        np.maximum(self.hi, other.hi, out=self.hi)

    def extend_point(self, point: np.ndarray) -> None:
        """Grow in place to cover ``point``."""
        p = np.asarray(point, dtype=float)
        np.minimum(self.lo, p, out=self.lo)
        np.maximum(self.hi, p, out=self.hi)

    def enlargement(self, other: "MBR") -> float:
        """Area increase needed to cover ``other`` (Guttman's ChooseLeaf)."""
        lo = np.minimum(self.lo, other.lo)
        hi = np.maximum(self.hi, other.hi)
        return float(np.prod(hi - lo)) - self.area()

    def overlap_area(self, other: "MBR") -> float:
        """Hyper-volume of the intersection (0 when disjoint)."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        sides = hi - lo
        if np.any(sides < 0):
            return 0.0
        return float(np.prod(sides))

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return bool(np.array_equal(self.lo, other.lo) and np.array_equal(self.hi, other.hi))

    def __hash__(self) -> int:
        return hash((self.lo.tobytes(), self.hi.tobytes()))

    def __repr__(self) -> str:
        return f"MBR(lo={self.lo.tolist()}, hi={self.hi.tolist()})"
