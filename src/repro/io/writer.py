"""The paper's output text format.

Section VI: *"Each data point is zero-padded to ensure it is represented by
the same fixed number of bits.  A link is written as a single line in the
output file containing the two data points, e.g. ``0001 0002``, while a
cluster is written as the line ``0001 0002 0003...``."*

Output size — the paper's space metric — is therefore exactly
``sum over lines of (ids_per_line * (width + 1))`` bytes: each id costs its
zero-padded width plus one separator byte (space between ids, newline at
the end of the line).  :func:`line_bytes` encodes that arithmetic so sinks
can account bytes without materialising text.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence, TextIO, Union

__all__ = ["FixedWidthWriter", "line_bytes", "read_output"]


def line_bytes(n_ids: int, width: int) -> int:
    """Bytes of one output line holding ``n_ids`` zero-padded ids.

    ``n_ids`` ids of ``width`` digits, separated by single spaces and
    terminated by a newline: ``n_ids * width + (n_ids - 1) + 1``.
    """
    if n_ids <= 0:
        return 0
    return n_ids * (width + 1)


def width_for(n_points: int) -> int:
    """Zero-padding width able to represent ids ``0 .. n_points - 1``."""
    return max(1, len(str(max(0, n_points - 1))))


class FixedWidthWriter:
    """Writes links and groups in the paper's fixed-width text format.

    Accepts a path or an open text file.  Tracks the exact number of bytes
    written, which equals the file size for a path target.

    Path targets are opened — and fsynced — through the durable-I/O seam
    (:func:`repro.io.durable.get_fs`), so the crash-consistency harness
    can interpose on every write the output path sees.  The filesystem is
    captured at construction; it is exposed as :attr:`fs` for wrappers
    (the atomic sink) that perform follow-up operations on the same
    target.

    >>> import io
    >>> buf = io.StringIO()
    >>> w = FixedWidthWriter(buf, width=4)
    >>> w.write_link(1, 2)
    >>> w.write_group([1, 2, 3])
    >>> print(buf.getvalue(), end="")
    0001 0002
    0001 0002 0003
    """

    def __init__(self, target: Union[str, TextIO], width: int = 8, mode: str = "w"):
        from repro.io.durable import get_fs

        if width < 1:
            raise ValueError(f"width must be positive, got {width}")
        if mode not in ("w", "a"):
            raise ValueError(f"mode must be 'w' or 'a', got {mode!r}")
        self.width = width
        self.bytes_written = 0
        self.fs = get_fs()
        if isinstance(target, (str, bytes)):
            self.path: Union[str, None] = os.fsdecode(target)
            self._file: TextIO = self.fs.open(self.path, mode, encoding="ascii")
            self._owns_file = True
        else:
            self.path = None
            self._file = target
            self._owns_file = False

    def _format_ids(self, ids: Iterable[int]) -> str:
        return " ".join(f"{int(i):0{self.width}d}" for i in ids)

    def write_link(self, i: int, j: int) -> None:
        """One link line: two ids."""
        line = self._format_ids((i, j)) + "\n"
        self._file.write(line)
        self.bytes_written += len(line)

    def write_links(self, ids_i, ids_j) -> None:
        """Many link lines in one buffered write (bulk output path)."""
        width = self.width
        text = "".join(
            f"{int(i):0{width}d} {int(j):0{width}d}\n"
            for i, j in zip(ids_i, ids_j)
        )
        self._file.write(text)
        self.bytes_written += len(text)

    def write_group(self, ids: Sequence[int]) -> None:
        """One group line: all member ids."""
        if not len(ids):
            return
        line = self._format_ids(ids) + "\n"
        self._file.write(line)
        self.bytes_written += len(line)

    def write_group_pair(self, ids_a: Sequence[int], ids_b: Sequence[int]) -> None:
        """A spatial-join group: both sides on one line, ``|``-separated."""
        line = self._format_ids(ids_a) + " | " + self._format_ids(ids_b) + "\n"
        self._file.write(line)
        self.bytes_written += len(line)

    def sync(self) -> None:
        """Flush buffers and force the bytes to stable storage (fsync).

        In-memory targets (``StringIO``) flush only; the fsync is skipped
        where the target has no file descriptor.
        """
        self.fs.fsync(self._file)

    def tell(self) -> int:
        """Current byte offset in the underlying file (after a flush)."""
        self._file.flush()
        return self._file.tell()

    def close(self) -> None:
        """Close the underlying file if this writer opened it."""
        if self._owns_file and not self._file.closed:
            self._file.close()

    def __enter__(self) -> "FixedWidthWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_output(source: Union[str, TextIO]) -> tuple[list[tuple[int, int]], list[tuple[int, ...]], list[tuple[tuple[int, ...], tuple[int, ...]]]]:
    """Parse a file written by :class:`FixedWidthWriter`.

    Returns ``(links, groups, group_pairs)``: two-id lines become links,
    longer lines become groups, and lines with a ``|`` separator become
    spatial-join group pairs.
    """
    if isinstance(source, (str, bytes)):
        handle: TextIO = open(source, "r", encoding="ascii")
        owns = True
    else:
        handle = source
        owns = False
    links: list[tuple[int, int]] = []
    groups: list[tuple[int, ...]] = []
    group_pairs: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
    try:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if "|" in line:
                left, _, right = line.partition("|")
                group_pairs.append(
                    (
                        tuple(int(t) for t in left.split()),
                        tuple(int(t) for t in right.split()),
                    )
                )
                continue
            ids = tuple(int(t) for t in line.split())
            if len(ids) == 2:
                links.append((ids[0], ids[1]))
            else:
                groups.append(ids)
    finally:
        if owns:
            handle.close()
    return links, groups, group_pairs
