"""Output writing, durable-operation seam, and simulated disk I/O.

The paper measures output size as "the size in bytes of the resulting
output text file", with every point id zero-padded to a fixed width
(Section VI).  :mod:`repro.io.writer` reproduces that format exactly;
:mod:`repro.io.pagesim` provides the page/cache access accounting used in
Experiment 3; :mod:`repro.io.durable` is the single seam every durable
file operation (open/fsync/rename/parent-dir fsync) goes through, which
the crash-consistency harness interposes on.
"""

from repro.io.durable import (
    FileSystem,
    OsFileSystem,
    SandboxFS,
    best_effort_fsync_dir,
    get_fs,
    scoped_fs,
    set_fs,
)
from repro.io.pagesim import PageCache, PagedFile
from repro.io.writer import FixedWidthWriter, line_bytes, read_output

__all__ = [
    "FileSystem",
    "FixedWidthWriter",
    "OsFileSystem",
    "PageCache",
    "PagedFile",
    "SandboxFS",
    "best_effort_fsync_dir",
    "get_fs",
    "line_bytes",
    "read_output",
    "scoped_fs",
    "set_fs",
]
