"""Output writing and simulated disk I/O.

The paper measures output size as "the size in bytes of the resulting
output text file", with every point id zero-padded to a fixed width
(Section VI).  :mod:`repro.io.writer` reproduces that format exactly;
:mod:`repro.io.pagesim` provides the page/cache access accounting used in
Experiment 3.
"""

from repro.io.pagesim import PageCache, PagedFile
from repro.io.writer import FixedWidthWriter, line_bytes, read_output

__all__ = ["FixedWidthWriter", "read_output", "line_bytes", "PagedFile", "PageCache"]
