"""Simulated disk pages and an LRU page cache.

Experiment 3 of the paper reports that SSJ, N-CSJ and CSJ(g) perform an
indistinguishable number of disk page and cache accesses — the savings come
from computation and from writing less output.  Our trees live in memory,
so disk behaviour is *simulated*: every index node is assigned to a page,
node visits are charged as page accesses through an LRU cache, and output
writing is charged sequential page writes.

This is a deliberately simple model (fixed page size, fully associative
LRU) but sufficient to reproduce the experiment's qualitative claim: the
compact algorithms touch the same index pages as SSJ and merely write
fewer output pages.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["PageCache", "PagedFile", "NodePager"]


class PageCache:
    """A fully associative LRU cache over numbered pages.

    ``access`` returns True on a hit.  Misses count as a disk page read.
    """

    def __init__(self, capacity_pages: int = 256):
        if capacity_pages < 1:
            raise ValueError(f"capacity must be positive, got {capacity_pages}")
        self.capacity = int(capacity_pages)
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, page_id: int) -> bool:
        """Touch a page; returns True on a cache hit."""
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.hits += 1
            return True
        self.misses += 1
        self._pages[page_id] = None
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
        return False

    @property
    def accesses(self) -> int:
        """Total page touches (hits plus misses)."""
        return self.hits + self.misses

    def reset(self) -> None:
        """Empty the cache and zero the counters."""
        self._pages.clear()
        self.hits = 0
        self.misses = 0


class PagedFile:
    """Byte-append accounting translated into sequential page writes."""

    def __init__(self, page_size: int = 4096):
        if page_size < 1:
            raise ValueError(f"page size must be positive, got {page_size}")
        self.page_size = int(page_size)
        self.bytes_written = 0

    def append(self, n_bytes: int) -> int:
        """Record an append; returns the number of *new* pages touched."""
        if n_bytes < 0:
            raise ValueError("cannot append a negative byte count")
        before = self.pages_written
        self.bytes_written += n_bytes
        return self.pages_written - before

    @property
    def pages_written(self) -> int:
        """Number of pages the appended bytes occupy."""
        return -(-self.bytes_written // self.page_size) if self.bytes_written else 0


class NodePager:
    """Assigns index nodes to simulated disk pages.

    Nodes are numbered in pre-order (the order a packed tree would be laid
    out on disk) and grouped ``nodes_per_page`` to a page.  The join
    algorithms call :meth:`visit` for every node they touch.
    """

    def __init__(self, tree, cache: PageCache, nodes_per_page: int = 1):
        if nodes_per_page < 1:
            raise ValueError("nodes_per_page must be positive")
        self._page_of: dict[int, int] = {}
        for i, node in enumerate(tree.nodes()):
            self._page_of[id(node)] = i // nodes_per_page
        self.cache = cache

    def visit(self, node: object) -> None:
        """Charge one access for the page holding ``node`` (if tracked)."""
        page = self._page_of.get(id(node))
        if page is not None:
            self.cache.access(page)
