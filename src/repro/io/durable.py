"""The single seam for durable file operations.

Every component with a durability contract — :class:`DurableTextSink`'s
append-and-fsync output, :class:`AtomicTextSink`'s write → fsync →
rename publication, the checkpoint journal, and the index persistence
layer — performs its file operations through a :class:`FileSystem`
object obtained from :func:`get_fs` instead of calling ``open`` /
``os.fsync`` / ``os.replace`` directly.  In production the active
filesystem is :class:`OsFileSystem`, a transparent passthrough.  The
crash-consistency harness installs an interposer
(:class:`~repro.resilience.vfs.TraceFS`) for the duration of a run with
:func:`scoped_fs`, which records the full write-op trace and can inject
disk faults — without the production code knowing or changing.

The operations the seam exposes are exactly the vocabulary of
crash-consistent storage:

``open``            create/truncate/append/read a file (an *op* when it truncates)
``fsync``           force a handle's written bytes to stable storage
``fsync_dir``       force directory entries (renames, creations) to stable storage
``replace``         atomically rename over a destination
``truncate``        cut a file to a byte length
``unlink``          remove a file
``exists``/``getsize``  metadata reads (never ops)

:class:`SandboxFS` remaps every path under a root directory — the
reconstruction target the crash-state explorer replays post-crash disk
images into before running recovery against them.
"""

from __future__ import annotations

import contextlib
import os
from typing import IO, Iterator, Optional, Union

from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry

__all__ = [
    "FileSystem",
    "OsFileSystem",
    "SandboxFS",
    "best_effort_fsync_dir",
    "get_fs",
    "scoped_fs",
    "set_fs",
]

logger = get_logger("io.durable")


class FileSystem:
    """Abstract durable-operation seam; see the module docstring.

    Subclasses override any subset; the base class defines the contract
    only.  All paths are plain ``str``/``os.PathLike``.
    """

    def open(
        self, path: str, mode: str = "r", encoding: Optional[str] = None
    ) -> IO:
        raise NotImplementedError

    def fsync(self, handle: IO) -> None:
        """Flush ``handle`` and force its bytes to stable storage.

        Handles without a real file descriptor (``StringIO``) flush
        only — in-memory targets have no durability to enforce.
        """
        raise NotImplementedError

    def fsync_dir(self, path: str) -> None:
        """Fsync the directory ``path`` so entries (renames) survive a crash."""
        raise NotImplementedError

    def replace(self, src: str, dst: str) -> None:
        raise NotImplementedError

    def truncate(self, path: str, size: int) -> None:
        raise NotImplementedError

    def unlink(self, path: str) -> None:
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        raise NotImplementedError

    def getsize(self, path: str) -> int:
        raise NotImplementedError


class OsFileSystem(FileSystem):
    """The production filesystem: a transparent passthrough to ``os``."""

    def open(
        self, path: str, mode: str = "r", encoding: Optional[str] = None
    ) -> IO:
        return open(path, mode, encoding=encoding)

    def fsync(self, handle: IO) -> None:
        handle.flush()
        try:
            fd = handle.fileno()
        except (AttributeError, OSError, ValueError):
            return
        os.fsync(fd)

    def fsync_dir(self, path: str) -> None:
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def truncate(self, path: str, size: int) -> None:
        with open(path, "r+b") as handle:
            handle.truncate(size)

    def unlink(self, path: str) -> None:
        os.unlink(path)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def getsize(self, path: str) -> int:
        return os.path.getsize(path)


class SandboxFS(OsFileSystem):
    """Remaps every path under ``root`` before delegating to the OS.

    ``/tmp/run/out.txt`` becomes ``<root>/tmp/run/out.txt``; parent
    directories are created on demand for writes.  The crash-state
    explorer materialises each reconstructed disk image into a fresh
    sandbox and runs recovery inside it, so states never clobber each
    other or the original files.
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(os.fspath(root))

    def map(self, path: str) -> str:
        """The real path a logical ``path`` lands on inside the sandbox."""
        absolute = os.path.abspath(os.fspath(path))
        relative = absolute.lstrip(os.sep)
        if os.altsep:
            relative = relative.lstrip(os.altsep)
        return os.path.join(self.root, relative)

    def _map_for_write(self, path: str) -> str:
        real = self.map(path)
        os.makedirs(os.path.dirname(real), exist_ok=True)
        return real

    def open(
        self, path: str, mode: str = "r", encoding: Optional[str] = None
    ) -> IO:
        if "r" in mode and "+" not in mode:
            return open(self.map(path), mode, encoding=encoding)
        return open(self._map_for_write(path), mode, encoding=encoding)

    def fsync_dir(self, path: str) -> None:
        real = self.map(path)
        os.makedirs(real, exist_ok=True)
        super().fsync_dir(real)

    def replace(self, src: str, dst: str) -> None:
        os.replace(self.map(src), self._map_for_write(dst))

    def truncate(self, path: str, size: int) -> None:
        super().truncate(self.map(path), size)

    def unlink(self, path: str) -> None:
        os.unlink(self.map(path))

    def exists(self, path: str) -> bool:
        return os.path.exists(self.map(path))

    def getsize(self, path: str) -> int:
        return os.path.getsize(self.map(path))


_active: FileSystem = OsFileSystem()


def get_fs() -> FileSystem:
    """The currently active filesystem (the OS passthrough by default)."""
    return _active


def set_fs(fs: Optional[FileSystem]) -> FileSystem:
    """Install ``fs`` as the active filesystem; returns the previous one.

    Passing ``None`` restores the OS passthrough.  Prefer
    :func:`scoped_fs` — it cannot leak an interposer past its block.
    """
    global _active
    previous = _active
    _active = fs if fs is not None else OsFileSystem()
    return previous


@contextlib.contextmanager
def scoped_fs(fs: FileSystem) -> Iterator[FileSystem]:
    """Install ``fs`` for the duration of a ``with`` block.

    >>> import tempfile, os
    >>> with tempfile.TemporaryDirectory() as d:
    ...     with scoped_fs(SandboxFS(os.path.join(d, "sandbox"))) as sandbox:
    ...         with get_fs().open(os.path.join(d, "x.txt"), "w") as f:
    ...             _ = f.write("hi")
    ...         inside = get_fs().exists(os.path.join(d, "x.txt"))
    ...     outside = os.path.exists(os.path.join(d, "x.txt"))
    >>> (inside, outside)
    (True, False)
    """
    previous = set_fs(fs)
    try:
        yield fs
    finally:
        set_fs(previous)


def best_effort_fsync_dir(path: str, fs: Optional[FileSystem] = None) -> bool:
    """Fsync a directory, downgrading failure to a *visible* warning.

    Parent-directory fsync makes renames and creations durable, but some
    platforms cannot open directories at all.  Historically the failure
    was swallowed silently; now every downgrade is logged through
    ``repro.obs`` with the path and error, and counted in
    ``repro_fsync_dir_failures_total``, so a deployment quietly running
    without rename durability shows up in its logs and metrics.

    Returns ``True`` when the fsync succeeded.
    """
    fs = fs if fs is not None else get_fs()
    try:
        fs.fsync_dir(path)
    except OSError as exc:
        get_registry().counter(
            "repro_fsync_dir_failures_total",
            "Best-effort parent-directory fsyncs that failed",
        ).inc()
        logger.warning(
            "parent-directory fsync failed; rename durability downgraded "
            "to best effort",
            extra={"dir": str(path), "error": f"{type(exc).__name__}: {exc}"},
        )
        return False
    return True
