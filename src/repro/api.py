"""High-level convenience API.

One call builds the index and runs the chosen join:

>>> import numpy as np
>>> from repro import similarity_join
>>> pts = np.random.default_rng(0).random((500, 2))
>>> result = similarity_join(pts, eps=0.05, algorithm="csj", g=10)
>>> result.stats.groups_emitted + result.stats.links_emitted > 0
True

For repeated joins over the same data build the index once with
:func:`build_index` and call :func:`repro.core.ssj.ssj` /
:func:`repro.core.csj.csj` directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.core.csj import csj as _csj
from repro.core.csj import ncsj as _ncsj
from repro.core.dual import compact_spatial_join, spatial_join
from repro.core.egrid import egrid_join
from repro.core.partitioned import pbsm_join
from repro.core.results import JoinResult, JoinSink
from repro.core.ssj import ssj as _ssj
from repro.errors import InvalidInputError, validate_eps, validate_points
from repro.index import SpatialIndex, bulk_load, get_index_class
from repro.obs.logging import get_logger

if TYPE_CHECKING:
    from repro.resilience.budget import Budget

__all__ = [
    "build_index",
    "similarity_join",
    "spatial_join_datasets",
    "maintained_join",
    "open_service",
]

logger = get_logger("api")

ALGORITHMS = ("ssj", "ncsj", "csj", "egrid", "egrid-csj", "pbsm", "pbsm-csj")


def build_index(
    points: np.ndarray,
    index: Union[str, SpatialIndex] = "rstar",
    metric: object = None,
    max_entries: int = 64,
    bulk: Optional[str] = None,
) -> SpatialIndex:
    """Build (or pass through) a spatial index over ``points``.

    ``index`` may be an index name (``"rtree"``, ``"rstar"``, ``"mtree"``)
    or an already-built :class:`~repro.index.base.SpatialIndex`.  ``bulk``
    selects a bulk-loading method (``"str"``, ``"hilbert"``, ``"omt"``) for
    the R-tree family instead of one-by-one insertion.
    """
    if isinstance(index, SpatialIndex):
        return index
    points = validate_points(points)
    cls = get_index_class(index)
    from repro.index.rtree import RTree

    if bulk is not None and issubclass(cls, RTree):
        return bulk_load(
            points, method=bulk, tree_class=cls, metric=metric, max_entries=max_entries
        )
    # The M-tree (and any non-rectangle index) is built by insertion.
    return cls(points, metric=metric, max_entries=max_entries)


def similarity_join(
    points: np.ndarray,
    eps: float,
    algorithm: str = "csj",
    g: int = 10,
    index: Union[str, SpatialIndex] = "rstar",
    metric: object = None,
    sink: Optional[JoinSink] = None,
    max_entries: int = 64,
    bulk: Optional[str] = "str",
    budget: Optional["Budget"] = None,
    workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    engine: str = "vectorized",
    data_plane: str = "auto",
    shards: Optional[int] = None,
    partitioner: str = "grid",
) -> JoinResult:
    """Similarity self-join of ``points`` with query range ``eps``.

    ``algorithm`` is one of

    * ``"ssj"`` — standard join, every qualifying pair individually;
    * ``"ncsj"`` — naive compact join (tree-node early stopping);
    * ``"csj"`` — compact join with a ``g``-recent-group merge window;
    * ``"egrid"`` / ``"egrid-csj"`` — the index-free epsilon-grid-order
      join, plain or with the compact extension;
    * ``"pbsm"`` / ``"pbsm-csj"`` — the partition-based spatial-merge
      join, plain or compact.

    Tree algorithms build the index named by ``index`` (bulk-loaded with
    ``bulk`` by default); pass a prebuilt index to amortise that cost.

    Inputs are validated here — empty, non-2-D or non-finite point arrays
    and non-positive ranges raise
    :class:`~repro.errors.InvalidInputError` before any tree code runs.
    ``budget`` bounds the run cooperatively; see
    :class:`~repro.resilience.budget.Budget`.

    ``workers`` > 1 executes the join across a supervised worker pool
    (:func:`repro.parallel.parallel_join`) with ``task_timeout`` as the
    per-task wall-clock limit; output is byte-identical to the serial
    run.  ``workers`` of ``None``, 0 or 1 stays in-process.

    ``data_plane`` (parallel runs only) selects how workers obtain the
    dataset: ``"shm"`` maps one shared-memory copy zero-copy,
    ``"pickle"`` ships it per worker, ``"auto"`` (default) prefers shm
    where available.  Output bytes are identical either way.

    ``engine`` selects how tree algorithms prune: ``"vectorized"``
    (default) runs the batched-kernel frontier engine,
    ``"scalar"`` the per-pair recursive one.  Both produce byte-identical
    output and identical counters; grid/partition algorithms ignore the
    choice.  For a belt-and-braces run of *both* engines with an
    equivalence check, see :func:`repro.core.verify.cross_check_engines`.

    ``shards`` (any integer >= 1) partitions the dataset into that many
    spatial shards with ε-margin boundary replication and runs one join
    per shard (:func:`repro.shard.sharded_join`), merging owned links in
    canonical order; ``partitioner`` selects ``"grid"`` or ``"hilbert"``
    planning.  Sharded output bytes and canonical counters are identical
    for every shard count, partitioner and worker count, and the implied
    pair set equals the unsharded join's.  ``shards=None`` (default)
    keeps the classic unsharded execution.
    """
    algorithm = algorithm.lower()
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; known: {ALGORITHMS}")
    points = validate_points(points)
    eps = validate_eps(eps)
    if g < 0:
        raise InvalidInputError(f"window size g must be >= 0, got {g}")
    if workers is not None and workers < 0:
        raise InvalidInputError(f"workers must be >= 0, got {workers}")
    logger.debug(
        "similarity join starting",
        extra={
            "algorithm": algorithm,
            "points": int(points.shape[0]),
            "eps": eps,
            "g": g,
            "workers": workers,
        },
    )
    if shards is not None:
        from repro.shard import sharded_join  # deferred: heavy machinery

        if isinstance(index, SpatialIndex):
            raise InvalidInputError(
                "sharded execution builds one index per shard; pass the "
                "index *name*, not a prebuilt index"
            )
        return sharded_join(
            points,
            eps,
            algorithm=algorithm,
            g=g,
            shards=shards,
            partitioner=partitioner,
            index=index,
            metric=metric,
            sink=sink,
            max_entries=max_entries,
            bulk=bulk,
            budget=budget,
            workers=workers,
            task_timeout=task_timeout,
            engine=engine,
            data_plane=data_plane,
        )
    if workers is not None and workers > 1:
        from repro.parallel import parallel_join  # deferred: heavy machinery

        if isinstance(index, SpatialIndex):
            raise InvalidInputError(
                "parallel execution rebuilds the index per worker; pass the "
                "index *name*, not a prebuilt index"
            )
        return parallel_join(
            points,
            eps,
            algorithm=algorithm,
            g=g,
            workers=workers,
            sink=sink,
            index=index,
            metric=metric,
            max_entries=max_entries,
            bulk=bulk,
            budget=budget,
            task_timeout=task_timeout,
            engine=engine,
            data_plane=data_plane,
        )
    if algorithm == "egrid":
        return egrid_join(
            points, eps, compact=False, sink=sink, metric=metric, budget=budget
        )
    if algorithm == "egrid-csj":
        return egrid_join(
            points, eps, compact=True, g=g, sink=sink, metric=metric, budget=budget
        )
    if algorithm == "pbsm":
        return pbsm_join(
            points, eps, compact=False, sink=sink, metric=metric, budget=budget
        )
    if algorithm == "pbsm-csj":
        return pbsm_join(
            points, eps, compact=True, g=g, sink=sink, metric=metric, budget=budget
        )
    tree = build_index(points, index, metric=metric, max_entries=max_entries, bulk=bulk)
    if algorithm == "ssj":
        return _ssj(tree, eps, sink=sink, budget=budget, engine=engine)
    if algorithm == "ncsj":
        return _ncsj(tree, eps, sink=sink, budget=budget, engine=engine)
    return _csj(tree, eps, g=g, sink=sink, budget=budget, engine=engine)


def maintained_join(
    points: np.ndarray,
    eps: float,
    g: int = 10,
    index: Union[str, SpatialIndex] = "rstar",
    metric: object = None,
    max_entries: int = 64,
    engine: str = "vectorized",
):
    """Materialize a compact join and keep it consistent under updates.

    Returns a :class:`~repro.dynamic.MaintainedJoin`: call ``insert`` /
    ``delete`` to update it, ``result()`` for the current output, and
    ``expanded_links()`` for verification — expansion-equivalent to a
    from-scratch :func:`similarity_join` over the live points after any
    update sequence.
    """
    from repro.dynamic import MaintainedJoin  # deferred: imports core.csj

    return MaintainedJoin(
        points,
        eps,
        g=g,
        metric=metric,
        index=index,
        max_entries=max_entries,
        engine=engine,
    )


def open_service(
    queue_depth: int = 8,
    deadline_ms: Optional[float] = None,
    executors: int = 1,
    workers: int = 1,
    engine: str = "vectorized",
    **config_kwargs,
):
    """Open an overload-resilient :class:`~repro.service.JoinService`.

    The serving counterpart of :func:`similarity_join`: submit
    :class:`~repro.service.JoinRequest` s (or a whole batch via
    ``serve``) and get exactly one typed outcome per request — served
    exactly, degraded to the analytic estimator (``degraded=True``),
    shed with a ``Retry-After`` hint
    (:class:`~repro.errors.AdmissionRejectedError`, exit 9), or failed
    fast on an open circuit (:class:`~repro.errors.CircuitOpenError`,
    exit 10).

    ``queue_depth`` bounds the admission queue; ``deadline_ms`` is the
    default per-request deadline in **milliseconds** (matching the CLI's
    ``--deadline-ms``), measured from submission and propagated
    end-to-end.  Close the service (it is a context manager) to drain
    the executors.
    """
    from repro.service import JoinService, ServiceConfig  # deferred: threads

    return JoinService(
        ServiceConfig(
            queue_depth=queue_depth,
            executors=executors,
            default_deadline=None if deadline_ms is None else deadline_ms / 1000.0,
            workers=workers,
            engine=engine,
            **config_kwargs,
        )
    )


def spatial_join_datasets(
    points_a: np.ndarray,
    points_b: np.ndarray,
    eps: float,
    compact: bool = True,
    g: int = 10,
    index: str = "rstar",
    metric: object = None,
    sink: Optional[JoinSink] = None,
    max_entries: int = 64,
    bulk: Optional[str] = "str",
    engine: str = "vectorized",
) -> JoinResult:
    """Spatial join between two datasets (Section IV-D).

    Builds one index per dataset and runs the dual-tree join; with
    ``compact`` the output uses group pairs, otherwise individual links.
    ``engine`` selects the pruning engine as in :func:`similarity_join`.
    """
    tree_a = build_index(points_a, index, metric=metric, max_entries=max_entries, bulk=bulk)
    tree_b = build_index(points_b, index, metric=metric, max_entries=max_entries, bulk=bulk)
    if compact:
        return compact_spatial_join(tree_a, tree_b, eps, g=g, sink=sink, engine=engine)
    return spatial_join(tree_a, tree_b, eps, sink=sink, engine=engine)
