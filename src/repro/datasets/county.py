"""Simulated county street-map datasets (MG County, LB County).

The paper's Montgomery County (27K points) and Long Beach County (36K)
datasets are classic spatial-join benchmarks of digitised street-map
points.  They are not shippable, so these generators reproduce the
statistical structure the join algorithms react to:

* points concentrated in *street grids* around population centres — the
  locally dense regions responsible for output explosions;
* grid spacing far below the map extent, so density varies by orders of
  magnitude across the map;
* a thin scatter of rural points between the towns.

``mg_county`` models a suburban county: many small, irregularly rotated
street grids of varying size plus winding connector roads.  ``lb_county``
models a dense urban grid city: a few large, mostly axis-aligned grids
with higher point density (Long Beach is famously grid-like).  Both are
seeded and return points in the unit square.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.normalize import normalize_unit_box

__all__ = ["mg_county", "lb_county", "street_grid_town"]


def street_grid_town(
    rng: np.random.Generator,
    n: int,
    center: np.ndarray,
    radius: float,
    block_size: float,
    angle: float,
    jitter: float,
) -> np.ndarray:
    """``n`` street-intersection points of one town.

    A rotated square lattice with spacing ``block_size`` is laid over the
    town disc; intersections inside the disc are sampled with jitter,
    emulating digitised street crossings.
    """
    if n <= 0:
        return np.empty((0, 2))
    half = int(np.ceil(radius / block_size)) + 1
    axis = np.arange(-half, half + 1) * block_size
    gx, gy = np.meshgrid(axis, axis)
    lattice = np.stack([gx.ravel(), gy.ravel()], axis=1)
    inside = np.linalg.norm(lattice, axis=1) <= radius
    lattice = lattice[inside]
    if not len(lattice):
        lattice = np.zeros((1, 2))
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    rotation = np.array([[cos_a, -sin_a], [sin_a, cos_a]])
    lattice = lattice @ rotation.T + center
    choice = rng.integers(0, len(lattice), size=n)
    return lattice[choice] + rng.normal(scale=jitter, size=(n, 2))


def _county(
    n: int,
    seed: int,
    n_towns: int,
    town_radius: tuple[float, float],
    block_size: tuple[float, float],
    rural_fraction: float,
    jitter: float,
    axis_aligned: bool,
) -> np.ndarray:
    rng = np.random.default_rng(seed)
    n_rural = int(n * rural_fraction)
    n_urban = n - n_rural
    centers = rng.random((n_towns, 2))
    # Larger towns draw proportionally more points (Zipf-ish weights).
    weights = 1.0 / np.arange(1, n_towns + 1)
    weights /= weights.sum()
    counts = rng.multinomial(n_urban, weights)
    parts = []
    for i in range(n_towns):
        radius = rng.uniform(*town_radius)
        block = rng.uniform(*block_size)
        angle = 0.0 if axis_aligned and rng.random() < 0.7 else rng.uniform(0, np.pi / 2)
        parts.append(
            street_grid_town(rng, int(counts[i]), centers[i], radius, block, angle, jitter)
        )
    if n_rural:
        # Rural roads: points strung along straight connectors between towns.
        src = rng.integers(0, n_towns, size=n_rural)
        dst = (src + 1 + rng.integers(0, max(1, n_towns - 1), size=n_rural)) % n_towns
        t = rng.random((n_rural, 1))
        rural = centers[src] * (1 - t) + centers[dst] * t
        rural += rng.normal(scale=jitter * 4, size=rural.shape)
        parts.append(rural)
    pts = np.vstack([p for p in parts if len(p)])
    return normalize_unit_box(np.clip(pts, -0.05, 1.05))


def mg_county(n: int = 27_000, seed: int = 0) -> np.ndarray:
    """Montgomery-County-like street points: suburban, many small grids.

    Defaults to the paper's 27K points.
    """
    return _county(
        n,
        seed,
        n_towns=40,
        town_radius=(0.02, 0.08),
        block_size=(0.004, 0.010),
        rural_fraction=0.25,
        jitter=0.0012,
        axis_aligned=False,
    )


def lb_county(n: int = 36_000, seed: int = 1) -> np.ndarray:
    """Long-Beach-County-like street points: dense urban grids.

    Defaults to the paper's 36K points.
    """
    return _county(
        n,
        seed,
        n_towns=12,
        town_radius=(0.08, 0.20),
        block_size=(0.005, 0.008),
        rural_fraction=0.10,
        jitter=0.0008,
        axis_aligned=True,
    )
