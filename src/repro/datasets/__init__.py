"""Dataset generators reproducing the paper's four workloads.

The paper evaluates on Montgomery County (27K points, 2-D), Long Beach
County (36K, 2-D), a 3-D Sierpinski pyramid (100K) and Pacific-NW TIGER
road endpoints (1.5M, 2-D).  The three real datasets cannot be shipped, so
seeded generators reproduce their statistical shape — strongly clustered
2-D point sets with street-grid / road-corridor structure — which is the
property the algorithms are sensitive to (local density versus query
range).  The Sierpinski pyramid is generated exactly as in the paper.

All generators return points normalised to the unit square / cube, as the
paper normalises all its data (Section VI).
"""

from repro.datasets.county import lb_county, mg_county
from repro.datasets.normalize import normalize_unit_box
from repro.datasets.roads import pacific_nw
from repro.datasets.sierpinski import sierpinski_pyramid, sierpinski_triangle
from repro.datasets.synthetic import (
    gaussian_clusters,
    grid_points,
    line_points,
    uniform_points,
)

__all__ = [
    "mg_county",
    "lb_county",
    "pacific_nw",
    "sierpinski_pyramid",
    "sierpinski_triangle",
    "uniform_points",
    "gaussian_clusters",
    "grid_points",
    "line_points",
    "normalize_unit_box",
    "load_dataset",
]

_GENERATORS = {
    "mg_county": mg_county,
    "lb_county": lb_county,
    "pacific_nw": pacific_nw,
    "sierpinski3d": sierpinski_pyramid,
    "uniform": uniform_points,
}


def load_dataset(name: str, n: int, seed: int = 0):
    """Generate one of the paper's datasets by name at a chosen size.

    Names: ``mg_county``, ``lb_county``, ``pacific_nw``, ``sierpinski3d``,
    ``uniform``.
    """
    try:
        generator = _GENERATORS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; known: {sorted(_GENERATORS)}"
        ) from None
    return generator(n, seed=seed)
