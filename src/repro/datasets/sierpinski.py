"""Sierpinski fractal point sets (the paper's synthetic workload).

The paper uses "100,000 datapoints from a Sierpinski pyramid (3D)" for
Experiment 1 and re-generates the same family at varying sizes for the
scalability study (Experiment 2).  Points are produced with the chaos
game: iterate x <- (x + v) / 2 toward a uniformly chosen vertex v; after a
short burn-in the iterates are distributed on the attractor.

Fractal data exhibits density at every scale, so output explosions appear
progressively as the query range grows — which is why the paper uses it
to stress scalability.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sierpinski_triangle", "sierpinski_pyramid", "chaos_game"]

#: Iterations discarded before points are recorded.
_BURN_IN = 20


def chaos_game(vertices: np.ndarray, n: int, seed: int = 0) -> np.ndarray:
    """Run the chaos game toward ``vertices``; return ``n`` points.

    Vectorised: the vertex choices for all iterations are drawn up front
    and the recurrence is applied in one Python loop over iterations of
    whole batches (the loop is over ``n + burn-in`` scalar steps only for
    a single walker; we instead run ``n`` independent walkers for burn-in
    steps, which yields the same attractor distribution in O(burn-in)
    vector operations).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    verts = np.atleast_2d(np.asarray(vertices, dtype=float))
    rng = np.random.default_rng(seed)
    pts = rng.random((n, verts.shape[1]))
    for _ in range(_BURN_IN):
        choice = rng.integers(0, len(verts), size=n)
        pts = (pts + verts[choice]) / 2.0
    return pts


def sierpinski_triangle(n: int, seed: int = 0) -> np.ndarray:
    """``n`` points on the 2-D Sierpinski triangle inside the unit square."""
    vertices = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, np.sqrt(3.0) / 2.0]])
    return chaos_game(vertices, n, seed)


def sierpinski_pyramid(n: int, seed: int = 0) -> np.ndarray:
    """``n`` points on the 3-D Sierpinski pyramid (tetrahedron) — the
    paper's Sierpinski3D dataset, normalised to the unit cube."""
    vertices = np.array(
        [
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.5, np.sqrt(3.0) / 2.0, 0.0],
            [0.5, np.sqrt(3.0) / 6.0, np.sqrt(2.0 / 3.0)],
        ]
    )
    return chaos_game(vertices, n, seed)
