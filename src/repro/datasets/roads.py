"""Simulated road-network endpoints (the Pacific NW TIGER workload).

The paper's largest dataset is the 1.5M road-segment endpoints of
Washington, Oregon and Idaho from the U.S. Census TIGER database.  The
defining structure is *curvilinear density*: points lie densely along 1-D
road corridors embedded in 2-D, with strong clustering at cities where
corridors meet, and vast near-empty regions (mountains).

The generator grows a road network with correlated random walks: city
seeds are placed first (population centres), then roads are walked between
and out of cities with heading momentum, emitting a segment endpoint every
step.  Walk step length sets the typical segment length, matching the
TIGER property that endpoint spacing is much finer than city spacing.

Sizes are configurable; benchmarks default far below 1.5M because the
pure-Python join loops are ~100x slower than the authors' C++, and the
paper's observed effects depend on density versus query range, not on the
absolute count (we also scale the query ranges accordingly).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.normalize import normalize_unit_box

__all__ = ["pacific_nw", "road_walk"]


def road_walk(
    rng: np.random.Generator,
    start: np.ndarray,
    n_steps: int,
    step: float,
    wiggle: float,
) -> np.ndarray:
    """One road as a heading-momentum random walk; returns its endpoints."""
    if n_steps <= 0:
        return np.empty((0, 2))
    headings = np.cumsum(rng.normal(scale=wiggle, size=n_steps)) + rng.uniform(
        0, 2 * np.pi
    )
    steps = np.stack([np.cos(headings), np.sin(headings)], axis=1) * step
    return start + np.cumsum(steps, axis=0)


def pacific_nw(n: int = 150_000, seed: int = 2) -> np.ndarray:
    """Pacific-NW-like road endpoints in the unit square.

    ``n`` defaults to a tenth of the paper's 1.5M (see module docstring);
    pass ``n=1_500_000`` to generate the full-scale equivalent.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if n == 0:
        return np.empty((0, 2))
    rng = np.random.default_rng(seed)
    n_cities = 25
    cities = rng.random((n_cities, 2))
    city_weight = rng.pareto(1.5, size=n_cities) + 1.0
    city_weight /= city_weight.sum()

    parts: list[np.ndarray] = []
    remaining = n
    # Urban street walks: short, dense, many per city.
    n_urban = int(n * 0.6)
    urban_counts = rng.multinomial(n_urban, city_weight)
    for i in range(n_cities):
        budget = int(urban_counts[i])
        while budget > 0:
            length = min(budget, int(rng.integers(40, 200)))
            start = cities[i] + rng.normal(scale=0.01, size=2)
            parts.append(road_walk(rng, start, length, step=0.0008, wiggle=0.6))
            budget -= length
    remaining -= n_urban
    # Highways: long sparse walks between city pairs.
    while remaining > 0:
        length = min(remaining, int(rng.integers(200, 800)))
        src, dst = rng.integers(0, n_cities, size=2)
        start = cities[src]
        # Bias the initial heading toward the destination city.
        walk = road_walk(rng, start, length, step=0.002, wiggle=0.15)
        direction = cities[dst] - cities[src]
        norm = np.linalg.norm(direction)
        if norm > 0:
            # Shear the walk so it drifts toward the destination.
            drift = np.linspace(0, 1, length)[:, None] * direction * 0.5
            walk = walk + drift
        parts.append(walk)
        remaining -= length
    pts = np.vstack(parts)[:n]
    return normalize_unit_box(pts)
