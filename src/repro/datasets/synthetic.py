"""Basic synthetic point generators for tests and ablations."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["uniform_points", "gaussian_clusters", "grid_points", "line_points"]


def uniform_points(n: int, seed: int = 0, dim: int = 2) -> np.ndarray:
    """``n`` points uniform in the unit box."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return np.random.default_rng(seed).random((n, dim))


def gaussian_clusters(
    n: int,
    seed: int = 0,
    dim: int = 2,
    n_clusters: int = 10,
    std: float = 0.02,
    centers: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``n`` points from a mixture of isotropic Gaussians, clipped to the
    unit box.  The canonical "locally dense" workload: for query ranges
    comparable to ``std`` each cluster produces an output explosion."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = np.random.default_rng(seed)
    if centers is None:
        centers = rng.random((n_clusters, dim))
    centers = np.atleast_2d(np.asarray(centers, dtype=float))
    choice = rng.integers(0, len(centers), size=n)
    pts = centers[choice] + rng.normal(scale=std, size=(n, centers.shape[1]))
    return np.clip(pts, 0.0, 1.0)


def grid_points(side: int, dim: int = 2, jitter: float = 0.0, seed: int = 0) -> np.ndarray:
    """A regular ``side ** dim`` lattice in the unit box, optionally
    jittered.  Deterministic worst case for tie-breaking and boundary
    tests (many exactly equal pairwise distances)."""
    if side < 1:
        raise ValueError(f"side must be positive, got {side}")
    axes = [np.linspace(0.0, 1.0, side)] * dim
    mesh = np.meshgrid(*axes, indexing="ij")
    pts = np.stack([m.ravel() for m in mesh], axis=1)
    if jitter > 0.0:
        rng = np.random.default_rng(seed)
        pts = np.clip(pts + rng.normal(scale=jitter, size=pts.shape), 0.0, 1.0)
    return pts


def line_points(n: int, dim: int = 2, spacing: float = 1.0) -> np.ndarray:
    """``n`` evenly spaced collinear points (first axis), rest zero.

    Reproduces the paper's 1-D worked examples: the integers on the real
    line of Figure 2 and the insertion-ordering example of Section V-B.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    pts = np.zeros((n, dim))
    pts[:, 0] = np.arange(n) * spacing
    return pts
