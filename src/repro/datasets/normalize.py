"""Normalisation to the unit box.

"All data sets were normalized to fit into the unit square" (Section VI).
Aspect ratio is preserved by default — all axes are scaled by the same
factor — because the paper's query ranges are absolute distances and
anisotropic scaling would distort them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["normalize_unit_box"]


def normalize_unit_box(points: np.ndarray, preserve_aspect: bool = True) -> np.ndarray:
    """Scale and translate ``points`` into ``[0, 1]^d``.

    With ``preserve_aspect`` (the default) a single scale factor — the
    largest axis extent — is used, so inter-point distances are scaled
    uniformly; the data then spans [0, 1] on its widest axis and a
    sub-interval elsewhere.  Without it each axis is stretched to [0, 1]
    independently.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if pts.size == 0:
        return pts.copy()
    lo = pts.min(axis=0)
    span = pts.max(axis=0) - lo
    if preserve_aspect:
        scale = float(span.max())
        if scale == 0.0:
            scale = 1.0
        return (pts - lo) / scale
    span = span.copy()
    span[span == 0.0] = 1.0
    return (pts - lo) / span
