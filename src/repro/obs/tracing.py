"""Lightweight trace spans for the join phases.

A *span* is a named, timed region of a run — ``descend`` (the tree /
grid traversal), ``emit`` (residual output flushes), ``csj-merge`` (the
canonical-order merge of parallel task deltas), ``checkpoint`` (journal
records) — plus zero-duration *events* (worker spawned, worker killed).
Spans nest; each record carries its ``;``-joined ancestor path, so a
flame-style summary (``scripts/trace_report.py``) is a straight
aggregation over paths.

Tracing is **off by default** and the disabled path is a single global
read returning a shared no-op context manager, so instrumented code
costs nothing measurable when nobody is looking
(``benchmarks/bench_obs_overhead.py`` proves the bound).  Enable with
:func:`configure_tracing`, which writes one JSON line per finished span
to a per-run trace file::

    {"name": "descend", "path": "join;descend", "ts": 0.0012,
     "dur": 0.83, "depth": 1, "algorithm": "csj"}

``ts`` is seconds since the tracer was created, ``dur`` the span's
duration in seconds.  Records appear in *completion* order (children
before parents), which aggregation does not care about.
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO, Optional, Union

__all__ = [
    "Tracer",
    "configure_tracing",
    "disable_tracing",
    "get_tracer",
    "span",
    "trace_event",
    "tracing_enabled",
]


class _NoopSpan:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("_tracer", "name", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self._tracer._push(self.name)
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = self._tracer._clock()
        self._tracer._pop(self.name, self._start, end - self._start, self.attrs)


class Tracer:
    """Writes span records as JSON lines to a file or stream.

    ``target`` is a path (opened for writing, closed by :meth:`close`)
    or any writable text stream (left open).  Thread-safe: the span
    stack is thread-local and record writes are serialised.
    """

    def __init__(self, target: Union[str, IO[str]], clock=time.perf_counter):
        if isinstance(target, (str, bytes)):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_stream = True
            self.path: Optional[str] = str(target)
        else:
            self._stream = target
            self._owns_stream = False
            self.path = getattr(target, "name", None)
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._closed = False
        #: Spans and events written so far.
        self.records = 0

    # -- span stack (per thread) ----------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, name: str) -> None:
        self._stack().append(name)

    def _pop(self, name: str, start: float, dur: float, attrs: dict) -> None:
        stack = self._stack()
        if stack and stack[-1] == name:
            stack.pop()
        record = {
            "name": name,
            "path": ";".join(stack + [name]),
            "ts": round(start - self._epoch, 6),
            "dur": round(dur, 6),
            "depth": len(stack),
        }
        if attrs:
            record.update(attrs)
        self._write(record)

    def _write(self, record: dict) -> None:
        line = json.dumps(record, default=str, separators=(",", ":"))
        with self._lock:
            if self._closed:
                return
            self._stream.write(line + "\n")
            self.records += 1

    # -- public API ------------------------------------------------------
    def span(self, name: str, **attrs: object) -> _Span:
        """A context manager timing one named region."""
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs: object) -> None:
        """A zero-duration point record (worker spawned, task retried)."""
        stack = self._stack()
        record = {
            "name": name,
            "path": ";".join(stack + [name]),
            "ts": round(self._clock() - self._epoch, 6),
            "dur": 0.0,
            "depth": len(stack),
            "event": True,
        }
        if attrs:
            record.update(attrs)
        self._write(record)

    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._stream.flush()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._stream.flush()
            if self._owns_stream:
                self._stream.close()


_tracer: Optional[Tracer] = None


def configure_tracing(target: Union[str, IO[str]]) -> Tracer:
    """Install the global tracer (closing any previous one)."""
    global _tracer
    if _tracer is not None:
        _tracer.close()
    _tracer = Tracer(target)
    return _tracer


def disable_tracing() -> None:
    """Close and remove the global tracer; ``span()`` becomes a no-op."""
    global _tracer
    if _tracer is not None:
        _tracer.close()
        _tracer = None


def get_tracer() -> Optional[Tracer]:
    return _tracer


def tracing_enabled() -> bool:
    return _tracer is not None


def span(name: str, **attrs: object):
    """A span on the global tracer — or the shared no-op when disabled.

    This is the function instrumented code calls; keep using it (rather
    than holding a tracer) so enabling/disabling tracing mid-process
    takes effect everywhere at once.
    """
    tracer = _tracer
    if tracer is None:
        return _NOOP
    return tracer.span(name, **attrs)


def trace_event(name: str, **attrs: object) -> None:
    """A point event on the global tracer; no-op when disabled."""
    tracer = _tracer
    if tracer is not None:
        tracer.event(name, **attrs)
