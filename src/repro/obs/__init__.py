"""Observability: structured logs, metrics, trace spans, progress.

A zero-dependency cross-cutting layer over the join library:

* :mod:`repro.obs.logging` — JSON-lines (or plain) logging with
  run-scoped context behind a ``NullHandler``-safe ``repro`` logger
  hierarchy; silent until :func:`configure_logging` opts in.
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry
  exportable as JSON or Prometheus text; snapshots
  :class:`~repro.stats.counters.JoinStats`, budget state, sink retries,
  checkpoint journal events and worker-pool health.
* :mod:`repro.obs.tracing` — phase-level trace spans (``descend``,
  ``emit``, ``csj-merge``, ``checkpoint``) written as JSON lines to a
  per-run trace file; a no-op until :func:`configure_tracing` opts in.
  Summarise with ``scripts/trace_report.py``.
* :mod:`repro.obs.progress` — a periodic heartbeat logging live
  counters of a long run.

Everything is opt-in and the disabled paths are designed to cost
nothing measurable (``benchmarks/bench_obs_overhead.py`` enforces
< 5 % on a paper-scale workload); the CLI wires the layer to the
``--log-json`` / ``--log-level`` / ``--trace`` / ``--metrics-out`` /
``--progress`` flags.
"""

from repro.obs.logging import (
    JsonFormatter,
    bind_context,
    configure_logging,
    current_context,
    get_logger,
    log_mode,
    reset_logging,
    run_context,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from repro.obs.progress import ProgressHeartbeat
from repro.obs.tracing import (
    Tracer,
    configure_tracing,
    disable_tracing,
    get_tracer,
    span,
    trace_event,
    tracing_enabled,
)

__all__ = [
    # logging
    "JsonFormatter",
    "bind_context",
    "configure_logging",
    "current_context",
    "get_logger",
    "log_mode",
    "reset_logging",
    "run_context",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
    # tracing
    "Tracer",
    "configure_tracing",
    "disable_tracing",
    "get_tracer",
    "span",
    "trace_event",
    "tracing_enabled",
    # progress
    "ProgressHeartbeat",
]
