"""Periodic progress heartbeat for long runs.

A :class:`ProgressHeartbeat` watches a live
:class:`~repro.stats.counters.JoinStats` from a daemon thread and logs
one ``progress`` record per interval — links/groups/bytes emitted so
far plus the emission rate since the previous beat — through the
``repro.progress`` logger, so a multi-minute join is observably alive
(and observably *stuck*, when the counters stop moving) without
touching the hot path at all: the join itself never checks a clock.
"""

from __future__ import annotations

import contextvars
import threading
import time
from typing import Optional

from repro.obs.logging import get_logger
from repro.stats.counters import JoinStats

__all__ = ["ProgressHeartbeat"]


class ProgressHeartbeat:
    """Logs join progress every ``interval`` seconds until stopped.

    Usable as a context manager::

        stats = JoinStats()
        with ProgressHeartbeat(stats, interval=10.0):
            run_join(..., stats=stats)

    The watched ``stats`` object must be the one the run mutates (a
    sink's ``stats``); the heartbeat only ever reads it.
    """

    def __init__(
        self,
        stats: JoinStats,
        interval: float = 10.0,
        logger=None,
        clock=time.monotonic,
    ):
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be positive, got {interval}")
        self.stats = stats
        self.interval = float(interval)
        self.logger = logger if logger is not None else get_logger("progress")
        self._clock = clock
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: Beats emitted so far.
        self.beats = 0

    def start(self) -> "ProgressHeartbeat":
        if self._thread is not None:
            return self
        self._stop.clear()
        # Threads do not inherit contextvars, so run the loop inside a
        # copy of the caller's context — beats keep the run id fields.
        ctx = contextvars.copy_context()
        self._thread = threading.Thread(
            target=ctx.run, args=(self._loop,),
            name="repro-progress", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval + 1.0)
            self._thread = None

    def _loop(self) -> None:
        started = self._clock()
        last_links = self.stats.links_emitted
        last_groups = self.stats.groups_emitted
        while not self._stop.wait(self.interval):
            links = self.stats.links_emitted
            groups = self.stats.groups_emitted
            elapsed = self._clock() - started
            self.beats += 1
            self.logger.info(
                "progress",
                extra={
                    "elapsed_seconds": round(elapsed, 3),
                    "links_emitted": links,
                    "groups_emitted": groups,
                    "bytes_written": self.stats.bytes_written,
                    "distance_computations": self.stats.distance_computations,
                    "emit_rate_per_beat": (links + groups)
                    - (last_links + last_groups),
                },
            )
            last_links, last_groups = links, groups

    def __enter__(self) -> "ProgressHeartbeat":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
