"""Structured logging for the join library.

The library logs into the ``repro`` logger hierarchy
(``repro.core``, ``repro.parallel``, ``repro.resilience``, ...), which
carries a :class:`logging.NullHandler` by default — importing the
library never prints anything and never touches the root logger, per
the standard library-logging contract.  Applications (and the CLI's
``--log-json`` / ``--log-level`` flags) opt in with
:func:`configure_logging`, which installs a single stream handler in
either of two formats:

* **plain** — one human-readable line per event, for terminals;
* **json** — one JSON object per line (:class:`JsonFormatter`), for
  pipelines: every record carries the timestamp, level, logger, the
  event message, any structured fields passed via ``extra=``, and the
  *run context*.

The run context is a contextvar-scoped dictionary of identifying fields
(run id, algorithm, query range, worker id) bound once per run with
:func:`run_context` (scoped) or :func:`bind_context` (process-wide, for
worker processes) and stamped onto every record emitted underneath it —
so a multi-run or multi-worker log stream remains attributable without
threading identifiers through every call site.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import logging
import sys
from typing import IO, Iterator, Optional, Union

__all__ = [
    "JsonFormatter",
    "bind_context",
    "configure_logging",
    "current_context",
    "get_logger",
    "log_mode",
    "reset_logging",
    "run_context",
]

ROOT_LOGGER_NAME = "repro"

#: Fields of every LogRecord that are bookkeeping, not user payload.
_RECORD_RESERVED = frozenset(
    {
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "message", "module",
        "msecs", "msg", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread", "threadName",
    }
)

_context: contextvars.ContextVar[dict] = contextvars.ContextVar(
    "repro_run_context", default={}
)

#: The active output mode: ``None`` (unconfigured), "plain" or "json".
_mode: Optional[str] = None


def get_logger(name: str = "") -> logging.Logger:
    """A logger in the ``repro`` hierarchy (``get_logger("core.ssj")``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def current_context() -> dict:
    """The run-context fields bound to the current execution context."""
    return dict(_context.get())


@contextlib.contextmanager
def run_context(**fields: object) -> Iterator[dict]:
    """Bind identifying fields to every log record emitted in this scope.

    Nested contexts merge (inner fields win); the previous context is
    restored on exit.

    >>> with run_context(run_id="a1b2", algorithm="csj"):
    ...     current_context()["algorithm"]
    'csj'
    """
    merged = {**_context.get(), **fields}
    token = _context.set(merged)
    try:
        yield merged
    finally:
        _context.reset(token)


def bind_context(**fields: object) -> None:
    """Merge fields into the current context permanently.

    For worker processes, which set their identity once at startup and
    never unwind it.
    """
    _context.set({**_context.get(), **fields})


class _ContextFilter(logging.Filter):
    """Stamps the run context onto every record (as ``record.context``)."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.context = _context.get()
        return True


class JsonFormatter(logging.Formatter):
    """One JSON object per line: timestamp, level, logger, event, context.

    Structured fields passed through ``extra=`` land as top-level keys;
    run-context fields are merged in (explicit ``extra`` keys win).
    Values that are not JSON-native are stringified, never dropped.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        payload.update(getattr(record, "context", None) or _context.get())
        for key, value in record.__dict__.items():
            if key not in _RECORD_RESERVED and key != "context" and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, separators=(",", ":"))


class _PlainFormatter(logging.Formatter):
    """Human-readable single line with the context appended in brackets."""

    def format(self, record: logging.LogRecord) -> str:
        base = f"{record.levelname.lower():7s} {record.name}: {record.getMessage()}"
        extras = {
            key: value
            for key, value in record.__dict__.items()
            if key not in _RECORD_RESERVED
            and key != "context"
            and not key.startswith("_")
        }
        context = getattr(record, "context", None) or {}
        fields = {**context, **extras}
        if fields:
            joined = " ".join(f"{k}={v}" for k, v in fields.items())
            base = f"{base} [{joined}]"
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


# Library-safe default: importing repro must never print.
_root = logging.getLogger(ROOT_LOGGER_NAME)
if not any(isinstance(h, logging.NullHandler) for h in _root.handlers):
    _root.addHandler(logging.NullHandler())


def configure_logging(
    level: Union[int, str] = "info",
    json_lines: bool = False,
    stream: Optional[IO[str]] = None,
) -> logging.Handler:
    """Install the library's log handler (idempotent; replaces its own).

    ``level`` is a name ("debug", "info", ...) or a :mod:`logging`
    constant; ``json_lines`` selects :class:`JsonFormatter`; ``stream``
    defaults to ``sys.stderr`` — diagnostics never pollute stdout.
    Returns the installed handler.
    """
    global _mode
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    reset_logging()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_lines else _PlainFormatter())
    handler.addFilter(_ContextFilter())
    handler._repro_obs_handler = True  # tag for reset_logging
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.addHandler(handler)
    root.setLevel(level)
    _mode = "json" if json_lines else "plain"
    return handler


def reset_logging() -> None:
    """Remove any handler installed by :func:`configure_logging`."""
    global _mode
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
            handler.close()
    _mode = None


def log_mode() -> Optional[str]:
    """The configured output mode: ``None``, ``"plain"`` or ``"json"``."""
    return _mode
