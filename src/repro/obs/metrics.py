"""A zero-dependency metrics registry: counters, gauges, histograms.

The registry is the numeric side of the observability layer.  Library
code records into the process-global registry (:func:`get_registry`)
through three primitives with Prometheus semantics:

* :class:`Counter` — monotonically increasing total (``_total`` names);
* :class:`Gauge` — a value that goes up and down (queue depth,
  heartbeat age);
* :class:`Histogram` — cumulative bucket counts plus sum/count, for
  durations.

Snapshots export two ways: :meth:`MetricsRegistry.to_json` (one object,
machine-consumable) and :meth:`MetricsRegistry.to_prometheus` (the text
exposition format, scrape-ready).  :meth:`MetricsRegistry.record_join_stats`
folds a finished run's :class:`~repro.stats.counters.JoinStats` — including
the derived ``total_time`` / ``pairs_reported`` values — into
``repro_join_*`` metrics, and :meth:`MetricsRegistry.record_budget`
captures budget state, so one snapshot carries the paper's whole
measurement protocol (runtime split, output bytes, page accesses) next
to the execution-health counters (pool spawns/kills, sink retries,
checkpoint records).

Everything is plain Python with a single lock around metric creation;
``inc``/``set``/``observe`` are lock-free (single bytecode-level updates
under the GIL, and worker processes keep their own registries).
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import fields as dataclass_fields
from typing import TYPE_CHECKING, Optional, Sequence, Union

if TYPE_CHECKING:
    from repro.resilience.budget import Budget
    from repro.stats.counters import JoinStats

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
]

#: Default histogram buckets (seconds): micro-joins to minutes.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


def _labelled(name: str, labels: Optional[dict]) -> str:
    """Canonical registry key for a labelled metric.

    One formatting path for every labelled series: label pairs are
    sorted, values escaped per the Prometheus text format, and the
    result is ``name{key="value",...}`` — the shape
    :meth:`MetricsRegistry.to_prometheus` groups into one metric family
    per base name.  Callers pass ``labels=`` instead of hand-building
    the brace syntax.
    """
    if not labels:
        return name
    pairs = ",".join(
        '{}="{}"'.format(
            key,
            str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"),
        )
        for key, value in sorted(labels.items())
    )
    return f"{name}{{{pairs}}}"


class Counter:
    """Monotonically increasing counter."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """Instantaneous value; may move in both directions."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram with sum and count."""

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, ending with ``(inf, count)``."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out


class MetricsRegistry:
    """Named metrics with get-or-create registration and two exporters."""

    def __init__(self) -> None:
        self._metrics: dict[str, Union[Counter, Gauge, Histogram]] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(
        self, name: str, help: str = "", labels: Optional[dict] = None
    ) -> Counter:
        return self._get_or_create(Counter, _labelled(name, labels), help)

    def gauge(
        self, name: str, help: str = "", labels: Optional[dict] = None
    ) -> Gauge:
        return self._get_or_create(Gauge, _labelled(name, labels), help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labels: Optional[dict] = None,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, _labelled(name, labels), help, buckets=buckets
        )

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    # Domain recorders
    # ------------------------------------------------------------------
    def record_join_stats(self, stats: "JoinStats", prefix: str = "repro_join_") -> None:
        """Fold a run's counters — including derived values — into metrics.

        Integer counters become :class:`Counter` s, the time fields
        become counters of seconds (``*_seconds_total``); the derived
        ``total_time`` and ``pairs_reported`` properties are recorded
        explicitly so exported snapshots carry the paper's headline
        runtime number.
        """
        for f in dataclass_fields(stats):
            value = getattr(stats, f.name)
            if isinstance(value, float):
                self.counter(
                    f"{prefix}{f.name}_seconds_total", f"JoinStats.{f.name} (seconds)"
                ).inc(value)
            else:
                self.counter(f"{prefix}{f.name}_total", f"JoinStats.{f.name}").inc(value)
        self.counter(
            f"{prefix}total_time_seconds_total", "compute plus write seconds"
        ).inc(stats.total_time)
        self.counter(
            f"{prefix}pairs_reported_total", "links implied by the output"
        ).inc(stats.pairs_reported)

    def record_budget(self, budget: Optional["Budget"]) -> None:
        """Capture a budget's limits and consumption as gauges."""
        if budget is None:
            return
        self.gauge("repro_budget_active", "1 when any limit is set").set(
            1 if budget.active else 0
        )
        self.gauge("repro_budget_elapsed_seconds", "seconds since Budget.start").set(
            budget.elapsed()
        )
        if budget.deadline_seconds is not None:
            self.gauge("repro_budget_deadline_seconds", "wall-clock limit").set(
                budget.deadline_seconds
            )
        if budget.max_output_bytes is not None:
            self.gauge("repro_budget_max_output_bytes", "output byte cap").set(
                budget.max_output_bytes
            )
        if budget.max_groups is not None:
            self.gauge("repro_budget_max_groups", "emitted-group cap").set(
                budget.max_groups
            )

    def service_outcome(self, outcome: str) -> None:
        """Count one serving-layer request outcome.

        ``outcome`` is one of the ladder's terminal states: ``admitted``
        (served exactly), ``degraded`` (estimator answer), ``shed``
        (admission queue full) or ``breaker_open`` (failed fast).  Each
        request increments exactly one of these, so the four counters
        partition the request stream — the overload gate audits that.
        """
        self.counter(
            f"repro_service_{outcome}_total",
            f"Requests that ended {outcome.replace('_', ' ')}",
        ).inc()

    def cache_event(self, kind: str) -> None:
        """Count one result-cache event.

        ``kind`` is one of ``hit`` (fresh entry served), ``miss`` (no
        usable entry), ``eviction`` (LRU/byte-budget displacement) or
        ``patched`` (entry refreshed incrementally by the dynamic layer
        instead of a from-scratch join).
        """
        names = {
            "hit": "hits",
            "miss": "misses",
            "eviction": "evictions",
            "patched": "patched",
        }
        plural = names.get(kind)
        if plural is None:
            raise ValueError(f"unknown cache event {kind!r}; known: {sorted(names)}")
        self.counter(
            f"repro_cache_{plural}_total", f"Result-cache {kind} events"
        ).inc()

    def record_shard_plan(
        self,
        shards: int,
        points: int,
        halo_points: int,
        tasks: int,
        skew_ratio: float,
    ) -> None:
        """Capture one shard plan's shape and load balance.

        ``points`` counts core memberships (the dataset size),
        ``halo_points`` the ε-margin replicated memberships, ``tasks``
        the canonical shard-task count, and ``skew_ratio`` the max/mean
        working-set size (1.0 = perfectly balanced).  Gauges reflect the
        most recent plan; the companion counter totals plans made.
        """
        self.counter("repro_shard_plans_total", "Shard plans computed").inc()
        self.gauge("repro_shard_count", "Shards in the last plan").set(shards)
        self.gauge(
            "repro_shard_points", "Core point memberships in the last shard plan"
        ).set(points)
        self.gauge(
            "repro_shard_halo_points",
            "Replicated ε-margin halo memberships in the last shard plan",
        ).set(halo_points)
        self.gauge(
            "repro_shard_tasks", "Canonical tasks in the last sharded join"
        ).set(tasks)
        self.gauge(
            "repro_shard_skew_ratio",
            "Max/mean shard working-set size of the last plan (1.0 = balanced)",
        ).set(skew_ratio)

    def data_plane_event(self, kind: str, amount: Union[int, float] = 1) -> None:
        """Count one shared-memory data-plane event.

        ``kind`` is one of ``segment`` (segment created), ``attach``
        (worker mapped a published segment), ``fallback`` (shm requested
        but pickling used instead), ``rebuild`` (a ``TaskState`` was
        built from scratch), ``warm_hit`` (a ``TaskState`` was adopted
        from the per-process warm cache) or ``spec_bytes`` (bytes of
        pickled spec shipped to workers, ``amount`` = byte count).
        """
        names = {
            "segment": ("repro_shm_segments_total", "Shared-memory segments created"),
            "attach": ("repro_shm_attach_total", "Shared-memory segment attaches"),
            "fallback": (
                "repro_shm_fallback_total",
                "Joins that fell back from the shm to the pickle data plane",
            ),
            "rebuild": (
                "repro_taskstate_rebuilds_total",
                "TaskStates built from scratch (index build + task enumeration)",
            ),
            "warm_hit": (
                "repro_taskstate_warm_hits_total",
                "TaskStates adopted from the per-process warm cache",
            ),
            "spec_bytes": (
                "repro_spec_bytes_total",
                "Bytes of pickled JoinSpec shipped to worker processes",
            ),
        }
        try:
            name, help_text = names[kind]
        except KeyError:
            raise ValueError(
                f"unknown data-plane event {kind!r}; known: {sorted(names)}"
            ) from None
        self.counter(name, help_text).inc(amount)

    def service_pressure(
        self, queue_len: int, queue_depth: int, deadline_slack: Optional[float]
    ) -> None:
        """Publish the serving layer's live pressure gauges."""
        self.gauge(
            "repro_service_queue_depth", "Requests waiting for an executor"
        ).set(queue_len)
        self.gauge(
            "repro_service_queue_limit", "Configured admission queue bound"
        ).set(queue_depth)
        if deadline_slack is not None:
            self.gauge(
                "repro_service_deadline_slack_seconds",
                "Remaining deadline of the request now starting",
            ).set(deadline_slack)

    def breaker_state(self, name: str, state: str) -> None:
        """Export a circuit breaker's state (0 closed, 1 half-open, 2 open)."""
        value = {"closed": 0, "half_open": 1, "open": 2}.get(state, -1)
        self.gauge(
            "repro_service_breaker_state",
            "Circuit state: 0 closed, 1 half-open, 2 open",
            labels={"breaker": name},
        ).set(value)
        self.counter(
            "repro_service_breaker_transitions_total",
            "Circuit breaker state transitions",
            labels={"breaker": name, "to": state},
        ).inc()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """All metrics as one plain dictionary (stable name order)."""
        out: dict = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "buckets": {
                        ("+Inf" if math.isinf(le) else repr(le)): n
                        for le, n in metric.cumulative()
                    },
                }
            else:
                out[name] = metric.value
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """The snapshot in the Prometheus text exposition format.

        Labelled metrics (registered through the ``labels=`` argument,
        stored under canonical keys like
        ``repro_sink_errno_total{errno="enospc"}``) share one metric
        family: ``HELP``/``TYPE`` are emitted once per base name, and
        each labelled sample on its own line — exactly how a Prometheus
        scraper expects label sets of the same family to arrive.
        """
        lines: list[str] = []
        described: set[str] = set()
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            base = name.split("{", 1)[0]
            if base not in described:
                described.add(base)
                if metric.help:
                    lines.append(f"# HELP {base} {metric.help}")
                lines.append(f"# TYPE {base} {metric.kind}")
            if isinstance(metric, Histogram):
                for le, n in metric.cumulative():
                    label = "+Inf" if math.isinf(le) else repr(le)
                    lines.append(f'{name}_bucket{{le="{label}"}} {n}')
                lines.append(f"{name}_sum {metric.sum!r}")
                lines.append(f"{name}_count {metric.count}")
            else:
                lines.append(f"{name} {metric.value}")
        return "\n".join(lines) + "\n"


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry the library records into."""
    return _registry


def reset_registry() -> MetricsRegistry:
    """Replace the global registry with a fresh one (start of a run)."""
    global _registry
    _registry = MetricsRegistry()
    return _registry
