"""Equivalence verification — executable Theorems 1 and 2.

The paper proves that N-CSJ and CSJ(g) lose no information relative to the
standard join (completeness, Theorem 1) and imply no spurious pairs
(correctness, Theorem 2).  This module makes both claims checkable for any
concrete run:

* :func:`expand_result` turns a compact output back into the explicit link
  set ("individual links can easily be recovered by expanding the returned
  groups", Section IV-D);
* :func:`check_equivalence` compares that expansion against a brute-force
  ground truth and reports missing / extra links.

The test suite runs these checks over randomised datasets, metrics and
index structures; the examples use them to demonstrate losslessness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.bruteforce import brute_force_links
from repro.core.results import JoinResult
from repro.geometry.metrics import Metric

__all__ = [
    "expand_result",
    "check_equivalence",
    "cross_check_engines",
    "EquivalenceReport",
]


def expand_result(result: JoinResult) -> set[tuple[int, int]]:
    """Explicit link set implied by a join result (links + group pairs)."""
    return result.expanded_links()


@dataclass
class EquivalenceReport:
    """Outcome of comparing a join result against the ground truth."""

    #: Qualifying pairs absent from the output (violates Theorem 1).
    missing: set[tuple[int, int]] = field(default_factory=set)
    #: Implied pairs that do not qualify (violates Theorem 2).
    extra: set[tuple[int, int]] = field(default_factory=set)
    #: Number of ground-truth links.
    expected: int = 0
    #: Number of links implied by the output.
    implied: int = 0

    @property
    def ok(self) -> bool:
        """True when the output is exactly equivalent to the ground truth."""
        return not self.missing and not self.extra

    def raise_if_failed(self) -> None:
        """Raise ``AssertionError`` with a sample of the discrepancies."""
        if self.ok:
            return
        parts = []
        if self.missing:
            sample = sorted(self.missing)[:5]
            parts.append(f"{len(self.missing)} missing links (e.g. {sample})")
        if self.extra:
            sample = sorted(self.extra)[:5]
            parts.append(f"{len(self.extra)} extra links (e.g. {sample})")
        raise AssertionError("join output is not lossless: " + "; ".join(parts))

    def __repr__(self) -> str:
        status = "OK" if self.ok else "FAILED"
        return (
            f"EquivalenceReport({status}, expected={self.expected}, "
            f"implied={self.implied}, missing={len(self.missing)}, "
            f"extra={len(self.extra)})"
        )


def check_equivalence(
    points: np.ndarray,
    eps: float,
    result: JoinResult,
    metric: Optional[Metric] = None,
    ground_truth: Optional[set[tuple[int, int]]] = None,
) -> EquivalenceReport:
    """Verify a join result against a brute-force join of ``points``.

    ``ground_truth`` may be supplied to avoid recomputing it when several
    algorithms are verified on the same data.
    """
    if ground_truth is None:
        ground_truth = brute_force_links(points, eps, metric)
    implied = expand_result(result)
    return EquivalenceReport(
        missing=ground_truth - implied,
        extra=implied - ground_truth,
        expected=len(ground_truth),
        implied=len(implied),
    )


def cross_check_engines(points: np.ndarray, eps: float, **kwargs) -> JoinResult:
    """Paranoia mode: run both execution engines, demand exact agreement.

    Executes the join twice — once with the scalar recursive engine, once
    with the vectorized frontier engine — and compares the complete
    payload (links, groups, group pairs, in order) plus every integer
    counter.  Any divergence raises ``AssertionError`` naming the first
    differing field; on agreement the vectorized result is returned.

    ``kwargs`` are forwarded to :func:`repro.api.similarity_join`
    (``algorithm``, ``g``, ``index``, ``metric``, ...); ``engine`` and
    ``sink`` must not be supplied — paranoia mode owns both.
    """
    from repro.api import similarity_join  # deferred: api imports core

    for reserved in ("engine", "sink"):
        if reserved in kwargs:
            raise ValueError(f"cross_check_engines manages {reserved!r} itself")
    scalar = similarity_join(points, eps, engine="scalar", **kwargs)
    vectorized = similarity_join(points, eps, engine="vectorized", **kwargs)
    for name in ("links", "groups", "group_pairs"):
        if getattr(scalar, name) != getattr(vectorized, name):
            raise AssertionError(
                f"engine divergence in {name}: scalar produced "
                f"{len(getattr(scalar, name))} entries, vectorized "
                f"{len(getattr(vectorized, name))} (or same count, different "
                f"content)"
            )
    s_dict = scalar.stats.as_dict()
    v_dict = vectorized.stats.as_dict()
    for key, s_val in s_dict.items():
        if isinstance(s_val, int):
            if v_dict.get(key) != s_val:
                raise AssertionError(
                    f"engine divergence in counter {key!r}: "
                    f"scalar={s_val}, vectorized={v_dict.get(key)}"
                )
    return vectorized
