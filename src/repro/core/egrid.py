"""The epsilon-grid-order join and its compact extension (Section VII).

Boehm, Braunmueller, Krebs and Kriegel's epsilon-grid-order [2] is the
paper's reference technique for the index-free setting: lay a virtual grid
of cell width ``eps`` over the data; two points can only qualify when
their cells differ by at most one in every coordinate, so each cell is
joined with itself and with its lexicographically larger neighbours.

Section VII notes that the compact idea carries over: "one need only
modify the JoinBuffer function ... to add the early termination-as-a-group
case".  That is what :func:`egrid_join` does when ``compact=True``:

* a cell (or a cell pair) whose *actual point* MBR has a diagonal below
  the range is emitted as one group instead of being pair-enumerated, and
* residual links flow through the same ``g``-recent-group merge window as
  CSJ(g).

Substitution note: the original operates out-of-core over a sorted stream;
our in-memory hash-grid performs the identical cell-pair joins (same
candidate set, same output), which is the behaviour relevant to output
compaction.
"""

from __future__ import annotations

import itertools
import time
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.groups import GroupBuffer, apply_events
from repro.core.results import CollectSink, JoinResult, JoinSink
from repro.errors import BudgetExceededError
from repro.geometry.metrics import Metric, get_metric
from repro.io.writer import width_for
from repro.obs.tracing import span as trace_span

if TYPE_CHECKING:
    from repro.resilience.budget import Budget

__all__ = [
    "egrid_join",
    "egrid_sorted_join",
    "grid_cells",
    "epsilon_grid_order",
    "cell_self_delta",
    "cell_pair_delta",
]


def grid_cells(points: np.ndarray, eps: float) -> dict[tuple[int, ...], np.ndarray]:
    """Bucket point ids into grid cells of side ``eps``.

    Returns a mapping from integer cell coordinates to id arrays, ordered
    lexicographically by cell coordinate (the "epsilon grid order").
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    coords = np.floor(pts / eps).astype(np.int64)
    order = np.lexsort(coords.T[::-1])
    cells: dict[tuple[int, ...], np.ndarray] = {}
    start = 0
    sorted_coords = coords[order]
    for i in range(1, len(order) + 1):
        if i == len(order) or not np.array_equal(sorted_coords[i], sorted_coords[start]):
            key = tuple(int(c) for c in sorted_coords[start])
            cells[key] = order[start:i]
            start = i
    return cells


def _positive_neighbour_offsets(dim: int) -> list[tuple[int, ...]]:
    """Offsets in {-1, 0, 1}^d that are lexicographically positive.

    Joining each cell only with its lexicographically larger neighbours
    visits every neighbouring cell pair exactly once.
    """
    offsets = []
    for offset in itertools.product((-1, 0, 1), repeat=dim):
        for component in offset:
            if component > 0:
                offsets.append(offset)
                break
            if component < 0:
                break
    return offsets


def egrid_join(
    points: np.ndarray,
    eps: float,
    compact: bool = False,
    g: int = 10,
    sink: Optional[JoinSink] = None,
    metric: Optional[Metric] = None,
    budget: Optional["Budget"] = None,
) -> JoinResult:
    """Similarity self-join via the epsilon grid order.

    With ``compact=False`` this is the standard index-free join: all
    qualifying pairs individually.  With ``compact=True`` the JoinBuffer
    early-termination-as-a-group extension is active (``g`` as in CSJ).

    The metric must not exceed the grid reach: any Minkowski metric is
    safe because ``distance < eps`` implies every coordinate difference is
    below ``eps``, hence neighbouring cells.
    """
    if eps <= 0:
        raise ValueError(f"query range must be positive, got {eps}")
    m = get_metric(metric)
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if sink is None:
        sink = CollectSink(id_width=width_for(len(pts)))
    stats = sink.stats
    buffer = GroupBuffer(
        g if compact else 0, eps, sink, metric=m, stats=stats, dim=pts.shape[1]
    )

    if budget is not None:
        budget.start()
    start_time = time.perf_counter()
    with trace_span("grid", algorithm="egrid", points=len(pts)):
        cells = grid_cells(pts, eps)
    offsets = _positive_neighbour_offsets(pts.shape[1])

    try:
        with trace_span("descend", algorithm="egrid", cells=len(cells)):
            for key, ids in cells.items():
                if budget is not None:
                    budget.check(stats)
                _join_cell_self(pts, ids, eps, m, compact, buffer, sink, stats)
                for offset in offsets:
                    neighbour = tuple(k + o for k, o in zip(key, offset))
                    other = cells.get(neighbour)
                    if other is not None:
                        _join_cell_pair(pts, ids, other, eps, m, compact, buffer, sink, stats)
        with trace_span("emit", algorithm="egrid"):
            buffer.flush()
    except BudgetExceededError as exc:
        buffer.flush()
        stats.compute_time += time.perf_counter() - start_time - stats.write_time
        label = (f"egrid-csj({g})" if g else "egrid-ncsj") if compact else "egrid"
        exc.partial = JoinResult.from_sink(
            sink, eps=eps, algorithm=label, g=g if compact else None,
            index_name="egrid",
        )
        raise
    stats.compute_time += time.perf_counter() - start_time - stats.write_time
    label = (f"egrid-csj({g})" if g else "egrid-ncsj") if compact else "egrid"
    return JoinResult.from_sink(
        sink, eps=eps, algorithm=label, g=g if compact else None, index_name="egrid"
    )


def epsilon_grid_order(points: np.ndarray, eps: float) -> np.ndarray:
    """The permutation sorting points into the epsilon grid order.

    Points are ordered lexicographically by their grid-cell coordinates
    (Boehm et al.'s total order); within a cell the original order is
    kept.  The defining property: all join partners of a point lie within
    a contiguous window of this order bounded by the cells at
    lexicographic distance one — the basis of the external-memory
    algorithm.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    coords = np.floor(pts / eps).astype(np.int64)
    return np.lexsort(coords.T[::-1])


def egrid_sorted_join(
    points: np.ndarray,
    eps: float,
    compact: bool = False,
    g: int = 10,
    sink: Optional[JoinSink] = None,
    metric: Optional[Metric] = None,
) -> JoinResult:
    """The sorted (sequential-scan) formulation of the grid-order join.

    This is the shape of the original algorithm [2]: sort once by the
    epsilon grid order, then sweep; each cell joins itself and, via the
    lexicographic window, exactly its not-yet-visited neighbour cells.
    Output and semantics are identical to :func:`egrid_join` (the test
    suite asserts it); the hash variant is faster in memory, this one
    reflects how the join streams from disk.  ``compact=True`` applies
    the same Section VII early-termination extension.
    """
    if eps <= 0:
        raise ValueError(f"query range must be positive, got {eps}")
    m = get_metric(metric)
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if sink is None:
        sink = CollectSink(id_width=width_for(len(pts)))
    stats = sink.stats
    buffer = GroupBuffer(
        g if compact else 0, eps, sink, metric=m, stats=stats, dim=pts.shape[1]
    )

    start_time = time.perf_counter()
    if len(pts) > 1:
        order = epsilon_grid_order(pts, eps)
        coords = np.floor(pts / eps).astype(np.int64)
        sorted_coords = coords[order]
        # Cut the sorted sequence into cell runs.
        boundaries = [0]
        for i in range(1, len(order)):
            if not np.array_equal(sorted_coords[i], sorted_coords[i - 1]):
                boundaries.append(i)
        boundaries.append(len(order))
        runs = {
            tuple(int(c) for c in sorted_coords[boundaries[k]]): order[
                boundaries[k]:boundaries[k + 1]
            ]
            for k in range(len(boundaries) - 1)
        }
        offsets = _positive_neighbour_offsets(pts.shape[1])
        # Sweep the cells in grid order; each joins itself and its
        # lexicographically *following* neighbours (all within the
        # bounded window ahead of the scan position).
        for key in sorted(runs):
            ids = runs[key]
            _join_cell_self(pts, ids, eps, m, compact, buffer, sink, stats)
            for offset in offsets:
                neighbour = tuple(k + o for k, o in zip(key, offset))
                other = runs.get(neighbour)
                if other is not None:
                    _join_cell_pair(
                        pts, ids, other, eps, m, compact, buffer, sink, stats
                    )
    buffer.flush()
    stats.compute_time += time.perf_counter() - start_time - stats.write_time
    label = (
        (f"egrid-sorted-csj({g})" if g else "egrid-sorted-ncsj")
        if compact
        else "egrid-sorted"
    )
    return JoinResult.from_sink(
        sink,
        eps=eps,
        algorithm=label,
        g=g if compact else None,
        index_name="egrid-sorted",
    )


def cell_self_delta(
    pts: np.ndarray, ids: np.ndarray, eps: float, metric, compact: bool
) -> tuple[list, int, int, int]:
    """Pure grid-cell self-join task.

    Returns ``(events, distance_computations, mbr_checks, early_stops)``
    — the event list is the vocabulary of
    :func:`repro.core.groups.apply_events`.  In compact mode residual
    links are a ``linkseq`` (the JoinBuffer extension routes them through
    the merge window even at ``g = 0``, where a two-point group
    degenerates to a plain link).
    """
    k = len(ids)
    if k < 2:
        return [], 0, 0, 0
    cell_pts = pts[ids]
    if compact:
        lo = cell_pts.min(axis=0)
        hi = cell_pts.max(axis=0)
        if metric.norm(hi - lo) < eps:
            # Early termination as a group: the whole cell qualifies.
            return [("group", ids.tolist(), lo.tolist(), hi.tolist())], 0, 1, 1
    t_rows, t_cols, dists = metric.condensed_self(cell_pts)
    dc = k * (k - 1) // 2
    hit = np.flatnonzero(dists < eps)
    rows, cols = t_rows[hit], t_cols[hit]
    if not compact:
        if not len(rows):
            return [], dc, 0, 0
        return [("links", ids[rows], ids[cols])], dc, 0, 0
    if not len(rows):
        return [], dc, 1, 0
    coords = cell_pts.tolist()
    id_list = ids.tolist()
    rows = rows.tolist()
    cols = cols.tolist()
    return [(
        "linkseq",
        [id_list[r] for r in rows],
        [id_list[c] for c in cols],
        [coords[r] for r in rows],
        [coords[c] for c in cols],
    )], dc, 1, 0


def cell_pair_delta(
    pts: np.ndarray, ids_a: np.ndarray, ids_b: np.ndarray, eps: float,
    metric, compact: bool,
) -> tuple[list, int, int, int]:
    """Pure grid-cell pair-join twin of :func:`cell_self_delta`."""
    pts_a = pts[ids_a]
    pts_b = pts[ids_b]
    if compact:
        both = np.vstack([pts_a, pts_b])
        lo = both.min(axis=0)
        hi = both.max(axis=0)
        if metric.norm(hi - lo) < eps:
            ids = np.concatenate([ids_a, ids_b])
            return [("group", ids.tolist(), lo.tolist(), hi.tolist())], 0, 1, 1
    dists = metric.pairwise(pts_a, pts_b)
    dc = len(ids_a) * len(ids_b)
    rows, cols = np.nonzero(dists < eps)
    if not compact:
        if not len(rows):
            return [], dc, 0, 0
        return [("links", ids_a[rows], ids_b[cols])], dc, 0, 0
    if not len(rows):
        return [], dc, 1, 0
    coords_a = pts_a.tolist()
    coords_b = pts_b.tolist()
    id_a = ids_a.tolist()
    id_b = ids_b.tolist()
    rows = rows.tolist()
    cols = cols.tolist()
    return [(
        "linkseq",
        [id_a[r] for r in rows],
        [id_b[c] for c in cols],
        [coords_a[r] for r in rows],
        [coords_b[c] for c in cols],
    )], dc, 1, 0


def _join_cell_self(pts, ids, eps, metric, compact, buffer, sink, stats) -> None:
    events, dc, checks, stops = cell_self_delta(pts, ids, eps, metric, compact)
    stats.mbr_checks += checks
    stats.early_stops += stops
    stats.distance_computations += dc
    apply_events(events, sink, buffer)


def _join_cell_pair(pts, ids_a, ids_b, eps, metric, compact, buffer, sink, stats) -> None:
    events, dc, checks, stops = cell_pair_delta(pts, ids_a, ids_b, eps, metric, compact)
    stats.mbr_checks += checks
    stats.early_stops += stops
    stats.distance_computations += dc
    apply_events(events, sink, buffer)
