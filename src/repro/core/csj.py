"""N-CSJ and CSJ(g) — the compact similarity joins (Sections IV-B, IV-C).

Both algorithms follow the SSJ recursion but add the *early stopping*
clauses of Figure 3 (shown in italics in the paper):

* entering a single node whose bounding-shape diameter is below the query
  range emits the whole subtree as one group (line 2-3);
* entering a node pair whose combined bounding shape has diameter below
  the range emits both subtrees as one group (line 20-21).

They differ at the leaves: N-CSJ writes each remaining qualifying pair
individually (exactly like SSJ), whereas CSJ(g) offers each pair to the
``g`` most recently created groups via ``mergeIntoPrevGroup``
(:class:`~repro.core.groups.GroupBuffer`), creating a fresh two-point group
when no recent group can absorb it.  N-CSJ is implemented as CSJ with an
empty merge window (``g = 0``), which reproduces its behaviour exactly: a
two-point group is written as a plain link in the paper's output format.

Theorem 1 (completeness — every qualifying pair is implied by the output)
and Theorem 2 (correctness — no non-qualifying pair is implied) hold by
construction; the test suite re-verifies both against a brute-force join
for randomised inputs.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.groups import GroupBuffer, apply_events
from repro.core.results import CollectSink, JoinResult, JoinSink
from repro.errors import BudgetExceededError
from repro.index.base import IndexNode, SpatialIndex
from repro.index.rtree import RectNode
from repro.io.pagesim import NodePager
from repro.io.writer import width_for
from repro.obs.logging import get_logger
from repro.obs.tracing import span as trace_span
from repro.stats.counters import JoinStats

if TYPE_CHECKING:
    from repro.resilience.budget import Budget

__all__ = [
    "csj",
    "ncsj",
    "group_bounds",
    "pair_group_bounds",
    "node_group_delta",
    "pair_group_delta",
    "packed_node_group_delta",
    "packed_pair_group_delta",
    "leaf_self_delta",
    "leaf_cross_delta",
]

logger = get_logger("core.csj")


# ---------------------------------------------------------------------------
# Pure per-task executors
#
# Each returns a serializable description of the task's output (the event
# vocabulary of :func:`repro.core.groups.apply_events`) instead of writing
# anywhere, so the same code runs in-process, under the checkpointed
# driver, and inside parallel worker processes.
# ---------------------------------------------------------------------------

def group_bounds(points: np.ndarray, node: IndexNode, ids: np.ndarray) -> tuple[list, list]:
    """Group boundary corners for an early-stopped subtree.

    R-tree nodes already carry an MBR ("these shapes can be used
    directly", Section V-A); ball-shaped nodes fall back to the exact
    point MBR, which costs one pass over points we are about to write
    out anyway.
    """
    if isinstance(node, RectNode):
        return node.mbr.lo.tolist(), node.mbr.hi.tolist()
    pts = points[ids]
    return pts.min(axis=0).tolist(), pts.max(axis=0).tolist()


def pair_group_bounds(
    points: np.ndarray, n1: IndexNode, n2: IndexNode, ids: np.ndarray
) -> tuple[list, list]:
    """Combined boundary corners for an early-stopped node pair."""
    if isinstance(n1, RectNode) and isinstance(n2, RectNode):
        mbr = n1.mbr.union(n2.mbr)
        return mbr.lo.tolist(), mbr.hi.tolist()
    pts = points[ids]
    return pts.min(axis=0).tolist(), pts.max(axis=0).tolist()


def node_group_delta(points: np.ndarray, node: IndexNode) -> list:
    """Events for one early-stopped subtree (Figure 3, lines 2-3)."""
    ids = node.subtree_ids()
    if len(ids) < 2:
        return []  # a singleton implies no links; nothing to report
    lo, hi = group_bounds(points, node, ids)
    return [("group", ids.tolist(), lo, hi)]


def pair_group_delta(points: np.ndarray, n1: IndexNode, n2: IndexNode) -> list:
    """Events for one early-stopped node pair (Figure 3, lines 20-21)."""
    ids = np.concatenate([n1.subtree_ids(), n2.subtree_ids()])
    if len(ids) < 2:
        return []
    lo, hi = pair_group_bounds(points, n1, n2, ids)
    return [("group", ids.tolist(), lo, hi)]


def packed_node_group_delta(points: np.ndarray, packed, nid: int) -> list:
    """:func:`node_group_delta` against a packed index, by node id.

    Byte-identical to the node-object version: ``packed.lo/hi`` rows are
    float64 copies of the very MBR corners ``group_bounds`` reads, and
    :meth:`~repro.index.packed.PackedIndex.subtree_entry_ids` reproduces
    ``IndexNode.subtree_ids()`` order exactly.
    """
    ids = packed.subtree_entry_ids(nid)
    if len(ids) < 2:
        return []  # a singleton implies no links; nothing to report
    if packed.kind == "rect":
        lo = packed.lo[nid].tolist()
        hi = packed.hi[nid].tolist()
    else:
        pts = points[ids]
        lo = pts.min(axis=0).tolist()
        hi = pts.max(axis=0).tolist()
    return [("group", ids.tolist(), lo, hi)]


def packed_pair_group_delta(
    points: np.ndarray, packed, nid1: int, nid2: int
) -> list:
    """:func:`pair_group_delta` against a packed index, by node ids.

    The rect union uses ``np.minimum`` / ``np.maximum`` over the packed
    corner rows — elementwise identical to ``MBR.union``.
    """
    ids = np.concatenate(
        [packed.subtree_entry_ids(nid1), packed.subtree_entry_ids(nid2)]
    )
    if len(ids) < 2:
        return []
    if packed.kind == "rect":
        lo = np.minimum(packed.lo[nid1], packed.lo[nid2]).tolist()
        hi = np.maximum(packed.hi[nid1], packed.hi[nid2]).tolist()
    else:
        pts = points[ids]
        lo = pts.min(axis=0).tolist()
        hi = pts.max(axis=0).tolist()
    return [("group", ids.tolist(), lo, hi)]


def leaf_self_delta(
    points: np.ndarray, metric, eps: float, ids, g: int
) -> tuple[list, int]:
    """Pure leaf self-join task: ``(events, distance_computations)``.

    With ``g == 0`` residual links go out individually (SSJ / N-CSJ);
    with ``g > 0`` they are described as a ``linkseq`` to be routed
    through the merge window by whoever applies the events.
    """
    id_arr = np.asarray(ids, dtype=np.intp)
    k = len(id_arr)
    if k < 2:
        return [], 0
    pts = points[id_arr]
    # Condensed upper-triangle distances: same values and pair order as
    # the full k x k matrix masked with triu, at ~half the peak memory.
    t_rows, t_cols, dists = metric.condensed_self(pts)
    dc = k * (k - 1) // 2
    hit = np.flatnonzero(dists < eps)
    if not len(hit):
        return [], dc
    rows, cols = t_rows[hit], t_cols[hit]
    if g == 0:
        return [("links", id_arr[rows], id_arr[cols])], dc
    coords = pts.tolist()
    id_list = id_arr.tolist()
    rows = rows.tolist()
    cols = cols.tolist()
    return [(
        "linkseq",
        [id_list[r] for r in rows],
        [id_list[c] for c in cols],
        [coords[r] for r in rows],
        [coords[c] for c in cols],
    )], dc


def leaf_cross_delta(
    points: np.ndarray, metric, eps: float, ids1, ids2, g: int
) -> tuple[list, int]:
    """Pure leaf cross-join twin of :func:`leaf_self_delta`."""
    arr1 = np.asarray(ids1, dtype=np.intp)
    arr2 = np.asarray(ids2, dtype=np.intp)
    if not len(arr1) or not len(arr2):
        return [], 0
    pts1 = points[arr1]
    pts2 = points[arr2]
    dists = metric.pairwise(pts1, pts2)
    dc = len(arr1) * len(arr2)
    rows, cols = np.nonzero(dists < eps)
    if not len(rows):
        return [], dc
    if g == 0:
        return [("links", arr1[rows], arr2[cols])], dc
    coords1 = pts1.tolist()
    coords2 = pts2.tolist()
    id1 = arr1.tolist()
    id2 = arr2.tolist()
    rows = rows.tolist()
    cols = cols.tolist()
    return [(
        "linkseq",
        [id1[r] for r in rows],
        [id2[c] for c in cols],
        [coords1[r] for r in rows],
        [coords2[c] for c in cols],
    )], dc


def csj(
    tree: SpatialIndex,
    eps: float,
    g: int = 10,
    sink: Optional[JoinSink] = None,
    pager: Optional[NodePager] = None,
    budget: Optional["Budget"] = None,
    _algorithm_label: Optional[str] = None,
    engine: str = "vectorized",
) -> JoinResult:
    """Run the compact similarity join CSJ(g) on ``tree``.

    ``g`` is the merge-window length; the paper recommends ``g ~ 10``
    (Figure 6).  ``g = 0`` degenerates to N-CSJ.  Returns a
    :class:`~repro.core.results.JoinResult` whose groups and links together
    imply exactly the SSJ output (Theorems 1 and 2).

    ``engine`` selects the descent implementation (``"vectorized"`` /
    ``"scalar"``), exactly as in :func:`repro.core.ssj.ssj`; results are
    byte-identical either way.

    A breached ``budget`` stops the run cleanly: the in-flight group
    window is flushed first, so the sink holds a valid prefix of the
    output (every emitted link and group individually correct), which is
    attached to the raised :class:`~repro.errors.BudgetExceededError` as
    ``exc.partial``.
    """
    if eps <= 0:
        raise ValueError(f"query range must be positive, got {eps}")
    if g < 0:
        raise ValueError(f"window size g must be >= 0, got {g}")
    if sink is None:
        sink = CollectSink(id_width=width_for(tree.size))
    label = _algorithm_label or (f"csj({g})" if g else "ncsj")
    runner = _make_runner(tree, float(eps), int(g), sink, pager, budget, engine)
    if budget is not None:
        budget.start()
    start = time.perf_counter()
    try:
        with trace_span("descend", algorithm=label, eps=eps, g=g):
            if tree.root is not None and tree.size > 1:
                runner.join_node(tree.root)
        with trace_span("emit", algorithm=label):
            runner.buffer.flush()
    except BudgetExceededError as exc:
        runner.buffer.flush()
        elapsed = time.perf_counter() - start
        stats = sink.stats
        stats.compute_time += elapsed - stats.write_time
        logger.warning(
            "csj budget breach", extra={"kind": exc.kind, "limit": exc.limit}
        )
        exc.partial = JoinResult.from_sink(
            sink, eps=eps, algorithm=label, g=g, index_name=type(tree).name
        )
        raise
    elapsed = time.perf_counter() - start
    stats = sink.stats
    stats.compute_time += elapsed - stats.write_time
    if pager is not None:
        stats.page_reads += pager.cache.misses
        stats.cache_hits += pager.cache.hits
    logger.debug(
        "csj finished",
        extra={
            "algorithm": label,
            "links_emitted": stats.links_emitted,
            "groups_emitted": stats.groups_emitted,
            "early_stops": stats.early_stops,
            "merge_successes": stats.merge_successes,
        },
    )
    return JoinResult.from_sink(
        sink, eps=eps, algorithm=label, g=g, index_name=type(tree).name
    )


def ncsj(
    tree: SpatialIndex,
    eps: float,
    sink: Optional[JoinSink] = None,
    pager: Optional[NodePager] = None,
    budget: Optional["Budget"] = None,
    engine: str = "vectorized",
) -> JoinResult:
    """Run the naive compact similarity join N-CSJ on ``tree``.

    Early stopping on tree nodes only; links that cross nodes are written
    individually, exactly like SSJ (Section IV-B).
    """
    return csj(
        tree, eps, g=0, sink=sink, pager=pager, budget=budget,
        _algorithm_label="ncsj", engine=engine,
    )


def _make_runner(tree, eps, g, sink, pager, budget, engine) -> "_CSJRunner":
    from repro.core.frontier import _VecCSJRunner, resolve_engine  # lazy: cycle

    if resolve_engine(engine) == "vectorized":
        from repro.index.packed import pack_index

        packed = pack_index(tree)
        if packed is not None:
            return _VecCSJRunner(tree, eps, g, sink, pager, budget, packed)
    return _CSJRunner(tree, eps, g, sink, pager, budget)


class _CSJRunner:
    """Recursive engine for one N-CSJ / CSJ(g) execution."""

    def __init__(
        self,
        tree: SpatialIndex,
        eps: float,
        g: int,
        sink: JoinSink,
        pager: Optional[NodePager],
        budget: Optional["Budget"] = None,
    ):
        self.points = tree.points
        self.metric = tree.metric
        self.eps = eps
        self.g = g
        self.sink = sink
        self.stats: JoinStats = sink.stats
        self.pager = pager
        self.budget = budget
        dim = tree.points.shape[1] if tree.points.ndim == 2 else None
        self.buffer = GroupBuffer(
            g, eps, sink, metric=tree.metric, stats=sink.stats, dim=dim
        )

    # ------------------------------------------------------------------
    # Group creation helpers
    # ------------------------------------------------------------------
    def _emit_node_group(self, node: IndexNode) -> None:
        self.stats.early_stops += 1
        apply_events(node_group_delta(self.points, node), self.sink, self.buffer)

    def _emit_pair_group(self, n1: IndexNode, n2: IndexNode) -> None:
        self.stats.early_stops += 1
        apply_events(pair_group_delta(self.points, n1, n2), self.sink, self.buffer)

    # ------------------------------------------------------------------
    # simJoin(TreeNode n) — Figure 3, lines 1-18
    # ------------------------------------------------------------------
    def join_node(self, node: IndexNode) -> None:
        self.stats.nodes_visited += 1
        if self.budget is not None:
            self.budget.check(self.stats)
        if self.pager is not None:
            self.pager.visit(node)
        # Early stop (line 2): the whole subtree is one group.
        self.stats.mbr_checks += 1
        if node.diameter(self.metric) < self.eps:
            self._emit_node_group(node)
            return
        if node.is_leaf:
            self._leaf_self(node)
            return
        children = node.children
        for child in children:
            self.join_node(child)
        for a in range(len(children)):
            for b in range(a + 1, len(children)):
                self.stats.mbr_checks += 1
                if children[a].min_dist(children[b], self.metric) < self.eps:
                    self.join_pair(children[a], children[b])

    # ------------------------------------------------------------------
    # simJoin(TreeNode n1, n2) — Figure 3, lines 19-41
    # ------------------------------------------------------------------
    def join_pair(self, n1: IndexNode, n2: IndexNode) -> None:
        self.stats.node_pairs_visited += 1
        if self.budget is not None:
            self.budget.check(self.stats)
        if self.pager is not None:
            self.pager.visit(n1)
            self.pager.visit(n2)
        # Early stop (line 20): both subtrees together form one group.
        self.stats.mbr_checks += 1
        if n1.union_diameter(n2, self.metric) < self.eps:
            self._emit_pair_group(n1, n2)
            return
        if n1.is_leaf and n2.is_leaf:
            self._leaf_cross(n1, n2)
            return
        if n1.is_leaf:
            for child in n2.children:
                self.stats.mbr_checks += 1
                if n1.min_dist(child, self.metric) < self.eps:
                    self.join_pair(n1, child)
            return
        if n2.is_leaf:
            for child in n1.children:
                self.stats.mbr_checks += 1
                if child.min_dist(n2, self.metric) < self.eps:
                    self.join_pair(child, n2)
            return
        for c1 in n1.children:
            for c2 in n2.children:
                self.stats.mbr_checks += 1
                if c1.min_dist(c2, self.metric) < self.eps:
                    self.join_pair(c1, c2)

    # ------------------------------------------------------------------
    # Leaf-level link routing — Figure 3 lines 5-10 and 23-29
    # ------------------------------------------------------------------
    def _leaf_self(self, node: IndexNode) -> None:
        events, dc = leaf_self_delta(
            self.points, self.metric, self.eps, node.entry_ids, self.g
        )
        self.stats.distance_computations += dc
        apply_events(events, self.sink, self.buffer)

    def _leaf_cross(self, n1: IndexNode, n2: IndexNode) -> None:
        events, dc = leaf_cross_delta(
            self.points, self.metric, self.eps, n1.entry_ids, n2.entry_ids, self.g
        )
        self.stats.distance_computations += dc
        apply_events(events, self.sink, self.buffer)
